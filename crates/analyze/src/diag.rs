//! Typed, severity-ranked diagnostics with stable codes.

use std::fmt;

/// How bad a finding is. Ordering is ascending badness, so
/// `max_severity` comparisons read naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Notable but harmless — tuning hints, topology facts.
    Info,
    /// Almost certainly a configuration mistake; the simulation still
    /// runs deterministically.
    Warn,
    /// The configuration cannot do what it says (traffic that can only
    /// decode-error, watchpoints that can never match).
    /// `build_checked` refuses these.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes: once shipped, a code keeps its meaning
/// forever (suppressions and CI greps depend on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// Unreachable slave: no master has a reachability edge to any of
    /// the memory's windows.
    A001,
    /// Never-woken component: subscribed to no signal at all.
    A002,
    /// Address-window shadowing: two decode windows overlap, so one
    /// slave shadows part of the other.
    A003,
    /// Unmapped footprint: a master's statically-known address range
    /// crosses a gap no window decodes.
    A004,
    /// Watch target outside the mapped/backing store: the watched word
    /// can never be written through the system.
    A005,
    /// Fault site can never fire for the built topology.
    A006,
    /// Clock-period relation worth knowing: identical (lock-step) or
    /// co-prime (never realigning) periods in a multi-clock system.
    A007,
    /// Zero-lookahead cross-domain coupling: two clock domains are
    /// forced into one lock-step shard.
    A008,
}

impl Code {
    /// The fixed severity of every diagnostic carrying this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::A001 | Code::A004 | Code::A005 => Severity::Error,
            Code::A002 | Code::A003 | Code::A006 | Code::A008 => Severity::Warn,
            Code::A007 => Severity::Info,
        }
    }

    /// The stable code string (`"A001"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::A001 => "A001",
            Code::A002 => "A002",
            Code::A003 => "A003",
            Code::A004 => "A004",
            Code::A005 => "A005",
            Code::A006 => "A006",
            Code::A007 => "A007",
            Code::A008 => "A008",
        }
    }

    /// One-line description of what the code means.
    pub fn title(self) -> &'static str {
        match self {
            Code::A001 => "unreachable slave",
            Code::A002 => "never-woken component",
            Code::A003 => "address-window shadowing",
            Code::A004 => "master footprint crosses unmapped address space",
            Code::A005 => "watch target outside the mapped region",
            Code::A006 => "fault site can never fire",
            Code::A007 => "clock-period relation",
            Code::A008 => "zero-lookahead cross-domain coupling",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a code (which fixes the severity), the subject it is
/// about, what was found, and how to fix it.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Severity (always `code.severity()`; duplicated for direct
    /// filtering).
    pub severity: Severity,
    /// What the finding is about (a node name, a window, a spec index).
    pub subject: String,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl Diagnostic {
    /// Creates a diagnostic; the severity comes from the code.
    pub fn new(
        code: Code,
        subject: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            subject: subject.into(),
            message: message.into(),
            hint: hint.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {} (hint: {})",
            self.severity, self.code, self.subject, self.message, self.hint
        )
    }
}
