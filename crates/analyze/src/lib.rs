//! # dmi-analyze — static system-graph analysis
//!
//! Lints a whole co-simulation configuration **before a single cycle
//! runs**, and derives the facts the parallel sharded engine (ROADMAP
//! item 1) needs: per-edge static latency bounds, a conservative
//! global lookahead, and a [`ShardPlan`].
//!
//! The input is a [`SystemGraph`] — an IR decoupled from construction:
//! `dmi-system` lowers a `SystemBuilder` into one (full fidelity:
//! address windows, master footprints, fault-plan and watchpoint
//! references), and [`SystemGraph::from_simulator`] extracts a
//! conservative one from any hand-wired kernel setup (components,
//! clocks, signal subscriptions).
//!
//! [`analyze`] runs the pass pipeline and returns an
//! [`AnalysisReport`]: severity-ranked [`Diagnostic`]s with stable
//! codes (`A001`–`A008`, each with a fix hint) plus the shard plan.
//! Every pass is a pure function of the graph — no simulator access,
//! no interior mutability — which is what lets the system layer
//! guarantee that calling `analyze()` before a run leaves the
//! simulation cycle-bit-identical.
//!
//! See this crate's `README.md` for the diagnostic-code reference and
//! the shard-plan semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod graph;
mod passes;
mod report;
mod shard;

pub use diag::{Code, Diagnostic, Severity};
pub use graph::{
    ClockDomain, Footprint, Node, NodeId, NodeKind, ReachEdge, RegionInfo, SubEdge, SystemGraph,
    WatchRef,
};
pub use report::AnalysisReport;
pub use shard::{Boundary, Shard, ShardPlan};

/// Runs the full pass pipeline over a graph: computes the
/// [`ShardPlan`], collects every pass's [`Diagnostic`]s, and ranks
/// them most severe first (ties by code, then subject, then message,
/// so the report is a pure function of the graph).
pub fn analyze(graph: &SystemGraph) -> AnalysisReport {
    let plan = ShardPlan::partition(graph);
    let mut diagnostics = Vec::new();
    passes::run_all(graph, &plan, &mut diagnostics);
    diagnostics.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.code.cmp(&b.code))
            .then_with(|| a.subject.cmp(&b.subject))
            .then_with(|| a.message.cmp(&b.message))
    });
    AnalysisReport {
        graph: graph.clone(),
        diagnostics,
        plan,
    }
}
