//! The analysis result: ranked diagnostics, the shard plan, and a
//! human-readable rendering.

use std::fmt;

use crate::diag::{Diagnostic, Severity};
use crate::graph::SystemGraph;
use crate::shard::{Boundary, ShardPlan};

/// Everything one `analyze()` call derives from a system graph.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The graph the analysis ran on (kept for rendering and for
    /// downstream consumers that want the raw facts).
    pub graph: SystemGraph,
    /// Findings, ranked most severe first; ties broken by code, then
    /// subject — a pure function of the graph, so reports diff cleanly.
    pub diagnostics: Vec<Diagnostic>,
    /// The conservative partition for the parallel engine.
    pub plan: ShardPlan,
}

impl AnalysisReport {
    /// Whether any `Error`-severity diagnostic was found
    /// (`build_checked`'s gate).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The `Error`-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The global conservative lookahead in ticks: how far any shard
    /// may run ahead of any coupled neighbour
    /// ([`Boundary::UNBOUNDED`] when nothing couples the shards).
    pub fn lookahead(&self) -> u64 {
        self.plan.lookahead()
    }
}

fn fmt_lookahead(l: u64) -> String {
    if l == Boundary::UNBOUNDED {
        "unbounded".to_string()
    } else {
        format!("{l}t")
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = &self.graph;
        writeln!(
            f,
            "system: {} components, {} clock{}, {} region{}",
            g.nodes.len(),
            g.clocks.len(),
            if g.clocks.len() == 1 { "" } else { "s" },
            g.regions.len(),
            if g.regions.len() == 1 { "" } else { "s" },
        )?;
        if self.diagnostics.is_empty() {
            writeln!(f, "diagnostics: none")?;
        } else {
            writeln!(f, "diagnostics ({}):", self.diagnostics.len())?;
            for d in &self.diagnostics {
                writeln!(f, "  {d}")?;
            }
        }
        writeln!(
            f,
            "shard plan: {} shard{}",
            self.plan.shards.len(),
            if self.plan.shards.len() == 1 { "" } else { "s" }
        )?;
        for (i, s) in self.plan.shards.iter().enumerate() {
            let domains: Vec<&str> = s
                .domains
                .iter()
                .map(|&k| g.clocks[k].name.as_str())
                .collect();
            let mut names: Vec<&str> = s.nodes.iter().map(|&n| g.name(n)).collect();
            const SHOWN: usize = 6;
            let omitted = names.len().saturating_sub(SHOWN);
            names.truncate(SHOWN);
            write!(
                f,
                "  #{i}: {} node{} [{}]",
                s.nodes.len(),
                if s.nodes.len() == 1 { "" } else { "s" },
                names.join(", "),
            )?;
            if omitted > 0 {
                write!(f, " (+{omitted})")?;
            }
            writeln!(
                f,
                " domains [{}]",
                if domains.is_empty() {
                    "-".to_string()
                } else {
                    domains.join(", ")
                }
            )?;
        }
        for b in &self.plan.boundaries {
            writeln!(
                f,
                "  boundary #{}<->#{}: lookahead {}",
                b.a,
                b.b,
                fmt_lookahead(b.lookahead)
            )?;
        }
        writeln!(f, "global lookahead: {}", fmt_lookahead(self.lookahead()))
    }
}
