//! The shard planner: partitions the system graph into groups that a
//! parallel engine could advance independently, and bounds how far.
//!
//! The partition is conservative-by-construction:
//!
//! * all nodes woken by the same clock share a shard (a clock edge
//!   dispatches them in one delta — there is no latency to hide);
//! * all readers of the same non-clock signal share a shard, and join
//!   the signal's writer when it is known (signal propagation is
//!   zero-latency in simulated time);
//! * what remains to couple distinct shards are bus transactions —
//!   master→region [`ReachEdge`](crate::ReachEdge)s, whose FSM gives a
//!   static minimum latency > 0.
//!
//! Each boundary's **lookahead** is the minimum latency over the reach
//! edges crossing it: a parallel engine may advance either side that
//! many ticks past the other before exchanging boundary events without
//! ever reordering the merged schedule. [`Boundary::UNBOUNDED`] marks
//! shard pairs with no static coupling at all (fully independent).

use crate::graph::{NodeId, SystemGraph};

/// Path-halving union-find over node indices.
struct UnionFind(Vec<usize>);

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind((0..n).collect())
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.0[x] != x {
            self.0[x] = self.0[self.0[x]];
            x = self.0[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins, so shard numbering is a
            // pure function of the graph.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.0[hi] = lo;
        }
    }
}

/// One shard: a set of nodes that must advance in lock-step.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Member nodes, ascending.
    pub nodes: Vec<NodeId>,
    /// Clock domains driving the members, ascending. More than one
    /// domain in a single shard means a zero-lookahead coupling forced
    /// the merge (diagnostic `A008`).
    pub domains: Vec<usize>,
}

/// The static coupling between one pair of shards.
#[derive(Debug, Clone, Copy)]
pub struct Boundary {
    /// Index of the lower-numbered shard.
    pub a: usize,
    /// Index of the higher-numbered shard.
    pub b: usize,
    /// Minimum cross-boundary latency in ticks: either side may run
    /// this far ahead of the other between event exchanges.
    /// [`Boundary::UNBOUNDED`] when nothing statically couples the pair.
    pub lookahead: u64,
}

impl Boundary {
    /// Lookahead value meaning "no static coupling": the shards never
    /// have to synchronize.
    pub const UNBOUNDED: u64 = u64::MAX;
}

/// The partition and its boundary lookaheads; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct ShardPlan {
    /// The shards, in ascending order of their smallest member node.
    pub shards: Vec<Shard>,
    /// One entry per unordered shard pair (so `shards.len() choose 2`
    /// entries), including uncoupled pairs at
    /// [`Boundary::UNBOUNDED`].
    pub boundaries: Vec<Boundary>,
}

impl ShardPlan {
    /// Computes the plan for a graph; see the module docs for the
    /// merge rules.
    pub fn partition(g: &SystemGraph) -> ShardPlan {
        let n = g.nodes.len();
        let mut uf = UnionFind::new(n);

        // Rule 1: one shard per clock domain.
        for k in 0..g.clocks.len() {
            let mut first: Option<usize> = None;
            for sub in &g.subs {
                if sub.clock == Some(k) {
                    match first {
                        None => first = Some(sub.reader.index()),
                        Some(f) => uf.union(f, sub.reader.index()),
                    }
                }
            }
        }

        // Rule 2: readers of one non-clock signal merge (and join the
        // writer when known) — signal propagation has no latency to
        // hide behind.
        let mut by_signal: Vec<(&str, usize)> = g
            .subs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.clock.is_none())
            .map(|(i, s)| (s.signal.as_str(), i))
            .collect();
        by_signal.sort_unstable();
        for pair in by_signal.windows(2) {
            if pair[0].0 == pair[1].0 {
                uf.union(
                    g.subs[pair[0].1].reader.index(),
                    g.subs[pair[1].1].reader.index(),
                );
            }
        }
        for sub in &g.subs {
            if sub.clock.is_none() {
                if let Some(w) = sub.writer {
                    uf.union(w.index(), sub.reader.index());
                }
            }
        }

        // Collect shards in deterministic order (ascending root).
        let roots: Vec<usize> = (0..n).map(|i| uf.find(i)).collect();
        let mut order: Vec<usize> = roots.clone();
        order.sort_unstable();
        order.dedup();
        let shard_of = |root: usize| order.binary_search(&root).expect("root is a shard");

        let domains = g.node_domains();
        let mut shards: Vec<Shard> = order
            .iter()
            .map(|_| Shard {
                nodes: Vec::new(),
                domains: Vec::new(),
            })
            .collect();
        for i in 0..n {
            let s = shard_of(roots[i]);
            shards[s].nodes.push(NodeId(i));
            shards[s].domains.extend(domains[i].iter().copied());
        }
        for s in &mut shards {
            s.domains.sort_unstable();
            s.domains.dedup();
        }

        // Boundaries: min reach-edge latency per shard pair.
        let mut boundaries = Vec::new();
        for a in 0..shards.len() {
            for b in a + 1..shards.len() {
                boundaries.push(Boundary {
                    a,
                    b,
                    lookahead: Boundary::UNBOUNDED,
                });
            }
        }
        let pair_index = |a: usize, b: usize, count: usize| {
            // Row-major index into the upper triangle.
            let (lo, hi) = (a.min(b), a.max(b));
            lo * count - lo * (lo + 1) / 2 + (hi - lo - 1)
        };
        for reach in &g.reaches {
            let sa = shard_of(roots[reach.master.index()]);
            let sb = shard_of(roots[g.regions[reach.region].mem.index()]);
            if sa != sb {
                let idx = pair_index(sa, sb, shards.len());
                let bnd = &mut boundaries[idx];
                bnd.lookahead = bnd.lookahead.min(reach.min_latency);
            }
        }
        ShardPlan { shards, boundaries }
    }

    /// The global conservative lookahead: the minimum over all coupled
    /// boundaries, [`Boundary::UNBOUNDED`] when no boundary is coupled
    /// (single shard, or fully independent shards).
    pub fn lookahead(&self) -> u64 {
        self.boundaries
            .iter()
            .map(|b| b.lookahead)
            .min()
            .unwrap_or(Boundary::UNBOUNDED)
    }

    /// Shards containing more than one clock domain — the lock-step
    /// merges diagnostic `A008` reports.
    pub fn lockstep_shards(&self) -> impl Iterator<Item = (usize, &Shard)> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.domains.len() > 1)
    }
}
