//! The `SystemGraph` IR: everything the passes and the shard planner
//! know about a system, decoupled from how the system was constructed.
//!
//! Two producers fill this IR:
//!
//! * `dmi-system`'s builder lowering — full fidelity: regions, master
//!   footprints, fault-plan references, watch targets
//!   ([`has_address_info`](SystemGraph::has_address_info) is `true`);
//! * [`SystemGraph::from_simulator`] — conservative extraction from a
//!   hand-wired [`Simulator`] using only what the kernel knows
//!   statically (components, clocks, signal subscriptions). Address-map
//!   facts are absent, so the address-level passes stay silent instead
//!   of guessing.

use dmi_core::FaultSpec;
use dmi_kernel::{Edge, Simulator};

/// Index of a node in a [`SystemGraph`] (dense, graph-private — *not* a
/// kernel `ComponentId`, so fixtures can be built without a simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index form.
    pub fn index(self) -> usize {
        self.0
    }
}

/// What role a node plays in the topology. Extraction from a bare
/// simulator cannot always tell ([`NodeKind::Other`]); the passes that
/// need a role only run on graphs that record it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An ISS-driven CPU master.
    Cpu,
    /// A non-CPU bus master (DMA engine, traffic generator, …).
    Master,
    /// A shared memory module (bus slave).
    Memory,
    /// The interconnect (shared bus or crossbar).
    Interconnect,
    /// A passive observer (halt monitor, probes).
    Monitor,
    /// Unknown role (graphs extracted from a bare simulator).
    Other,
}

/// One component of the system.
#[derive(Debug, Clone)]
pub struct Node {
    /// Instance name (`cpu0`, `dma1`, `mem2`, `bus`, …).
    pub name: String,
    /// The node's role, when known.
    pub kind: NodeKind,
}

/// One clock domain: a kernel-managed clock and its full period.
#[derive(Debug, Clone)]
pub struct ClockDomain {
    /// The clock signal's name.
    pub name: String,
    /// Full toggle period in kernel ticks (even, >= 2).
    pub period: u64,
}

/// One signal subscription: `reader` is woken when `signal` commits a
/// matching change.
#[derive(Debug, Clone)]
pub struct SubEdge {
    /// The subscribed signal's name.
    pub signal: String,
    /// The subscribed component.
    pub reader: NodeId,
    /// Which edges wake the reader.
    pub edges: Edge,
    /// `Some(k)` when the signal is clock domain `k`'s wire.
    pub clock: Option<usize>,
    /// The statically-known driver of the signal, when the producer of
    /// the graph knows it (e.g. a CPU's `halted` wire). `None` means
    /// *unknown*, which the shard planner treats as a zero-latency
    /// coupling among all readers — conservative, never unsound.
    pub writer: Option<NodeId>,
}

/// One decoded window of the shared address space.
#[derive(Debug, Clone)]
pub struct RegionInfo {
    /// First byte address of the window.
    pub base: u32,
    /// Window size in bytes.
    pub size: u32,
    /// The memory node serving the window.
    pub mem: NodeId,
    /// The memory model's kind name (`"wrapper"`, `"simheap"`,
    /// `"static"`, `"static-protocol"`).
    pub model: &'static str,
}

impl RegionInfo {
    /// Exclusive end address of the window, in u64 so a window touching
    /// the top of the address space does not wrap.
    pub fn end(&self) -> u64 {
        self.base as u64 + self.size as u64
    }
}

/// Master → region reachability with a static latency lower bound: the
/// master *can* address the region, and no transaction it issues
/// completes in fewer than `min_latency` ticks.
#[derive(Debug, Clone)]
pub struct ReachEdge {
    /// The requesting master node.
    pub master: NodeId,
    /// Index into [`SystemGraph::regions`].
    pub region: usize,
    /// Conservative minimum master→slave transaction latency in ticks
    /// (arbitration + handshake through the interconnect FSM).
    pub min_latency: u64,
}

/// A statically-known address range a master will touch.
#[derive(Debug, Clone)]
pub struct Footprint {
    /// The master node.
    pub master: NodeId,
    /// First byte address.
    pub base: u32,
    /// Length in bytes.
    pub len: u32,
}

/// A `StopCondition::watch_word` target, lowered for the `A005` pass.
#[derive(Debug, Clone)]
pub struct WatchRef {
    /// Watched memory ordinal (index into
    /// [`SystemGraph::mem_nodes`]).
    pub mem: usize,
    /// Model-specific location (byte offset for static tables, vptr for
    /// dynamic models).
    pub location: u32,
}

/// The facts the passes and the shard planner consume; see the module
/// docs for the two producers.
#[derive(Debug, Clone, Default)]
pub struct SystemGraph {
    /// Clock domains in creation order.
    pub clocks: Vec<ClockDomain>,
    /// Components in id order.
    pub nodes: Vec<Node>,
    /// Signal subscriptions.
    pub subs: Vec<SubEdge>,
    /// Decoded address windows (empty when unknown).
    pub regions: Vec<RegionInfo>,
    /// Master → region reachability with latency bounds.
    pub reaches: Vec<ReachEdge>,
    /// Statically-known master address footprints.
    pub footprints: Vec<Footprint>,
    /// Watch targets to lint (empty when no stop condition was given).
    pub watches: Vec<WatchRef>,
    /// The system's fault plan, spec by spec (empty when none).
    pub fault_specs: Vec<FaultSpec>,
    /// Memory ordinal → node, in builder registration order (the index
    /// space watchpoints and fault sites use).
    pub mem_nodes: Vec<NodeId>,
    /// Bus-master ordinal → node, in wiring/arbitration order (the
    /// index space fault-site master filters use).
    pub master_nodes: Vec<NodeId>,
    /// Whether address-map facts (regions, reaches, footprints) were
    /// available to the producer. When `false` the address-level passes
    /// (`A001`, `A003`, `A004`, `A005`) do not run — absence of facts
    /// is not evidence of a bad configuration.
    pub has_address_info: bool,
}

impl SystemGraph {
    /// An empty graph (fixture entry point; producers fill the fields
    /// directly).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        self.nodes.push(Node {
            name: name.into(),
            kind,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a clock domain and returns its index.
    pub fn add_clock(&mut self, name: impl Into<String>, period: u64) -> usize {
        self.clocks.push(ClockDomain {
            name: name.into(),
            period,
        });
        self.clocks.len() - 1
    }

    /// The node's name, for diagnostics.
    pub fn name(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].name
    }

    /// Per-node clock-domain sets: `domains[n]` lists the clock indices
    /// whose edges wake node `n`, sorted, deduplicated.
    pub fn node_domains(&self) -> Vec<Vec<usize>> {
        let mut domains = vec![Vec::new(); self.nodes.len()];
        for sub in &self.subs {
            if let Some(k) = sub.clock {
                domains[sub.reader.index()].push(k);
            }
        }
        for d in &mut domains {
            d.sort_unstable();
            d.dedup();
        }
        domains
    }

    /// Extracts the conservative graph from a hand-wired simulator:
    /// components, clock domains (via [`Simulator::clocks`]) and the
    /// signal subscription tables. No address-map facts — the
    /// address-level passes stay silent on such graphs.
    pub fn from_simulator(sim: &Simulator) -> Self {
        let mut g = SystemGraph::new();
        // Clock wires, by signal id, for classifying subscriptions.
        let mut clock_of = Vec::new();
        for (wire, period) in sim.clocks() {
            let k = g.add_clock(sim.signals().name(wire.id()), period);
            clock_of.push((wire.id(), k));
        }
        for (_, name) in sim.components() {
            g.add_node(name, NodeKind::Other);
        }
        for (id, name, _width) in sim.signals().iter_meta() {
            let clock = clock_of.iter().find(|(s, _)| *s == id).map(|&(_, k)| k);
            for &(comp, edges) in sim.signals().subscribers(id) {
                g.subs.push(SubEdge {
                    signal: name.to_string(),
                    reader: NodeId(comp.index()),
                    edges,
                    clock,
                    writer: None,
                });
            }
        }
        g
    }
}
