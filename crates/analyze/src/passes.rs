//! The analysis passes, one diagnostic code each. Every pass is a pure
//! function of the graph (plus the precomputed [`ShardPlan`] for
//! `A008`): no simulator access, no side effects — what makes
//! `analyze()` provably inert.

use crate::diag::{Code, Diagnostic};
use crate::graph::{NodeId, SystemGraph};
use crate::shard::ShardPlan;

/// Runs every pass and appends the findings (unsorted; the caller
/// ranks).
pub fn run_all(g: &SystemGraph, plan: &ShardPlan, out: &mut Vec<Diagnostic>) {
    unreachable_slaves(g, out);
    never_woken(g, out);
    window_shadowing(g, out);
    unmapped_footprints(g, out);
    watch_targets(g, out);
    dead_fault_sites(g, out);
    clock_periods(g, out);
    zero_lookahead(g, plan, out);
}

/// `A001`: a memory no master can reach. Its windows decode, but no
/// reachability edge targets them — every word it holds is dead.
fn unreachable_slaves(g: &SystemGraph, out: &mut Vec<Diagnostic>) {
    if !g.has_address_info {
        return;
    }
    for &mem in &g.mem_nodes {
        let reached = g
            .reaches
            .iter()
            .any(|r| g.regions[r.region].mem == mem);
        if !reached {
            out.push(Diagnostic::new(
                Code::A001,
                g.name(mem),
                "no master can reach this memory through the interconnect",
                "connect it to an interconnect the masters use, or remove it",
            ));
        }
    }
}

/// `A002`: a component subscribed to nothing — it gets its `Start` wake
/// and then never runs again.
fn never_woken(g: &SystemGraph, out: &mut Vec<Diagnostic>) {
    let mut woken = vec![false; g.nodes.len()];
    for sub in &g.subs {
        woken[sub.reader.index()] = true;
    }
    for (i, node) in g.nodes.iter().enumerate() {
        if !woken[i] {
            out.push(Diagnostic::new(
                Code::A002,
                &node.name,
                "subscribed to no signal: it will never wake after start",
                "subscribe it to a clock edge, or drop it from the system",
            ));
        }
    }
}

/// `A003`: overlapping decode windows. The builder rejects these at
/// build time; hand-assembled graphs and future producers may not.
fn window_shadowing(g: &SystemGraph, out: &mut Vec<Diagnostic>) {
    if !g.has_address_info {
        return;
    }
    let mut sorted: Vec<&crate::graph::RegionInfo> = g.regions.iter().collect();
    sorted.sort_by_key(|r| r.base);
    for pair in sorted.windows(2) {
        if (pair[1].base as u64) < pair[0].end() {
            out.push(Diagnostic::new(
                Code::A003,
                format!("{:#x}+{:#x}", pair[1].base, pair[1].size),
                format!(
                    "window shadows {:#x}+{:#x} ({})",
                    pair[0].base,
                    pair[0].size,
                    g.name(pair[0].mem)
                ),
                "give every memory a disjoint decode window",
            ));
        }
    }
}

/// `A004`: a master's statically-known footprint crosses address space
/// no window decodes — those transactions can only produce decode
/// errors at run time.
fn unmapped_footprints(g: &SystemGraph, out: &mut Vec<Diagnostic>) {
    if !g.has_address_info {
        return;
    }
    let mut sorted: Vec<&crate::graph::RegionInfo> = g.regions.iter().collect();
    sorted.sort_by_key(|r| r.base);
    for fp in &g.footprints {
        if fp.len == 0 {
            continue;
        }
        let (start, end) = (fp.base as u64, fp.base as u64 + fp.len as u64);
        // Walk the sorted windows over [start, end): the first byte not
        // covered is the reported gap.
        let mut cursor = start;
        for r in &sorted {
            if r.end() <= cursor {
                continue;
            }
            if r.base as u64 > cursor {
                break; // gap at `cursor`
            }
            cursor = r.end();
            if cursor >= end {
                break;
            }
        }
        if cursor < end {
            out.push(Diagnostic::new(
                Code::A004,
                g.name(fp.master),
                format!(
                    "footprint {:#x}+{:#x} touches unmapped address {:#x}",
                    fp.base, fp.len, cursor
                ),
                "point the master at a mapped window, or map the range",
            ));
        }
    }
}

/// `A005`: watch targets that can never match — a memory ordinal that
/// does not exist, or a static-table offset beyond the table's decode
/// window. Dynamic models (wrapper, SimHeap) use run-time vptrs the
/// static layer cannot bound; only the handle is checked for those.
fn watch_targets(g: &SystemGraph, out: &mut Vec<Diagnostic>) {
    for w in &g.watches {
        if w.mem >= g.mem_nodes.len() {
            out.push(Diagnostic::new(
                Code::A005,
                format!("watch mem{}", w.mem),
                format!("the system has {} memories", g.mem_nodes.len()),
                "watch a memory handle returned by this builder",
            ));
            continue;
        }
        if !g.has_address_info {
            continue;
        }
        let mem = g.mem_nodes[w.mem];
        for r in g.regions.iter().filter(|r| r.mem == mem) {
            let static_model = r.model == "static" || r.model == "static-protocol";
            if static_model && w.location >= r.size {
                out.push(Diagnostic::new(
                    Code::A005,
                    format!("watch {}+{:#x}", g.name(mem), w.location),
                    format!(
                        "offset is outside the {:#x}-byte static table window",
                        r.size
                    ),
                    "watch an offset inside the table",
                ));
            }
        }
    }
}

/// `A006`: fault-plan specs that can never fire on this topology —
/// sites naming memories or masters that do not exist, or protocol
/// sites on a direct static table (which has no protocol to fault).
fn dead_fault_sites(g: &SystemGraph, out: &mut Vec<Diagnostic>) {
    use dmi_core::FaultSite;

    let mem_model = |mem: NodeId| {
        g.regions
            .iter()
            .find(|r| r.mem == mem)
            .map(|r| r.model)
    };
    for (i, spec) in g.fault_specs.iter().enumerate() {
        let subject = format!("fault spec #{i}");
        let mut dead = |msg: String, hint: &str| {
            out.push(Diagnostic::new(Code::A006, subject.clone(), msg, hint));
        };
        let check_master = |m: usize| m >= g.master_nodes.len();
        match spec.site {
            FaultSite::MemOp { mem, master, .. } | FaultSite::MemBeat { mem, master, .. } => {
                if mem >= g.mem_nodes.len() {
                    dead(
                        format!("site names mem{mem}, but the system has {}", g.mem_nodes.len()),
                        "target a memory this builder registered",
                    );
                } else {
                    if g.has_address_info {
                        if let Some("static") = mem_model(g.mem_nodes[mem]) {
                            dead(
                                format!(
                                    "{} is a direct static table: no protocol events to fault",
                                    g.name(g.mem_nodes[mem])
                                ),
                                "use a protocol model (wrapper/simheap/static-protocol) \
                                 or a bus-access site",
                            );
                        }
                    }
                    if let Some(m) = master {
                        if check_master(m as usize) {
                            dead(
                                format!(
                                    "master filter {m} exceeds the {} wired masters",
                                    g.master_nodes.len()
                                ),
                                "filter on a wired master index, or drop the filter",
                            );
                        }
                    }
                }
            }
            FaultSite::BusAccess { master } => {
                if let Some(m) = master {
                    if check_master(m) {
                        dead(
                            format!(
                                "master filter {m} exceeds the {} wired masters",
                                g.master_nodes.len()
                            ),
                            "filter on a wired master index, or drop the filter",
                        );
                    }
                }
            }
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// `A007`: multi-clock period relations worth knowing before a long
/// run: identical periods (domains in lock-step — one clock would do)
/// and co-prime half-periods (edges never coincide, so queued toggles
/// pay the worst case — the clock calendar pays off most there).
fn clock_periods(g: &SystemGraph, out: &mut Vec<Diagnostic>) {
    for i in 0..g.clocks.len() {
        for j in i + 1..g.clocks.len() {
            let (a, b) = (&g.clocks[i], &g.clocks[j]);
            let subject = format!("{} ({}t) / {} ({}t)", a.name, a.period, b.name, b.period);
            if a.period == b.period {
                out.push(Diagnostic::new(
                    Code::A007,
                    subject,
                    "identical periods: the domains run in lock-step",
                    "a single shared clock expresses this more cheaply",
                ));
            } else if gcd(a.period / 2, b.period / 2) == 1 {
                let hyper = a.period / gcd(a.period, b.period) * b.period;
                out.push(Diagnostic::new(
                    Code::A007,
                    subject,
                    format!(
                        "co-prime half-periods: edges never coincide \
                         (hyperperiod {hyper} ticks)"
                    ),
                    "keep the clock calendar enabled for this system",
                ));
            }
        }
    }
}

/// `A008`: a shard holding more than one clock domain — some
/// zero-latency coupling (a shared non-clock signal, or one component
/// listening to both clocks) forces the domains to advance in
/// lock-step, denying the parallel engine any lookahead between them.
fn zero_lookahead(g: &SystemGraph, plan: &ShardPlan, out: &mut Vec<Diagnostic>) {
    for (idx, shard) in plan.lockstep_shards() {
        let domains: Vec<&str> = shard
            .domains
            .iter()
            .map(|&k| g.clocks[k].name.as_str())
            .collect();
        out.push(Diagnostic::new(
            Code::A008,
            format!("shard #{idx}"),
            format!(
                "clock domains {} are coupled with zero lookahead \
                 ({} components forced into lock-step)",
                domains.join(", "),
                shard.nodes.len()
            ),
            "decouple the domains through the bus (latency > 0) instead \
             of shared signals, or accept lock-step sharding",
        ));
    }
}
