//! One directed fixture per diagnostic code, graph-level: each test
//! builds the smallest `SystemGraph` that trips (or must *not* trip)
//! one pass, so a regression names the exact code it broke. Shard-plan
//! semantics (merge rules, boundary lookaheads, determinism) and the
//! conservative `from_simulator` extraction are covered at the end.

use std::any::Any;

use dmi_analyze::{
    analyze, Boundary, Code, Footprint, NodeId, NodeKind, ReachEdge, RegionInfo, Severity,
    ShardPlan, SubEdge, SystemGraph, WatchRef,
};
use dmi_core::{FaultKind, FaultSite, FaultSpec, FaultTrigger, Status};
use dmi_kernel::{Component, Ctx, Edge, Simulator};

/// The smallest healthy full-fidelity graph: one CPU, one wrapper
/// memory, one bus, all on one clock, with the memory reachable.
fn healthy() -> SystemGraph {
    let mut g = SystemGraph::new();
    g.has_address_info = true;
    let clk = g.add_clock("clk", 2);
    let cpu = g.add_node("cpu0", NodeKind::Cpu);
    let mem = g.add_node("mem0", NodeKind::Memory);
    let bus = g.add_node("bus", NodeKind::Interconnect);
    for n in [cpu, mem, bus] {
        g.subs.push(SubEdge {
            signal: "clk".into(),
            reader: n,
            edges: Edge::Rising,
            clock: Some(clk),
            writer: None,
        });
    }
    g.master_nodes.push(cpu);
    g.mem_nodes.push(mem);
    g.regions.push(RegionInfo {
        base: 0x8000_0000,
        size: 0x1_0000,
        mem,
        model: "wrapper",
    });
    g.reaches.push(ReachEdge {
        master: cpu,
        region: 0,
        min_latency: 4,
    });
    g
}

fn codes(g: &SystemGraph) -> Vec<Code> {
    analyze(g).diagnostics.iter().map(|d| d.code).collect()
}

#[test]
fn healthy_graph_is_clean() {
    let report = analyze(&healthy());
    assert!(report.diagnostics.is_empty(), "{report}");
    assert!(!report.has_errors());
    assert_eq!(report.plan.shards.len(), 1);
    assert_eq!(report.lookahead(), Boundary::UNBOUNDED);
}

#[test]
fn a001_unreachable_slave() {
    let mut g = healthy();
    g.reaches.clear();
    let report = analyze(&g);
    assert_eq!(codes(&g), vec![Code::A001]);
    let d = &report.diagnostics[0];
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.subject, "mem0");
    assert!(report.has_errors());
}

#[test]
fn a001_needs_address_info() {
    // A graph without address facts has no reach edges either — that is
    // absence of knowledge, not an unreachable slave.
    let mut g = healthy();
    g.reaches.clear();
    g.has_address_info = false;
    assert!(codes(&g).is_empty());
}

#[test]
fn a002_never_woken_component() {
    let mut g = healthy();
    g.add_node("probe", NodeKind::Monitor);
    let report = analyze(&g);
    assert_eq!(codes(&g), vec![Code::A002]);
    assert_eq!(report.diagnostics[0].subject, "probe");
    assert_eq!(report.diagnostics[0].severity, Severity::Warn);
}

#[test]
fn a003_window_shadowing() {
    let mut g = healthy();
    let mem1 = g.add_node("mem1", NodeKind::Memory);
    g.subs.push(SubEdge {
        signal: "clk".into(),
        reader: mem1,
        edges: Edge::Rising,
        clock: Some(0),
        writer: None,
    });
    g.mem_nodes.push(mem1);
    // Overlaps the tail of mem0's 0x8000_0000+0x1_0000 window.
    g.regions.push(RegionInfo {
        base: 0x8000_8000,
        size: 0x1_0000,
        mem: mem1,
        model: "wrapper",
    });
    g.reaches.push(ReachEdge {
        master: g.master_nodes[0],
        region: 1,
        min_latency: 4,
    });
    assert_eq!(codes(&g), vec![Code::A003]);
}

#[test]
fn a004_unmapped_footprint_reports_first_gap() {
    let mut g = healthy();
    let cpu = g.master_nodes[0];
    // Starts mapped, runs 0x100 bytes past the window's end.
    g.footprints.push(Footprint {
        master: cpu,
        base: 0x8000_ff00,
        len: 0x200,
    });
    let report = analyze(&g);
    assert_eq!(codes(&g), vec![Code::A004]);
    let d = &report.diagnostics[0];
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.message.contains("0x80010000"),
        "first unmapped byte not named: {d}"
    );
}

#[test]
fn a004_silent_for_mapped_and_empty_footprints() {
    let mut g = healthy();
    let cpu = g.master_nodes[0];
    g.footprints.push(Footprint {
        master: cpu,
        base: 0x8000_0000,
        len: 0x1_0000,
    });
    g.footprints.push(Footprint {
        master: cpu,
        base: 0x0,
        len: 0,
    });
    assert!(codes(&g).is_empty());
}

#[test]
fn a005_watch_bad_ordinal_and_static_offset() {
    let mut g = healthy();
    g.regions[0].model = "static";
    g.watches.push(WatchRef { mem: 3, location: 0 }); // no such memory
    g.watches.push(WatchRef {
        mem: 0,
        location: 0x2_0000, // beyond the 0x1_0000 static window
    });
    let report = analyze(&g);
    assert_eq!(codes(&g), vec![Code::A005, Code::A005]);
    assert!(report.has_errors());
    assert_eq!(report.errors().count(), 2);
}

#[test]
fn a005_dynamic_models_check_only_the_handle() {
    // Wrapper/SimHeap locations are run-time vptrs — any offset is
    // plausible, so only the memory ordinal is validated.
    let mut g = healthy();
    g.watches.push(WatchRef {
        mem: 0,
        location: 0xdead_0000,
    });
    assert!(codes(&g).is_empty());
}

#[test]
fn a006_dead_fault_sites() {
    let mut g = healthy();
    g.regions[0].model = "static";
    let busy = || FaultKind::Status(Status::Busy);
    // Memory ordinal out of range.
    g.fault_specs.push(FaultSpec::new(
        FaultSite::MemOp {
            mem: 9,
            op: None,
            master: None,
        },
        FaultTrigger::Nth(1),
        busy(),
    ));
    // Protocol site on a direct static table.
    g.fault_specs.push(FaultSpec::new(
        FaultSite::MemOp {
            mem: 0,
            op: None,
            master: None,
        },
        FaultTrigger::Nth(1),
        busy(),
    ));
    // Master filter beyond the wired masters.
    g.fault_specs.push(FaultSpec::new(
        FaultSite::BusAccess { master: Some(5) },
        FaultTrigger::Nth(1),
        FaultKind::GrantStall { cycles: 1 },
    ));
    let report = analyze(&g);
    assert_eq!(codes(&g), vec![Code::A006, Code::A006, Code::A006]);
    let subjects: Vec<&str> = report
        .diagnostics
        .iter()
        .map(|d| d.subject.as_str())
        .collect();
    assert_eq!(
        subjects,
        vec!["fault spec #0", "fault spec #1", "fault spec #2"]
    );
}

#[test]
fn a006_valid_sites_are_silent() {
    let mut g = healthy();
    g.fault_specs.push(FaultSpec::new(
        FaultSite::MemOp {
            mem: 0,
            op: None,
            master: Some(0),
        },
        FaultTrigger::Every { first: 1, period: 8 },
        FaultKind::Status(Status::Busy),
    ));
    assert!(codes(&g).is_empty());
}

#[test]
fn a007_identical_and_coprime_periods() {
    let mut g = healthy();
    g.add_clock("clk_b", 2); // identical to clk's period 2
    let report = analyze(&g);
    assert_eq!(codes(&g), vec![Code::A007]);
    assert!(report.diagnostics[0].message.contains("lock-step"));

    let mut g = healthy();
    g.clocks[0].period = 6;
    g.add_clock("clk_b", 10); // half-periods 3 and 5: co-prime
    let report = analyze(&g);
    assert_eq!(codes(&g), vec![Code::A007]);
    assert!(
        report.diagnostics[0].message.contains("hyperperiod 30"),
        "{}",
        report.diagnostics[0]
    );
}

#[test]
fn a007_silent_for_plainly_related_periods() {
    let mut g = healthy();
    g.clocks[0].period = 4;
    g.add_clock("clk_b", 8); // half-periods 2 and 4: neither case
    assert!(codes(&g).is_empty());
}

/// Two clock domains, one node each, plus a shared non-clock wire
/// subscribing both — the zero-lookahead coupling shape.
fn two_domain_graph(share_wire: bool) -> SystemGraph {
    let mut g = SystemGraph::new();
    let ca = g.add_clock("clk_a", 6);
    let cb = g.add_clock("clk_b", 10);
    let a = g.add_node("a", NodeKind::Other);
    let b = g.add_node("b", NodeKind::Other);
    for (n, c) in [(a, ca), (b, cb)] {
        g.subs.push(SubEdge {
            signal: g.clocks[c].name.clone(),
            reader: n,
            edges: Edge::Rising,
            clock: Some(c),
            writer: None,
        });
    }
    if share_wire {
        for n in [a, b] {
            g.subs.push(SubEdge {
                signal: "irq".into(),
                reader: n,
                edges: Edge::Any,
                clock: None,
                writer: None,
            });
        }
    }
    g
}

#[test]
fn a008_zero_lookahead_coupling() {
    let report = analyze(&two_domain_graph(true));
    let codes: Vec<Code> = report.diagnostics.iter().map(|d| d.code).collect();
    // The shared wire collapses both domains into one lock-step shard;
    // the co-prime A007 note still applies.
    assert!(codes.contains(&Code::A008), "{codes:?}");
    assert_eq!(report.plan.shards.len(), 1);
    assert_eq!(report.plan.shards[0].domains, vec![0, 1]);
}

#[test]
fn a008_silent_when_domains_are_disjoint() {
    let report = analyze(&two_domain_graph(false));
    let codes: Vec<Code> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(!codes.contains(&Code::A008));
    assert_eq!(report.plan.shards.len(), 2);
}

#[test]
fn shard_boundary_carries_min_reach_latency() {
    // Domain A's master reaches a memory in domain B through the bus:
    // two shards whose boundary lookahead is the cheapest reach edge.
    let mut g = two_domain_graph(false);
    g.has_address_info = true;
    let (a, b) = (NodeId(0), NodeId(1));
    g.master_nodes.push(a);
    g.mem_nodes.push(b);
    g.regions.push(RegionInfo {
        base: 0x8000_0000,
        size: 0x1_0000,
        mem: b,
        model: "wrapper",
    });
    g.reaches.push(ReachEdge {
        master: a,
        region: 0,
        min_latency: 12,
    });
    g.reaches.push(ReachEdge {
        master: a,
        region: 0,
        min_latency: 20,
    });
    let plan = ShardPlan::partition(&g);
    assert_eq!(plan.shards.len(), 2);
    assert_eq!(plan.boundaries.len(), 1);
    assert_eq!(plan.boundaries[0].lookahead, 12);
    assert_eq!(plan.lookahead(), 12);
    assert!(plan.lockstep_shards().next().is_none());
}

#[test]
fn report_ranks_errors_first_then_code_then_subject() {
    let mut g = healthy();
    g.reaches.clear(); // A001 error
    g.add_node("probe", NodeKind::Monitor); // A002 warn
    g.add_clock("clk_b", 2); // A007 info (identical periods)
    let report = analyze(&g);
    let sev: Vec<Severity> = report.diagnostics.iter().map(|d| d.severity).collect();
    assert_eq!(sev, vec![Severity::Error, Severity::Warn, Severity::Info]);
}

#[test]
fn analysis_is_deterministic() {
    let mut g = healthy();
    g.reaches.clear();
    g.add_node("probe", NodeKind::Monitor);
    g.add_clock("clk_b", 10);
    let (a, b) = (analyze(&g), analyze(&g));
    assert_eq!(format!("{a}"), format!("{b}"));
}

/// A minimal component for hand-wired simulator fixtures.
struct Dummy(String);

impl Component for Dummy {
    fn name(&self) -> &str {
        &self.0
    }
    fn wake(&mut self, _ctx: &mut Ctx<'_>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn from_simulator_extracts_clocks_subs_and_stays_conservative() {
    let mut sim = Simulator::new();
    let clk_a = sim.add_clock("clk_a", 6);
    let clk_b = sim.add_clock("clk_b", 10);
    let a = sim.add_component(Box::new(Dummy("a".into())));
    let b = sim.add_component(Box::new(Dummy("b".into())));
    let idle = sim.add_component(Box::new(Dummy("idle".into())));
    let _ = idle;
    sim.subscribe(a, clk_a, Edge::Rising);
    sim.subscribe(b, clk_b, Edge::Rising);

    let g = SystemGraph::from_simulator(&sim);
    assert!(!g.has_address_info);
    assert_eq!(g.clocks.len(), 2);
    assert_eq!(g.clocks[0].period, 6);
    assert_eq!(g.clocks[1].period, 10);
    assert_eq!(g.nodes.len(), 3);

    let report = analyze(&g);
    let codes: Vec<Code> = report.diagnostics.iter().map(|d| d.code).collect();
    // "idle" never wakes; the periods are co-prime; no address-level
    // pass may speak without address facts.
    assert_eq!(codes, vec![Code::A002, Code::A007]);
    assert_eq!(report.diagnostics[0].subject, "idle");
    assert_eq!(report.plan.shards.len(), 3); // a | b | idle
    assert!(!report.has_errors());
}
