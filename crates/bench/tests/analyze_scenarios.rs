//! The analyzer over the shipped scenarios: every builder scenario the
//! `analyze` CLI gates on lints clean, and the hand-wired multi-clock
//! topology partitions into one shard per domain with positive
//! lookahead on every boundary — the input ROADMAP's parallel engine
//! needs.

use dmi_bench::scenarios;
use dmi_system::{analyze, Code, SystemBuilder, SystemGraph};

#[test]
fn builder_scenarios_lint_clean() {
    let all: [(&str, SystemBuilder); 5] = [
        ("quickstart", scenarios::quickstart()),
        ("gsm_headline", scenarios::gsm_headline()),
        ("memory_models", scenarios::memory_models()),
        ("dma_crossbar", scenarios::dma_crossbar()),
        ("faults", scenarios::faulty_headline()),
    ];
    for (name, b) in all {
        let report = b.analyze();
        assert!(report.diagnostics.is_empty(), "{name} must lint clean:\n{report}");
    }
}

#[test]
fn multiclock_partitions_one_shard_per_domain() {
    for n in [2usize, 4, 8] {
        let sim = scenarios::multiclock_sim(n);
        let report = analyze(&SystemGraph::from_simulator(&sim));
        assert!(!report.has_errors());

        // One shard per clock domain (CPU + DMA + memory + private bus
        // each), no lock-step merges, and every pairwise boundary
        // leaves positive lookahead — these domains never synchronize.
        assert_eq!(report.plan.shards.len(), n);
        assert_eq!(report.plan.boundaries.len(), n * (n - 1) / 2);
        assert!(report.plan.boundaries.iter().all(|b| b.lookahead > 0));
        assert!(report.plan.lookahead() > 0);
        assert!(report.plan.lockstep_shards().next().is_none());

        // The PERIODS set is pairwise co-prime in half-periods: one
        // A007 calendar note per clock pair, and nothing else.
        let a007 = report
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::A007)
            .count();
        assert_eq!(a007, n * (n - 1) / 2);
        assert_eq!(report.diagnostics.len(), a007);
    }
}
