//! # dmi-bench — benchmark harness for the DATE'05 reproduction
//!
//! Two entry points:
//!
//! * `cargo bench -p dmi-bench` — Criterion benches, one per experiment
//!   (see `benches/`): `exp_headline` (E1), `exp_model_overhead` (E2/E3),
//!   `exp_scaling` (E5), `exp_burst` (E6), `table_scaling` (E4/E7),
//!   `gsm_encode` (E8), `kernel_micro` (kernel overheads);
//! * `cargo run -p dmi-bench --release --bin experiments` — runs every
//!   experiment end-to-end and prints the markdown tables recorded in
//!   `EXPERIMENTS.md`;
//! * `cargo run -p dmi-bench --bin analyze [--check]` — static-analyzes
//!   the example and experiment scenarios (`dmi-analyze` reports and
//!   shard plans) without running a cycle.

#![forbid(unsafe_code)]

pub mod scenarios;

pub use dmi_system::experiments;
