//! Regenerates every experiment table of `EXPERIMENTS.md`.
//!
//! Usage: `cargo run -p dmi-bench --release --bin experiments [e1 e2 ...]`
//! (no arguments = all experiments).

// Host-side measurement harness: wall-clock timing is its whole job.
#![allow(clippy::disallowed_methods)]

use dmi_core::{DsmBackend, ElemType, Opcode, PointerTable, Request, VptrPolicy, WrapperBackend,
    WrapperConfig};
use dmi_system::experiments as exp;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    println!("# DMI co-simulation experiments\n");

    if want("e1") {
        println!("{}", exp::e1_headline(8).to_markdown());
    }
    if want("e2") {
        println!("{}", exp::e2_model_overhead(2000).to_markdown());
    }
    if want("e3") {
        println!("{}", exp::e3_dynamic_models(300).to_markdown());
    }
    if want("e4") {
        println!("{}", e4_table_scaling().to_markdown());
    }
    if want("e5") {
        println!("{}", exp::e5_scaling(1000).to_markdown());
    }
    if want("e6") {
        println!("{}", exp::e6_burst(32, 64).to_markdown());
    }
    if want("e7") {
        println!("{}", e7_vptr_policy().to_markdown());
    }
    if want("e8") {
        println!("{}", exp::e8_gsm_throughput(8).to_markdown());
    }
    if want("e9") {
        println!("{}", exp::e9_presets(32, 64).to_markdown());
    }
}

/// E4 — pointer-table operation cost vs live-entry count (host-side
/// microbenchmark of the wrapper's functional part).
fn e4_table_scaling() -> exp::Experiment {
    let mut rows = Vec::new();
    for log2_n in [4u32, 8, 12, 14] {
        let n = 1u32 << log2_n;
        let mut t = PointerTable::new(u32::MAX, VptrPolicy::PaperMonotonic);
        let vptrs: Vec<u32> = (0..n)
            .map(|_| t.alloc(4, ElemType::U32).expect("capacity"))
            .collect();
        let t0 = Instant::now();
        let mut acc = 0u64;
        let probes = 1_000_000u32;
        for i in 0..probes {
            let v = vptrs[(i % n) as usize] + (i % 16);
            if let Some((idx, off)) = t.resolve(v) {
                acc += idx as u64 + off as u64;
            }
        }
        std::hint::black_box(acc);
        let wall = t0.elapsed();
        rows.push(exp::ExpRow {
            label: format!("{n} live entries, 1M interior resolves"),
            sim_cycles: 0,
            wall,
            speed: probes as f64 / wall.as_secs_f64(),
            ips: 0.0,
            ok: true,
        });
    }
    exp::Experiment {
        id: "E4",
        title: "Pointer-table resolution scaling (binary search)",
        rows,
        notes: "speed column = host resolutions per second; growth is \
                logarithmic in the live-entry count."
            .into(),
    }
}

/// E7 — Vptr policy ablation: monotonic rule vs first-fit reuse under
/// sustained churn with a live anchor.
fn e7_vptr_policy() -> exp::Experiment {
    let run = |policy: VptrPolicy| -> (u64, bool) {
        let mut w = WrapperBackend::new(WrapperConfig {
            capacity: 2 << 20,
            policy,
            ..WrapperConfig::default()
        });
        let req = |op, a0, a1| Request {
            op,
            arg0: a0,
            arg1: a1,
            arg2: 0,
            master: 0,
        };
        // A live anchor is re-allocated every round, so the monotonic
        // cursor can only move forward (an empty table would reset it).
        let mut anchor = w.execute(&req(Opcode::Alloc, 1, 2));
        assert!(anchor.status.is_ok());
        let mut churns = 0u64;
        // 1 MB blocks churn the 32-bit virtual space in ~4.3k rounds.
        for _ in 0..20_000u32 {
            let big = w.execute(&req(Opcode::Alloc, 250_000, 2));
            if !big.status.is_ok() {
                return (churns, false);
            }
            let next_anchor = w.execute(&req(Opcode::Alloc, 1, 2));
            if !next_anchor.status.is_ok() {
                return (churns, false);
            }
            assert!(w.execute(&req(Opcode::Free, big.result, 0)).status.is_ok());
            assert!(w
                .execute(&req(Opcode::Free, anchor.result, 0))
                .status
                .is_ok());
            anchor = next_anchor;
            churns += 1;
        }
        (churns, true)
    };
    let (mono_churns, mono_survived) = run(VptrPolicy::PaperMonotonic);
    let (ff_churns, ff_survived) = run(VptrPolicy::FirstFitReuse);
    exp::Experiment {
        id: "E7",
        title: "Vptr policy ablation: paper-monotonic vs first-fit reuse",
        rows: vec![
            exp::ExpRow {
                label: format!(
                    "paper-monotonic: {} churns before virtual exhaustion{}",
                    mono_churns,
                    if mono_survived { " (survived)" } else { "" }
                ),
                sim_cycles: mono_churns,
                wall: Default::default(),
                speed: 0.0,
                ips: 0.0,
                ok: true,
            },
            exp::ExpRow {
                label: format!(
                    "first-fit reuse: {} churns{}",
                    ff_churns,
                    if ff_survived { " (no exhaustion)" } else { "" }
                ),
                sim_cycles: ff_churns,
                wall: Default::default(),
                speed: 0.0,
                ips: 0.0,
                ok: ff_survived,
            },
        ],
        notes: "The published Vptr rule never reuses virtual addresses, so \
                1 MB-scale churn with a live anchor exhausts the 32-bit \
                space after ~4.3k rounds; first-fit reuse runs indefinitely \
                (sim cycles column = completed churn iterations)."
            .into(),
    }
}
