//! `dmi-bench analyze` — pretty-prints the static-analysis report and
//! shard plan for the repo's example and experiment scenarios.
//!
//! Usage:
//!
//! ```text
//! cargo run -p dmi-bench --bin analyze [--check] [scenario ...]
//! ```
//!
//! No scenario arguments = all scenarios. `--check` exits non-zero if
//! any selected scenario reports an `Error`-severity diagnostic — the
//! CI self-check gate.

use dmi_bench::scenarios;
use dmi_system::{AnalysisReport, SystemGraph};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let names: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let want = |id: &str| names.is_empty() || names.iter().any(|a| a.eq_ignore_ascii_case(id));

    let mut reports: Vec<(&'static str, AnalysisReport)> = Vec::new();
    if want("quickstart") {
        reports.push(("quickstart", scenarios::quickstart().analyze()));
    }
    if want("gsm_headline") {
        reports.push(("gsm_headline", scenarios::gsm_headline().analyze()));
    }
    if want("memory_models") {
        reports.push(("memory_models", scenarios::memory_models().analyze()));
    }
    if want("dma_crossbar") {
        reports.push(("dma_crossbar", scenarios::dma_crossbar().analyze()));
    }
    if want("faults") {
        reports.push(("faults", scenarios::faulty_headline().analyze()));
    }
    for n in [2usize, 4, 8] {
        let id = format!("multiclock{n}");
        if want(&id) {
            let sim = scenarios::multiclock_sim(n);
            let graph = SystemGraph::from_simulator(&sim);
            reports.push((
                match n {
                    2 => "multiclock2",
                    4 => "multiclock4",
                    _ => "multiclock8",
                },
                dmi_system::analyze(&graph),
            ));
        }
    }

    let mut errors = 0usize;
    for (name, report) in &reports {
        println!("## {name}\n");
        print!("{report}");
        println!();
        errors += report.errors().count();
    }
    if check {
        if errors > 0 {
            eprintln!("analyze --check: {errors} error diagnostic(s)");
            std::process::exit(1);
        }
        println!(
            "analyze --check: {} scenario(s), zero error diagnostics",
            reports.len()
        );
    }
}
