//! `dmi-bench farm` — run the scenario farm over the stock experiment
//! catalog (or one loaded from a file), with journaled crash-safe
//! resume, thread or process worker isolation, and optional
//! fault-isolation probes.
//!
//! Usage:
//!
//! ```text
//! cargo run -p dmi-bench --bin farm -- \
//!     [--workers N] [--journal PATH] [--catalog FILE] \
//!     [--isolation thread|process] [--deadline-ms D] \
//!     [--inject-panic] [--inject-hang] [--inject-abort] \
//!     [--list] [scenario ...]
//! ```
//!
//! No scenario arguments = every leg of the catalog. `--list` prints
//! the catalog and exits. `--inject-panic` / `--inject-hang` append
//! probe legs that deliberately panic / hang; the farm must isolate
//! them (they carry `expect_failure`), and the exit code is non-zero
//! iff any leg's outcome contradicts its expectation. `--inject-abort`
//! (process isolation only) appends a probe whose first attempt aborts
//! its whole worker process mid-leg; the farm must respawn the worker
//! and retry the leg to completion, so this probe does *not* carry
//! `expect_failure`. A resumed run prints `resumed: skipped K completed
//! leg(s)` — the CI kill-and-resume step greps for it.
//!
//! With `--isolation process` the binary re-executes itself as the
//! worker pool: the hidden `farm-worker` invocation (marked by the
//! `DMI_FARM_WORKER` environment variable) speaks the CRC-framed pipe
//! protocol on stdin/stdout and never returns to the CLI.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use dmi_bench::scenarios;
use dmi_farm::{run_farm, Catalog, FarmConfig, Isolation, ScenarioSpec};

fn usage() -> ! {
    eprintln!(
        "usage: farm [--workers N] [--journal PATH] [--catalog FILE] \
         [--isolation thread|process] [--deadline-ms D] \
         [--inject-panic] [--inject-hang] [--inject-abort] [--list] [scenario ...]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    // Worker re-entry MUST precede any stdout writes: when the farm
    // spawns this binary as a worker process, stdout is the framed
    // result pipe. The explicit `farm-worker` subcommand and the
    // environment marker are equivalent entries.
    dmi_farm::worker_entry_from_env(&scenarios::farm_registry());
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "farm-worker") {
        let code = dmi_farm::run_worker(&scenarios::farm_registry());
        return ExitCode::from(code as u8);
    }
    let mut workers = 2usize;
    let mut journal: Option<PathBuf> = None;
    let mut catalog_file: Option<PathBuf> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut process_mode = false;
    let mut inject_panic = false;
    let mut inject_hang = false;
    let mut inject_abort = false;
    let mut list = false;
    let mut names: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| match it.next() {
            Some(v) => v,
            None => {
                eprintln!("{flag} needs a value");
                usage();
            }
        };
        match arg.as_str() {
            "--workers" => match value("--workers").parse() {
                Ok(n) if n > 0 => workers = n,
                _ => usage(),
            },
            "--journal" => journal = Some(PathBuf::from(value("--journal"))),
            "--catalog" => catalog_file = Some(PathBuf::from(value("--catalog"))),
            "--deadline-ms" => match value("--deadline-ms").parse() {
                Ok(d) => deadline_ms = Some(d),
                Err(_) => usage(),
            },
            "--isolation" => match value("--isolation").as_str() {
                "thread" => process_mode = false,
                "process" => process_mode = true,
                other => {
                    eprintln!("--isolation must be 'thread' or 'process', got '{other}'");
                    usage();
                }
            },
            "--inject-panic" => inject_panic = true,
            "--inject-hang" => inject_hang = true,
            "--inject-abort" => inject_abort = true,
            "--list" => list = true,
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                usage();
            }
            name => names.push(name.to_string()),
        }
    }
    if inject_abort && !process_mode {
        // In thread mode the abort would take the whole farm down —
        // the exact gap process isolation exists to close.
        eprintln!("--inject-abort requires --isolation process");
        return ExitCode::from(2);
    }

    let mut catalog = match &catalog_file {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match Catalog::parse(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => scenarios::farm_catalog(),
    };
    if !names.is_empty() {
        catalog
            .scenarios
            .retain(|s| names.iter().any(|n| n.eq_ignore_ascii_case(&s.name)));
        if catalog.is_empty() {
            eprintln!("no catalog leg matches {names:?}");
            return ExitCode::from(2);
        }
    }
    if let Some(d) = deadline_ms {
        for s in &mut catalog.scenarios {
            s.deadline_ms = Some(d);
        }
    }
    // Probe legs: a mid-leg panic that must surface as a typed
    // `Panicked` outcome and an endless hang the watchdog must cut
    // short. Both are expected failures — the probe verifies
    // isolation, not success.
    if inject_panic {
        catalog.push(
            ScenarioSpec::new("probe-panic", "dma_burst", 100_000)
                .checkpoint(2_000)
                .inject_panic_at(8_000)
                .expect_failure(),
        );
    }
    if inject_hang {
        catalog.push(
            ScenarioSpec::new("probe-hang", "endless", u64::MAX / 8)
                .deadline_ms(250)
                .expect_failure(),
        );
    }
    // The abort probe kills its whole worker process on attempt 0; with
    // a retry budget the leg must still *complete* (resumed from the
    // checkpoint file the dead worker exported), so no expect_failure.
    // Two retries, not one: CI additionally SIGKILLs a random worker
    // mid-farm, and if that kill lands on this leg's retry attempt the
    // leg needs one more to finish.
    if inject_abort {
        catalog.push(
            ScenarioSpec::new("probe-abort", "dma_burst", 100_000)
                .checkpoint(2_000)
                .retries(2)
                .inject_abort_at(8_000),
        );
    }

    if list {
        print!("{}", catalog.to_text());
        return ExitCode::SUCCESS;
    }

    let isolation = if process_mode {
        Isolation::Process { pool_size: workers }
    } else {
        Isolation::Thread
    };
    // Spawn workers as `<this binary> farm-worker` so a process listing
    // shows what they are (the env marker alone would also work).
    let worker_command = std::env::current_exe()
        .ok()
        .map(|exe| vec![exe.to_string_lossy().into_owned(), "farm-worker".into()]);
    let cfg = FarmConfig {
        workers,
        journal,
        isolation,
        worker_command,
        ..FarmConfig::default()
    };
    let report = match run_farm(&catalog, Arc::new(scenarios::farm_registry()), &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("farm failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if report.skipped > 0 {
        println!("resumed: skipped {} completed leg(s)", report.skipped);
    }
    print!("{}", report.summary());

    if report.all_expected(&catalog) {
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: at least one leg contradicts its expectation");
        ExitCode::FAILURE
    }
}
