//! Shared scenario constructors for the `analyze` CLI and the
//! analyzer's scenario tests: the builder-level systems the experiment
//! suite runs, plus the hand-wired multi-clock topology of the
//! `exp_multiclock` bench (which `SystemBuilder` cannot express yet —
//! it shares one `clk` across every component).

use dmi_core::{MemoryModule, SlavePorts, WrapperBackend, WrapperConfig};
use dmi_gsm::pipeline::{self, PipelineCfg};
use dmi_interconnect::{
    AddressMap, BusConfig, BusMaster, MasterIf, MasterWiring, SharedBus, SlaveIf,
};
use dmi_iss::{BusMasterPorts, CpuComponent, CpuCore, LocalMemory};
use dmi_kernel::{Edge, Simulator};
use dmi_masters::{BurstSpec, DmaConfig, DmaEngine, DmaKind};
use dmi_sw::{workloads, WorkloadCfg};
use dmi_system::{
    mem_base, CpuSpec, FaultKind, FaultPlan, FaultSite, FaultSpec, FaultTrigger, InterconnectKind,
    MemSpec, SystemBuilder,
};

/// Full clock periods whose half-periods (3, 5, 7, 11, …) are pairwise
/// co-prime — the `exp_multiclock` set.
pub const PERIODS: [u64; 8] = [6, 10, 14, 22, 26, 34, 38, 46];

const MEM_BASE: u32 = 0x8000_0000;

/// The single-CPU quickstart: one alloc-churn core, one wrapper memory.
pub fn quickstart() -> SystemBuilder {
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_cpu(CpuSpec::new(workloads::alloc_churn(&WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 4,
        ..WorkloadCfg::default()
    })));
    b
}

/// The headline GSM pipeline: 4 stage CPUs sharing one wrapper memory
/// (the `exp_headline` / E1 configuration).
pub fn gsm_headline() -> SystemBuilder {
    let cfg = PipelineCfg {
        n_frames: 2,
        mem_bases: vec![mem_base(0)],
        seed: 0x5EED,
    };
    let mut b = SystemBuilder::new();
    for program in pipeline::stage_programs(&cfg) {
        b.add_cpu(CpuSpec::new(program));
    }
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b
}

/// One CPU per memory model (wrapper, SimHeap, static table) — the
/// model-overhead comparison shape.
pub fn memory_models() -> SystemBuilder {
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_memory(MemSpec::simheap(mem_base(1)));
    b.add_memory(MemSpec::static_table(mem_base(2)));
    for j in 0..3u32 {
        b.add_cpu(CpuSpec::new(workloads::scalar_rw(&WorkloadCfg {
            mem_base: mem_base(j as usize),
            iterations: 8,
            ..WorkloadCfg::default()
        })));
    }
    b
}

/// Crossbar with scalar-DMA traffic next to a CPU — the burst/stress
/// shape with statically-known master footprints.
pub fn dma_crossbar() -> SystemBuilder {
    let mut b = SystemBuilder::new().interconnect(InterconnectKind::Crossbar(Default::default()));
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_memory(MemSpec::static_table(mem_base(1)));
    b.add_cpu(CpuSpec::new(workloads::scalar_rw(&WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 8,
        ..WorkloadCfg::default()
    })));
    for j in 0..2 {
        b.add_master(Box::new(DmaEngine::new(DmaConfig {
            kind: DmaKind::Fill { seed: 0x100 * j },
            dst: mem_base(1),
            words: 64,
            passes: 2,
            ..DmaConfig::default()
        })));
    }
    b
}

/// The headline system with a (valid) fault plan installed.
pub fn faulty_headline() -> SystemBuilder {
    let plan = FaultPlan::new(0xF00D)
        .with(FaultSpec::new(
            FaultSite::MemOp {
                mem: 0,
                op: None,
                master: None,
            },
            FaultTrigger::Every {
                first: 100,
                period: 500,
            },
            FaultKind::Status(dmi_core::Status::Busy),
        ))
        .with(FaultSpec::new(
            FaultSite::BusAccess { master: Some(0) },
            FaultTrigger::Nth(1000),
            FaultKind::GrantStall { cycles: 3 },
        ));
    gsm_headline().faults(plan)
}

/// One hand-wired clock domain of the `exp_multiclock` topology: CPU +
/// endless burst DMA + wrapper memory on a private bus, everything
/// subscribed to its own clock only.
fn add_domain(sim: &mut Simulator, domain: usize, period: u64) {
    let clk = sim.add_clock(format!("clk{domain}"), period);

    let program = workloads::scalar_rw(&WorkloadCfg {
        mem_base: MEM_BASE,
        iterations: u32::MAX / 64,
        buf_words: 16 + 8 * (domain as u32 % 3),
        ..WorkloadCfg::default()
    });
    let cports = BusMasterPorts::declare(sim, &format!("d{domain}.cpu.bus"));
    let halted = sim.wire(format!("d{domain}.cpu.halted"), 1);
    let mut core = CpuCore::new(0, LocalMemory::new(0, 0x40000));
    core.load_program(&program);
    let cpu = CpuComponent::new(format!("d{domain}.cpu"), core, clk, cports, halted);
    let cpu_id = sim.add_component(Box::new(cpu));
    sim.subscribe(cpu_id, clk, Edge::Rising);

    let dports = MasterIf::declare(sim, &format!("d{domain}.dma.bus"));
    let done = sim.wire(format!("d{domain}.dma.done"), 1);
    let spec: Box<dyn BusMaster> = Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill {
            seed: 0x1000 * domain as u32,
        },
        dst: MEM_BASE,
        words: 64,
        passes: u32::MAX / 128,
        burst: Some(BurstSpec {
            beats: 16,
            verify: false,
            at: None,
        }),
        ..DmaConfig::default()
    }));
    let dma = spec.into_component(
        format!("d{domain}.dma"),
        MasterWiring {
            clk,
            ports: dports,
            done,
        },
    );
    let dma_id = sim.add_component(dma);
    sim.subscribe(dma_id, clk, Edge::Rising);

    let sports = SlavePorts::declare(sim, &format!("d{domain}.mem.s"));
    let mem_id = sim.add_component(Box::new(MemoryModule::new(
        format!("d{domain}.mem"),
        clk,
        sports,
        MEM_BASE,
        Box::new(WrapperBackend::new(WrapperConfig::default())),
    )));
    sim.subscribe(mem_id, clk, Edge::Rising);

    let mut map = AddressMap::new();
    map.try_add(MEM_BASE, 0x1_0000, 0).expect("valid scenario map");
    let bus = SharedBus::new(
        format!("d{domain}.bus"),
        clk,
        vec![MasterIf::from(cports), dports],
        vec![SlaveIf {
            req: sports.req,
            we: sports.we,
            size: sports.size,
            addr: sports.addr,
            wdata: sports.wdata,
            master: sports.master,
            ack: sports.ack,
            rdata: sports.rdata,
        }],
        map,
        BusConfig::default(),
    );
    let bus_id = sim.add_component(Box::new(bus));
    sim.subscribe(bus_id, clk, Edge::Rising);
}

/// The hand-wired `exp_multiclock` topology: `n_domains` independent
/// clock domains at pairwise co-prime half-periods (at most
/// [`PERIODS.len()`]). The analyzer sees it through
/// [`SystemGraph::from_simulator`](dmi_system::SystemGraph::from_simulator).
pub fn multiclock_sim(n_domains: usize) -> Simulator {
    assert!(n_domains >= 1 && n_domains <= PERIODS.len());
    let mut sim = Simulator::new();
    for (d, &period) in PERIODS.iter().take(n_domains).enumerate() {
        add_domain(&mut sim, d, period);
    }
    sim
}

// ---------------------------------------------------------------------------
// Scenario farm wiring (`dmi-bench farm`, `exp_farm`)

/// DMA burst traffic against the crossbar: the `exp_burst` shape as a
/// farm leg — heavier bursts than [`dma_crossbar`], single pass so the
/// final state is budget-sensitive.
pub fn dma_burst() -> SystemBuilder {
    let mut b = SystemBuilder::new().interconnect(InterconnectKind::Crossbar(Default::default()));
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    for j in 0..2u32 {
        b.add_master(Box::new(DmaEngine::new(DmaConfig {
            kind: DmaKind::Fill { seed: 0xB00 + j },
            dst: mem_base(0),
            words: 256,
            passes: 4,
            burst: Some(BurstSpec {
                beats: 16,
                verify: true,
                at: None,
            }),
            ..DmaConfig::default()
        })));
    }
    b
}

/// A verifying burst DMA against a memory that randomly answers Busy
/// (seeded fault plan, replay-exact): the recovery-under-faults leg.
pub fn lossy_dma() -> SystemBuilder {
    let plan = FaultPlan::new(0xDEAD_BEEF).with(FaultSpec::new(
        FaultSite::MemOp {
            mem: 0,
            op: None,
            master: None,
        },
        FaultTrigger::Random {
            threshold: 0x2000_0000,
        },
        FaultKind::Status(dmi_core::Status::Busy),
    ));
    let mut b = SystemBuilder::new().faults(plan).fault_injection(true);
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 0xC0DE },
        dst: mem_base(0),
        words: 64,
        passes: 8,
        burst: Some(BurstSpec {
            beats: 16,
            verify: true,
            at: None,
        }),
        retry: Some(dmi_masters::RetryPolicy {
            max_retries: 10,
            backoff_cycles: 4,
            escalate: false,
        }),
        ..DmaConfig::default()
    })));
    b
}

/// Three CPUs churning deep allocation traffic on one SimHeap memory:
/// the allocator-pressure leg.
pub fn alloc_deep() -> SystemBuilder {
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::simheap(mem_base(0)));
    for j in 0..3u32 {
        b.add_cpu(CpuSpec::new(workloads::alloc_churn(&WorkloadCfg {
            mem_base: mem_base(0),
            iterations: 24 + 8 * j,
            ..WorkloadCfg::default()
        })));
    }
    b
}

/// A DMA fill that never finishes: farm watchdog fodder (used by the
/// `--inject-hang` probe leg, never in the stock catalog).
pub fn endless() -> SystemBuilder {
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 3 },
        dst: mem_base(0),
        words: 16,
        passes: u32::MAX,
        ..DmaConfig::default()
    })));
    b
}

/// Every builder-level scenario as a farm factory. (The hand-wired
/// `multiclock` topology is excluded: it bypasses `SystemBuilder` and
/// its workloads are endless by design.)
pub fn farm_registry() -> dmi_farm::Registry {
    let mut r = dmi_farm::Registry::new();
    r.register("quickstart", quickstart);
    r.register("gsm_headline", gsm_headline);
    r.register("memory_models", memory_models);
    r.register("dma_crossbar", dma_crossbar);
    r.register("faults", faulty_headline);
    r.register("dma_burst", dma_burst);
    r.register("lossy_dma", lossy_dma);
    r.register("alloc_deep", alloc_deep);
    r.register("endless", endless);
    r
}

/// The stock 8-leg farm catalog over [`farm_registry`]: every
/// experiment scenario with a checkpointed, retry-once envelope. Cycle
/// budgets sit past each scenario's natural halt except `gsm_headline`
/// (pinned to the paper's 436,964-cycle headline run, which ends in
/// `CycleBudget`).
pub fn farm_catalog() -> dmi_farm::Catalog {
    let mut c = dmi_farm::Catalog::new();
    let leg = |name: &str, system: &str, cycles: u64, ck: u64| {
        dmi_farm::ScenarioSpec::new(name, system, cycles)
            .checkpoint(ck)
            .retries(1)
            .deadline_ms(60_000)
    };
    c.push(leg("quickstart", "quickstart", 400_000, 50_000));
    c.push(leg("gsm_headline", "gsm_headline", 436_964, 50_000));
    c.push(leg("memory_models", "memory_models", 200_000, 25_000));
    c.push(leg("dma_crossbar", "dma_crossbar", 100_000, 10_000));
    c.push(leg("faults", "faults", 436_964, 50_000));
    c.push(leg("dma_burst", "dma_burst", 100_000, 10_000));
    c.push(leg("lossy_dma", "lossy_dma", 100_000, 10_000));
    c.push(leg("alloc_deep", "alloc_deep", 600_000, 50_000));
    c
}
