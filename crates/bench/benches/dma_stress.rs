//! DMA traffic-generator stress: pure interconnect + memory-model load
//! with zero ISSs, at increasing master counts, on both topologies.
//!
//! This is the workload the `BusMaster` trait unlocks: arbitration and
//! slave-port behaviour under saturated request lines, with no
//! instruction-stream cost mixed in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmi_masters::{DmaConfig, DmaEngine, DmaKind};
use dmi_system::{mem_base, InterconnectKind, MemSpec, SystemBuilder};

/// Builds and runs `n` fill engines hammering `n_mems` static memories;
/// returns simulated cycles to completion.
fn run(n: usize, n_mems: usize, crossbar: bool) -> u64 {
    let mut b = SystemBuilder::new();
    if crossbar {
        b = b.interconnect(InterconnectKind::Crossbar(Default::default()));
    }
    for j in 0..n_mems {
        b.add_memory(MemSpec::static_table(mem_base(j)));
    }
    for i in 0..n {
        b.add_master(Box::new(DmaEngine::new(DmaConfig {
            kind: DmaKind::Fill { seed: i as u32 },
            // Engines spread over the memories; disjoint 1 KiB blocks.
            dst: mem_base(i % n_mems) + (i as u32 / n_mems as u32) * 0x400,
            words: 128,
            passes: 4,
            ..DmaConfig::default()
        })));
    }
    let mut sys = b.build().expect("stress system");
    let r = sys.run(u64::MAX / 4);
    assert!(r.all_ok(), "{}", r.summary());
    r.sim_cycles
}

fn dma_stress(c: &mut Criterion) {
    let mut g = c.benchmark_group("dma_stress");
    g.sample_size(10);
    for n in [1usize, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::new("bus_1mem", n), &n, |b, &n| {
            b.iter(|| run(n, 1, false));
        });
        g.bench_with_input(BenchmarkId::new("xbar_4mem", n), &n, |b, &n| {
            b.iter(|| run(n, 4.min(n), true));
        });
    }
    g.finish();
}

criterion_group!(benches, dma_stress);
criterion_main!(benches);
