//! DMA traffic-generator stress: pure interconnect + memory-model load
//! with zero ISSs, at increasing master counts, on both topologies.
//!
//! This is the workload the `BusMaster` trait unlocks: arbitration and
//! slave-port behaviour under saturated request lines, with no
//! instruction-stream cost mixed in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmi_masters::{BurstSpec, DmaConfig, DmaEngine, DmaKind};
use dmi_system::{mem_base, InterconnectKind, MemSpec, Preset, SystemBuilder};

/// Builds and runs `n` fill engines hammering `n_mems` static memories;
/// returns simulated cycles to completion.
fn run(n: usize, n_mems: usize, crossbar: bool) -> u64 {
    let mut b = SystemBuilder::new();
    if crossbar {
        b = b.interconnect(InterconnectKind::Crossbar(Default::default()));
    }
    for j in 0..n_mems {
        b.add_memory(MemSpec::static_table(mem_base(j)));
    }
    for i in 0..n {
        b.add_master(Box::new(DmaEngine::new(DmaConfig {
            kind: DmaKind::Fill { seed: i as u32 },
            // Engines spread over the memories; disjoint 1 KiB blocks.
            dst: mem_base(i % n_mems) + (i as u32 / n_mems as u32) * 0x400,
            words: 128,
            passes: 4,
            ..DmaConfig::default()
        })));
    }
    let mut sys = b.build().expect("stress system");
    let r = sys.run(u64::MAX / 4);
    assert!(r.all_ok(), "{}", r.summary());
    r.sim_cycles
}

/// `n` burst-mode fill engines driving one wrapper memory's register
/// block: every payload word crosses the slave-side banked I/O arrays
/// (`WriteBurst`/`ReadBurst` + streamed `DATA` beats) instead of scalar
/// stores, under the chosen interconnect timing preset.
fn run_burst(n: usize, preset: Preset) -> u64 {
    let mut b = SystemBuilder::new().preset(preset);
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    for i in 0..n {
        b.add_master(Box::new(DmaEngine::new(DmaConfig {
            kind: DmaKind::Fill { seed: i as u32 },
            dst: mem_base(0),
            words: 128,
            passes: 2,
            burst: Some(BurstSpec {
                beats: 16,
                verify: true,
                at: None,
            }),
            ..DmaConfig::default()
        })));
    }
    let mut sys = b.build().expect("burst stress system");
    let r = sys.run(u64::MAX / 4);
    assert!(r.all_ok(), "{}", r.summary());
    r.sim_cycles
}

fn dma_stress(c: &mut Criterion) {
    let mut g = c.benchmark_group("dma_stress");
    g.sample_size(10);
    for n in [1usize, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::new("bus_1mem", n), &n, |b, &n| {
            b.iter(|| run(n, 1, false));
        });
        g.bench_with_input(BenchmarkId::new("xbar_4mem", n), &n, |b, &n| {
            b.iter(|| run(n, 4.min(n), true));
        });
    }
    // The burst-capable engines, under both interconnect timing presets
    // (seed-comparable re-arbitration vs AMBA-style grant retention).
    for n in [1usize, 8] {
        g.bench_with_input(BenchmarkId::new("burst_seed", n), &n, |b, &n| {
            b.iter(|| run_burst(n, Preset::SeedTiming));
        });
        g.bench_with_input(BenchmarkId::new("burst_throughput", n), &n, |b, &n| {
            b.iter(|| run_burst(n, Preset::Throughput));
        });
    }
    g.finish();
}

criterion_group!(benches, dma_stress);
criterion_main!(benches);
