//! Farm throughput: how the supervised scenario farm scales with the
//! worker count, what sharing a warm checkpoint across legs is worth
//! versus re-simulating the warmup in every leg, and what the process
//! isolation boundary costs versus thread workers on the same catalog.

use std::sync::Arc;

use criterion::{criterion_group, BenchmarkId, Criterion};
use dmi_bench::scenarios;
use dmi_farm::{run_farm, Catalog, FarmConfig, Isolation, Registry, ScenarioSpec};

/// A farm catalog of `legs` medium-sized deterministic legs drawn
/// round-robin from the compute-bound scenarios (no probes, no
/// journal) — the worker-scaling workload.
fn scaling_catalog(legs: usize) -> Catalog {
    let systems = ["quickstart", "dma_crossbar", "dma_burst", "alloc_deep"];
    let mut c = Catalog::new();
    for i in 0..legs {
        let system = systems[i % systems.len()];
        c.push(ScenarioSpec::new(format!("leg{i}-{system}"), system, 60_000).checkpoint(10_000));
    }
    c
}

fn farm_registry() -> Arc<Registry> {
    Arc::new(scenarios::farm_registry())
}

/// Wall-clock for the same 8-leg catalog at 1/2/4/8 workers.
fn worker_scaling(c: &mut Criterion) {
    const LEGS: usize = 8;
    let reg = farm_registry();
    let catalog = scaling_catalog(LEGS);

    let mut g = c.benchmark_group("exp_farm/worker_scaling");
    g.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| {
                let report = run_farm(
                    &catalog,
                    Arc::clone(&reg),
                    &FarmConfig {
                        workers: w,
                        ..FarmConfig::default()
                    },
                )
                .expect("farm run");
                assert!(report.all_expected(&catalog), "{}", report.summary());
                report.legs.len()
            });
        });
    }
    g.finish();
}

/// Warm-checkpoint A/B: 6 legs of the headline GSM pipeline that share
/// one 200k-cycle warm prefix (simulated once per farm run, restored
/// into the other 5 legs from the farm's warm cache) versus the same 6
/// legs each simulating the prefix cold.
fn warm_vs_cold(c: &mut Criterion) {
    const LEGS: usize = 6;
    const BUDGET: u64 = 250_000;
    const WARM: u64 = 200_000;
    let reg = farm_registry();

    let mut warm = Catalog::new();
    let mut cold = Catalog::new();
    for i in 0..LEGS {
        warm.push(ScenarioSpec::new(format!("warm{i}"), "gsm_headline", BUDGET).warm(WARM));
        cold.push(ScenarioSpec::new(format!("cold{i}"), "gsm_headline", BUDGET));
    }

    let mut g = c.benchmark_group("exp_farm/warm_ab");
    g.sample_size(10);
    for (id, catalog) in [("warm_checkpoint", &warm), ("cold_runs", &cold)] {
        g.bench_with_input(BenchmarkId::new(id, LEGS), catalog, |b, cat| {
            b.iter(|| {
                let report = run_farm(
                    cat,
                    Arc::clone(&reg),
                    &FarmConfig {
                        workers: 2,
                        ..FarmConfig::default()
                    },
                )
                .expect("farm run");
                assert!(report.all_expected(cat), "{}", report.summary());
                report.legs.len()
            });
        });
    }
    g.finish();
}

/// Process-vs-thread A/B: the same 8-leg catalog through thread workers
/// and through the child-process pool (spawn + framed-pipe IPC +
/// tempfile snapshot handoff). The two modes are pinned to identical
/// aggregates before timing — the overhead being measured must be pure
/// transport, not divergent work.
fn process_vs_thread(c: &mut Criterion) {
    const LEGS: usize = 8;
    const WORKERS: usize = 4;
    let reg = farm_registry();
    let catalog = scaling_catalog(LEGS);
    let cfg_for = |process: bool| FarmConfig {
        workers: WORKERS,
        isolation: if process {
            Isolation::Process { pool_size: WORKERS }
        } else {
            Isolation::Thread
        },
        ..FarmConfig::default()
    };

    // Parity pin: identical outcomes leg for leg across the boundary.
    let threaded = run_farm(&catalog, Arc::clone(&reg), &cfg_for(false)).expect("thread run");
    let processed = run_farm(&catalog, Arc::clone(&reg), &cfg_for(true)).expect("process run");
    for (t, p) in threaded.legs.iter().zip(&processed.legs) {
        assert_eq!(
            t.outcome, p.outcome,
            "isolation modes disagree:\nthread:\n{}\nprocess:\n{}",
            threaded.summary(),
            processed.summary()
        );
    }

    let mut g = c.benchmark_group("exp_farm/isolation_ab");
    g.sample_size(10);
    for (id, process) in [("thread", false), ("process", true)] {
        g.bench_with_input(BenchmarkId::new(id, LEGS), &process, |b, &p| {
            b.iter(|| {
                let report =
                    run_farm(&catalog, Arc::clone(&reg), &cfg_for(p)).expect("farm run");
                assert!(report.all_expected(&catalog), "{}", report.summary());
                report.legs.len()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, worker_scaling, warm_vs_cold, process_vs_thread);

fn main() {
    // The bench binary is what Isolation::Process re-executes as its
    // worker pool; worker re-entry must come before criterion touches
    // stdout.
    dmi_farm::worker_entry_from_env(&scenarios::farm_registry());
    benches();
}
