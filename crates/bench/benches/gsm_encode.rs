//! E8 — GSM encoder benches: the native reference and the bare-ISS kernel
//! execution rate (instructions interpreted per second).

use criterion::{criterion_group, criterion_main, Criterion};
use dmi_gsm::reference::{Encoder, LcgSource};
use dmi_iss::{CpuCore, LocalMemory, NoBus, StepEvent};

fn gsm(c: &mut Criterion) {
    c.bench_function("e8_reference_encode_frame", |b| {
        let mut src = LcgSource::new(1);
        let mut enc = Encoder::new();
        b.iter(|| {
            let f = src.next_frame();
            enc.encode_frame(&f)
        });
    });

    c.bench_function("e8_iss_autocorr_kernel", |b| {
        // One autocorrelation kernel on the bare ISS per iteration.
        let mut a = dmi_isa::Asm::new();
        a.li(dmi_isa::Reg::R0, 0x8000);
        a.li(dmi_isa::Reg::R1, 0x9000);
        a.li(dmi_isa::Reg::R2, 0xA000);
        a.bl("gsm_autocorr");
        a.swi(0);
        dmi_gsm::codegen::emit_all_kernels(&mut a);
        let prog = a.assemble(0).unwrap();
        let mut src = LcgSource::new(2);
        let frame = src.next_frame();
        b.iter(|| {
            let mut cpu = CpuCore::new(0, LocalMemory::new(0, 0x20000));
            cpu.load_program(&prog);
            for (i, &s) in frame.iter().enumerate() {
                cpu.local_mut().write32(0x8000 + 4 * i as u32, s as u32).unwrap();
            }
            assert_eq!(cpu.run(&mut NoBus, 10_000_000), StepEvent::Halted);
            cpu.cycles()
        });
    });
}

criterion_group!(benches, gsm);
criterion_main!(benches);
