//! E2/E3 — memory-model overhead benches: static table vs wrapper on the
//! same scalar traffic; wrapper vs simulated heap on allocation churn.

use criterion::{criterion_group, criterion_main, Criterion};
use dmi_core::{SimHeapConfig, StaticMemConfig, WrapperConfig};
use dmi_sw::{workloads, WorkloadCfg};
use dmi_system::{mem_base, CpuSpec, MemModelKind, MemSpec, SystemBuilder};

fn run(programs: Vec<dmi_isa::Program>, mem: MemModelKind) -> u64 {
    let mut b = SystemBuilder::new();
    for program in programs {
        b.add_cpu(CpuSpec::new(program));
    }
    b.add_memory(MemSpec::new(mem, mem_base(0)));
    let mut sys = b.build().expect("bench system");
    let r = sys.run(u64::MAX / 4);
    assert!(r.all_ok(), "{}", r.summary());
    r.sim_cycles
}

fn model_overhead(c: &mut Criterion) {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 400,
        buf_words: 64,
        ..WorkloadCfg::default()
    };
    let mut g = c.benchmark_group("e2_scalar_traffic_4iss");
    g.sample_size(10);
    g.bench_function("static_table", |b| {
        b.iter(|| {
            run(
                vec![workloads::scalar_rw_static(&wl); 4],
                MemModelKind::Static(StaticMemConfig::default()),
            )
        })
    });
    g.bench_function("wrapper", |b| {
        b.iter(|| {
            run(
                vec![workloads::scalar_rw(&wl); 4],
                MemModelKind::Wrapper(WrapperConfig::default()),
            )
        })
    });
    g.finish();

    let churn = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 100,
        buf_words: 32,
        ..WorkloadCfg::default()
    };
    let mut g = c.benchmark_group("e3_alloc_churn_2iss");
    g.sample_size(10);
    g.bench_function("wrapper", |b| {
        b.iter(|| {
            run(
                vec![workloads::alloc_churn(&churn); 2],
                MemModelKind::Wrapper(WrapperConfig::default()),
            )
        })
    });
    g.bench_function("simheap", |b| {
        b.iter(|| {
            run(
                vec![workloads::alloc_churn(&churn); 2],
                MemModelKind::SimHeap(SimHeapConfig::default()),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, model_overhead);
criterion_main!(benches);
