//! State-capture cost: what a full-system checkpoint costs to take,
//! serialize and restore as the system grows, and what warm-forking is
//! worth — M continuations fanned out of one mid-run checkpoint versus
//! M cold runs that each repeat the warmup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmi_gsm::pipeline::{self, PipelineCfg};
use dmi_sw::{workloads, WorkloadCfg};
use dmi_system::{
    mem_base, CpuSpec, McSystem, MemSpec, Snapshot, StopCondition, SystemBuilder,
};

/// `n` CPUs churning allocations against one wrapper memory — the
/// system-size axis for the save/load cost curve.
fn churn_system(n: usize) -> McSystem {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 200,
        ..WorkloadCfg::default()
    };
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    for _ in 0..n {
        b.add_cpu(CpuSpec::new(workloads::alloc_churn(&wl)));
    }
    b.build().expect("churn system")
}

/// The headline GSM pipeline (2 frames, 1 wrapper memory, seed 0x5EED).
fn gsm_system() -> McSystem {
    let cfg = PipelineCfg {
        n_frames: 2,
        mem_bases: vec![mem_base(0)],
        seed: 0x5EED,
    };
    let mut b = SystemBuilder::new();
    for program in pipeline::stage_programs(&cfg) {
        b.add_cpu(CpuSpec::new(program));
    }
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.build().expect("gsm pipeline system")
}

/// Checkpoint/serialize/restore cost as the component roster grows.
fn save_load_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp_checkpoint/save_load");
    g.sample_size(20);
    for n in [1usize, 4, 8] {
        let mut sys = churn_system(n);
        sys.run_until(&StopCondition::cycles(5_000));
        let bytes = sys.checkpoint().to_bytes();
        eprintln!("exp_checkpoint: {n} cpus -> {} snapshot bytes", bytes.len());

        g.bench_with_input(BenchmarkId::new("checkpoint", n), &n, |b, _| {
            b.iter(|| sys.checkpoint().section_count());
        });
        g.bench_with_input(BenchmarkId::new("to_bytes", n), &n, |b, _| {
            let snap = sys.checkpoint();
            b.iter(|| snap.to_bytes().len());
        });
        g.bench_with_input(BenchmarkId::new("from_bytes", n), &n, |b, _| {
            b.iter(|| Snapshot::from_bytes(&bytes).expect("parse").section_count());
        });
        g.bench_with_input(BenchmarkId::new("restore", n), &n, |b, _| {
            let snap = sys.checkpoint();
            let mut twin = churn_system(n);
            b.iter(|| twin.restore(&snap).expect("restore"));
        });
    }
    g.finish();
}

/// Warm-fork A/B on the headline run: 8 continuations from one
/// checkpoint at cycle 200k versus 8 cold runs repeating the warmup.
fn warm_fork(c: &mut Criterion) {
    const SPLIT: u64 = 200_000;
    const M: usize = 8;

    let mut warm = gsm_system();
    let first = warm.run_until(&StopCondition::cycles(SPLIT));
    assert_eq!(first.sim_cycles, SPLIT);
    let snap = warm.checkpoint();

    let mut g = c.benchmark_group("exp_checkpoint/fork_ab");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("warm_fork", M), |b| {
        b.iter(|| {
            let systems = McSystem::fork(&snap, M, |_| gsm_system()).expect("fork");
            let mut total = 0u64;
            for mut sys in systems {
                let r = sys.run(u64::MAX / 4);
                assert!(r.all_ok(), "{}", r.summary());
                total += r.sim_cycles;
            }
            total
        });
    });
    g.bench_function(BenchmarkId::new("cold_runs", M), |b| {
        b.iter(|| {
            let mut total = 0u64;
            for _ in 0..M {
                let mut sys = gsm_system();
                let r = sys.run(u64::MAX / 4);
                assert!(r.all_ok(), "{}", r.summary());
                total += r.sim_cycles;
            }
            total
        });
    });
    g.finish();
}

criterion_group!(benches, save_load_cost, warm_fork);
criterion_main!(benches);
