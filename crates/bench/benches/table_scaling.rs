//! E4/E7 — pointer-table microbenches: resolution scaling with live-entry
//! count, allocation under both Vptr policies, and compaction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmi_core::{ElemType, PointerTable, VptrPolicy};

fn table_ops(c: &mut Criterion) {
    // Resolution scaling, with the translation cache on (the default) and
    // off (pure binary search) — the A/B the TLB is judged by.
    let mut g = c.benchmark_group("e4_table_resolution");
    for cached in [true, false] {
        for log2_n in [4u32, 8, 12, 14] {
            let n = 1u32 << log2_n;
            let mut t = PointerTable::with_translation_cache(
                u32::MAX,
                VptrPolicy::PaperMonotonic,
                cached,
            );
            let vptrs: Vec<u32> = (0..n).map(|_| t.alloc(4, ElemType::U32).unwrap()).collect();
            let label = if cached { "entries" } else { "entries_uncached" };
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let mut i = 0u32;
                b.iter(|| {
                    let v = vptrs[(i % n) as usize] + (i % 16);
                    i = i.wrapping_add(1);
                    t.resolve(v)
                });
            });
        }
    }
    g.finish();

    let mut g = c.benchmark_group("e7_alloc_free_policies");
    for (name, policy) in [
        ("monotonic", VptrPolicy::PaperMonotonic),
        ("first_fit", VptrPolicy::FirstFitReuse),
    ] {
        g.bench_function(name, |b| {
            let mut t = PointerTable::new(1 << 24, policy);
            // Standing population so placement has to search.
            let keep: Vec<u32> = (0..256)
                .map(|_| t.alloc(16, ElemType::U32).unwrap())
                .collect();
            std::hint::black_box(&keep);
            b.iter(|| {
                let v = t.alloc(16, ElemType::U32).unwrap();
                t.free(v, 0).unwrap();
            });
        });
    }
    g.finish();
}

criterion_group!(benches, table_ops);
criterion_main!(benches);
