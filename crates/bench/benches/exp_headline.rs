//! E1 — the paper's headline experiment as a Criterion bench: GSM pipeline
//! on 4 ISSs, 1 memory vs 4 memories. Compare the two groups' times to
//! obtain the simulation-speed degradation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmi_system::experiments::run_gsm_pipeline;

fn headline(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_headline_gsm_4iss");
    g.sample_size(10);
    for n_mems in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("memories", n_mems),
            &n_mems,
            |b, &n_mems| {
                b.iter(|| {
                    let r = run_gsm_pipeline(2, n_mems, 0x5EED);
                    assert!(r.all_ok(), "{}", r.summary());
                    r.sim_cycles
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, headline);
criterion_main!(benches);
