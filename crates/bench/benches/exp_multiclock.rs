//! Heterogeneous multi-clock scenarios: 2–8 clock domains at co-prime
//! half-periods, each driving a CPU + burst-DMA + wrapper-memory
//! subsystem on its own bus. This is where the clock calendar's win over
//! queued toggles is largest: with co-prime periods the per-clock toggle
//! streams never merge, so the queued implementation pays one heap
//! push + pop per clock per half-period, forever — while the calendar
//! serves every toggle from a slot min-scan.
//!
//! Each configuration is measured twice: `calendar` (the default) and
//! `queue` (`set_clock_calendar(false)`, the reference path), on the
//! same simulated tick budget. The two modes are asserted
//! simulation-bit-identical (`KernelStats`) before measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmi_core::{MemoryModule, SlavePorts, WrapperBackend, WrapperConfig};
use dmi_interconnect::{
    AddressMap, BusConfig, BusMaster, MasterIf, MasterWiring, SharedBus, SlaveIf,
};
use dmi_isa::Program;
use dmi_iss::{BusMasterPorts, CpuComponent, CpuCore, LocalMemory};
use dmi_kernel::{Edge, KernelStats, Simulator};
use dmi_masters::{BurstSpec, DmaConfig, DmaEngine, DmaKind};
use dmi_sw::{workloads, WorkloadCfg};

/// Full clock periods whose half-periods (3, 5, 7, 11, …) are pairwise
/// co-prime: the domains' edges never fall into a common cadence.
const PERIODS: [u64; 8] = [6, 10, 14, 22, 26, 34, 38, 46];

const MEM_BASE: u32 = 0x8000_0000;

/// One clock domain: CPU + burst DMA + wrapper memory on a private bus,
/// clocked at `period`. Domains in one simulator share nothing but the
/// kernel — the multi-clock stress is purely on the event loop.
fn add_domain(sim: &mut Simulator, domain: usize, period: u64, program: &Program) {
    let clk = sim.add_clock(format!("clk{domain}"), period);

    let cports = BusMasterPorts::declare(sim, &format!("d{domain}.cpu.bus"));
    let halted = sim.wire(format!("d{domain}.cpu.halted"), 1);
    let mut core = CpuCore::new(0, LocalMemory::new(0, 0x40000));
    core.load_program(program);
    let cpu = CpuComponent::new(format!("d{domain}.cpu"), core, clk, cports, halted);
    let cpu_id = sim.add_component(Box::new(cpu));
    sim.subscribe(cpu_id, clk, Edge::Rising);

    let dports = MasterIf::declare(sim, &format!("d{domain}.dma.bus"));
    let done = sim.wire(format!("d{domain}.dma.done"), 1);
    let spec: Box<dyn BusMaster> = Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill {
            seed: 0x1000 * domain as u32,
        },
        dst: MEM_BASE,
        words: 64,
        passes: u32::MAX / 128, // effectively endless: sustained traffic
        burst: Some(BurstSpec {
            beats: 16,
            verify: false,
            at: None,
        }),
        ..DmaConfig::default()
    }));
    let dma = spec.into_component(format!("d{domain}.dma"), MasterWiring {
        clk,
        ports: dports,
        done,
    });
    let dma_id = sim.add_component(dma);
    sim.subscribe(dma_id, clk, Edge::Rising);

    let sports = SlavePorts::declare(sim, &format!("d{domain}.mem.s"));
    let mem_id = sim.add_component(Box::new(MemoryModule::new(
        format!("d{domain}.mem"),
        clk,
        sports,
        MEM_BASE,
        Box::new(WrapperBackend::new(WrapperConfig::default())),
    )));
    sim.subscribe(mem_id, clk, Edge::Rising);

    let mut map = AddressMap::new();
    map.try_add(MEM_BASE, 0x1_0000, 0).expect("valid bench map");
    let bus = SharedBus::new(
        format!("d{domain}.bus"),
        clk,
        vec![MasterIf::from(cports), dports],
        vec![SlaveIf {
            req: sports.req,
            we: sports.we,
            size: sports.size,
            addr: sports.addr,
            wdata: sports.wdata,
            master: sports.master,
            ack: sports.ack,
            rdata: sports.rdata,
        }],
        map,
        BusConfig::default(),
    );
    let bus_id = sim.add_component(Box::new(bus));
    sim.subscribe(bus_id, clk, Edge::Rising);
}

fn build(n_domains: usize, programs: &[Program], calendar: bool) -> Simulator {
    let mut sim = Simulator::new();
    sim.set_clock_calendar(calendar);
    for d in 0..n_domains {
        add_domain(&mut sim, d, PERIODS[d], &programs[d]);
    }
    sim
}

fn run(n_domains: usize, programs: &[Program], calendar: bool, ticks: u64) -> KernelStats {
    let mut sim = build(n_domains, programs, calendar);
    sim.run_for(ticks);
    if calendar {
        let fast = sim.fast_path_stats();
        assert_eq!(fast.calendar_toggles, fast.clock_toggles);
    }
    sim.stats()
}

fn multiclock(c: &mut Criterion) {
    const TICKS: u64 = 30_000;
    let programs: Vec<Program> = (0..PERIODS.len())
        .map(|d| {
            // Per-domain buffer-size variation keeps programs distinct
            // without changing the traffic shape; iteration counts
            // outlive the tick budget so traffic never drains.
            workloads::scalar_rw(&WorkloadCfg {
                mem_base: MEM_BASE,
                iterations: u32::MAX / 64,
                buf_words: 16 + 8 * (d as u32 % 3),
                ..WorkloadCfg::default()
            })
        })
        .collect();

    let mut g = c.benchmark_group("exp_multiclock");
    g.sample_size(10);
    for n in [2usize, 4, 8] {
        // Bit-identity guard: calendar on vs off must execute the same
        // simulation before we compare their wall clocks.
        assert_eq!(
            run(n, &programs, true, TICKS),
            run(n, &programs, false, TICKS),
            "calendar A/B diverged at {n} clocks"
        );
        for (label, calendar) in [("calendar", true), ("queue", false)] {
            g.bench_with_input(
                BenchmarkId::new(label, format!("{n}clk")),
                &n,
                |b, &n| {
                    b.iter(|| run(n, &programs, calendar, TICKS).events);
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, multiclock);
criterion_main!(benches);
