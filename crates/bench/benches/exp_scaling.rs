//! E5 — ISS-count scaling bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmi_core::WrapperConfig;
use dmi_sw::{workloads, WorkloadCfg};
use dmi_system::{mem_base, McSystem, MemModelKind, SystemConfig};

fn scaling(c: &mut Criterion) {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 300,
        buf_words: 32,
        ..WorkloadCfg::default()
    };
    let mut g = c.benchmark_group("e5_iss_scaling");
    g.sample_size(10);
    for n in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("cpus", n), &n, |b, &n| {
            b.iter(|| {
                let mut sys = McSystem::build(SystemConfig {
                    programs: vec![workloads::scalar_rw(&wl); n],
                    memories: vec![MemModelKind::Wrapper(WrapperConfig::default())],
                    ..SystemConfig::default()
                });
                let r = sys.run(u64::MAX / 4);
                assert!(r.all_ok());
                r.sim_cycles
            });
        });
    }
    g.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
