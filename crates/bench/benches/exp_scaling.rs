//! E5 — ISS-count scaling bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmi_sw::{workloads, WorkloadCfg};
use dmi_system::{mem_base, CpuSpec, MemSpec, SystemBuilder};

fn scaling(c: &mut Criterion) {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 300,
        buf_words: 32,
        ..WorkloadCfg::default()
    };
    let mut g = c.benchmark_group("e5_iss_scaling");
    g.sample_size(10);
    for n in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("cpus", n), &n, |b, &n| {
            b.iter(|| {
                let mut sb = SystemBuilder::new();
                for _ in 0..n {
                    sb.add_cpu(CpuSpec::new(workloads::scalar_rw(&wl)));
                }
                sb.add_memory(MemSpec::wrapper(mem_base(0)));
                let mut sys = sb.build().expect("scaling system");
                let r = sys.run(u64::MAX / 4);
                assert!(r.all_ok());
                r.sim_cycles
            });
        });
    }
    g.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
