//! Simulation-kernel microbenches: raw event throughput and signal commit
//! cost — the substrate overheads all experiments sit on.

use criterion::{criterion_group, criterion_main, Criterion};
use dmi_kernel::{Component, Ctx, Edge, Simulator, Wire};

struct Toggler {
    clk: Wire,
    out: Wire,
    state: bool,
}
impl Component for Toggler {
    fn name(&self) -> &str {
        "toggler"
    }
    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_signal(self.clk) {
            self.state = !self.state;
            ctx.write_bit(self.out, self.state);
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn kernel(c: &mut Criterion) {
    c.bench_function("kernel_1k_cycles_16_components", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            let clk = sim.add_clock("clk", 2);
            for i in 0..16 {
                let out = sim.wire(format!("t{i}"), 1);
                let id = sim.add_component(Box::new(Toggler {
                    clk,
                    out,
                    state: false,
                }));
                sim.subscribe(id, clk, Edge::Rising);
            }
            sim.run_for(2000);
            sim.stats().events
        });
    });
}

criterion_group!(benches, kernel);
criterion_main!(benches);
