//! Simulation-kernel microbenches: raw event throughput and signal commit
//! cost — the substrate overheads all experiments sit on.

use criterion::{criterion_group, criterion_main, Criterion};
use dmi_kernel::{Component, Ctx, Edge, Simulator, Wire};

struct Toggler {
    clk: Wire,
    out: Wire,
    state: bool,
}
impl Component for Toggler {
    fn name(&self) -> &str {
        "toggler"
    }
    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_signal(self.clk) {
            self.state = !self.state;
            ctx.write_bit(self.out, self.state);
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn kernel(c: &mut Criterion) {
    for n in [16usize, 256] {
        c.bench_function(&format!("kernel_1k_cycles_{n}_components"), |b| {
            b.iter(|| {
                let mut sim = Simulator::new();
                let clk = sim.add_clock("clk", 2);
                for i in 0..n {
                    let out = sim.wire(format!("t{i}"), 1);
                    let id = sim.add_component(Box::new(Toggler {
                        clk,
                        out,
                        state: false,
                    }));
                    sim.subscribe(id, clk, Edge::Rising);
                }
                sim.run_for(2000);
                sim.stats().events
            });
        });
    }

    // Timer storm: `n` components with no clock at all, each re-arming a
    // 1-tick timer on every wake — every tick dispatches `n` queued
    // events at the same (time, delta) key, the densest queued-dispatch
    // pattern the kernel serves. Kept as the sentinel behind the PR 5
    // decision to dispatch queued events one per `Ctx` frame: a hoisted
    // shared frame for same-key runs measured at parity here (queue
    // churn dominates, not frame construction) while costing the
    // clocked benches 5-12 % from codegen layout alone.
    struct TimerStorm {
        fired: u64,
    }
    impl Component for TimerStorm {
        fn name(&self) -> &str {
            "storm"
        }
        fn wake(&mut self, ctx: &mut Ctx<'_>) {
            self.fired += 1;
            ctx.schedule_in(1, 0);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    for n in [64usize, 256] {
        c.bench_function(&format!("kernel_1k_ticks_timer_storm_{n}"), |b| {
            b.iter(|| {
                let mut sim = Simulator::new();
                for _ in 0..n {
                    sim.add_component(Box::new(TimerStorm { fired: 0 }));
                }
                sim.run_for(1000);
                sim.stats().events
            });
        });
    }

    // Raw event-queue churn: a standing population of `n` pending timers,
    // each pop rescheduling a few ticks ahead — the classic discrete-event
    // "hold" pattern the time wheel exists for. Benchmarked on both queue
    // implementations to document the crossover.
    use dmi_kernel::{EventKind, EventQueue, Queue, SimTime, WheelQueue};
    fn hold_bench<Q: Queue>(b: &mut criterion::Bencher, q: &mut Q, n: usize) {
        let mut now = 0u64;
        for i in 0..n {
            q.push(
                SimTime::from_ticks(1 + (i as u64 * 7) % 97),
                0,
                EventKind::ClockToggle(i),
            );
        }
        let mut salt = 0u64;
        b.iter(|| {
            let ev = q.pop().expect("standing population");
            now = ev.time.ticks();
            salt = salt.wrapping_mul(6364136223846793005).wrapping_add(13);
            q.push(SimTime::from_ticks(now + 1 + salt % 97), 0, ev.kind);
            now
        });
    }
    for n in [64usize, 1024, 8192] {
        c.bench_function(&format!("event_queue_hold_{n}_pending/heap"), |b| {
            hold_bench(b, &mut EventQueue::new(), n);
        });
        c.bench_function(&format!("event_queue_hold_{n}_pending/wheel"), |b| {
            hold_bench(b, &mut WheelQueue::new(), n);
        });
    }
}

criterion_group!(benches, kernel);
criterion_main!(benches);
