//! Fault-injection overhead: what deterministic fault hooks cost when
//! idle (nothing — asserted against the headline pipeline) and what a
//! lossy slave costs a retrying DMA master (retry + backoff overhead,
//! measured clean vs. lossy on the same scenario).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmi_core::Status;
use dmi_gsm::pipeline::{self, PipelineCfg};
use dmi_masters::{BurstSpec, DmaConfig, DmaEngine, DmaKind, RetryPolicy};
use dmi_system::experiments::run_gsm_pipeline;
use dmi_system::{
    mem_base, CpuSpec, FaultKind, FaultPlan, FaultSite, FaultSpec, FaultTrigger, MemSpec,
    RunReport, SystemBuilder,
};

/// Headline pipeline with the fault hooks wired but the plan empty.
fn run_headline_with_empty_plan() -> RunReport {
    let cfg = PipelineCfg {
        n_frames: 2,
        mem_bases: vec![mem_base(0)],
        seed: 0x5EED,
    };
    let mut b = SystemBuilder::new().faults(FaultPlan::new(0xF00D));
    for program in pipeline::stage_programs(&cfg) {
        b.add_cpu(CpuSpec::new(program));
    }
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    let mut sys = b.build().expect("gsm pipeline system");
    sys.run(u64::MAX / 4)
}

/// The lossy-slave scenario: one retrying burst DMA against one wrapper
/// memory, optionally under a seeded fault plan.
fn run_lossy_dma(plan: Option<FaultPlan>) -> RunReport {
    let mut b = SystemBuilder::new();
    if let Some(p) = plan {
        b = b.faults(p);
    }
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 0xC0DE },
        dst: mem_base(0),
        words: 256,
        passes: 8,
        burst: Some(BurstSpec {
            beats: 16,
            verify: false,
            at: None,
        }),
        retry: Some(RetryPolicy {
            max_retries: 10,
            backoff_cycles: 4,
            escalate: false,
        }),
        ..DmaConfig::default()
    })));
    let mut sys = b.build().expect("lossy dma system");
    sys.run(100_000_000)
}

fn lossy_plan() -> FaultPlan {
    FaultPlan::new(0xDEAD_BEEF)
        .with(FaultSpec::new(
            FaultSite::MemOp {
                mem: 0,
                op: None,
                master: None,
            },
            // ~1/8 of commands answer Busy.
            FaultTrigger::Random {
                threshold: 0x2000_0000,
            },
            FaultKind::Status(Status::Busy),
        ))
        .with(FaultSpec::new(
            FaultSite::MemBeat {
                mem: 0,
                master: None,
                writing: Some(true),
            },
            // ~1/64 of write beats kill the burst.
            FaultTrigger::Random {
                threshold: 0x0400_0000,
            },
            FaultKind::AbortBurst,
        ))
}

fn faults(c: &mut Criterion) {
    // Guard: the compiled-in fault hooks with an empty plan must not
    // move a single headline cycle. Checked once, outside measurement.
    let reference = run_gsm_pipeline(2, 1, 0x5EED);
    let twin = run_headline_with_empty_plan();
    assert!(reference.all_ok() && twin.all_ok());
    assert_eq!(
        reference.sim_cycles, twin.sim_cycles,
        "empty fault plan changed the headline cycle count"
    );
    assert!(!twin.faults.any());

    let mut g = c.benchmark_group("exp_faults");
    g.sample_size(10);
    for lossy in [false, true] {
        let label = if lossy { "lossy" } else { "clean" };
        g.bench_with_input(BenchmarkId::new("slave", label), &lossy, |b, &lossy| {
            b.iter(|| {
                let r = run_lossy_dma(lossy.then(lossy_plan));
                assert!(r.all_ok(), "{}", r.summary());
                if lossy {
                    assert!(r.faults.injected > 0 && r.faults.recovered > 0);
                } else {
                    assert!(!r.faults.any());
                }
                r.sim_cycles
            });
        });
    }
    g.finish();
}

criterion_group!(benches, faults);
criterion_main!(benches);
