//! ISS dispatch microbench: instruction throughput of the bare interpreter
//! hot loop, predecoded micro-op engine (decoded-instruction cache) versus
//! the reference word-at-a-time path. This isolates exactly the work the
//! predecode layer removes — `decode` plus the nested-match walk — with no
//! kernel, bus or memory model in the way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmi_isa::{Asm, Cond, Program, Reg};
use dmi_iss::{CpuCore, LocalMemory, NoBus, StepEvent};

/// A compute kernel with a realistic instruction mix: ALU with immediate
/// and shifted-register operands, multiply-accumulate, loads/stores over a
/// buffer, conditional execution and tight branches.
fn mix_program(iterations: u32) -> Program {
    let mut a = Asm::new();
    a.li(Reg::R0, iterations); // outer counter
    a.li(Reg::R9, 0x800); // buffer base in local memory
    a.li(Reg::R1, 0x1234_5678); // working value
    a.li(Reg::R2, 0);
    a.label("outer");
    // ALU / shifter mix.
    a.add(Reg::R2, Reg::R2, Reg::R1.into());
    a.eor(
        Reg::R1,
        Reg::R1,
        dmi_isa::Operand2::Reg {
            rm: Reg::R2,
            shift: dmi_isa::ShiftKind::Lsr,
            amount: 7,
        },
    );
    a.mla(Reg::R2, Reg::R1, Reg::R2, Reg::R0);
    // Store/load through a small ring of the buffer.
    a.and(Reg::R3, Reg::R0, 0x3Cu32.into());
    a.add(Reg::R3, Reg::R3, Reg::R9.into());
    a.str(Reg::R1, Reg::R3, 0);
    a.ldr(Reg::R4, Reg::R3, 0);
    a.add(Reg::R2, Reg::R2, Reg::R4.into());
    // Conditional path taken roughly every other iteration.
    a.tst(Reg::R0, 1u32.into());
    a.emit(dmi_isa::Instr::Dp {
        cond: Cond::Ne,
        op: dmi_isa::DpOp::Add,
        s: false,
        rd: Reg::R2,
        rn: Reg::R2,
        op2: 3u32.into(),
    });
    a.sub(Reg::R0, Reg::R0, 1u32.into());
    a.cmp(Reg::R0, 0u32.into());
    a.b_cond(Cond::Ne, "outer");
    a.swi(0);
    a.assemble(0).unwrap()
}

fn dispatch(c: &mut Criterion) {
    let prog = mix_program(2_000);
    let mut g = c.benchmark_group("iss_dispatch_2k_iter_mix");
    for (label, predecode) in [("predecoded", true), ("reference", false)] {
        g.bench_with_input(BenchmarkId::new(label, 0), &predecode, |b, &predecode| {
            b.iter(|| {
                let mut cpu = CpuCore::new(0, LocalMemory::new(0, 0x4000));
                cpu.set_predecode(predecode);
                cpu.load_program(&prog);
                let ev = cpu.run(&mut NoBus, u64::MAX);
                assert_eq!(ev, StepEvent::Halted);
                cpu.stats().instructions
            });
        });
    }
    g.finish();
}

criterion_group!(benches, dispatch);
criterion_main!(benches);
