//! E6 — I/O-array burst vs scalar transfer bench across burst lengths,
//! under both interconnect timing presets (seed timing vs throughput's
//! burst grant retention — the numbers behind the `burst_grant` default
//! decision in `ROADMAP.md`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmi_sw::{workloads, WorkloadCfg};
use dmi_system::{mem_base, CpuSpec, MemSpec, Preset, SystemBuilder};

fn run(prog: dmi_isa::Program, preset: Preset) -> u64 {
    let mut b = SystemBuilder::new().preset(preset);
    b.add_cpu(CpuSpec::new(prog));
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    let mut sys = b.build().expect("burst system");
    let r = sys.run(u64::MAX / 4);
    assert!(r.all_ok());
    r.sim_cycles
}

fn burst(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_burst_vs_scalar");
    g.sample_size(10);
    for len in [4u32, 16, 64, 128] {
        let wl = WorkloadCfg {
            mem_base: mem_base(0),
            iterations: 8,
            burst_len: len,
            ..WorkloadCfg::default()
        };
        g.bench_with_input(BenchmarkId::new("burst", len), &wl, |b, wl| {
            b.iter(|| run(workloads::burst_copy(wl), Preset::SeedTiming));
        });
        g.bench_with_input(BenchmarkId::new("burst_throughput", len), &wl, |b, wl| {
            b.iter(|| run(workloads::burst_copy(wl), Preset::Throughput));
        });
        g.bench_with_input(BenchmarkId::new("scalar", len), &wl, |b, wl| {
            b.iter(|| run(workloads::scalar_copy(wl), Preset::SeedTiming));
        });
    }
    g.finish();
}

criterion_group!(benches, burst);
criterion_main!(benches);
