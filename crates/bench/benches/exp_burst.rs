//! E6 — I/O-array burst vs scalar transfer bench across burst lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmi_core::WrapperConfig;
use dmi_sw::{workloads, WorkloadCfg};
use dmi_system::{mem_base, McSystem, MemModelKind, SystemConfig};

fn run(prog: dmi_isa::Program) -> u64 {
    let mut sys = McSystem::build(SystemConfig {
        programs: vec![prog],
        memories: vec![MemModelKind::Wrapper(WrapperConfig::default())],
        ..SystemConfig::default()
    });
    let r = sys.run(u64::MAX / 4);
    assert!(r.all_ok());
    r.sim_cycles
}

fn burst(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_burst_vs_scalar");
    g.sample_size(10);
    for len in [4u32, 16, 64, 128] {
        let wl = WorkloadCfg {
            mem_base: mem_base(0),
            iterations: 8,
            burst_len: len,
            ..WorkloadCfg::default()
        };
        g.bench_with_input(BenchmarkId::new("burst", len), &wl, |b, wl| {
            b.iter(|| run(workloads::burst_copy(wl)));
        });
        g.bench_with_input(BenchmarkId::new("scalar", len), &wl, |b, wl| {
            b.iter(|| run(workloads::scalar_copy(wl)));
        });
    }
    g.finish();
}

criterion_group!(benches, burst);
criterion_main!(benches);
