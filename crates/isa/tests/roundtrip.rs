//! Property tests: every valid instruction round-trips through the binary
//! encoding, and through assembly text where the form is canonical.

use dmi_isa::{
    decode, encode, AddrMode, Cond, DpOp, Instr, MemSize, MulOp, MultiMode, Offset, Operand2,
    Reg, ShiftKind,
};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn any_cond() -> impl Strategy<Value = Cond> {
    (0u32..16).prop_map(Cond::from_bits)
}

fn any_op2() -> impl Strategy<Value = Operand2> {
    prop_oneof![
        (any::<u8>(), 0u8..16).prop_map(|(imm8, rot)| Operand2::Imm { imm8, rot }),
        (any_reg(), 0u8..4, 0u8..32).prop_map(|(rm, sk, amount)| Operand2::Reg {
            rm,
            shift: ShiftKind::from_bits(sk as u32),
            amount,
        }),
    ]
}

fn any_dp() -> impl Strategy<Value = Instr> {
    (
        any_cond(),
        0u32..16,
        any::<bool>(),
        any_reg(),
        any_reg(),
        any_op2(),
    )
        .prop_map(|(cond, op, s, rd, rn, op2)| Instr::Dp {
            cond,
            op: DpOp::from_bits(op),
            s,
            rd,
            rn,
            op2,
        })
}

fn any_mul() -> impl Strategy<Value = Instr> {
    (
        any_cond(),
        0u32..6,
        any::<bool>(),
        any_reg(),
        any_reg(),
        any_reg(),
        any_reg(),
    )
        .prop_filter_map("long mul needs distinct rd/rn", |(c, op, s, rd, rn, rs, rm)| {
            let op = MulOp::from_bits(op).unwrap();
            if op.is_long() && rd == rn {
                return None;
            }
            Some(Instr::Mul {
                cond: c,
                op,
                s,
                rd,
                rn,
                rs,
                rm,
            })
        })
}

fn any_ldst() -> impl Strategy<Value = Instr> {
    (
        any_cond(),
        any::<bool>(),
        0u32..5,
        any_reg(),
        any_reg(),
        prop_oneof![
            (0u16..512).prop_map(Offset::Imm),
            any_reg().prop_map(Offset::Reg)
        ],
        any::<bool>(),
        prop_oneof![
            Just(AddrMode::Offset),
            Just(AddrMode::PreIndex),
            Just(AddrMode::PostIndex)
        ],
    )
        .prop_filter_map("stores cannot be signed", |(c, load, sz, rd, rn, off, up, mode)| {
            let size = MemSize::from_bits(sz).unwrap();
            if !load && size.is_signed() {
                return None;
            }
            Some(Instr::LdSt {
                cond: c,
                load,
                size,
                rd,
                rn,
                offset: off,
                up,
                mode,
            })
        })
}

fn any_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        any_dp(),
        any_mul(),
        any_ldst(),
        (any_cond(), any::<bool>(), any::<bool>(), any_reg(), 1u16..)
            .prop_map(|(cond, load, wb, rn, list)| Instr::LdStM {
                cond,
                load,
                mode: if wb { MultiMode::Db } else { MultiMode::Ia },
                writeback: wb,
                rn,
                list,
            }),
        (any_cond(), any::<bool>(), -(1i32 << 23)..(1 << 23))
            .prop_map(|(cond, link, offset)| Instr::Branch { cond, link, offset }),
        (any_cond(), any::<bool>(), any_reg())
            .prop_map(|(cond, link, rm)| Instr::Bx { cond, link, rm }),
        (any_cond(), any::<u16>()).prop_map(|(cond, imm)| Instr::Swi { cond, imm }),
        any_cond().prop_map(|cond| Instr::Nop { cond }),
        (any_cond(), any_reg(), any_reg()).prop_map(|(cond, rd, rm)| Instr::Clz {
            cond,
            rd,
            rm
        }),
        (any_cond(), any::<bool>(), any_reg(), any::<u16>()).prop_map(
            |(cond, top, rd, imm)| Instr::MovW { cond, top, rd, imm }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// The fundamental binary contract.
    #[test]
    fn encode_decode_roundtrip(instr in any_instr()) {
        let word = encode(&instr);
        let back = decode(word);
        prop_assert_eq!(back, Ok(instr));
    }

    /// Decoding never panics on arbitrary words, and re-encoding a decoded
    /// word reproduces it exactly (the encoding has no don't-care bits for
    /// valid instructions).
    #[test]
    fn decode_total_and_faithful(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            prop_assert_eq!(encode(&instr), word);
        }
    }

    /// `Operand2::try_imm` finds an encoding exactly when one exists, and
    /// the found encoding evaluates back to the input.
    #[test]
    fn operand2_imm_search(value in any::<u32>()) {
        match Operand2::try_imm(value) {
            Some(op2) => prop_assert_eq!(op2.imm_value(), Some(value)),
            None => {
                // Exhaustive check that no rotation works.
                for rot in 0..16u32 {
                    prop_assert!(value.rotate_left(rot * 2) > 0xFF);
                }
            }
        }
    }

    /// Disassembled text of a canonical DP instruction reassembles to the
    /// same word. "Canonical" means the form Display can express: implied
    /// fields (compare rd, unary rn, compare S bit) at their defaults and
    /// immediates in their `try_imm` encoding.
    #[test]
    fn disasm_reassembles(
        cond in any_cond(),
        op_bits in 0u32..16,
        s in any::<bool>(),
        rd in any_reg(),
        rn in any_reg(),
        imm_value in any::<u8>(),
        rot in 0u8..16,
        rm in any_reg(),
        shift_bits in 0u32..4,
        amount in 0u8..32,
        use_imm in any::<bool>(),
    ) {
        let op = DpOp::from_bits(op_bits);
        // Canonical immediate: a byte value rotated; re-derive via try_imm
        // so the rotation is the one the parser will find.
        let op2 = if use_imm {
            Operand2::try_imm((imm_value as u32).rotate_right(rot as u32 * 2)).unwrap()
        } else {
            Operand2::Reg {
                rm,
                shift: ShiftKind::from_bits(shift_bits),
                amount,
            }
        };
        let instr = Instr::Dp {
            cond,
            op,
            s: s || op.is_compare(),
            rd: if op.is_compare() { Reg::R0 } else { rd },
            rn: if op.is_unary() { Reg::R0 } else { rn },
            op2,
        };
        let text = instr.to_string();
        let prog = dmi_isa::assemble_text(&text, 0)
            .unwrap_or_else(|e| panic!("`{text}` failed to reassemble: {e}"));
        prop_assert_eq!(prog.words()[0], encode(&instr), "text was `{}`", text);
    }
}

#[test]
fn exhaustive_single_byte_class_coverage() {
    // Every class tag decodes to *something* (ok or a well-formed error).
    for cls in 0u32..8 {
        let word = (0xEu32 << 28) | (cls << 25);
        let _ = decode(word); // must not panic
    }
}
