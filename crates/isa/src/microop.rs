//! Predecoded micro-operations: the flat execution form of SimARM.
//!
//! [`decode`](crate::decode) produces the faithful instruction AST
//! ([`Instr`]) — the right shape for assemblers, disassemblers and
//! round-trip property tests, but a poor shape for an interpreter hot
//! loop: executing it means re-walking nested enums (operand kinds,
//! addressing modes, size/sign splits) on every simulated instruction.
//!
//! A [`MicroOp`] is the same instruction *flattened for dispatch*:
//!
//! * rotated immediates are materialised (value **and** shifter carry-out
//!   precomputed, so the barrel shifter vanishes from the immediate path);
//! * load/store offsets are pre-signed (`up`/`down` folded into a wrapping
//!   addend) and the indexing mode is reduced to two booleans;
//! * branch targets are pre-folded into a single wrapping delta from the
//!   instruction address;
//! * statically illegal `pc` destinations (multiplies, CLZ, wide moves)
//!   collapse into a dedicated [`UopKind::PcFault`] arm, so the executor
//!   never re-checks them;
//! * every remaining variant carries exactly the fields its executor arm
//!   needs, at one `match` level.
//!
//! Predecoding is pure: `predecode(i)` never fails for a valid [`Instr`],
//! and [`predecode_word`] fails exactly when [`decode`](crate::decode)
//! does. Executing a micro-op must be observably identical (architectural
//! state, cycle charges, fault behaviour) to interpreting the `Instr` it
//! came from — the `dmi-iss` crate property-tests that equivalence against
//! its reference interpreter.

use crate::decode::{decode, DecodeError};
use crate::instr::{AddrMode, DpOp, Instr, MemSize, MulOp, MultiMode, Offset, Operand2, ShiftKind};
use crate::reg::{Cond, Reg};

/// A predecoded load/store offset: direction is already folded in, so the
/// effective address is always `rn + offset` (wrapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopOffset {
    /// Immediate byte offset, pre-negated when the instruction subtracts.
    Imm(u32),
    /// Register offset, added.
    RegAdd(Reg),
    /// Register offset, subtracted.
    RegSub(Reg),
}

/// The operation of a [`MicroOp`] — one flat dispatch level.
///
/// Variant order follows hot-path frequency in the workloads this
/// repository simulates (ALU and branches first, block transfers and
/// system operations last).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopKind {
    /// ALU operation with an immediate operand: the rotation is already
    /// applied and the shifter carry-out precomputed.
    AluImm {
        /// Opcode.
        op: DpOp,
        /// Update flags (compares always do).
        s: bool,
        /// Destination (ignored by compares).
        rd: Reg,
        /// First operand (ignored by MOV/MVN).
        rn: Reg,
        /// Materialised operand-2 value.
        imm: u32,
        /// Shifter carry-out (`None` when the rotation is zero).
        carry: Option<bool>,
    },
    /// ALU operation with a (possibly shifted) register operand.
    AluReg {
        /// Opcode.
        op: DpOp,
        /// Update flags.
        s: bool,
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Second-operand register.
        rm: Reg,
        /// Shift applied to `rm`.
        shift: ShiftKind,
        /// Shift amount (0 = plain register).
        amount: u8,
    },
    /// PC-relative branch; target = instruction address + `delta`.
    Branch {
        /// Save the return address in `lr`.
        link: bool,
        /// Pre-folded wrapping delta (`8 + 4 * signed offset`).
        delta: u32,
    },
    /// Single load.
    Load {
        /// Transfer size / sign extension.
        size: MemSize,
        /// Destination register.
        rd: Reg,
        /// Base register.
        rn: Reg,
        /// Pre-signed offset.
        offset: UopOffset,
        /// Write the indexed address back to `rn`.
        writeback: bool,
        /// Post-indexed: access at `rn`, not at `rn + offset`.
        post: bool,
    },
    /// Single store.
    Store {
        /// Transfer size.
        size: MemSize,
        /// Source register.
        rd: Reg,
        /// Base register.
        rn: Reg,
        /// Pre-signed offset.
        offset: UopOffset,
        /// Write the indexed address back to `rn`.
        writeback: bool,
        /// Post-indexed addressing.
        post: bool,
    },
    /// 32-bit multiply (MUL / MLA).
    Mul32 {
        /// Accumulate `rn` (MLA).
        acc: bool,
        /// Update N and Z.
        s: bool,
        /// Destination.
        rd: Reg,
        /// Accumulator operand (MLA only).
        rn: Reg,
        /// Second factor.
        rs: Reg,
        /// First factor.
        rm: Reg,
    },
    /// Long multiply (UMULL / SMULL / UMLAL / SMLAL).
    Mul64 {
        /// Signed variant.
        signed: bool,
        /// Accumulate the existing `rd:rn` pair.
        acc: bool,
        /// Update N and Z from the 64-bit result.
        s: bool,
        /// High-word destination.
        rd: Reg,
        /// Low-word destination.
        rn: Reg,
        /// Second factor.
        rs: Reg,
        /// First factor.
        rm: Reg,
    },
    /// Branch to register (BX / BLX).
    BranchReg {
        /// Save the return address in `lr`.
        link: bool,
        /// Target register.
        rm: Reg,
    },
    /// Block load (LDM).
    LoadMulti {
        /// Base register.
        rn: Reg,
        /// Register list bitmask.
        list: u16,
        /// Write the final address back.
        writeback: bool,
        /// Decrement-before progression (IA otherwise).
        db: bool,
    },
    /// Block store (STM).
    StoreMulti {
        /// Base register.
        rn: Reg,
        /// Register list bitmask.
        list: u16,
        /// Write the final address back.
        writeback: bool,
        /// Decrement-before progression.
        db: bool,
    },
    /// Wide move: 16-bit immediate into the low or high half of `rd`.
    MovImm16 {
        /// MOVT (true) or MOVW (false).
        top: bool,
        /// Destination.
        rd: Reg,
        /// Immediate.
        imm: u16,
    },
    /// Count leading zeros.
    Clz {
        /// Destination.
        rd: Reg,
        /// Source.
        rm: Reg,
    },
    /// Software interrupt.
    Swi {
        /// Call number.
        imm: u16,
    },
    /// No operation.
    Nop,
    /// Statically invalid `pc` destination: raises the invalid-pc fault
    /// when (and only when) the instruction's condition passes.
    PcFault,
}

/// A predecoded SimARM instruction: condition plus flat operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Condition code (checked once, before dispatch).
    pub cond: Cond,
    /// The flattened operation.
    pub kind: UopKind,
}

/// Whether the multiply form uses `pc` illegally (mirrors the reference
/// interpreter's run-time check, hoisted to predecode time).
fn mul_pc_fault(op: MulOp, rd: Reg, rn: Reg) -> bool {
    rd.is_pc() || (op.is_long() && rn.is_pc()) || (op == MulOp::Mla && rn.is_pc())
}

/// Flattens a decoded instruction into its micro-op.
pub fn predecode(instr: Instr) -> MicroOp {
    let cond = instr.cond();
    let kind = match instr {
        Instr::Dp {
            op, s, rd, rn, op2, ..
        } => match op2 {
            Operand2::Imm { imm8, rot } => {
                let imm = (imm8 as u32).rotate_right(rot as u32 * 2);
                let carry = (rot != 0).then_some(imm & 0x8000_0000 != 0);
                UopKind::AluImm {
                    op,
                    s,
                    rd,
                    rn,
                    imm,
                    carry,
                }
            }
            Operand2::Reg { rm, shift, amount } => UopKind::AluReg {
                op,
                s,
                rd,
                rn,
                rm,
                shift,
                amount,
            },
        },
        Instr::Mul {
            op, s, rd, rn, rs, rm, ..
        } => {
            if mul_pc_fault(op, rd, rn) {
                UopKind::PcFault
            } else if op.is_long() {
                UopKind::Mul64 {
                    signed: matches!(op, MulOp::Smull | MulOp::Smlal),
                    acc: matches!(op, MulOp::Umlal | MulOp::Smlal),
                    s,
                    rd,
                    rn,
                    rs,
                    rm,
                }
            } else {
                UopKind::Mul32 {
                    acc: op == MulOp::Mla,
                    s,
                    rd,
                    rn,
                    rs,
                    rm,
                }
            }
        }
        Instr::LdSt {
            load,
            size,
            rd,
            rn,
            offset,
            up,
            mode,
            ..
        } => {
            let offset = match (offset, up) {
                (Offset::Imm(v), true) => UopOffset::Imm(v as u32),
                (Offset::Imm(v), false) => UopOffset::Imm((v as u32).wrapping_neg()),
                (Offset::Reg(rm), true) => UopOffset::RegAdd(rm),
                (Offset::Reg(rm), false) => UopOffset::RegSub(rm),
            };
            let writeback = mode != AddrMode::Offset;
            let post = mode == AddrMode::PostIndex;
            if load {
                UopKind::Load {
                    size,
                    rd,
                    rn,
                    offset,
                    writeback,
                    post,
                }
            } else {
                UopKind::Store {
                    size,
                    rd,
                    rn,
                    offset,
                    writeback,
                    post,
                }
            }
        }
        Instr::LdStM {
            load,
            mode,
            writeback,
            rn,
            list,
            ..
        } => {
            let db = mode == MultiMode::Db;
            if load {
                UopKind::LoadMulti {
                    rn,
                    list,
                    writeback,
                    db,
                }
            } else {
                UopKind::StoreMulti {
                    rn,
                    list,
                    writeback,
                    db,
                }
            }
        }
        Instr::Branch { link, offset, .. } => UopKind::Branch {
            link,
            delta: 8u32.wrapping_add((offset as u32).wrapping_mul(4)),
        },
        Instr::Bx { link, rm, .. } => UopKind::BranchReg { link, rm },
        Instr::Swi { imm, .. } => UopKind::Swi { imm },
        Instr::Nop { .. } => UopKind::Nop,
        Instr::Clz { rd, rm, .. } => {
            if rd.is_pc() {
                UopKind::PcFault
            } else {
                UopKind::Clz { rd, rm }
            }
        }
        Instr::MovW { top, rd, imm, .. } => {
            if rd.is_pc() {
                UopKind::PcFault
            } else {
                UopKind::MovImm16 { top, rd, imm }
            }
        }
    };
    MicroOp { cond, kind }
}

/// Decodes and flattens a machine word in one step.
///
/// # Errors
///
/// Fails exactly when [`decode`](crate::decode) fails.
pub fn predecode_word(word: u32) -> Result<MicroOp, DecodeError> {
    decode(word).map(predecode)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imm_operand_is_materialised_with_carry() {
        // 0xFF rotated right by 8 -> 0xFF00_0000, top bit clear.
        let i = Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Add,
            s: true,
            rd: Reg::R0,
            rn: Reg::R1,
            op2: Operand2::Imm { imm8: 0xFF, rot: 4 },
        };
        match predecode(i).kind {
            UopKind::AluImm { imm, carry, .. } => {
                assert_eq!(imm, 0xFF00_0000);
                assert_eq!(carry, Some(true));
            }
            k => panic!("unexpected kind {k:?}"),
        }
        // Zero rotation leaves the carry undefined.
        let i = Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Mov,
            s: true,
            rd: Reg::R0,
            rn: Reg::R0,
            op2: Operand2::Imm { imm8: 0x80, rot: 0 },
        };
        match predecode(i).kind {
            UopKind::AluImm { imm, carry, .. } => {
                assert_eq!(imm, 0x80);
                assert_eq!(carry, None);
            }
            k => panic!("unexpected kind {k:?}"),
        }
    }

    #[test]
    fn store_offset_is_pre_negated() {
        let i = Instr::LdSt {
            cond: Cond::Al,
            load: false,
            size: MemSize::Word,
            rd: Reg::R1,
            rn: Reg::SP,
            offset: Offset::Imm(8),
            up: false,
            mode: AddrMode::PreIndex,
        };
        match predecode(i).kind {
            UopKind::Store {
                offset, writeback, post, ..
            } => {
                assert_eq!(offset, UopOffset::Imm(8u32.wrapping_neg()));
                assert!(writeback);
                assert!(!post);
            }
            k => panic!("unexpected kind {k:?}"),
        }
    }

    #[test]
    fn branch_delta_folds_pipeline_offset() {
        let i = Instr::Branch {
            cond: Cond::Ne,
            link: true,
            offset: -3,
        };
        let u = predecode(i);
        assert_eq!(u.cond, Cond::Ne);
        assert_eq!(
            u.kind,
            UopKind::Branch {
                link: true,
                delta: 8u32.wrapping_sub(12),
            }
        );
    }

    #[test]
    fn static_pc_faults_collapse() {
        let i = Instr::MovW {
            cond: Cond::Al,
            top: false,
            rd: Reg::PC,
            imm: 0,
        };
        assert_eq!(predecode(i).kind, UopKind::PcFault);
        let i = Instr::Mul {
            cond: Cond::Al,
            op: MulOp::Smlal,
            s: false,
            rd: Reg::R1,
            rn: Reg::PC,
            rs: Reg::R2,
            rm: Reg::R3,
        };
        assert_eq!(predecode(i).kind, UopKind::PcFault);
        let i = Instr::Clz {
            cond: Cond::Al,
            rd: Reg::PC,
            rm: Reg::R0,
        };
        assert_eq!(predecode(i).kind, UopKind::PcFault);
    }

    #[test]
    fn predecode_word_mirrors_decode_errors() {
        assert!(predecode_word(0xE000_0010).is_err());
        let w = crate::encode(&Instr::Nop { cond: Cond::Al });
        assert_eq!(predecode_word(w).unwrap().kind, UopKind::Nop);
    }
}
