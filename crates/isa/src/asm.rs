//! Programmatic assembler ("builder API") and assembled programs.
//!
//! [`Asm`] is the macro-assembler the software layer uses to generate code:
//! each method appends one (or a few) instructions; labels and branches are
//! resolved at [`Asm::assemble`] time. The text assembler in
//! [`crate::parse`] lowers onto this same builder, so both front ends share
//! one fixup engine.
//!
//! # Examples
//!
//! ```
//! use dmi_isa::{Asm, Reg};
//!
//! let mut a = Asm::new();
//! a.li(Reg::R0, 10);          // counter
//! a.li(Reg::R1, 0);           // accumulator
//! a.label("loop");
//! a.add(Reg::R1, Reg::R1, Reg::R0.into());
//! a.subs(Reg::R0, Reg::R0, 1u32.into());
//! a.bne("loop");
//! a.swi(0);                   // halt
//! let prog = a.assemble(0x0).unwrap();
//! assert!(prog.words().len() >= 6);
//! ```

// Host-side assembly happens before the simulation starts; these symbol
// tables are keyed lookups only, never iterated into sim-visible order.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;
use std::fmt;

use crate::decode::disasm;
use crate::encode::encode;
use crate::instr::{
    AddrMode, DpOp, Instr, MemSize, MulOp, MultiMode, Offset, Operand2, ShiftKind,
};
use crate::reg::{Cond, Reg};

/// Errors produced while assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UnknownLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch target is beyond the ±8 MiB reach of imm24.
    BranchOutOfRange {
        /// The unreachable label.
        label: String,
        /// Word index of the branch instruction.
        at: usize,
    },
    /// An immediate cannot be encoded in the requested form.
    ImmUnencodable(u32),
    /// A load/store offset exceeds the 9-bit range.
    OffsetOutOfRange(i64),
    /// A parse error from the text front end.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnknownLabel(l) => write!(f, "unknown label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchOutOfRange { label, at } => {
                write!(f, "branch at word {at} cannot reach `{label}`")
            }
            AsmError::ImmUnencodable(v) => {
                write!(f, "immediate {v:#x} has no operand2 encoding")
            }
            AsmError::OffsetOutOfRange(v) => write!(f, "offset {v} out of 9-bit range"),
            AsmError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for AsmError {}

/// A fully assembled, relocated program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    base: u32,
    words: Vec<u32>,
    symbols: HashMap<String, u32>,
}

impl Program {
    /// Load address of the first word.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The machine words in load order.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// The image as little-endian bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    /// Size of the image in bytes.
    pub fn len_bytes(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// Absolute address of a label, if defined.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All `(label, address)` pairs, unordered.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.symbols.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Disassembles the whole image with addresses and symbol markers.
    pub fn disassemble(&self) -> String {
        let mut by_addr: HashMap<u32, Vec<&str>> = HashMap::new();
        for (name, addr) in &self.symbols {
            by_addr.entry(*addr).or_default().push(name);
        }
        let mut out = String::new();
        for (i, &w) in self.words.iter().enumerate() {
            let addr = self.base + (i as u32) * 4;
            if let Some(names) = by_addr.get_mut(&addr) {
                names.sort_unstable();
                for n in names.iter() {
                    out.push_str(&format!("{n}:\n"));
                }
            }
            out.push_str(&format!("  {addr:08x}:  {w:08x}  {}\n", disasm(w)));
        }
        out
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FixupKind {
    /// Patch the imm24 word-offset field of a branch.
    Branch,
    /// Patch the imm16 of a MOVW with the low half of the label address.
    MovwAbs,
    /// Patch the imm16 of a MOVT with the high half of the label address.
    MovtAbs,
    /// Replace the whole word with the label's absolute address.
    WordAbs,
}

#[derive(Debug, Clone)]
struct Fixup {
    at: usize,
    label: String,
    kind: FixupKind,
}

/// The incremental assembler.
///
/// All emit methods default to [`Cond::Al`]; conditional forms take an
/// explicit [`Cond`] (`*_cond` variants) or use dedicated helpers
/// (`beq`, `bne`, …).
#[derive(Debug, Default)]
pub struct Asm {
    words: Vec<u32>,
    labels: HashMap<String, usize>,
    fixups: Vec<Fixup>,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of words emitted so far.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Emits a decoded instruction verbatim.
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.words.push(encode(&instr));
        self
    }

    /// Emits a raw data word.
    pub fn word(&mut self, w: u32) -> &mut Self {
        self.words.push(w);
        self
    }

    /// Emits raw data words.
    pub fn words_raw(&mut self, ws: &[u32]) -> &mut Self {
        self.words.extend_from_slice(ws);
        self
    }

    /// Emits `n` zero words.
    pub fn zeros(&mut self, n: usize) -> &mut Self {
        self.words.extend(std::iter::repeat_n(0, n));
        self
    }

    /// Emits a NUL-terminated string padded to a word boundary.
    pub fn asciz(&mut self, s: &str) -> &mut Self {
        let mut bytes: Vec<u8> = s.bytes().collect();
        bytes.push(0);
        while !bytes.len().is_multiple_of(4) {
            bytes.push(0);
        }
        for chunk in bytes.chunks(4) {
            self.words
                .push(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        self
    }

    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already defined (use [`Asm::try_label`] for a
    /// fallible form, e.g. from parsers).
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        self.try_label(name).expect("duplicate label");
        self
    }

    /// Defines a label, reporting duplicates as an error.
    pub fn try_label(&mut self, name: impl Into<String>) -> Result<(), AsmError> {
        let name = name.into();
        if self.labels.insert(name.clone(), self.words.len()).is_some() {
            return Err(AsmError::DuplicateLabel(name));
        }
        Ok(())
    }

    /// Emits a word that will hold the absolute address of `label`.
    pub fn word_label(&mut self, label: impl Into<String>) -> &mut Self {
        self.fixups.push(Fixup {
            at: self.words.len(),
            label: label.into(),
            kind: FixupKind::WordAbs,
        });
        self.words.push(0);
        self
    }

    // ---- data processing -------------------------------------------------

    /// Emits a data-processing instruction in full generality.
    pub fn dp(
        &mut self,
        cond: Cond,
        op: DpOp,
        s: bool,
        rd: Reg,
        rn: Reg,
        op2: Operand2,
    ) -> &mut Self {
        self.emit(Instr::Dp {
            cond,
            op,
            s,
            rd,
            rn,
            op2,
        })
    }
}

/// Generates binary ALU methods (`add`, `adds`, `add_cond`, …).
macro_rules! dp_binary {
    ($($name:ident, $names:ident, $namec:ident => $op:expr;)*) => {
        impl Asm {
            $(
                #[doc = concat!("Emits `", stringify!($name), " rd, rn, op2`.")]
                pub fn $name(&mut self, rd: Reg, rn: Reg, op2: Operand2) -> &mut Self {
                    self.dp(Cond::Al, $op, false, rd, rn, op2)
                }
                #[doc = concat!("Emits the flag-setting `", stringify!($name), "s`.")]
                pub fn $names(&mut self, rd: Reg, rn: Reg, op2: Operand2) -> &mut Self {
                    self.dp(Cond::Al, $op, true, rd, rn, op2)
                }
                #[doc = concat!("Emits a conditional `", stringify!($name), "`.")]
                pub fn $namec(&mut self, cond: Cond, rd: Reg, rn: Reg, op2: Operand2) -> &mut Self {
                    self.dp(cond, $op, false, rd, rn, op2)
                }
            )*
        }
    };
}

dp_binary! {
    add, adds, add_cond => DpOp::Add;
    sub, subs, sub_cond => DpOp::Sub;
    rsb, rsbs, rsb_cond => DpOp::Rsb;
    adc, adcs, adc_cond => DpOp::Adc;
    sbc, sbcs, sbc_cond => DpOp::Sbc;
    rsc, rscs, rsc_cond => DpOp::Rsc;
    and, ands, and_cond => DpOp::And;
    orr, orrs, orr_cond => DpOp::Orr;
    eor, eors, eor_cond => DpOp::Eor;
    bic, bics, bic_cond => DpOp::Bic;
}

impl Asm {
    /// Emits `mov rd, op2`.
    pub fn mov(&mut self, rd: Reg, op2: Operand2) -> &mut Self {
        self.dp(Cond::Al, DpOp::Mov, false, rd, Reg::R0, op2)
    }

    /// Emits `movs rd, op2`.
    pub fn movs(&mut self, rd: Reg, op2: Operand2) -> &mut Self {
        self.dp(Cond::Al, DpOp::Mov, true, rd, Reg::R0, op2)
    }

    /// Emits a conditional `mov`.
    pub fn mov_cond(&mut self, cond: Cond, rd: Reg, op2: Operand2) -> &mut Self {
        self.dp(cond, DpOp::Mov, false, rd, Reg::R0, op2)
    }

    /// Emits `mvn rd, op2`.
    pub fn mvn(&mut self, rd: Reg, op2: Operand2) -> &mut Self {
        self.dp(Cond::Al, DpOp::Mvn, false, rd, Reg::R0, op2)
    }

    /// Emits `cmp rn, op2`.
    pub fn cmp(&mut self, rn: Reg, op2: Operand2) -> &mut Self {
        self.dp(Cond::Al, DpOp::Cmp, true, Reg::R0, rn, op2)
    }

    /// Emits `cmn rn, op2`.
    pub fn cmn(&mut self, rn: Reg, op2: Operand2) -> &mut Self {
        self.dp(Cond::Al, DpOp::Cmn, true, Reg::R0, rn, op2)
    }

    /// Emits `tst rn, op2`.
    pub fn tst(&mut self, rn: Reg, op2: Operand2) -> &mut Self {
        self.dp(Cond::Al, DpOp::Tst, true, Reg::R0, rn, op2)
    }

    /// Emits `teq rn, op2`.
    pub fn teq(&mut self, rn: Reg, op2: Operand2) -> &mut Self {
        self.dp(Cond::Al, DpOp::Teq, true, Reg::R0, rn, op2)
    }

    /// Emits a logical-shift-left move: `mov rd, rm, lsl #n`.
    pub fn lsl(&mut self, rd: Reg, rm: Reg, amount: u8) -> &mut Self {
        self.mov(
            rd,
            Operand2::Reg {
                rm,
                shift: ShiftKind::Lsl,
                amount,
            },
        )
    }

    /// Emits `mov rd, rm, lsr #n`.
    pub fn lsr(&mut self, rd: Reg, rm: Reg, amount: u8) -> &mut Self {
        self.mov(
            rd,
            Operand2::Reg {
                rm,
                shift: ShiftKind::Lsr,
                amount,
            },
        )
    }

    /// Emits `mov rd, rm, asr #n`.
    pub fn asr(&mut self, rd: Reg, rm: Reg, amount: u8) -> &mut Self {
        self.mov(
            rd,
            Operand2::Reg {
                rm,
                shift: ShiftKind::Asr,
                amount,
            },
        )
    }

    /// Emits `movs rd, rm, asr #n` (flag-setting arithmetic shift).
    pub fn asrs(&mut self, rd: Reg, rm: Reg, amount: u8) -> &mut Self {
        self.movs(
            rd,
            Operand2::Reg {
                rm,
                shift: ShiftKind::Asr,
                amount,
            },
        )
    }

    /// Emits `mov rd, rm, ror #n`.
    pub fn ror(&mut self, rd: Reg, rm: Reg, amount: u8) -> &mut Self {
        self.mov(
            rd,
            Operand2::Reg {
                rm,
                shift: ShiftKind::Ror,
                amount,
            },
        )
    }

    /// Loads a full 32-bit constant using the shortest sequence:
    /// one `mov`/`mvn` when the value has an operand2 encoding, otherwise
    /// `movw` (+ `movt` when the high half is non-zero).
    pub fn li(&mut self, rd: Reg, value: u32) -> &mut Self {
        if let Some(op2) = Operand2::try_imm(value) {
            return self.mov(rd, op2);
        }
        if let Some(op2) = Operand2::try_imm(!value) {
            return self.mvn(rd, op2);
        }
        self.emit(Instr::MovW {
            cond: Cond::Al,
            top: false,
            rd,
            imm: (value & 0xFFFF) as u16,
        });
        if value >> 16 != 0 {
            self.emit(Instr::MovW {
                cond: Cond::Al,
                top: true,
                rd,
                imm: (value >> 16) as u16,
            });
        }
        self
    }

    /// Emits `movw rd, #imm16`.
    pub fn movw(&mut self, rd: Reg, imm: u16) -> &mut Self {
        self.emit(Instr::MovW {
            cond: Cond::Al,
            top: false,
            rd,
            imm,
        })
    }

    /// Emits `movt rd, #imm16`.
    pub fn movt(&mut self, rd: Reg, imm: u16) -> &mut Self {
        self.emit(Instr::MovW {
            cond: Cond::Al,
            top: true,
            rd,
            imm,
        })
    }

    /// Loads the absolute address of `label` into `rd` (MOVW+MOVT pair,
    /// patched at assembly time).
    pub fn adr(&mut self, rd: Reg, label: impl Into<String>) -> &mut Self {
        let label = label.into();
        self.fixups.push(Fixup {
            at: self.words.len(),
            label: label.clone(),
            kind: FixupKind::MovwAbs,
        });
        self.movw(rd, 0);
        self.fixups.push(Fixup {
            at: self.words.len(),
            label,
            kind: FixupKind::MovtAbs,
        });
        self.movt(rd, 0);
        self
    }

    // ---- multiply --------------------------------------------------------

    /// Emits `mul rd, rm, rs`.
    pub fn mul(&mut self, rd: Reg, rm: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::Mul {
            cond: Cond::Al,
            op: MulOp::Mul,
            s: false,
            rd,
            rn: Reg::R0,
            rs,
            rm,
        })
    }

    /// Emits `mla rd, rm, rs, rn` (`rd = rm*rs + rn`).
    pub fn mla(&mut self, rd: Reg, rm: Reg, rs: Reg, rn: Reg) -> &mut Self {
        self.emit(Instr::Mul {
            cond: Cond::Al,
            op: MulOp::Mla,
            s: false,
            rd,
            rn,
            rs,
            rm,
        })
    }

    /// Emits `umull rdlo, rdhi, rm, rs`.
    pub fn umull(&mut self, rdlo: Reg, rdhi: Reg, rm: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::Mul {
            cond: Cond::Al,
            op: MulOp::Umull,
            s: false,
            rd: rdhi,
            rn: rdlo,
            rs,
            rm,
        })
    }

    /// Emits `smull rdlo, rdhi, rm, rs`.
    pub fn smull(&mut self, rdlo: Reg, rdhi: Reg, rm: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::Mul {
            cond: Cond::Al,
            op: MulOp::Smull,
            s: false,
            rd: rdhi,
            rn: rdlo,
            rs,
            rm,
        })
    }

    /// Emits `umlal rdlo, rdhi, rm, rs`.
    pub fn umlal(&mut self, rdlo: Reg, rdhi: Reg, rm: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::Mul {
            cond: Cond::Al,
            op: MulOp::Umlal,
            s: false,
            rd: rdhi,
            rn: rdlo,
            rs,
            rm,
        })
    }

    /// Emits `smlal rdlo, rdhi, rm, rs`.
    pub fn smlal(&mut self, rdlo: Reg, rdhi: Reg, rm: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::Mul {
            cond: Cond::Al,
            op: MulOp::Smlal,
            s: false,
            rd: rdhi,
            rn: rdlo,
            rs,
            rm,
        })
    }

    // ---- memory ----------------------------------------------------------

    fn ldst_imm(
        &mut self,
        load: bool,
        size: MemSize,
        rd: Reg,
        rn: Reg,
        offset: i32,
        mode: AddrMode,
    ) -> &mut Self {
        let up = offset >= 0;
        let mag = offset.unsigned_abs();
        assert!(mag < 512, "load/store offset out of 9-bit range: {offset}");
        self.emit(Instr::LdSt {
            cond: Cond::Al,
            load,
            size,
            rd,
            rn,
            offset: Offset::Imm(mag as u16),
            up,
            mode,
        })
    }

    /// Emits `ldr rd, [rn, #offset]`.
    pub fn ldr(&mut self, rd: Reg, rn: Reg, offset: i32) -> &mut Self {
        self.ldst_imm(true, MemSize::Word, rd, rn, offset, AddrMode::Offset)
    }

    /// Emits `str rd, [rn, #offset]`.
    pub fn str(&mut self, rd: Reg, rn: Reg, offset: i32) -> &mut Self {
        self.ldst_imm(false, MemSize::Word, rd, rn, offset, AddrMode::Offset)
    }

    /// Emits `ldrb rd, [rn, #offset]`.
    pub fn ldrb(&mut self, rd: Reg, rn: Reg, offset: i32) -> &mut Self {
        self.ldst_imm(true, MemSize::Byte, rd, rn, offset, AddrMode::Offset)
    }

    /// Emits `strb rd, [rn, #offset]`.
    pub fn strb(&mut self, rd: Reg, rn: Reg, offset: i32) -> &mut Self {
        self.ldst_imm(false, MemSize::Byte, rd, rn, offset, AddrMode::Offset)
    }

    /// Emits `ldrh rd, [rn, #offset]`.
    pub fn ldrh(&mut self, rd: Reg, rn: Reg, offset: i32) -> &mut Self {
        self.ldst_imm(true, MemSize::Half, rd, rn, offset, AddrMode::Offset)
    }

    /// Emits `strh rd, [rn, #offset]`.
    pub fn strh(&mut self, rd: Reg, rn: Reg, offset: i32) -> &mut Self {
        self.ldst_imm(false, MemSize::Half, rd, rn, offset, AddrMode::Offset)
    }

    /// Emits `ldrsb rd, [rn, #offset]`.
    pub fn ldrsb(&mut self, rd: Reg, rn: Reg, offset: i32) -> &mut Self {
        self.ldst_imm(true, MemSize::SByte, rd, rn, offset, AddrMode::Offset)
    }

    /// Emits `ldrsh rd, [rn, #offset]`.
    pub fn ldrsh(&mut self, rd: Reg, rn: Reg, offset: i32) -> &mut Self {
        self.ldst_imm(true, MemSize::SHalf, rd, rn, offset, AddrMode::Offset)
    }

    /// Emits `ldr rd, [rn], #offset` (post-increment).
    pub fn ldr_post(&mut self, rd: Reg, rn: Reg, offset: i32) -> &mut Self {
        self.ldst_imm(true, MemSize::Word, rd, rn, offset, AddrMode::PostIndex)
    }

    /// Emits `str rd, [rn], #offset` (post-increment).
    pub fn str_post(&mut self, rd: Reg, rn: Reg, offset: i32) -> &mut Self {
        self.ldst_imm(false, MemSize::Word, rd, rn, offset, AddrMode::PostIndex)
    }

    /// Emits `ldrh rd, [rn], #offset` (post-increment).
    pub fn ldrh_post(&mut self, rd: Reg, rn: Reg, offset: i32) -> &mut Self {
        self.ldst_imm(true, MemSize::Half, rd, rn, offset, AddrMode::PostIndex)
    }

    /// Emits `ldrsh rd, [rn], #offset` (post-increment).
    pub fn ldrsh_post(&mut self, rd: Reg, rn: Reg, offset: i32) -> &mut Self {
        self.ldst_imm(true, MemSize::SHalf, rd, rn, offset, AddrMode::PostIndex)
    }

    /// Emits `strh rd, [rn], #offset` (post-increment).
    pub fn strh_post(&mut self, rd: Reg, rn: Reg, offset: i32) -> &mut Self {
        self.ldst_imm(false, MemSize::Half, rd, rn, offset, AddrMode::PostIndex)
    }

    /// Emits `ldr rd, [rn, #offset]!` (pre-index with writeback).
    pub fn ldr_pre(&mut self, rd: Reg, rn: Reg, offset: i32) -> &mut Self {
        self.ldst_imm(true, MemSize::Word, rd, rn, offset, AddrMode::PreIndex)
    }

    /// Emits `str rd, [rn, #offset]!` (pre-index with writeback).
    pub fn str_pre(&mut self, rd: Reg, rn: Reg, offset: i32) -> &mut Self {
        self.ldst_imm(false, MemSize::Word, rd, rn, offset, AddrMode::PreIndex)
    }

    /// Emits `ldr rd, [rn, rm]`.
    pub fn ldr_r(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Self {
        self.emit(Instr::LdSt {
            cond: Cond::Al,
            load: true,
            size: MemSize::Word,
            rd,
            rn,
            offset: Offset::Reg(rm),
            up: true,
            mode: AddrMode::Offset,
        })
    }

    /// Emits `str rd, [rn, rm]`.
    pub fn str_r(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Self {
        self.emit(Instr::LdSt {
            cond: Cond::Al,
            load: false,
            size: MemSize::Word,
            rd,
            rn,
            offset: Offset::Reg(rm),
            up: true,
            mode: AddrMode::Offset,
        })
    }

    /// Emits a load/store in full generality.
    #[allow(clippy::too_many_arguments)]
    pub fn ldst(
        &mut self,
        cond: Cond,
        load: bool,
        size: MemSize,
        rd: Reg,
        rn: Reg,
        offset: Offset,
        up: bool,
        mode: AddrMode,
    ) -> &mut Self {
        self.emit(Instr::LdSt {
            cond,
            load,
            size,
            rd,
            rn,
            offset,
            up,
            mode,
        })
    }

    /// Emits `stmdb sp!, {regs}` — push onto a full-descending stack.
    pub fn push(&mut self, regs: &[Reg]) -> &mut Self {
        self.emit(Instr::LdStM {
            cond: Cond::Al,
            load: false,
            mode: MultiMode::Db,
            writeback: true,
            rn: Reg::SP,
            list: reg_list(regs),
        })
    }

    /// Emits `ldmia sp!, {regs}` — pop from a full-descending stack.
    pub fn pop(&mut self, regs: &[Reg]) -> &mut Self {
        self.emit(Instr::LdStM {
            cond: Cond::Al,
            load: true,
            mode: MultiMode::Ia,
            writeback: true,
            rn: Reg::SP,
            list: reg_list(regs),
        })
    }

    // ---- control flow ----------------------------------------------------

    fn branch_to(&mut self, cond: Cond, link: bool, label: impl Into<String>) -> &mut Self {
        self.fixups.push(Fixup {
            at: self.words.len(),
            label: label.into(),
            kind: FixupKind::Branch,
        });
        self.emit(Instr::Branch {
            cond,
            link,
            offset: 0,
        })
    }

    /// Emits an unconditional branch to `label`.
    pub fn b(&mut self, label: impl Into<String>) -> &mut Self {
        self.branch_to(Cond::Al, false, label)
    }

    /// Emits a conditional branch to `label`.
    pub fn b_cond(&mut self, cond: Cond, label: impl Into<String>) -> &mut Self {
        self.branch_to(cond, false, label)
    }

    /// Emits `beq label`.
    pub fn beq(&mut self, label: impl Into<String>) -> &mut Self {
        self.b_cond(Cond::Eq, label)
    }

    /// Emits `bne label`.
    pub fn bne(&mut self, label: impl Into<String>) -> &mut Self {
        self.b_cond(Cond::Ne, label)
    }

    /// Emits `blt label`.
    pub fn blt(&mut self, label: impl Into<String>) -> &mut Self {
        self.b_cond(Cond::Lt, label)
    }

    /// Emits `ble label`.
    pub fn ble(&mut self, label: impl Into<String>) -> &mut Self {
        self.b_cond(Cond::Le, label)
    }

    /// Emits `bgt label`.
    pub fn bgt(&mut self, label: impl Into<String>) -> &mut Self {
        self.b_cond(Cond::Gt, label)
    }

    /// Emits `bge label`.
    pub fn bge(&mut self, label: impl Into<String>) -> &mut Self {
        self.b_cond(Cond::Ge, label)
    }

    /// Emits `bl label` (call).
    pub fn bl(&mut self, label: impl Into<String>) -> &mut Self {
        self.branch_to(Cond::Al, true, label)
    }

    /// Emits a conditional `bl`.
    pub fn bl_cond(&mut self, cond: Cond, label: impl Into<String>) -> &mut Self {
        self.branch_to(cond, true, label)
    }

    /// Emits `bx rm`.
    pub fn bx(&mut self, rm: Reg) -> &mut Self {
        self.emit(Instr::Bx {
            cond: Cond::Al,
            link: false,
            rm,
        })
    }

    /// Emits `blx rm` (indirect call).
    pub fn blx(&mut self, rm: Reg) -> &mut Self {
        self.emit(Instr::Bx {
            cond: Cond::Al,
            link: true,
            rm,
        })
    }

    /// Emits `bx lr` (return).
    pub fn ret(&mut self) -> &mut Self {
        self.bx(Reg::LR)
    }

    /// Emits `swi #imm`.
    pub fn swi(&mut self, imm: u16) -> &mut Self {
        self.emit(Instr::Swi {
            cond: Cond::Al,
            imm,
        })
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop { cond: Cond::Al })
    }

    /// Emits `clz rd, rm`.
    pub fn clz(&mut self, rd: Reg, rm: Reg) -> &mut Self {
        self.emit(Instr::Clz {
            cond: Cond::Al,
            rd,
            rm,
        })
    }

    // ---- assembly --------------------------------------------------------

    /// Resolves labels and fixups, producing a relocated [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnknownLabel`] for unresolved references and
    /// [`AsmError::BranchOutOfRange`] when a branch cannot reach its target.
    pub fn assemble(&self, base: u32) -> Result<Program, AsmError> {
        assert_eq!(base % 4, 0, "program base must be word aligned");
        let mut words = self.words.clone();
        for fix in &self.fixups {
            let &target = self
                .labels
                .get(&fix.label)
                .ok_or_else(|| AsmError::UnknownLabel(fix.label.clone()))?;
            let target_addr = base + (target as u32) * 4;
            match fix.kind {
                FixupKind::Branch => {
                    let diff = target as i64 - fix.at as i64 - 2;
                    if !(-(1 << 23)..(1 << 23)).contains(&diff) {
                        return Err(AsmError::BranchOutOfRange {
                            label: fix.label.clone(),
                            at: fix.at,
                        });
                    }
                    words[fix.at] =
                        (words[fix.at] & 0xFF00_0000) | ((diff as u32) & 0x00FF_FFFF);
                }
                FixupKind::MovwAbs => {
                    words[fix.at] = patch_imm16(words[fix.at], (target_addr & 0xFFFF) as u16);
                }
                FixupKind::MovtAbs => {
                    words[fix.at] = patch_imm16(words[fix.at], (target_addr >> 16) as u16);
                }
                FixupKind::WordAbs => {
                    words[fix.at] = target_addr;
                }
            }
        }
        let symbols = self
            .labels
            .iter()
            .map(|(k, &v)| (k.clone(), base + (v as u32) * 4))
            .collect();
        Ok(Program {
            base,
            words,
            symbols,
        })
    }
}

/// Patches the split imm16 field of a MOVW/MOVT encoding.
fn patch_imm16(word: u32, imm: u16) -> u32 {
    (word & 0xFFF0_F000) | (((imm as u32) >> 12) << 16) | ((imm as u32) & 0xFFF)
}

/// Builds a block-transfer register list bitmask.
///
/// # Panics
///
/// Panics if `regs` is empty.
pub fn reg_list(regs: &[Reg]) -> u16 {
    assert!(!regs.is_empty(), "register list must not be empty");
    regs.iter().fold(0u16, |acc, r| acc | 1 << r.index())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new();
        a.label("start");
        a.b("fwd"); // at word 0, target word 3 -> offset 1
        a.nop();
        a.nop();
        a.label("fwd");
        a.b("start"); // at word 3, target 0 -> offset -5
        let p = a.assemble(0).unwrap();
        match decode(p.words()[0]).unwrap() {
            Instr::Branch { offset, .. } => assert_eq!(offset, 1),
            other => panic!("expected branch, got {other}"),
        }
        match decode(p.words()[3]).unwrap() {
            Instr::Branch { offset, .. } => assert_eq!(offset, -5),
            other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn branch_semantics_target_address() {
        // target = pc + 8 + 4*offset; pc = base + 4*at.
        let mut a = Asm::new();
        a.b("next"); // at=0
        a.label("next"); // word 1
        let p = a.assemble(0x100).unwrap();
        let Instr::Branch { offset, .. } = decode(p.words()[0]).unwrap() else {
            panic!()
        };
        let pc = 0x100i64;
        let target = pc + 8 + 4 * offset as i64;
        assert_eq!(target as u32, p.symbol("next").unwrap());
    }

    #[test]
    fn unknown_label_is_error() {
        let mut a = Asm::new();
        a.b("nowhere");
        assert_eq!(
            a.assemble(0),
            Err(AsmError::UnknownLabel("nowhere".into()))
        );
    }

    #[test]
    fn duplicate_label_is_error() {
        let mut a = Asm::new();
        a.label("x");
        assert_eq!(a.try_label("x"), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn adr_patches_movw_movt() {
        let mut a = Asm::new();
        a.adr(Reg::R0, "data");
        a.swi(0);
        a.label("data");
        a.word(0xDEAD_BEEF);
        let p = a.assemble(0x0001_0000).unwrap();
        let addr = p.symbol("data").unwrap();
        let Instr::MovW { imm: lo, top: false, .. } = decode(p.words()[0]).unwrap() else {
            panic!()
        };
        let Instr::MovW { imm: hi, top: true, .. } = decode(p.words()[1]).unwrap() else {
            panic!()
        };
        assert_eq!(((hi as u32) << 16) | lo as u32, addr);
    }

    #[test]
    fn word_label_holds_absolute_address() {
        let mut a = Asm::new();
        a.word_label("tgt");
        a.label("tgt");
        a.nop();
        let p = a.assemble(0x40).unwrap();
        assert_eq!(p.words()[0], p.symbol("tgt").unwrap());
    }

    #[test]
    fn li_chooses_short_forms() {
        let mut a = Asm::new();
        a.li(Reg::R0, 0xFF); // 1 word: mov
        assert_eq!(a.len(), 1);
        let mut a = Asm::new();
        a.li(Reg::R0, 0xFFFF_FF00); // 1 word: mvn 0xFF
        assert_eq!(a.len(), 1);
        let mut a = Asm::new();
        a.li(Reg::R0, 0x1234); // 1 word: movw
        assert_eq!(a.len(), 1);
        let mut a = Asm::new();
        a.li(Reg::R0, 0x1234_5678); // 2 words
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn asciz_pads_to_word() {
        let mut a = Asm::new();
        a.asciz("hi");
        assert_eq!(a.len(), 1);
        let mut a = Asm::new();
        a.asciz("hello"); // 5 + nul = 6 -> 8 bytes
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn push_pop_lists() {
        assert_eq!(reg_list(&[Reg::R0, Reg::LR]), 0x4001);
        let mut a = Asm::new();
        a.push(&[Reg::R4, Reg::LR]);
        a.pop(&[Reg::R4, Reg::PC]);
        let p = a.assemble(0).unwrap();
        assert!(matches!(
            decode(p.words()[0]).unwrap(),
            Instr::LdStM {
                load: false,
                mode: MultiMode::Db,
                writeback: true,
                ..
            }
        ));
        assert!(matches!(
            decode(p.words()[1]).unwrap(),
            Instr::LdStM {
                load: true,
                mode: MultiMode::Ia,
                ..
            }
        ));
    }

    #[test]
    fn disassemble_contains_labels_and_text() {
        let mut a = Asm::new();
        a.label("entry");
        a.li(Reg::R0, 1);
        a.swi(0);
        let p = a.assemble(0).unwrap();
        let d = p.disassemble();
        assert!(d.contains("entry:"));
        assert!(d.contains("swi #0"));
    }

    #[test]
    fn program_bytes_little_endian() {
        let mut a = Asm::new();
        a.word(0x0102_0304);
        let p = a.assemble(0).unwrap();
        assert_eq!(p.to_bytes(), vec![0x04, 0x03, 0x02, 0x01]);
        assert_eq!(p.len_bytes(), 4);
        assert_eq!(p.base(), 0);
    }
}
