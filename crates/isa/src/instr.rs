//! The SimARM instruction set: decoded instruction forms.
//!
//! SimARM is an ARM-like 32-bit RISC ISA defined for this project. Its
//! binary encoding (see [`crate::encode`] / [`crate::decode`]) is custom but
//! deliberately close in spirit to classic ARM: 4-bit condition on every
//! instruction, data processing with a barrel shifter, load/store with
//! pre/post indexing, block transfers, branch-and-link and software
//! interrupts.
//!
//! ## Encoding map (class = bits 27..25)
//!
//! | class | format |
//! |-------|--------|
//! | 000   | data processing, register operand |
//! | 001   | data processing, immediate operand (imm8 rotated by 2·rot4) |
//! | 010   | multiply / multiply-long |
//! | 011   | load/store, immediate offset (imm9) |
//! | 100   | load/store, register offset; or block transfer when bit 20 set |
//! | 101   | branch / branch-and-link (signed imm24 words) |
//! | 110   | system: SWI, BX/BLX, NOP, CLZ |
//! | 111   | wide move: MOVW / MOVT (imm16) |

use std::fmt;

use crate::reg::{Cond, Reg};

/// Data-processing opcode (4 bits, ARM numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum DpOp {
    /// Bitwise AND.
    And = 0,
    /// Bitwise exclusive OR.
    Eor = 1,
    /// Subtract.
    Sub = 2,
    /// Reverse subtract (`op2 - rn`).
    Rsb = 3,
    /// Add.
    Add = 4,
    /// Add with carry.
    Adc = 5,
    /// Subtract with carry (borrow).
    Sbc = 6,
    /// Reverse subtract with carry.
    Rsc = 7,
    /// Test (AND, flags only).
    Tst = 8,
    /// Test equivalence (EOR, flags only).
    Teq = 9,
    /// Compare (SUB, flags only).
    Cmp = 10,
    /// Compare negative (ADD, flags only).
    Cmn = 11,
    /// Bitwise OR.
    Orr = 12,
    /// Move.
    Mov = 13,
    /// Bit clear (`rn & !op2`).
    Bic = 14,
    /// Move NOT.
    Mvn = 15,
}

impl DpOp {
    /// Decodes the 4-bit opcode field.
    pub fn from_bits(bits: u32) -> DpOp {
        use DpOp::*;
        match bits & 0xF {
            0 => And,
            1 => Eor,
            2 => Sub,
            3 => Rsb,
            4 => Add,
            5 => Adc,
            6 => Sbc,
            7 => Rsc,
            8 => Tst,
            9 => Teq,
            10 => Cmp,
            11 => Cmn,
            12 => Orr,
            13 => Mov,
            14 => Bic,
            _ => Mvn,
        }
    }

    /// Whether the op writes only flags (TST/TEQ/CMP/CMN): `rd` is ignored
    /// and the S bit is implied.
    pub fn is_compare(self) -> bool {
        matches!(self, DpOp::Tst | DpOp::Teq | DpOp::Cmp | DpOp::Cmn)
    }

    /// Whether the op ignores `rn` (MOV/MVN).
    pub fn is_unary(self) -> bool {
        matches!(self, DpOp::Mov | DpOp::Mvn)
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            DpOp::And => "and",
            DpOp::Eor => "eor",
            DpOp::Sub => "sub",
            DpOp::Rsb => "rsb",
            DpOp::Add => "add",
            DpOp::Adc => "adc",
            DpOp::Sbc => "sbc",
            DpOp::Rsc => "rsc",
            DpOp::Tst => "tst",
            DpOp::Teq => "teq",
            DpOp::Cmp => "cmp",
            DpOp::Cmn => "cmn",
            DpOp::Orr => "orr",
            DpOp::Mov => "mov",
            DpOp::Bic => "bic",
            DpOp::Mvn => "mvn",
        }
    }
}

/// Barrel-shifter operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ShiftKind {
    /// Logical shift left.
    Lsl = 0,
    /// Logical shift right.
    Lsr = 1,
    /// Arithmetic shift right.
    Asr = 2,
    /// Rotate right.
    Ror = 3,
}

impl ShiftKind {
    /// Decodes the 2-bit shift-type field.
    pub fn from_bits(bits: u32) -> ShiftKind {
        match bits & 3 {
            0 => ShiftKind::Lsl,
            1 => ShiftKind::Lsr,
            2 => ShiftKind::Asr,
            _ => ShiftKind::Ror,
        }
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftKind::Lsl => "lsl",
            ShiftKind::Lsr => "lsr",
            ShiftKind::Asr => "asr",
            ShiftKind::Ror => "ror",
        }
    }
}

/// The second operand of a data-processing instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand2 {
    /// `imm8` rotated right by `2 * rot` (rot in 0..=15).
    Imm {
        /// 8-bit payload.
        imm8: u8,
        /// Rotation divided by two (0..=15).
        rot: u8,
    },
    /// Register, optionally shifted by a constant amount (0..=31).
    Reg {
        /// Source register.
        rm: Reg,
        /// Shift operation applied to `rm`.
        shift: ShiftKind,
        /// Constant shift amount, 0..=31; 0 means no shift.
        amount: u8,
    },
}

impl Operand2 {
    /// A plain (unshifted) register operand.
    pub fn reg(rm: Reg) -> Operand2 {
        Operand2::Reg {
            rm,
            shift: ShiftKind::Lsl,
            amount: 0,
        }
    }

    /// Tries to express `value` as an `imm8`/`rot` pair.
    ///
    /// Returns `None` if the value has no such encoding (the assembler then
    /// falls back to `MOVW`/`MOVT` sequences).
    pub fn try_imm(value: u32) -> Option<Operand2> {
        for rot in 0..16u32 {
            let rotated = value.rotate_left(rot * 2);
            if rotated <= 0xFF {
                return Some(Operand2::Imm {
                    imm8: rotated as u8,
                    rot: rot as u8,
                });
            }
        }
        None
    }

    /// The concrete value of an immediate operand (`None` for registers).
    pub fn imm_value(self) -> Option<u32> {
        match self {
            Operand2::Imm { imm8, rot } => Some((imm8 as u32).rotate_right(rot as u32 * 2)),
            Operand2::Reg { .. } => None,
        }
    }
}

impl From<Reg> for Operand2 {
    fn from(rm: Reg) -> Operand2 {
        Operand2::reg(rm)
    }
}

/// Converts a constant to an immediate operand.
///
/// # Panics
///
/// Panics if the value has no `imm8`/`rot` encoding. Use
/// [`Operand2::try_imm`] (or `Asm::li` for full 32-bit constants) when the
/// value is not statically known to be encodable.
impl From<u32> for Operand2 {
    fn from(value: u32) -> Operand2 {
        Operand2::try_imm(value)
            .unwrap_or_else(|| panic!("{value:#x} has no operand2 encoding"))
    }
}

/// Multiply-class opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MulOp {
    /// `rd = rm * rs` (low 32 bits).
    Mul = 0,
    /// `rd = rm * rs + rn`.
    Mla = 1,
    /// Unsigned long multiply: `rdhi:rdlo = rm * rs`.
    Umull = 2,
    /// Signed long multiply.
    Smull = 3,
    /// Unsigned long multiply-accumulate.
    Umlal = 4,
    /// Signed long multiply-accumulate.
    Smlal = 5,
}

impl MulOp {
    /// Decodes the 4-bit multiply opcode field.
    pub fn from_bits(bits: u32) -> Option<MulOp> {
        Some(match bits & 0xF {
            0 => MulOp::Mul,
            1 => MulOp::Mla,
            2 => MulOp::Umull,
            3 => MulOp::Smull,
            4 => MulOp::Umlal,
            5 => MulOp::Smlal,
            _ => return None,
        })
    }

    /// Whether this variant produces a 64-bit result pair.
    pub fn is_long(self) -> bool {
        matches!(
            self,
            MulOp::Umull | MulOp::Smull | MulOp::Umlal | MulOp::Smlal
        )
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MulOp::Mul => "mul",
            MulOp::Mla => "mla",
            MulOp::Umull => "umull",
            MulOp::Smull => "smull",
            MulOp::Umlal => "umlal",
            MulOp::Smlal => "smlal",
        }
    }
}

/// Transfer size and sign extension of a load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MemSize {
    /// 8-bit, zero-extended on load.
    Byte = 0,
    /// 16-bit, zero-extended on load.
    Half = 1,
    /// 32-bit.
    Word = 2,
    /// 8-bit, sign-extended (loads only).
    SByte = 3,
    /// 16-bit, sign-extended (loads only).
    SHalf = 4,
}

impl MemSize {
    /// Decodes the 3-bit size field.
    pub fn from_bits(bits: u32) -> Option<MemSize> {
        Some(match bits & 7 {
            0 => MemSize::Byte,
            1 => MemSize::Half,
            2 => MemSize::Word,
            3 => MemSize::SByte,
            4 => MemSize::SHalf,
            _ => return None,
        })
    }

    /// Number of bytes transferred.
    pub fn bytes(self) -> u32 {
        match self {
            MemSize::Byte | MemSize::SByte => 1,
            MemSize::Half | MemSize::SHalf => 2,
            MemSize::Word => 4,
        }
    }

    /// Whether loads sign-extend.
    pub fn is_signed(self) -> bool {
        matches!(self, MemSize::SByte | MemSize::SHalf)
    }

    /// Mnemonic suffix (`""`, `"b"`, `"h"`, `"sb"`, `"sh"`).
    pub fn suffix(self) -> &'static str {
        match self {
            MemSize::Byte => "b",
            MemSize::Half => "h",
            MemSize::Word => "",
            MemSize::SByte => "sb",
            MemSize::SHalf => "sh",
        }
    }
}

/// Load/store offset operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Offset {
    /// Unsigned 9-bit byte offset (direction from the `up` flag).
    Imm(u16),
    /// Register offset (direction from the `up` flag).
    Reg(Reg),
}

/// Indexing mode of a load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrMode {
    /// `[rn, off]` — offset addressing, `rn` unchanged.
    Offset,
    /// `[rn, off]!` — pre-indexed with writeback.
    PreIndex,
    /// `[rn], off` — post-indexed (always writes back).
    PostIndex,
}

/// Block-transfer address progression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultiMode {
    /// Increment after — `ldmia`/`stmia` (POP-style for loads).
    Ia,
    /// Decrement before — `ldmdb`/`stmdb` (PUSH-style for stores).
    Db,
}

/// A decoded SimARM instruction.
///
/// `Display` renders canonical assembly text; the disassembler is
/// `decode(word)?.to_string()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Data-processing (ALU) operation.
    Dp {
        /// Condition.
        cond: Cond,
        /// Opcode.
        op: DpOp,
        /// Update flags.
        s: bool,
        /// Destination (ignored by compares).
        rd: Reg,
        /// First operand (ignored by MOV/MVN).
        rn: Reg,
        /// Second operand.
        op2: Operand2,
    },
    /// Multiply / multiply-long.
    Mul {
        /// Condition.
        cond: Cond,
        /// Opcode.
        op: MulOp,
        /// Update N and Z flags.
        s: bool,
        /// Destination (high word for long forms).
        rd: Reg,
        /// Accumulator for MLA; low word for long forms.
        rn: Reg,
        /// Second factor.
        rs: Reg,
        /// First factor.
        rm: Reg,
    },
    /// Single load or store.
    LdSt {
        /// Condition.
        cond: Cond,
        /// Load (true) or store (false).
        load: bool,
        /// Transfer size / sign.
        size: MemSize,
        /// Data register.
        rd: Reg,
        /// Base register.
        rn: Reg,
        /// Offset operand.
        offset: Offset,
        /// Add (true) or subtract (false) the offset.
        up: bool,
        /// Indexing mode.
        mode: AddrMode,
    },
    /// Block transfer (LDM/STM).
    LdStM {
        /// Condition.
        cond: Cond,
        /// Load (true) or store (false).
        load: bool,
        /// Address progression.
        mode: MultiMode,
        /// Write the final address back to `rn`.
        writeback: bool,
        /// Base register.
        rn: Reg,
        /// Bitmask of transferred registers (bit i = `r<i>`).
        list: u16,
    },
    /// PC-relative branch; target = `pc + 8 + 4 * offset`.
    Branch {
        /// Condition.
        cond: Cond,
        /// Save return address in `lr`.
        link: bool,
        /// Signed word offset (24 bits).
        offset: i32,
    },
    /// Branch to register.
    Bx {
        /// Condition.
        cond: Cond,
        /// Save return address in `lr`.
        link: bool,
        /// Target register.
        rm: Reg,
    },
    /// Software interrupt (system call).
    Swi {
        /// Condition.
        cond: Cond,
        /// Call number.
        imm: u16,
    },
    /// No operation.
    Nop {
        /// Condition.
        cond: Cond,
    },
    /// Count leading zeros.
    Clz {
        /// Condition.
        cond: Cond,
        /// Destination.
        rd: Reg,
        /// Source.
        rm: Reg,
    },
    /// Wide move: loads a 16-bit immediate into the low (MOVW, zeroing the
    /// high half) or high (MOVT) half of `rd`.
    MovW {
        /// Condition.
        cond: Cond,
        /// MOVT (true) or MOVW (false).
        top: bool,
        /// Destination.
        rd: Reg,
        /// 16-bit immediate.
        imm: u16,
    },
}

impl Instr {
    /// The condition code of any instruction.
    pub fn cond(&self) -> Cond {
        match *self {
            Instr::Dp { cond, .. }
            | Instr::Mul { cond, .. }
            | Instr::LdSt { cond, .. }
            | Instr::LdStM { cond, .. }
            | Instr::Branch { cond, .. }
            | Instr::Bx { cond, .. }
            | Instr::Swi { cond, .. }
            | Instr::Nop { cond }
            | Instr::Clz { cond, .. }
            | Instr::MovW { cond, .. } => cond,
        }
    }
}

fn fmt_op2(f: &mut fmt::Formatter<'_>, op2: &Operand2) -> fmt::Result {
    match *op2 {
        Operand2::Imm { .. } => write!(f, "#{}", op2.imm_value().unwrap()),
        Operand2::Reg { rm, shift, amount } => {
            // A zero-amount non-LSL shift is semantically a plain register
            // but encodes distinctly, so print it to keep Display faithful.
            if amount == 0 && shift == ShiftKind::Lsl {
                write!(f, "{rm}")
            } else {
                write!(f, "{rm}, {} #{amount}", shift.mnemonic())
            }
        }
    }
}

fn fmt_reglist(f: &mut fmt::Formatter<'_>, list: u16) -> fmt::Result {
    f.write_str("{")?;
    let mut first = true;
    for i in 0..16 {
        if list & (1 << i) != 0 {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{}", Reg::new(i))?;
            first = false;
        }
    }
    f.write_str("}")
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Dp {
                cond,
                op,
                s,
                rd,
                rn,
                op2,
            } => {
                let sflag = if s && !op.is_compare() { "s" } else { "" };
                write!(f, "{}{}{} ", op.mnemonic(), cond, sflag)?;
                if op.is_compare() {
                    write!(f, "{rn}, ")?;
                } else if op.is_unary() {
                    write!(f, "{rd}, ")?;
                } else {
                    write!(f, "{rd}, {rn}, ")?;
                }
                fmt_op2(f, &op2)
            }
            Instr::Mul {
                cond,
                op,
                s,
                rd,
                rn,
                rs,
                rm,
            } => {
                let sflag = if s { "s" } else { "" };
                write!(f, "{}{}{} ", op.mnemonic(), cond, sflag)?;
                match op {
                    MulOp::Mul => write!(f, "{rd}, {rm}, {rs}"),
                    MulOp::Mla => write!(f, "{rd}, {rm}, {rs}, {rn}"),
                    _ => write!(f, "{rn}, {rd}, {rm}, {rs}"),
                }
            }
            Instr::LdSt {
                cond,
                load,
                size,
                rd,
                rn,
                offset,
                up,
                mode,
            } => {
                let m = if load { "ldr" } else { "str" };
                write!(f, "{m}{cond}{} {rd}, ", size.suffix())?;
                let sign = if up { "" } else { "-" };
                let has_offset = !matches!(offset, Offset::Imm(0));
                match mode {
                    AddrMode::Offset | AddrMode::PreIndex => {
                        write!(f, "[{rn}")?;
                        if has_offset {
                            match offset {
                                Offset::Imm(v) => write!(f, ", #{sign}{v}")?,
                                Offset::Reg(r) => write!(f, ", {sign}{r}")?,
                            }
                        }
                        write!(f, "]")?;
                        if mode == AddrMode::PreIndex {
                            write!(f, "!")?;
                        }
                        Ok(())
                    }
                    AddrMode::PostIndex => {
                        write!(f, "[{rn}]")?;
                        match offset {
                            Offset::Imm(v) => write!(f, ", #{sign}{v}"),
                            Offset::Reg(r) => write!(f, ", {sign}{r}"),
                        }
                    }
                }
            }
            Instr::LdStM {
                cond,
                load,
                mode,
                writeback,
                rn,
                list,
            } => {
                let m = if load { "ldm" } else { "stm" };
                let am = match mode {
                    MultiMode::Ia => "ia",
                    MultiMode::Db => "db",
                };
                let wb = if writeback { "!" } else { "" };
                write!(f, "{m}{am}{cond} {rn}{wb}, ")?;
                fmt_reglist(f, list)
            }
            Instr::Branch { cond, link, offset } => {
                let m = if link { "bl" } else { "b" };
                write!(f, "{m}{cond} {:+}", offset)
            }
            Instr::Bx { cond, link, rm } => {
                let m = if link { "blx" } else { "bx" };
                write!(f, "{m}{cond} {rm}")
            }
            Instr::Swi { cond, imm } => write!(f, "swi{cond} #{imm}"),
            Instr::Nop { cond } => write!(f, "nop{cond}"),
            Instr::Clz { cond, rd, rm } => write!(f, "clz{cond} {rd}, {rm}"),
            Instr::MovW { cond, top, rd, imm } => {
                let m = if top { "movt" } else { "movw" };
                write!(f, "{m}{cond} {rd}, #{imm}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_imm_finds_rotations() {
        assert_eq!(
            Operand2::try_imm(0xFF),
            Some(Operand2::Imm { imm8: 0xFF, rot: 0 })
        );
        // 0x3F0 = 0xFC ror 30  (rotate_left by 2*15 = 30 brings it to <= 0xFF)
        let op = Operand2::try_imm(0x3F0).expect("encodable");
        assert_eq!(op.imm_value(), Some(0x3F0));
        // 0xFF000000 = 0xFF ror 8
        let op = Operand2::try_imm(0xFF00_0000).expect("encodable");
        assert_eq!(op.imm_value(), Some(0xFF00_0000));
        // 0x101 cannot be expressed as a rotated byte.
        assert_eq!(Operand2::try_imm(0x101), None);
        // Zero encodes trivially.
        assert_eq!(Operand2::try_imm(0).unwrap().imm_value(), Some(0));
    }

    #[test]
    fn display_dp() {
        let i = Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Add,
            s: false,
            rd: Reg::R0,
            rn: Reg::R1,
            op2: Operand2::try_imm(4).unwrap(),
        };
        assert_eq!(i.to_string(), "add r0, r1, #4");
        let i = Instr::Dp {
            cond: Cond::Eq,
            op: DpOp::Cmp,
            s: true,
            rd: Reg::R0,
            rn: Reg::R2,
            op2: Operand2::reg(Reg::R3),
        };
        assert_eq!(i.to_string(), "cmpeq r2, r3");
        let i = Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Mov,
            s: true,
            rd: Reg::R5,
            rn: Reg::R0,
            op2: Operand2::Reg {
                rm: Reg::R6,
                shift: ShiftKind::Asr,
                amount: 3,
            },
        };
        assert_eq!(i.to_string(), "movs r5, r6, asr #3");
    }

    #[test]
    fn display_mem_and_branch() {
        let i = Instr::LdSt {
            cond: Cond::Al,
            load: true,
            size: MemSize::Word,
            rd: Reg::R0,
            rn: Reg::SP,
            offset: Offset::Imm(8),
            up: true,
            mode: AddrMode::Offset,
        };
        assert_eq!(i.to_string(), "ldr r0, [sp, #8]");
        let i = Instr::LdSt {
            cond: Cond::Al,
            load: false,
            size: MemSize::Byte,
            rd: Reg::R1,
            rn: Reg::R2,
            offset: Offset::Imm(1),
            up: true,
            mode: AddrMode::PostIndex,
        };
        assert_eq!(i.to_string(), "strb r1, [r2], #1");
        let i = Instr::Branch {
            cond: Cond::Ne,
            link: false,
            offset: -3,
        };
        assert_eq!(i.to_string(), "bne -3");
        let i = Instr::LdStM {
            cond: Cond::Al,
            load: false,
            mode: MultiMode::Db,
            writeback: true,
            rn: Reg::SP,
            list: 0b0100_0000_0000_0011,
        };
        assert_eq!(i.to_string(), "stmdb sp!, {r0, r1, lr}");
    }

    #[test]
    fn accessors() {
        assert!(DpOp::Cmp.is_compare());
        assert!(!DpOp::Add.is_compare());
        assert!(DpOp::Mov.is_unary());
        assert!(MulOp::Smull.is_long());
        assert!(!MulOp::Mla.is_long());
        assert_eq!(MemSize::Half.bytes(), 2);
        assert_eq!(MemSize::Word.bytes(), 4);
        assert!(MemSize::SByte.is_signed());
        let i = Instr::Nop { cond: Cond::Hi };
        assert_eq!(i.cond(), Cond::Hi);
        assert_eq!(i.to_string(), "nophi");
    }
}
