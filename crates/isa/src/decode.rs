//! Binary decoding of SimARM instructions.

use std::fmt;

use crate::encode::{SYS_BLX, SYS_BX, SYS_CLZ, SYS_NOP, SYS_SWI};
use crate::instr::{
    AddrMode, DpOp, Instr, MemSize, MulOp, MultiMode, Offset, Operand2, ShiftKind,
};
use crate::reg::{Cond, Reg};

/// Error produced when a machine word is not a valid SimARM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// A must-be-zero field was set.
    ReservedBits(u32),
    /// Unknown multiply opcode.
    InvalidMulOp(u32),
    /// Unknown memory size code.
    InvalidMemSize(u32),
    /// Store with a sign-extended size.
    SignedStore(u32),
    /// `P=0, W=1` indexing combination.
    InvalidAddrMode(u32),
    /// Block transfer with an empty register list.
    EmptyRegList(u32),
    /// Unknown system opcode.
    InvalidSysOp(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::ReservedBits(w) => write!(f, "reserved bits set in {w:#010x}"),
            DecodeError::InvalidMulOp(w) => write!(f, "invalid multiply opcode in {w:#010x}"),
            DecodeError::InvalidMemSize(w) => write!(f, "invalid memory size in {w:#010x}"),
            DecodeError::SignedStore(w) => write!(f, "sign-extended store in {w:#010x}"),
            DecodeError::InvalidAddrMode(w) => {
                write!(f, "invalid addressing mode in {w:#010x}")
            }
            DecodeError::EmptyRegList(w) => write!(f, "empty register list in {w:#010x}"),
            DecodeError::InvalidSysOp(w) => write!(f, "invalid system opcode in {w:#010x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn reg(word: u32, lsb: u32) -> Reg {
    Reg::new(((word >> lsb) & 0xF) as u8)
}

fn addr_mode(word: u32) -> Result<AddrMode, DecodeError> {
    let p = word & (1 << 23) != 0;
    let w = word & (1 << 21) != 0;
    match (p, w) {
        (true, false) => Ok(AddrMode::Offset),
        (true, true) => Ok(AddrMode::PreIndex),
        (false, false) => Ok(AddrMode::PostIndex),
        (false, true) => Err(DecodeError::InvalidAddrMode(word)),
    }
}

fn mem_size(word: u32, load: bool) -> Result<MemSize, DecodeError> {
    let size =
        MemSize::from_bits((word >> 9) & 7).ok_or(DecodeError::InvalidMemSize(word))?;
    if !load && size.is_signed() {
        return Err(DecodeError::SignedStore(word));
    }
    Ok(size)
}

/// Decodes a 32-bit machine word into an instruction.
///
/// # Errors
///
/// Returns a [`DecodeError`] describing which constraint the word violates.
/// `decode(encode(i)) == Ok(i)` holds for every valid instruction `i`
/// (verified by property tests).
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let cond = Cond::from_bits(word >> 28);
    let cls = (word >> 25) & 0b111;
    match cls {
        // Data processing, register operand.
        0b000 => {
            if word & (1 << 4) != 0 {
                return Err(DecodeError::ReservedBits(word));
            }
            Ok(Instr::Dp {
                cond,
                op: DpOp::from_bits(word >> 21),
                s: word & (1 << 20) != 0,
                rd: reg(word, 12),
                rn: reg(word, 16),
                op2: Operand2::Reg {
                    rm: reg(word, 0),
                    shift: ShiftKind::from_bits(word >> 5),
                    amount: ((word >> 7) & 0x1F) as u8,
                },
            })
        }
        // Data processing, immediate operand.
        0b001 => Ok(Instr::Dp {
            cond,
            op: DpOp::from_bits(word >> 21),
            s: word & (1 << 20) != 0,
            rd: reg(word, 12),
            rn: reg(word, 16),
            op2: Operand2::Imm {
                imm8: (word & 0xFF) as u8,
                rot: ((word >> 8) & 0xF) as u8,
            },
        }),
        // Multiply.
        0b010 => {
            if word & 0xF0 != 0 {
                return Err(DecodeError::ReservedBits(word));
            }
            let op =
                MulOp::from_bits((word >> 21) & 0xF).ok_or(DecodeError::InvalidMulOp(word))?;
            let rd = reg(word, 16);
            let rn = reg(word, 12);
            if op.is_long() && rd == rn {
                return Err(DecodeError::ReservedBits(word));
            }
            Ok(Instr::Mul {
                cond,
                op,
                s: word & (1 << 20) != 0,
                rd,
                rn,
                rs: reg(word, 8),
                rm: reg(word, 0),
            })
        }
        // Load/store, immediate offset.
        0b011 => {
            if word & (1 << 20) != 0 {
                return Err(DecodeError::ReservedBits(word));
            }
            let load = word & (1 << 24) != 0;
            Ok(Instr::LdSt {
                cond,
                load,
                size: mem_size(word, load)?,
                rd: reg(word, 12),
                rn: reg(word, 16),
                offset: Offset::Imm((word & 0x1FF) as u16),
                up: word & (1 << 22) != 0,
                mode: addr_mode(word)?,
            })
        }
        // Load/store register offset (bit20=0) or block transfer (bit20=1).
        0b100 => {
            let load = word & (1 << 24) != 0;
            if word & (1 << 20) != 0 {
                let list = (word & 0xFFFF) as u16;
                if list == 0 {
                    return Err(DecodeError::EmptyRegList(word));
                }
                if word & (1 << 21) != 0 {
                    return Err(DecodeError::ReservedBits(word));
                }
                Ok(Instr::LdStM {
                    cond,
                    load,
                    mode: if word & (1 << 23) != 0 {
                        MultiMode::Db
                    } else {
                        MultiMode::Ia
                    },
                    writeback: word & (1 << 22) != 0,
                    rn: reg(word, 16),
                    list,
                })
            } else {
                if word & 0x1F0 != 0 {
                    return Err(DecodeError::ReservedBits(word));
                }
                Ok(Instr::LdSt {
                    cond,
                    load,
                    size: mem_size(word, load)?,
                    rd: reg(word, 12),
                    rn: reg(word, 16),
                    offset: Offset::Reg(reg(word, 0)),
                    up: word & (1 << 22) != 0,
                    mode: addr_mode(word)?,
                })
            }
        }
        // Branch.
        0b101 => {
            let raw = word & 0x00FF_FFFF;
            // Sign-extend 24 -> 32 bits.
            let offset = ((raw << 8) as i32) >> 8;
            Ok(Instr::Branch {
                cond,
                link: word & (1 << 24) != 0,
                offset,
            })
        }
        // System. Unused operand bits must be zero so that re-encoding a
        // decoded word reproduces it exactly.
        0b110 => {
            let reserved_clear = |mask: u32| {
                if word & mask != 0 {
                    Err(DecodeError::ReservedBits(word))
                } else {
                    Ok(())
                }
            };
            match (word >> 21) & 0xF {
                SYS_SWI => {
                    reserved_clear(0x001F_0000)?;
                    Ok(Instr::Swi {
                        cond,
                        imm: (word & 0xFFFF) as u16,
                    })
                }
                SYS_BX => {
                    reserved_clear(0x001F_FFF0)?;
                    Ok(Instr::Bx {
                        cond,
                        link: false,
                        rm: reg(word, 0),
                    })
                }
                SYS_BLX => {
                    reserved_clear(0x001F_FFF0)?;
                    Ok(Instr::Bx {
                        cond,
                        link: true,
                        rm: reg(word, 0),
                    })
                }
                SYS_NOP => {
                    reserved_clear(0x001F_FFFF)?;
                    Ok(Instr::Nop { cond })
                }
                SYS_CLZ => {
                    reserved_clear(0x001F_0FF0)?;
                    Ok(Instr::Clz {
                        cond,
                        rd: reg(word, 12),
                        rm: reg(word, 0),
                    })
                }
                _ => Err(DecodeError::InvalidSysOp(word)),
            }
        }
        // Wide move.
        _ => {
            if word & (0xF << 20) != 0 {
                return Err(DecodeError::ReservedBits(word));
            }
            Ok(Instr::MovW {
                cond,
                top: word & (1 << 24) != 0,
                rd: reg(word, 12),
                imm: ((((word >> 16) & 0xF) << 12) | (word & 0xFFF)) as u16,
            })
        }
    }
}

/// Disassembles a machine word to canonical assembly text, or a `.word`
/// directive when it does not decode.
pub fn disasm(word: u32) -> String {
    match decode(word) {
        Ok(i) => i.to_string(),
        Err(_) => format!(".word {word:#010x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn roundtrip(i: Instr) {
        let w = encode(&i);
        let d = decode(w).unwrap_or_else(|e| panic!("decode failed for {i}: {e}"));
        assert_eq!(d, i, "roundtrip mismatch for {i} ({w:#010x})");
    }

    #[test]
    fn roundtrip_representatives() {
        use crate::instr::*;
        use crate::reg::*;
        roundtrip(Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Add,
            s: true,
            rd: Reg::R1,
            rn: Reg::R2,
            op2: Operand2::Imm { imm8: 0x7F, rot: 3 },
        });
        roundtrip(Instr::Dp {
            cond: Cond::Lt,
            op: DpOp::Orr,
            s: false,
            rd: Reg::R9,
            rn: Reg::R10,
            op2: Operand2::Reg {
                rm: Reg::R11,
                shift: ShiftKind::Ror,
                amount: 31,
            },
        });
        roundtrip(Instr::Mul {
            cond: Cond::Al,
            op: MulOp::Smull,
            s: false,
            rd: Reg::R3,
            rn: Reg::R2,
            rs: Reg::R5,
            rm: Reg::R4,
        });
        roundtrip(Instr::LdSt {
            cond: Cond::Al,
            load: true,
            size: MemSize::SHalf,
            rd: Reg::R0,
            rn: Reg::SP,
            offset: Offset::Imm(511),
            up: false,
            mode: AddrMode::PreIndex,
        });
        roundtrip(Instr::LdSt {
            cond: Cond::Ne,
            load: false,
            size: MemSize::Word,
            rd: Reg::R7,
            rn: Reg::R8,
            offset: Offset::Reg(Reg::R9),
            up: true,
            mode: AddrMode::PostIndex,
        });
        roundtrip(Instr::LdStM {
            cond: Cond::Al,
            load: false,
            mode: MultiMode::Db,
            writeback: true,
            rn: Reg::SP,
            list: 0x4FF,
        });
        roundtrip(Instr::Branch {
            cond: Cond::Al,
            link: true,
            offset: -(1 << 23),
        });
        roundtrip(Instr::Branch {
            cond: Cond::Eq,
            link: false,
            offset: (1 << 23) - 1,
        });
        roundtrip(Instr::Bx {
            cond: Cond::Al,
            link: false,
            rm: Reg::LR,
        });
        roundtrip(Instr::Bx {
            cond: Cond::Al,
            link: true,
            rm: Reg::R4,
        });
        roundtrip(Instr::Swi {
            cond: Cond::Al,
            imm: 0xFFFF,
        });
        roundtrip(Instr::Nop { cond: Cond::Al });
        roundtrip(Instr::Clz {
            cond: Cond::Al,
            rd: Reg::R0,
            rm: Reg::R1,
        });
        roundtrip(Instr::MovW {
            cond: Cond::Al,
            top: true,
            rd: Reg::R12,
            imm: 0xFFFF,
        });
    }

    #[test]
    fn invalid_words_error() {
        // DP-reg with bit4 set.
        assert!(matches!(
            decode(0xE000_0010),
            Err(DecodeError::ReservedBits(_))
        ));
        // Multiply with opcode 15.
        let w = 0xE000_0000 | (0b010 << 25) | (0xF << 21);
        assert!(matches!(decode(w), Err(DecodeError::InvalidMulOp(_))));
        // LDST imm with size 7.
        let w = 0xE000_0000 | (0b011 << 25) | (1 << 24) | (1 << 23) | (7 << 9);
        assert!(matches!(decode(w), Err(DecodeError::InvalidMemSize(_))));
        // Signed store.
        let w = 0xE000_0000 | (0b011 << 25) | (1 << 23) | (3 << 9);
        assert!(matches!(decode(w), Err(DecodeError::SignedStore(_))));
        // P=0, W=1.
        let w = 0xE000_0000 | (0b011 << 25) | (1 << 24) | (1 << 21) | (2 << 9);
        assert!(matches!(decode(w), Err(DecodeError::InvalidAddrMode(_))));
        // Block transfer with empty list.
        let w = 0xE000_0000 | (0b100 << 25) | (1 << 24) | (1 << 20);
        assert!(matches!(decode(w), Err(DecodeError::EmptyRegList(_))));
        // System with sysop 9.
        let w = 0xE000_0000 | (0b110 << 25) | (9 << 21);
        assert!(matches!(decode(w), Err(DecodeError::InvalidSysOp(_))));
        // Errors format without panicking.
        for e in [
            DecodeError::ReservedBits(1),
            DecodeError::InvalidMulOp(2),
            DecodeError::InvalidMemSize(3),
            DecodeError::SignedStore(4),
            DecodeError::InvalidAddrMode(5),
            DecodeError::EmptyRegList(6),
            DecodeError::InvalidSysOp(7),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn disasm_falls_back_to_word() {
        assert_eq!(disasm(0xE000_0010), ".word 0xe0000010");
        assert!(!disasm(0xE080_0001).starts_with(".word"));
    }

    #[test]
    fn branch_sign_extension() {
        let i = decode(encode(&Instr::Branch {
            cond: Cond::Al,
            link: false,
            offset: -1,
        }))
        .unwrap();
        assert_eq!(
            i,
            Instr::Branch {
                cond: Cond::Al,
                link: false,
                offset: -1
            }
        );
    }
}
