//! Text assembler: parses SimARM assembly source onto the [`Asm`] builder.
//!
//! Supported syntax (one statement per line):
//!
//! ```text
//! ; comment        // comment        @ comment
//! label:
//! .equ NAME, expr          ; constant definition
//! .word expr [, expr ...]  ; literal words (or `=label` for an address)
//! .zero n                  ; n zero words
//! .asciz "text"
//! mnemonic operands
//! ```
//!
//! Mnemonics follow ARM conventions: optional condition and `s` suffixes
//! (`addne`, `subs`, `ldrbeq`, `stmdb`, `bne`, …), `#imm` immediates
//! (decimal, hex `0x`, binary `0b`, or a `.equ` name), `[rn, #off]`,
//! `[rn, rm]`, `[rn], #off` post-indexing, `!` writeback and `{r0-r3, lr}`
//! register lists. `li rd, #imm32` and `adr rd, label` are pseudo
//! instructions lowered to MOVW/MOVT sequences.

// Host-side assembly happens before the simulation starts; these symbol
// tables are keyed lookups only, never iterated into sim-visible order.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;

use crate::asm::{reg_list, Asm, AsmError, Program};
use crate::instr::{
    AddrMode, DpOp, Instr, MemSize, MulOp, MultiMode, Offset, Operand2, ShiftKind,
};
use crate::reg::{Cond, Reg};

/// Assembles SimARM source text into a program loaded at `base`.
///
/// # Errors
///
/// Returns [`AsmError::Parse`] with a 1-based line number for syntax errors,
/// or any label-resolution error from the underlying builder.
///
/// # Examples
///
/// ```
/// use dmi_isa::assemble_text;
///
/// let prog = assemble_text(r#"
///     .equ LIMIT, 5
///         li   r0, #0
///         li   r1, #LIMIT
///     loop:
///         add  r0, r0, #1
///         cmp  r0, r1
///         bne  loop
///         swi  #0
/// "#, 0).unwrap();
/// assert!(prog.symbol("loop").is_some());
/// ```
pub fn assemble_text(source: &str, base: u32) -> Result<Program, AsmError> {
    let mut asm = Asm::new();
    let mut equs: HashMap<String, i64> = HashMap::new();

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        parse_line(raw_line, line_no, &mut asm, &mut equs)?;
    }
    asm.assemble(base)
}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError::Parse {
        line,
        msg: msg.into(),
    }
}

fn strip_comment(line: &str) -> &str {
    // Comments start with ';', '@' or '//' outside of string literals.
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_str {
            if c == '"' {
                in_str = false;
            }
        } else {
            match c {
                '"' => in_str = true,
                ';' | '@' => return &line[..i],
                '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => return &line[..i],
                _ => {}
            }
        }
        i += 1;
    }
    line
}

fn parse_line(
    raw: &str,
    line_no: usize,
    asm: &mut Asm,
    equs: &mut HashMap<String, i64>,
) -> Result<(), AsmError> {
    let mut line = strip_comment(raw).trim();
    // Labels (possibly several) at line start.
    while let Some(colon) = line.find(':') {
        let (candidate, rest) = line.split_at(colon);
        let candidate = candidate.trim();
        if candidate.is_empty() || !is_ident(candidate) {
            break;
        }
        asm.try_label(candidate)?;
        line = rest[1..].trim();
    }
    if line.is_empty() {
        return Ok(());
    }
    if let Some(directive) = line.strip_prefix('.') {
        return parse_directive(directive, line_no, asm, equs);
    }
    parse_instruction(line, line_no, asm, equs)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.chars().next().unwrap().is_ascii_digit()
}

fn parse_directive(
    directive: &str,
    line_no: usize,
    asm: &mut Asm,
    equs: &mut HashMap<String, i64>,
) -> Result<(), AsmError> {
    let (name, rest) = directive
        .split_once(char::is_whitespace)
        .unwrap_or((directive, ""));
    let rest = rest.trim();
    match name {
        "equ" | "set" => {
            let (sym, val) = rest
                .split_once(',')
                .ok_or_else(|| err(line_no, ".equ requires `name, value`"))?;
            let value = parse_int(val.trim(), equs)
                .ok_or_else(|| err(line_no, format!("bad .equ value `{}`", val.trim())))?;
            equs.insert(sym.trim().to_owned(), value);
            Ok(())
        }
        "word" => {
            for part in rest.split(',') {
                let part = part.trim();
                if let Some(label) = part.strip_prefix('=') {
                    asm.word_label(label.trim());
                } else {
                    let v = parse_int(part, equs)
                        .ok_or_else(|| err(line_no, format!("bad word `{part}`")))?;
                    asm.word(v as u32);
                }
            }
            Ok(())
        }
        "zero" | "space" => {
            let n = parse_int(rest, equs)
                .ok_or_else(|| err(line_no, format!("bad count `{rest}`")))?;
            asm.zeros(n as usize);
            Ok(())
        }
        "asciz" | "string" => {
            let s = rest
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| err(line_no, "expected quoted string"))?;
            asm.asciz(s);
            Ok(())
        }
        "align" | "global" | "globl" | "text" | "data" => Ok(()), // accepted, no-op
        other => Err(err(line_no, format!("unknown directive `.{other}`"))),
    }
}

fn parse_int(s: &str, equs: &HashMap<String, i64>) -> Option<i64> {
    let s = s.trim();
    if let Some(v) = equs.get(s) {
        return Some(*v);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b.trim()),
        None => (false, s),
    };
    let mag = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).ok()?
    } else if body.chars().all(|c| c.is_ascii_digit()) && !body.is_empty() {
        body.parse().ok()?
    } else if let Some(v) = equs.get(body) {
        *v
    } else {
        return None;
    };
    Some(if neg { -mag } else { mag })
}

fn parse_reg(s: &str) -> Option<Reg> {
    let s = s.trim().to_ascii_lowercase();
    Some(match s.as_str() {
        "sp" => Reg::SP,
        "lr" => Reg::LR,
        "pc" => Reg::PC,
        "fp" => Reg::R11,
        "ip" => Reg::R12,
        _ => {
            let n: u8 = s.strip_prefix('r')?.parse().ok()?;
            if n > 15 {
                return None;
            }
            Reg::new(n)
        }
    })
}

/// Splits top-level commas (not inside `[]`, `{}` or quotes).
fn split_operands(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' | '{' => {
                depth += 1;
                cur.push(c);
            }
            ']' | '}' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                parts.push(cur.trim().to_owned());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_owned());
    }
    parts
}

fn parse_imm(s: &str, equs: &HashMap<String, i64>) -> Option<i64> {
    parse_int(s.trim().strip_prefix('#')?, equs)
}

fn parse_shift(parts: &[String], equs: &HashMap<String, i64>) -> Option<(ShiftKind, u8)> {
    if parts.is_empty() {
        return Some((ShiftKind::Lsl, 0));
    }
    if parts.len() != 1 {
        return None;
    }
    let p = parts[0].to_ascii_lowercase();
    let (kind, rest) = if let Some(r) = p.strip_prefix("lsl") {
        (ShiftKind::Lsl, r)
    } else if let Some(r) = p.strip_prefix("lsr") {
        (ShiftKind::Lsr, r)
    } else if let Some(r) = p.strip_prefix("asr") {
        (ShiftKind::Asr, r)
    } else if let Some(r) = p.strip_prefix("ror") {
        (ShiftKind::Ror, r)
    } else {
        return None;
    };
    let amount = parse_int(rest.trim().strip_prefix('#')?, equs)?;
    if !(0..32).contains(&amount) {
        return None;
    }
    Some((kind, amount as u8))
}

/// Parses operand2: `#imm`, `rm`, or `rm, shift #n` (already comma-split).
fn parse_op2(parts: &[String], equs: &HashMap<String, i64>) -> Option<Operand2> {
    if parts.is_empty() {
        return None;
    }
    if let Some(v) = parse_imm(&parts[0], equs) {
        if parts.len() != 1 {
            return None;
        }
        return Operand2::try_imm(v as u32);
    }
    let rm = parse_reg(&parts[0])?;
    let (shift, amount) = parse_shift(&parts[1..], equs)?;
    Some(Operand2::Reg { rm, shift, amount })
}

fn parse_reglist(s: &str) -> Option<u16> {
    let body = s.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut regs = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if let Some((lo, hi)) = part.split_once('-') {
            let lo = parse_reg(lo)?;
            let hi = parse_reg(hi)?;
            if lo.index() > hi.index() {
                return None;
            }
            for i in lo.index()..=hi.index() {
                regs.push(Reg::new(i));
            }
        } else {
            regs.push(parse_reg(part)?);
        }
    }
    if regs.is_empty() {
        None
    } else {
        Some(reg_list(&regs))
    }
}

/// Splits a mnemonic into `(base, cond, s)` trying known suffix layouts.
fn split_mnemonic(mnem: &str, bases: &[&'static str]) -> Option<(&'static str, Cond, bool)> {
    // Longest base first so `mul` does not shadow `mull`-style names.
    let mut sorted: Vec<&'static str> = bases.to_vec();
    sorted.sort_by_key(|b| std::cmp::Reverse(b.len()));
    for base in sorted {
        if let Some(rest) = mnem.strip_prefix(base) {
            // rest in { "", cond, "s", cond+"s", "s"+cond }
            if rest.is_empty() {
                return Some((base, Cond::Al, false));
            }
            if rest == "s" {
                return Some((base, Cond::Al, true));
            }
            if let Some(c) = Cond::from_suffix(rest) {
                return Some((base, c, false));
            }
            if let Some(r) = rest.strip_suffix('s') {
                if let Some(c) = Cond::from_suffix(r) {
                    return Some((base, c, true));
                }
            }
            if let Some(r) = rest.strip_prefix('s') {
                if let Some(c) = Cond::from_suffix(r) {
                    return Some((base, c, true));
                }
            }
        }
    }
    None
}

const DP_BASES: &[&str] = &[
    "and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc", "tst", "teq", "cmp", "cmn", "orr",
    "mov", "bic", "mvn", "lsl", "lsr", "asr", "ror",
];

const MUL_BASES: &[&str] = &["mul", "mla", "umull", "smull", "umlal", "smlal"];

fn dp_op(base: &str) -> Option<DpOp> {
    Some(match base {
        "and" => DpOp::And,
        "eor" => DpOp::Eor,
        "sub" => DpOp::Sub,
        "rsb" => DpOp::Rsb,
        "add" => DpOp::Add,
        "adc" => DpOp::Adc,
        "sbc" => DpOp::Sbc,
        "rsc" => DpOp::Rsc,
        "tst" => DpOp::Tst,
        "teq" => DpOp::Teq,
        "cmp" => DpOp::Cmp,
        "cmn" => DpOp::Cmn,
        "orr" => DpOp::Orr,
        "mov" => DpOp::Mov,
        "bic" => DpOp::Bic,
        "mvn" => DpOp::Mvn,
        _ => return None,
    })
}

#[allow(clippy::too_many_lines)]
fn parse_instruction(
    line: &str,
    line_no: usize,
    asm: &mut Asm,
    equs: &HashMap<String, i64>,
) -> Result<(), AsmError> {
    let (mnem_raw, rest) = line
        .split_once(char::is_whitespace)
        .unwrap_or((line, ""));
    let mnem = mnem_raw.to_ascii_lowercase();
    let ops = split_operands(rest.trim());
    let bad = |msg: &str| err(line_no, format!("{msg} in `{line}`"));

    // Branches first ('b' prefix collides with everything).
    if mnem == "bx" || mnem == "blx" || mnem.starts_with("bx") || mnem.starts_with("blx") {
        let (link, rest) = if let Some(r) = mnem.strip_prefix("blx") {
            (true, r)
        } else {
            (false, mnem.strip_prefix("bx").unwrap())
        };
        if let Some(cond) = Cond::from_suffix(rest) {
            let rm = ops
                .first()
                .and_then(|s| parse_reg(s))
                .ok_or_else(|| bad("expected register"))?;
            asm.emit(Instr::Bx { cond, link, rm });
            return Ok(());
        }
    }
    if mnem.starts_with('b') && !mnem.starts_with("bic") {
        // Try bl+cond then b+cond.
        let attempt = |prefix: &str| -> Option<(bool, Cond)> {
            mnem.strip_prefix(prefix)
                .and_then(Cond::from_suffix)
                .map(|c| (prefix == "bl", c))
        };
        if let Some((link, cond)) = attempt("bl").or_else(|| attempt("b")) {
            let target = ops.first().ok_or_else(|| bad("expected branch target"))?;
            if !is_ident(target) {
                return Err(bad("branch target must be a label"));
            }
            if link {
                asm.bl_cond(cond, target.clone());
            } else {
                asm.b_cond(cond, target.clone());
            }
            return Ok(());
        }
    }

    // Pseudo instructions.
    if mnem == "li" {
        let rd = ops
            .first()
            .and_then(|s| parse_reg(s))
            .ok_or_else(|| bad("expected register"))?;
        let v = ops
            .get(1)
            .and_then(|s| parse_imm(s, equs))
            .ok_or_else(|| bad("expected immediate"))?;
        asm.li(rd, v as u32);
        return Ok(());
    }
    if mnem == "adr" {
        let rd = ops
            .first()
            .and_then(|s| parse_reg(s))
            .ok_or_else(|| bad("expected register"))?;
        let label = ops.get(1).ok_or_else(|| bad("expected label"))?;
        asm.adr(rd, label.clone());
        return Ok(());
    }
    if mnem == "ret" {
        asm.ret();
        return Ok(());
    }
    if let Some(cond) = mnem.strip_prefix("nop").and_then(Cond::from_suffix) {
        asm.emit(Instr::Nop { cond });
        return Ok(());
    }
    if let Some(cond) = mnem.strip_prefix("swi").and_then(Cond::from_suffix) {
        let imm = ops
            .first()
            .and_then(|s| parse_imm(s, equs))
            .ok_or_else(|| bad("expected immediate"))?;
        asm.emit(Instr::Swi {
            cond,
            imm: imm as u16,
        });
        return Ok(());
    }
    if let Some(cond) = mnem.strip_prefix("clz").and_then(Cond::from_suffix) {
        let rd = ops
            .first()
            .and_then(|s| parse_reg(s))
            .ok_or_else(|| bad("expected register"))?;
        let rm = ops
            .get(1)
            .and_then(|s| parse_reg(s))
            .ok_or_else(|| bad("expected register"))?;
        asm.emit(Instr::Clz { cond, rd, rm });
        return Ok(());
    }
    if let Some(rest) = mnem.strip_prefix("movw") {
        if let Some(cond) = Cond::from_suffix(rest) {
            return emit_movw(asm, cond, false, &ops, equs).map_err(|m| bad(&m));
        }
    }
    if let Some(rest) = mnem.strip_prefix("movt") {
        if let Some(cond) = Cond::from_suffix(rest) {
            return emit_movw(asm, cond, true, &ops, equs).map_err(|m| bad(&m));
        }
    }
    if mnem == "push" || mnem == "pop" {
        let list = ops
            .first()
            .and_then(|s| parse_reglist(s))
            .ok_or_else(|| bad("expected register list"))?;
        asm.emit(Instr::LdStM {
            cond: Cond::Al,
            load: mnem == "pop",
            mode: if mnem == "pop" {
                MultiMode::Ia
            } else {
                MultiMode::Db
            },
            writeback: true,
            rn: Reg::SP,
            list,
        });
        return Ok(());
    }

    // Block transfers: ldm/stm + ia/db/fd + cond.
    for (prefix, load) in [("ldm", true), ("stm", false)] {
        if let Some(rest) = mnem.strip_prefix(prefix) {
            let (mode, rest) = if let Some(r) = rest.strip_prefix("ia") {
                (MultiMode::Ia, r)
            } else if let Some(r) = rest.strip_prefix("db") {
                (MultiMode::Db, r)
            } else if let Some(r) = rest.strip_prefix("fd") {
                // Full-descending aliases: ldmfd == ldmia, stmfd == stmdb.
                (if load { MultiMode::Ia } else { MultiMode::Db }, r)
            } else {
                continue;
            };
            let Some(cond) = Cond::from_suffix(rest) else {
                continue;
            };
            let rn_part = ops.first().ok_or_else(|| bad("expected base register"))?;
            let writeback = rn_part.ends_with('!');
            let rn = parse_reg(rn_part.trim_end_matches('!'))
                .ok_or_else(|| bad("bad base register"))?;
            let list = ops
                .get(1)
                .and_then(|s| parse_reglist(s))
                .ok_or_else(|| bad("expected register list"))?;
            asm.emit(Instr::LdStM {
                cond,
                load,
                mode,
                writeback,
                rn,
                list,
            });
            return Ok(());
        }
    }

    // Single loads/stores.
    for (prefix, load) in [("ldr", true), ("str", false)] {
        if let Some(rest) = mnem.strip_prefix(prefix) {
            let sizes: &[(&str, MemSize)] = &[
                ("sb", MemSize::SByte),
                ("sh", MemSize::SHalf),
                ("b", MemSize::Byte),
                ("h", MemSize::Half),
                ("", MemSize::Word),
            ];
            let mut found = None;
            for &(suffix, size) in sizes {
                // Accept size+cond and cond+size orders.
                if let Some(r) = rest.strip_prefix(suffix) {
                    if let Some(c) = Cond::from_suffix(r) {
                        found = Some((size, c));
                        break;
                    }
                }
                if let Some(r) = rest.strip_suffix(suffix) {
                    if let Some(c) = Cond::from_suffix(r) {
                        found = Some((size, c));
                        break;
                    }
                }
            }
            let Some((size, cond)) = found else { continue };
            return parse_mem_operands(asm, cond, load, size, &ops, equs).map_err(|m| bad(&m));
        }
    }

    // Multiplies.
    if let Some((base, cond, s)) = split_mnemonic(&mnem, MUL_BASES) {
        let r = |i: usize| -> Result<Reg, AsmError> {
            ops.get(i)
                .and_then(|x| parse_reg(x))
                .ok_or_else(|| bad("expected register"))
        };
        let instr = match base {
            "mul" => Instr::Mul {
                cond,
                op: MulOp::Mul,
                s,
                rd: r(0)?,
                rn: Reg::R0,
                rs: r(2)?,
                rm: r(1)?,
            },
            "mla" => Instr::Mul {
                cond,
                op: MulOp::Mla,
                s,
                rd: r(0)?,
                rn: r(3)?,
                rs: r(2)?,
                rm: r(1)?,
            },
            long => {
                let op = match long {
                    "umull" => MulOp::Umull,
                    "smull" => MulOp::Smull,
                    "umlal" => MulOp::Umlal,
                    _ => MulOp::Smlal,
                };
                Instr::Mul {
                    cond,
                    op,
                    s,
                    rn: r(0)?,
                    rd: r(1)?,
                    rm: r(2)?,
                    rs: r(3)?,
                }
            }
        };
        asm.emit(instr);
        return Ok(());
    }

    // Data processing (includes shift aliases).
    if let Some((base, cond, s)) = split_mnemonic(&mnem, DP_BASES) {
        // Shift aliases: `lsl rd, rm, #n` -> `mov rd, rm, lsl #n`.
        if let Some(kind) = match base {
            "lsl" => Some(ShiftKind::Lsl),
            "lsr" => Some(ShiftKind::Lsr),
            "asr" => Some(ShiftKind::Asr),
            "ror" => Some(ShiftKind::Ror),
            _ => None,
        } {
            let rd = ops
                .first()
                .and_then(|x| parse_reg(x))
                .ok_or_else(|| bad("expected register"))?;
            let rm = ops
                .get(1)
                .and_then(|x| parse_reg(x))
                .ok_or_else(|| bad("expected register"))?;
            let amount = ops
                .get(2)
                .and_then(|x| parse_imm(x, equs))
                .ok_or_else(|| bad("expected shift amount"))?;
            if !(0..32).contains(&amount) {
                return Err(bad("shift amount out of range"));
            }
            asm.dp(
                cond,
                DpOp::Mov,
                s,
                rd,
                Reg::R0,
                Operand2::Reg {
                    rm,
                    shift: kind,
                    amount: amount as u8,
                },
            );
            return Ok(());
        }
        let op = dp_op(base).expect("base is a dp op");
        // Compares always set flags; the S suffix is implied.
        let s = s || op.is_compare();
        let (rd, rn, op2_parts): (Reg, Reg, &[String]) = if op.is_compare() {
            let rn = ops
                .first()
                .and_then(|x| parse_reg(x))
                .ok_or_else(|| bad("expected register"))?;
            (Reg::R0, rn, &ops[1..])
        } else if op.is_unary() {
            let rd = ops
                .first()
                .and_then(|x| parse_reg(x))
                .ok_or_else(|| bad("expected register"))?;
            (rd, Reg::R0, &ops[1..])
        } else {
            let rd = ops
                .first()
                .and_then(|x| parse_reg(x))
                .ok_or_else(|| bad("expected register"))?;
            let rn = ops
                .get(1)
                .and_then(|x| parse_reg(x))
                .ok_or_else(|| bad("expected register"))?;
            (rd, rn, &ops[2..])
        };
        let op2 = parse_op2(op2_parts, equs).ok_or_else(|| bad("bad operand2"))?;
        asm.dp(cond, op, s, rd, rn, op2);
        return Ok(());
    }

    Err(err(line_no, format!("unknown mnemonic `{mnem_raw}`")))
}

fn emit_movw(
    asm: &mut Asm,
    cond: Cond,
    top: bool,
    ops: &[String],
    equs: &HashMap<String, i64>,
) -> Result<(), String> {
    let rd = ops
        .first()
        .and_then(|s| parse_reg(s))
        .ok_or("expected register")?;
    let imm = ops
        .get(1)
        .and_then(|s| parse_imm(s, equs))
        .ok_or("expected immediate")?;
    if !(0..=0xFFFF).contains(&imm) {
        return Err("imm16 out of range".into());
    }
    asm.emit(Instr::MovW {
        cond,
        top,
        rd,
        imm: imm as u16,
    });
    Ok(())
}

fn parse_mem_operands(
    asm: &mut Asm,
    cond: Cond,
    load: bool,
    size: MemSize,
    ops: &[String],
    equs: &HashMap<String, i64>,
) -> Result<(), String> {
    let rd = ops
        .first()
        .and_then(|s| parse_reg(s))
        .ok_or("expected data register")?;
    let addr = ops.get(1).ok_or("expected address operand")?;

    // Post-index form: `[rn], #off` or `[rn], rm` arrives as two operands
    // because of the top-level comma: ops[1] = "[rn]", ops[2] = offset.
    if addr.ends_with(']') && ops.len() > 2 {
        let rn = parse_reg(
            addr.trim()
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(']'))
                .ok_or("bad base register")?,
        )
        .ok_or("bad base register")?;
        let (offset, up) = parse_offset(&ops[2], equs)?;
        asm.ldst(cond, load, size, rd, rn, offset, up, AddrMode::PostIndex);
        return Ok(());
    }

    let (body, mode) = if let Some(b) = addr.strip_suffix('!') {
        (b.trim(), AddrMode::PreIndex)
    } else {
        (addr.trim(), AddrMode::Offset)
    };
    let inner = body
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or("expected [rn, ...] address")?;
    let parts = split_operands(inner);
    let rn = parts
        .first()
        .and_then(|s| parse_reg(s))
        .ok_or("bad base register")?;
    let (offset, up) = if parts.len() > 1 {
        parse_offset(&parts[1], equs)?
    } else {
        (Offset::Imm(0), true)
    };
    asm.ldst(cond, load, size, rd, rn, offset, up, mode);
    Ok(())
}

fn parse_offset(s: &str, equs: &HashMap<String, i64>) -> Result<(Offset, bool), String> {
    let s = s.trim();
    if let Some(v) = parse_imm(s, equs) {
        if v.unsigned_abs() >= 512 {
            return Err(format!("offset {v} out of 9-bit range"));
        }
        return Ok((Offset::Imm(v.unsigned_abs() as u16), v >= 0));
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let rm = parse_reg(body).ok_or_else(|| format!("bad offset `{s}`"))?;
    Ok((Offset::Reg(rm), !neg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    fn one(src: &str) -> Instr {
        let p = assemble_text(src, 0).unwrap_or_else(|e| panic!("{src}: {e}"));
        decode(p.words()[0]).unwrap()
    }

    #[test]
    fn dp_forms() {
        assert_eq!(one("add r0, r1, #4").to_string(), "add r0, r1, #4");
        assert_eq!(one("subs r2, r3, r4").to_string(), "subs r2, r3, r4");
        assert_eq!(one("addne r0, r0, #1").to_string(), "addne r0, r0, #1");
        assert_eq!(
            one("orr r1, r2, r3, lsl #4").to_string(),
            "orr r1, r2, r3, lsl #4"
        );
        assert_eq!(one("cmp r1, #0").to_string(), "cmp r1, #0");
        assert_eq!(one("mvn r0, r1").to_string(), "mvn r0, r1");
        assert_eq!(one("lsl r0, r1, #3").to_string(), "mov r0, r1, lsl #3");
        assert_eq!(one("asrs r0, r1, #2").to_string(), "movs r0, r1, asr #2");
    }

    #[test]
    fn mem_forms() {
        assert_eq!(one("ldr r0, [r1]").to_string(), "ldr r0, [r1]");
        assert_eq!(one("ldr r0, [r1, #8]").to_string(), "ldr r0, [r1, #8]");
        assert_eq!(one("str r0, [r1, #-4]").to_string(), "str r0, [r1, #-4]");
        assert_eq!(one("ldrb r0, [r1, r2]").to_string(), "ldrb r0, [r1, r2]");
        assert_eq!(
            one("ldrsh r0, [r1, #2]").to_string(),
            "ldrsh r0, [r1, #2]"
        );
        assert_eq!(one("ldr r0, [r1], #4").to_string(), "ldr r0, [r1], #4");
        assert_eq!(
            one("str r0, [r1, #4]!").to_string(),
            "str r0, [r1, #4]!"
        );
        assert_eq!(one("ldreq r0, [r1]").to_string(), "ldreq r0, [r1]");
        // Both suffix orders are accepted; canonical output is cond-first.
        assert_eq!(one("ldrbne r0, [r1]").to_string(), "ldrneb r0, [r1]");
        assert_eq!(one("ldrneb r0, [r1]").to_string(), "ldrneb r0, [r1]");
    }

    #[test]
    fn block_and_stack_forms() {
        assert_eq!(
            one("push {r0, r1, lr}").to_string(),
            "stmdb sp!, {r0, r1, lr}"
        );
        assert_eq!(one("pop {r0-r2}").to_string(), "ldmia sp!, {r0, r1, r2}");
        assert_eq!(
            one("stmdb sp!, {r4, lr}").to_string(),
            "stmdb sp!, {r4, lr}"
        );
        assert_eq!(
            one("ldmfd sp!, {r4, pc}").to_string(),
            "ldmia sp!, {r4, pc}"
        );
    }

    #[test]
    fn branch_forms() {
        let p = assemble_text("start: b start", 0).unwrap();
        assert!(matches!(
            decode(p.words()[0]).unwrap(),
            Instr::Branch { link: false, .. }
        ));
        let p = assemble_text("f: bl f\nbne f\nbls f", 0).unwrap();
        assert!(matches!(
            decode(p.words()[0]).unwrap(),
            Instr::Branch { link: true, .. }
        ));
        assert!(matches!(
            decode(p.words()[1]).unwrap(),
            Instr::Branch {
                cond: Cond::Ne,
                link: false,
                ..
            }
        ));
        // "bls" must parse as b + ls, not bl + s.
        assert!(matches!(
            decode(p.words()[2]).unwrap(),
            Instr::Branch {
                cond: Cond::Ls,
                link: false,
                ..
            }
        ));
        assert_eq!(one("bx lr").to_string(), "bx lr");
        assert_eq!(one("blx r3").to_string(), "blx r3");
    }

    #[test]
    fn mul_forms() {
        assert_eq!(one("mul r0, r1, r2").to_string(), "mul r0, r1, r2");
        assert_eq!(
            one("mla r0, r1, r2, r3").to_string(),
            "mla r0, r1, r2, r3"
        );
        assert_eq!(
            one("smull r0, r1, r2, r3").to_string(),
            "smull r0, r1, r2, r3"
        );
    }

    #[test]
    fn misc_forms() {
        assert_eq!(one("nop").to_string(), "nop");
        assert_eq!(one("swi #17").to_string(), "swi #17");
        assert_eq!(one("clz r0, r1").to_string(), "clz r0, r1");
        assert_eq!(one("movw r0, #0xFFFF").to_string(), "movw r0, #65535");
        assert_eq!(one("movt r0, #1").to_string(), "movt r0, #1");
        assert_eq!(one("ret").to_string(), "bx lr");
    }

    #[test]
    fn equ_and_directives() {
        let p = assemble_text(
            r#"
            .equ SIZE, 0x20
            .equ NEG, -4
                li r0, #SIZE
                ldr r1, [r2, #NEG]
            data:
                .word 1, 2, 0x30
                .word =data
                .zero 2
                .asciz "ok"
            "#,
            0x1000,
        )
        .unwrap();
        assert_eq!(p.words()[2], 1);
        assert_eq!(p.words()[3], 2);
        assert_eq!(p.words()[4], 0x30);
        assert_eq!(p.words()[5], p.symbol("data").unwrap());
        assert_eq!(p.words()[6], 0);
        assert_eq!(p.words()[8], u32::from_le_bytes(*b"ok\0\0"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble_text("  nop\n  frobnicate r0\n", 0).unwrap_err();
        match e {
            AsmError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("frobnicate"));
            }
            other => panic!("unexpected error {other}"),
        }
        assert!(assemble_text("add r0", 0).is_err());
        assert!(assemble_text("ldr r0, [r1, #9999]", 0).is_err());
        assert!(assemble_text("b 123", 0).is_err());
    }

    #[test]
    fn comments_and_labels() {
        let p = assemble_text(
            "; full line\nstart: nop // trailing\n  @ another\nend: nop ; x\n",
            0,
        )
        .unwrap();
        assert_eq!(p.symbol("start"), Some(0));
        assert_eq!(p.symbol("end"), Some(4));
        assert_eq!(p.words().len(), 2);
    }

    #[test]
    fn full_program_assembles_and_runs_shape() {
        let src = r#"
        .equ N, 10
            li   r0, #0         ; sum
            li   r1, #1         ; i
        loop:
            add  r0, r0, r1
            add  r1, r1, #1
            cmp  r1, #N
            ble  loop
            swi  #0
        "#;
        let p = assemble_text(src, 0).unwrap();
        assert!(p.words().len() >= 7);
        let text = p.disassemble();
        assert!(text.contains("loop:"));
        assert!(text.contains("ble"));
    }
}
