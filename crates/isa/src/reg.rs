//! Registers and condition codes of the SimARM ISA.

use std::fmt;

/// One of the sixteen general-purpose registers.
///
/// `r13` is the conventional stack pointer ([`Reg::SP`]), `r14` the link
/// register ([`Reg::LR`]) and `r15` the program counter ([`Reg::PC`]).
///
/// # Examples
///
/// ```
/// use dmi_isa::Reg;
/// assert_eq!(Reg::SP, Reg::new(13));
/// assert_eq!(Reg::R4.index(), 4);
/// assert_eq!(Reg::PC.to_string(), "pc");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// General-purpose register 0.
    pub const R0: Reg = Reg(0);
    /// General-purpose register 1.
    pub const R1: Reg = Reg(1);
    /// General-purpose register 2.
    pub const R2: Reg = Reg(2);
    /// General-purpose register 3.
    pub const R3: Reg = Reg(3);
    /// General-purpose register 4.
    pub const R4: Reg = Reg(4);
    /// General-purpose register 5.
    pub const R5: Reg = Reg(5);
    /// General-purpose register 6.
    pub const R6: Reg = Reg(6);
    /// General-purpose register 7.
    pub const R7: Reg = Reg(7);
    /// General-purpose register 8.
    pub const R8: Reg = Reg(8);
    /// General-purpose register 9.
    pub const R9: Reg = Reg(9);
    /// General-purpose register 10.
    pub const R10: Reg = Reg(10);
    /// General-purpose register 11.
    pub const R11: Reg = Reg(11);
    /// General-purpose register 12.
    pub const R12: Reg = Reg(12);
    /// Stack pointer (`r13`).
    pub const SP: Reg = Reg(13);
    /// Link register (`r14`).
    pub const LR: Reg = Reg(14);
    /// Program counter (`r15`).
    pub const PC: Reg = Reg(15);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 15`.
    #[inline]
    pub const fn new(index: u8) -> Reg {
        assert!(index < 16, "register index out of range");
        Reg(index)
    }

    /// The register's index, `0..=15`.
    #[inline]
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the program counter.
    #[inline]
    pub const fn is_pc(self) -> bool {
        self.0 == 15
    }

    /// All sixteen registers, in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..16).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            13 => f.write_str("sp"),
            14 => f.write_str("lr"),
            15 => f.write_str("pc"),
            n => write!(f, "r{n}"),
        }
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

/// Condition code governing whether an instruction executes.
///
/// Encodings match the classic ARM numbering; [`Cond::Nv`] ("never") is a
/// valid encoding that always suppresses execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum Cond {
    /// Equal (`Z == 1`).
    Eq = 0,
    /// Not equal (`Z == 0`).
    Ne = 1,
    /// Carry set / unsigned higher-or-same.
    Cs = 2,
    /// Carry clear / unsigned lower.
    Cc = 3,
    /// Minus / negative (`N == 1`).
    Mi = 4,
    /// Plus / positive or zero (`N == 0`).
    Pl = 5,
    /// Overflow set (`V == 1`).
    Vs = 6,
    /// Overflow clear (`V == 0`).
    Vc = 7,
    /// Unsigned higher (`C == 1 && Z == 0`).
    Hi = 8,
    /// Unsigned lower-or-same (`C == 0 || Z == 1`).
    Ls = 9,
    /// Signed greater-or-equal (`N == V`).
    Ge = 10,
    /// Signed less-than (`N != V`).
    Lt = 11,
    /// Signed greater-than (`Z == 0 && N == V`).
    Gt = 12,
    /// Signed less-or-equal (`Z == 1 || N != V`).
    Le = 13,
    /// Always.
    #[default]
    Al = 14,
    /// Never (reserved in ARM; here: architecturally a no-op).
    Nv = 15,
}

impl Cond {
    /// Decodes a 4-bit condition field.
    #[inline]
    pub fn from_bits(bits: u32) -> Cond {
        match bits & 0xF {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Cs,
            3 => Cond::Cc,
            4 => Cond::Mi,
            5 => Cond::Pl,
            6 => Cond::Vs,
            7 => Cond::Vc,
            8 => Cond::Hi,
            9 => Cond::Ls,
            10 => Cond::Ge,
            11 => Cond::Lt,
            12 => Cond::Gt,
            13 => Cond::Le,
            14 => Cond::Al,
            _ => Cond::Nv,
        }
    }

    /// The 4-bit encoding of this condition.
    #[inline]
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Evaluates the condition against NZCV flags.
    pub fn holds(self, n: bool, z: bool, c: bool, v: bool) -> bool {
        match self {
            Cond::Eq => z,
            Cond::Ne => !z,
            Cond::Cs => c,
            Cond::Cc => !c,
            Cond::Mi => n,
            Cond::Pl => !n,
            Cond::Vs => v,
            Cond::Vc => !v,
            Cond::Hi => c && !z,
            Cond::Ls => !c || z,
            Cond::Ge => n == v,
            Cond::Lt => n != v,
            Cond::Gt => !z && n == v,
            Cond::Le => z || n != v,
            Cond::Al => true,
            Cond::Nv => false,
        }
    }

    /// The assembly suffix (`""` for always, `"eq"`, `"ne"`, …).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "",
            Cond::Nv => "nv",
        }
    }

    /// Parses a condition suffix; `""` yields [`Cond::Al`].
    pub fn from_suffix(s: &str) -> Option<Cond> {
        Some(match s {
            "" | "al" => Cond::Al,
            "eq" => Cond::Eq,
            "ne" => Cond::Ne,
            "cs" | "hs" => Cond::Cs,
            "cc" | "lo" => Cond::Cc,
            "mi" => Cond::Mi,
            "pl" => Cond::Pl,
            "vs" => Cond::Vs,
            "vc" => Cond::Vc,
            "hi" => Cond::Hi,
            "ls" => Cond::Ls,
            "ge" => Cond::Ge,
            "lt" => Cond::Lt,
            "gt" => Cond::Gt,
            "le" => Cond::Le,
            "nv" => Cond::Nv,
            _ => return None,
        })
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_constants_and_display() {
        assert_eq!(Reg::SP.index(), 13);
        assert_eq!(Reg::LR.index(), 14);
        assert!(Reg::PC.is_pc());
        assert!(!Reg::R0.is_pc());
        assert_eq!(Reg::R7.to_string(), "r7");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::LR.to_string(), "lr");
        assert_eq!(Reg::all().count(), 16);
        assert_eq!(u8::from(Reg::R9), 9);
    }

    #[test]
    #[should_panic(expected = "register index")]
    fn reg_out_of_range() {
        Reg::new(16);
    }

    #[test]
    fn cond_bits_roundtrip() {
        for bits in 0..16u32 {
            assert_eq!(Cond::from_bits(bits).bits(), bits);
        }
    }

    #[test]
    fn cond_suffix_roundtrip() {
        for bits in 0..16u32 {
            let c = Cond::from_bits(bits);
            if c == Cond::Al {
                assert_eq!(Cond::from_suffix(""), Some(Cond::Al));
            } else {
                assert_eq!(Cond::from_suffix(c.suffix()), Some(c));
            }
        }
        assert_eq!(Cond::from_suffix("hs"), Some(Cond::Cs));
        assert_eq!(Cond::from_suffix("lo"), Some(Cond::Cc));
        assert_eq!(Cond::from_suffix("zz"), None);
    }

    #[test]
    fn cond_evaluation_truth_table() {
        // (n, z, c, v)
        let f = false;
        let t = true;
        assert!(Cond::Eq.holds(f, t, f, f));
        assert!(!Cond::Eq.holds(f, f, f, f));
        assert!(Cond::Ne.holds(f, f, f, f));
        assert!(Cond::Cs.holds(f, f, t, f));
        assert!(Cond::Cc.holds(f, f, f, f));
        assert!(Cond::Mi.holds(t, f, f, f));
        assert!(Cond::Pl.holds(f, f, f, f));
        assert!(Cond::Vs.holds(f, f, f, t));
        assert!(Cond::Vc.holds(f, f, f, f));
        assert!(Cond::Hi.holds(f, f, t, f));
        assert!(!Cond::Hi.holds(f, t, t, f));
        assert!(Cond::Ls.holds(f, t, t, f));
        assert!(Cond::Ge.holds(t, f, f, t));
        assert!(Cond::Lt.holds(t, f, f, f));
        assert!(Cond::Gt.holds(f, f, f, f));
        assert!(!Cond::Gt.holds(f, t, f, f));
        assert!(Cond::Le.holds(f, t, f, f));
        assert!(Cond::Al.holds(f, f, f, f));
        assert!(!Cond::Nv.holds(t, t, t, t));
    }
}
