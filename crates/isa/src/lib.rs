//! # dmi-isa — the SimARM instruction set
//!
//! SimARM is an ARM-like 32-bit RISC ISA built for the DATE'05 dynamic
//! memory integration reproduction. The original paper runs GSM binaries on
//! SimIt-ARM instruction-set simulators; SimARM plays that role here: an
//! ISA rich enough to express real DSP workloads (conditional execution,
//! barrel shifter, long multiply-accumulate, block transfers) with a fully
//! specified binary encoding, assembler and disassembler.
//!
//! The crate provides five layers:
//!
//! * [`Instr`] and friends — the decoded instruction AST;
//! * [`MicroOp`] / [`predecode`] — the flat, dispatch-friendly execution
//!   form interpreters cache (design rationale on [`predecode`] and
//!   [`MicroOp`]);
//! * [`encode`] / [`decode`] / [`disasm`] — the binary contract
//!   (`decode(encode(i)) == Ok(i)` is property-tested);
//! * [`Asm`] — a programmatic macro-assembler with labels and fixups, used
//!   by the workload generators in higher crates;
//! * [`assemble_text`] — a text front end over the same builder.
//!
//! ## Example: assemble and disassemble
//!
//! ```
//! use dmi_isa::{assemble_text, disasm};
//!
//! let prog = assemble_text(r#"
//!         li   r0, #3
//!         li   r1, #4
//!         mul  r2, r0, r1
//!         swi  #0           ; halt
//! "#, 0).unwrap();
//! assert_eq!(disasm(prog.words()[2]), "mul r2, r0, r1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod decode;
mod encode;
mod instr;
mod microop;
mod parse;
mod reg;

pub use asm::{reg_list, Asm, AsmError, Program};
pub use decode::{decode, disasm, DecodeError};
pub use encode::encode;
pub use instr::{
    AddrMode, DpOp, Instr, MemSize, MulOp, MultiMode, Offset, Operand2, ShiftKind,
};
pub use microop::{predecode, predecode_word, MicroOp, UopKind, UopOffset};
pub use parse::assemble_text;
pub use reg::{Cond, Reg};
