//! Binary encoding of SimARM instructions.
//!
//! `encode` is the single source of truth for the bit layout; the decoder
//! mirrors it. Field validity is asserted here — the assembler only builds
//! instructions through checked constructors, so violations are programmer
//! errors, not data errors.

use crate::instr::{AddrMode, Instr, MemSize, Offset, Operand2};

const CLASS_DP_REG: u32 = 0b000;
const CLASS_DP_IMM: u32 = 0b001;
const CLASS_MUL: u32 = 0b010;
const CLASS_LDST_IMM: u32 = 0b011;
const CLASS_LDST_REG: u32 = 0b100;
const CLASS_BRANCH: u32 = 0b101;
const CLASS_SYS: u32 = 0b110;
const CLASS_MOVW: u32 = 0b111;

pub(crate) const SYS_SWI: u32 = 0;
pub(crate) const SYS_BX: u32 = 1;
pub(crate) const SYS_BLX: u32 = 2;
pub(crate) const SYS_NOP: u32 = 3;
pub(crate) const SYS_CLZ: u32 = 4;

#[inline]
fn class(bits: u32) -> u32 {
    bits << 25
}

fn ldst_common(load: bool, up: bool, mode: AddrMode, rn: u32, rd: u32, size: MemSize) -> u32 {
    let (p, w) = match mode {
        AddrMode::Offset => (1, 0),
        AddrMode::PreIndex => (1, 1),
        AddrMode::PostIndex => (0, 0),
    };
    ((load as u32) << 24)
        | (p << 23)
        | ((up as u32) << 22)
        | (w << 21)
        | (rn << 16)
        | (rd << 12)
        | ((size as u32) << 9)
}

/// Encodes an instruction to its 32-bit machine word.
///
/// # Panics
///
/// Panics if a field is out of range for its encoding slot (immediate too
/// wide, store of a sign-extended size, empty register list…). These are
/// construction bugs; the assembler's checked API prevents them.
pub fn encode(instr: &Instr) -> u32 {
    let cond = instr.cond().bits() << 28;
    match *instr {
        Instr::Dp {
            op, s, rd, rn, op2, ..
        } => {
            let common = ((op as u32) << 21)
                | (s as u32) << 20
                | ((rn.index() as u32) << 16)
                | ((rd.index() as u32) << 12);
            match op2 {
                Operand2::Imm { imm8, rot } => {
                    assert!(rot < 16, "operand2 rotation out of range");
                    cond | class(CLASS_DP_IMM) | common | ((rot as u32) << 8) | imm8 as u32
                }
                Operand2::Reg { rm, shift, amount } => {
                    assert!(amount < 32, "shift amount out of range");
                    cond | class(CLASS_DP_REG)
                        | common
                        | ((amount as u32) << 7)
                        | ((shift as u32) << 5)
                        | rm.index() as u32
                }
            }
        }
        Instr::Mul {
            op,
            s,
            rd,
            rn,
            rs,
            rm,
            ..
        } => {
            if op.is_long() {
                assert!(rd != rn, "long multiply requires distinct rdhi/rdlo");
            }
            cond | class(CLASS_MUL)
                | ((op as u32) << 21)
                | ((s as u32) << 20)
                | ((rd.index() as u32) << 16)
                | ((rn.index() as u32) << 12)
                | ((rs.index() as u32) << 8)
                | rm.index() as u32
        }
        Instr::LdSt {
            load,
            size,
            rd,
            rn,
            offset,
            up,
            mode,
            ..
        } => {
            assert!(
                load || !size.is_signed(),
                "stores cannot use sign-extended sizes"
            );
            let common = ldst_common(
                load,
                up,
                mode,
                rn.index() as u32,
                rd.index() as u32,
                size,
            );
            match offset {
                Offset::Imm(v) => {
                    assert!(v < 512, "load/store immediate offset out of range (9 bits)");
                    cond | class(CLASS_LDST_IMM) | common | v as u32
                }
                Offset::Reg(rm) => {
                    cond | class(CLASS_LDST_REG) | common | rm.index() as u32
                }
            }
        }
        Instr::LdStM {
            load,
            mode,
            writeback,
            rn,
            list,
            ..
        } => {
            assert!(list != 0, "block transfer with empty register list");
            let m = matches!(mode, crate::instr::MultiMode::Db) as u32;
            cond | class(CLASS_LDST_REG)
                | ((load as u32) << 24)
                | (m << 23)
                | ((writeback as u32) << 22)
                | (1 << 20)
                | ((rn.index() as u32) << 16)
                | list as u32
        }
        Instr::Branch { link, offset, .. } => {
            assert!(
                (-(1 << 23)..(1 << 23)).contains(&offset),
                "branch offset out of 24-bit range"
            );
            cond | class(CLASS_BRANCH) | ((link as u32) << 24) | (offset as u32 & 0x00FF_FFFF)
        }
        Instr::Bx { link, rm, .. } => {
            let op = if link { SYS_BLX } else { SYS_BX };
            cond | class(CLASS_SYS) | (op << 21) | rm.index() as u32
        }
        Instr::Swi { imm, .. } => cond | class(CLASS_SYS) | (SYS_SWI << 21) | imm as u32,
        Instr::Nop { .. } => cond | class(CLASS_SYS) | (SYS_NOP << 21),
        Instr::Clz { rd, rm, .. } => {
            cond | class(CLASS_SYS)
                | (SYS_CLZ << 21)
                | ((rd.index() as u32) << 12)
                | rm.index() as u32
        }
        Instr::MovW { top, rd, imm, .. } => {
            cond | class(CLASS_MOVW)
                | ((top as u32) << 24)
                | (((imm as u32) >> 12) << 16)
                | ((rd.index() as u32) << 12)
                | ((imm as u32) & 0xFFF)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::*;
    use crate::reg::{Cond, Reg};

    #[test]
    fn classes_are_distinct() {
        let add = Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Add,
            s: false,
            rd: Reg::R0,
            rn: Reg::R0,
            op2: Operand2::try_imm(1).unwrap(),
        };
        let b = Instr::Branch {
            cond: Cond::Al,
            link: false,
            offset: 0,
        };
        assert_ne!(encode(&add) >> 25, encode(&b) >> 25);
    }

    #[test]
    fn s_bit_is_encoded_as_given() {
        // Execution semantics treat compares as always flag-setting, but the
        // encoding is faithful so decode(encode(i)) == i holds exactly.
        let cmp = Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Cmp,
            s: true,
            rd: Reg::R0,
            rn: Reg::R1,
            op2: Operand2::reg(Reg::R2),
        };
        assert_ne!(encode(&cmp) & (1 << 20), 0);
    }

    #[test]
    fn branch_offset_masks_to_24_bits() {
        let b = Instr::Branch {
            cond: Cond::Al,
            link: true,
            offset: -1,
        };
        let w = encode(&b);
        assert_eq!(w & 0x00FF_FFFF, 0x00FF_FFFF);
        assert_ne!(w & (1 << 24), 0);
    }

    #[test]
    #[should_panic(expected = "9 bits")]
    fn oversized_mem_offset_panics() {
        encode(&Instr::LdSt {
            cond: Cond::Al,
            load: true,
            size: MemSize::Word,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: Offset::Imm(512),
            up: true,
            mode: AddrMode::Offset,
        });
    }

    #[test]
    #[should_panic(expected = "sign-extended")]
    fn signed_store_panics() {
        encode(&Instr::LdSt {
            cond: Cond::Al,
            load: false,
            size: MemSize::SByte,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: Offset::Imm(0),
            up: true,
            mode: AddrMode::Offset,
        });
    }

    #[test]
    #[should_panic(expected = "empty register list")]
    fn empty_reglist_panics() {
        encode(&Instr::LdStM {
            cond: Cond::Al,
            load: true,
            mode: MultiMode::Ia,
            writeback: true,
            rn: Reg::SP,
            list: 0,
        });
    }

    #[test]
    fn movw_movt_fields() {
        let w = encode(&Instr::MovW {
            cond: Cond::Al,
            top: false,
            rd: Reg::R3,
            imm: 0xABCD,
        });
        assert_eq!(w & 0xFFF, 0xBCD);
        assert_eq!((w >> 16) & 0xF, 0xA);
        assert_eq!((w >> 12) & 0xF, 3);
        let t = encode(&Instr::MovW {
            cond: Cond::Al,
            top: true,
            rd: Reg::R3,
            imm: 0xABCD,
        });
        assert_eq!(t & (1 << 24), 1 << 24);
    }
}
