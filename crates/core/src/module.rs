//! The memory module: cycle-true bus slave fronting a memory backend.
//!
//! This is the wrapper's FSM (the cycle-true part of Figure 2): it speaks
//! the req/ack handshake with the interconnect, decodes the register block,
//! latches arguments, triggers the functional part on CMD writes and holds
//! off the acknowledge for the number of cycles the delay model dictates.
//! Incoming signals are evaluated cycle by cycle, exactly as the paper
//! describes.
//!
//! ## Burst streaming
//!
//! When the backend supports batching ([`DsmBackend::burst_info`]), the
//! module drains a whole read burst from the backend in **one**
//! [`DsmBackend::burst_read_block`] call on the first DATA read and serves
//! the remaining beats from a module-local buffer — while still charging
//! the backend-reported per-beat cycles on every DATA access, so bus-level
//! timing is bit-identical to the per-beat path (see
//! `tests/stream_equivalence.rs` in this crate). This relies on the
//! uniform-beat contract `burst_info` implementors sign up to (see its
//! docs); backends with non-uniform beats stay on the per-beat path by
//! returning `None`. Streaming can be disabled with
//! [`MemoryModule::set_stream_bursts`] for A/B comparisons.

use std::any::Any;

use dmi_kernel::{Component, Ctx, Simulator, Wake, Wire};

use crate::backend::DsmBackend;
use crate::faults::{FaultHook, MemBeatFault, MemOpFault};
use crate::protocol::{regs, Opcode, Request, Status, NULL_VPTR};

/// The signal bundle of a bus slave.
///
/// `req`, `we`, `size`, `addr`, `wdata` and `master` are driven by the
/// interconnect; `ack` and `rdata` by the module.
#[derive(Debug, Clone, Copy)]
pub struct SlavePorts {
    /// Request strobe (1 bit, in).
    pub req: Wire,
    /// Write enable (1 bit, in).
    pub we: Wire,
    /// Transfer size (2 bits, in) — accepted but the register block is
    /// word-oriented; sub-word MMIO accesses behave as word accesses.
    pub size: Wire,
    /// Byte address (32 bits, in).
    pub addr: Wire,
    /// Write data (32 bits, in).
    pub wdata: Wire,
    /// Issuing master index (4 bits, in) — used by the reservation bits.
    pub master: Wire,
    /// Acknowledge (1 bit, out), asserted for one cycle on completion.
    pub ack: Wire,
    /// Read data (32 bits, out), valid in the ack cycle.
    pub rdata: Wire,
}

impl SlavePorts {
    /// Declares the eight signals under `prefix` (e.g. `"mem0.s"`).
    pub fn declare(sim: &mut Simulator, prefix: &str) -> Self {
        SlavePorts {
            req: sim.wire(format!("{prefix}.req"), 1),
            we: sim.wire(format!("{prefix}.we"), 1),
            size: sim.wire(format!("{prefix}.size"), 2),
            addr: sim.wire(format!("{prefix}.addr"), 32),
            wdata: sim.wire(format!("{prefix}.wdata"), 32),
            master: sim.wire(format!("{prefix}.master"), 4),
            ack: sim.wire(format!("{prefix}.ack"), 1),
            rdata: sim.wire(format!("{prefix}.rdata"), 32),
        }
    }
}

/// Handshake / occupancy statistics of one module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModuleStats {
    /// Completed bus transactions.
    pub transactions: u64,
    /// Cycles spent executing (between accept and ack).
    pub busy_cycles: u64,
    /// Cycles spent idle with no request.
    pub idle_cycles: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FsmState {
    /// Waiting for a request.
    Idle,
    /// Executing; ack after the countdown.
    Exec { remaining: u64, data: u32 },
    /// Ack was asserted last cycle; wait for the master to drop req.
    AckWait,
}

/// Per-master register context.
///
/// The paper presents every operation as one transaction (opcode plus
/// operands); with a register-block MMIO realization, the argument
/// registers must be banked per master so that interleaved sequences from
/// different ISSs cannot corrupt each other — the banked context *is* the
/// per-port transaction state.
#[derive(Debug, Clone, Copy)]
struct MasterCtx {
    args: [u32; 3],
    status: Status,
    result: u32,
}

impl Default for MasterCtx {
    fn default() -> Self {
        MasterCtx {
            args: [0; 3],
            status: Status::Ok,
            result: 0,
        }
    }
}

/// Module-local buffer holding the not-yet-served tail of a read burst
/// drained from the backend in one block call.
#[derive(Debug, Default)]
struct StreamBuf {
    data: Vec<u32>,
    pos: usize,
    beat_cycles: u64,
}

impl StreamBuf {
    fn clear(&mut self) {
        self.data.clear();
        self.pos = 0;
    }
}

/// A shared-memory module on the bus: FSM + exchangeable backend.
#[derive(Debug)]
pub struct MemoryModule {
    name: String,
    clk: Wire,
    ports: SlavePorts,
    base: u32,
    backend: Box<dyn DsmBackend>,
    ctxs: [MasterCtx; 16],
    state: FsmState,
    stats: ModuleStats,
    /// Whether read bursts are drained from the backend in one block call.
    stream_bursts: bool,
    /// Per-master stream buffers (mirror of the backend's banked ports).
    streams: [StreamBuf; 16],
    /// Shared fault controller and this module's plan ordinal, when the
    /// system wired fault injection. `None` (the default) is the
    /// bit-identical pre-fault path.
    fault: Option<(FaultHook, usize)>,
    /// Sticky per-master aborted-burst status: once an
    /// [`FaultKind::AbortBurst`](crate::faults::FaultKind) fires, every
    /// beat answers with this status until the master issues a fresh
    /// command. Only ever set through the fault hook.
    burst_dead: [Option<Status>; 16],
}

impl MemoryModule {
    /// Creates a module decoding its register block at `base`. Burst
    /// streaming is on by default (it is cycle-identical; see the module
    /// docs).
    pub fn new(
        name: impl Into<String>,
        clk: Wire,
        ports: SlavePorts,
        base: u32,
        backend: Box<dyn DsmBackend>,
    ) -> Self {
        MemoryModule {
            name: name.into(),
            clk,
            ports,
            base,
            backend,
            ctxs: [MasterCtx::default(); 16],
            state: FsmState::Idle,
            stats: ModuleStats::default(),
            stream_bursts: true,
            streams: Default::default(),
            fault: None,
            burst_dead: [None; 16],
        }
    }

    /// Enables or disables the batched read-burst fast path (A/B testing).
    pub fn set_stream_bursts(&mut self, on: bool) {
        self.stream_bursts = on;
    }

    /// Installs a shared fault controller; `mem` is this module's
    /// ordinal in the fault plan's site addressing (builder registration
    /// order). Without a hook the module behaves bit-identically to the
    /// pre-fault implementation.
    pub fn set_fault_hook(&mut self, hook: FaultHook, mem: usize) {
        self.fault = Some((hook, mem));
    }

    /// The backend (for statistics extraction after a run).
    pub fn backend(&self) -> &dyn DsmBackend {
        self.backend.as_ref()
    }

    /// Handshake statistics.
    pub fn stats(&self) -> ModuleStats {
        self.stats
    }

    /// The STATUS register value as seen by `master`.
    pub fn status(&self, master: u8) -> Status {
        self.ctxs[master as usize & 0xF].status
    }

    /// Accepts the request currently on the ports. Returns the read data
    /// and the number of busy cycles before ack.
    fn accept(&mut self, ctx: &Ctx<'_>) -> (u32, u64) {
        let addr = ctx.read(self.ports.addr) as u32;
        let we = ctx.read_bit(self.ports.we);
        let wdata = ctx.read(self.ports.wdata) as u32;
        let master = (ctx.read(self.ports.master) as usize) & 0xF;
        // Register block aliases across the module's window.
        let offset = addr.wrapping_sub(self.base) % regs::BLOCK_SIZE;

        match (offset, we) {
            (regs::CMD, true) => match Opcode::from_u32(wdata) {
                Some(op) => {
                    // The backend aborts this master's unfinished burst on
                    // any real command; drop the streamed tail with it. A
                    // fresh command also clears a fault-killed burst.
                    if !matches!(op, Opcode::Nop) {
                        self.streams[master].clear();
                        self.burst_dead[master] = None;
                    }
                    let f = match &self.fault {
                        Some((hook, mem)) => hook.borrow_mut().mem_op(*mem, op, master as u8),
                        None => MemOpFault::default(),
                    };
                    if let Some(s) = f.force_status {
                        // The faulted command never reaches the backend.
                        self.ctxs[master].status = s;
                        self.ctxs[master].result = NULL_VPTR;
                        return (0, 0);
                    }
                    let mut mc = self.ctxs[master];
                    if f.flip_mask != 0 && op == Opcode::Write {
                        mc.args[1] ^= f.flip_mask;
                    }
                    let r = self.backend.execute(&Request {
                        op,
                        arg0: mc.args[0],
                        arg1: mc.args[1],
                        arg2: mc.args[2],
                        master: master as u8,
                    });
                    let mut result = r.result;
                    if f.flip_mask != 0 && op == Opcode::Read {
                        result ^= f.flip_mask;
                    }
                    self.ctxs[master].status = r.status;
                    self.ctxs[master].result = result;
                    (0, r.cycles)
                }
                None => {
                    self.ctxs[master].status = Status::BadOpcode;
                    (0, 0)
                }
            },
            (regs::ARG0, true) => {
                self.ctxs[master].args[0] = wdata;
                (0, 0)
            }
            (regs::ARG1, true) => {
                self.ctxs[master].args[1] = wdata;
                (0, 0)
            }
            (regs::ARG2, true) => {
                self.ctxs[master].args[2] = wdata;
                (0, 0)
            }
            (regs::DATA, true) => {
                let f = self.beat_fault(master, true);
                if let Some(s) = self.faulted_beat(master, &f) {
                    self.ctxs[master].status = s;
                    return (0, 0);
                }
                let b = self.backend.burst_write_beat(master as u8, wdata ^ f.flip_mask);
                self.ctxs[master].status = b.status;
                (0, b.cycles)
            }
            (regs::DATA, false) => {
                let f = self.beat_fault(master, false);
                if let Some(s) = self.faulted_beat(master, &f) {
                    self.ctxs[master].status = s;
                    return (0, 0);
                }
                let (data, cycles) = self.read_data_beat(master);
                (data ^ f.flip_mask, cycles)
            }
            (regs::STATUS, false) => (self.ctxs[master].status as u32, 0),
            (regs::RESULT, false) => (self.ctxs[master].result, 0),
            (regs::INFO, false) => (self.backend.free_bytes(), 0),
            // Writes to read-only registers are ignored; reads of
            // write-only registers return zero.
            _ => (0, 0),
        }
    }

    /// Consults the fault hook at a DATA-register beat; the default
    /// (no-fault) action when no hook is installed.
    fn beat_fault(&mut self, master: usize, writing: bool) -> MemBeatFault {
        match &self.fault {
            Some((hook, mem)) => hook.borrow_mut().mem_beat(*mem, master as u8, writing),
            None => MemBeatFault::default(),
        }
    }

    /// Applies the burst-killing part of a beat fault. Returns the
    /// status to answer with when the beat must not reach the backend —
    /// either this beat was faulted directly, or an earlier
    /// `AbortBurst` left the burst dead. Faulted beats skip the backend
    /// *and* the stream buffer symmetrically, so later beats are
    /// identical whether burst streaming is on or off.
    fn faulted_beat(&mut self, master: usize, f: &MemBeatFault) -> Option<Status> {
        if f.abort {
            self.burst_dead[master] = Some(Status::OutOfBounds);
            self.streams[master].clear();
        }
        if let Some(dead) = self.burst_dead[master] {
            return Some(dead);
        }
        f.force_status
    }

    /// One DATA-register read beat: the stream-buffer fast path with the
    /// per-beat backend call as fallback. Sets the master's STATUS.
    fn read_data_beat(&mut self, master: usize) -> (u32, u64) {
        // Fast path: serve the beat from the module-local stream
        // buffer, draining the backend once per burst.
        if self.stream_bursts {
            let s = &mut self.streams[master];
            if s.pos < s.data.len() {
                let v = s.data[s.pos];
                s.pos += 1;
                self.ctxs[master].status = Status::Ok;
                return (v, s.beat_cycles);
            }
            if let Some(info) = self.backend.burst_info(master as u8) {
                if !info.writing && info.remaining > 0 {
                    let s = &mut self.streams[master];
                    s.clear();
                    s.data.resize(info.remaining as usize, 0);
                    let r = self.backend.burst_read_block(master as u8, &mut s.data);
                    // A backend may deliver fewer beats than it
                    // advertised (a mid-burst error): keep only
                    // what was actually transferred so the error
                    // surfaces on the right beat, exactly where
                    // the per-beat path would have reported it.
                    s.data.truncate(r.beats as usize);
                    if r.beats > 0 {
                        s.beat_cycles = r.cycles_per_beat;
                        s.pos = 1;
                        self.ctxs[master].status = Status::Ok;
                        return (s.data[0], s.beat_cycles);
                    }
                    // Zero beats: fall through to the per-beat
                    // call, which reproduces the error verbatim.
                }
            }
        }
        let b = self.backend.burst_read_beat(master as u8);
        self.ctxs[master].status = b.status;
        (b.data, b.cycles)
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, data: u32) {
        ctx.write_bit(self.ports.ack, true);
        ctx.write(self.ports.rdata, data as u64);
        self.state = FsmState::AckWait;
        self.stats.transactions += 1;
    }
}

impl Component for MemoryModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.cause() {
            Wake::Start => {
                ctx.write_bit(self.ports.ack, false);
                ctx.write(self.ports.rdata, 0);
            }
            Wake::Signal(_) if ctx.is_signal(self.clk) => match self.state {
                FsmState::Idle => {
                    if ctx.read_bit(self.ports.req) {
                        let (data, busy) = self.accept(ctx);
                        if busy == 0 {
                            self.finish(ctx, data);
                        } else {
                            self.state = FsmState::Exec {
                                remaining: busy,
                                data,
                            };
                        }
                    } else {
                        self.stats.idle_cycles += 1;
                    }
                }
                FsmState::Exec { remaining, data } => {
                    self.stats.busy_cycles += 1;
                    if remaining <= 1 {
                        self.finish(ctx, data);
                    } else {
                        self.state = FsmState::Exec {
                            remaining: remaining - 1,
                            data,
                        };
                    }
                }
                FsmState::AckWait => {
                    ctx.write_bit(self.ports.ack, false);
                    if !ctx.read_bit(self.ports.req) {
                        self.state = FsmState::Idle;
                    }
                }
            },
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn save_state(&self, w: &mut dmi_kernel::StateWriter) {
        for ctx in &self.ctxs {
            w.put_u32(ctx.args[0]);
            w.put_u32(ctx.args[1]);
            w.put_u32(ctx.args[2]);
            w.put_u32(ctx.status as u32);
            w.put_u32(ctx.result);
        }
        match self.state {
            FsmState::Idle => w.put_u8(0),
            FsmState::Exec { remaining, data } => {
                w.put_u8(1);
                w.put_u64(remaining);
                w.put_u32(data);
            }
            FsmState::AckWait => w.put_u8(2),
        }
        w.put_u64(self.stats.transactions);
        w.put_u64(self.stats.busy_cycles);
        w.put_u64(self.stats.idle_cycles);
        for s in &self.streams {
            w.put_u64(s.data.len() as u64);
            for v in &s.data {
                w.put_u32(*v);
            }
            w.put_u64(s.pos as u64);
            w.put_u64(s.beat_cycles);
        }
        for dead in &self.burst_dead {
            match dead {
                Some(status) => {
                    w.put_bool(true);
                    w.put_u32(*status as u32);
                }
                None => w.put_bool(false),
            }
        }
        self.backend.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut dmi_kernel::StateReader<'_>,
    ) -> Result<(), dmi_kernel::SnapshotError> {
        use dmi_kernel::SnapshotError;
        let bad_status = |raw: u32| SnapshotError::Corrupt {
            context: format!("memory module: invalid status code {raw}"),
        };
        for ctx in &mut self.ctxs {
            ctx.args[0] = r.get_u32("module ctx arg0")?;
            ctx.args[1] = r.get_u32("module ctx arg1")?;
            ctx.args[2] = r.get_u32("module ctx arg2")?;
            let raw = r.get_u32("module ctx status")?;
            ctx.status = Status::from_u32(raw).ok_or_else(|| bad_status(raw))?;
            ctx.result = r.get_u32("module ctx result")?;
        }
        self.state = match r.get_u8("module fsm")? {
            0 => FsmState::Idle,
            1 => FsmState::Exec {
                remaining: r.get_u64("module fsm remaining")?,
                data: r.get_u32("module fsm data")?,
            },
            2 => FsmState::AckWait,
            t => {
                return Err(SnapshotError::Corrupt {
                    context: format!("memory module: unknown fsm tag {t}"),
                })
            }
        };
        self.stats.transactions = r.get_u64("module stats.transactions")?;
        self.stats.busy_cycles = r.get_u64("module stats.busy_cycles")?;
        self.stats.idle_cycles = r.get_u64("module stats.idle_cycles")?;
        for s in &mut self.streams {
            let n = r.get_u64("module stream len")? as usize;
            s.data.clear();
            for _ in 0..n {
                s.data.push(r.get_u32("module stream word")?);
            }
            s.pos = r.get_u64("module stream pos")? as usize;
            s.beat_cycles = r.get_u64("module stream beat_cycles")?;
            if s.pos > s.data.len() {
                return Err(SnapshotError::Corrupt {
                    context: "memory module: stream cursor out of range".to_string(),
                });
            }
        }
        for dead in &mut self.burst_dead {
            *dead = if r.get_bool("module burst_dead flag")? {
                let raw = r.get_u32("module burst_dead status")?;
                Some(Status::from_u32(raw).ok_or_else(|| bad_status(raw))?)
            } else {
                None
            };
        }
        self.backend.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ElemType;
    use crate::wrapper::{WrapperBackend, WrapperConfig};
    use dmi_kernel::Edge;

    /// A scripted bus master used to test the slave handshake without the
    /// interconnect: performs a list of (addr, we, wdata) transactions.
    #[derive(Debug)]
    struct ScriptMaster {
        clk: Wire,
        ports: SlavePorts,
        script: Vec<(u32, bool, u32)>,
        results: Vec<u32>,
        latencies: Vec<u64>,
        issued_at: u64,
        cycle: u64,
        index: usize,
        busy: bool,
    }

    impl Component for ScriptMaster {
        fn name(&self) -> &str {
            "script_master"
        }
        fn wake(&mut self, ctx: &mut Ctx<'_>) {
            if !ctx.is_signal(self.clk) {
                return;
            }
            self.cycle += 1;
            if self.busy {
                if ctx.read_bit(self.ports.ack) {
                    self.results.push(ctx.read(self.ports.rdata) as u32);
                    self.latencies.push(self.cycle - self.issued_at);
                    ctx.write_bit(self.ports.req, false);
                    self.busy = false;
                    self.index += 1;
                    if self.index == self.script.len() {
                        ctx.stop("script done");
                    }
                }
                return;
            }
            if self.index < self.script.len() {
                let (addr, we, wdata) = self.script[self.index];
                ctx.write_bit(self.ports.req, true);
                ctx.write_bit(self.ports.we, we);
                ctx.write(self.ports.addr, addr as u64);
                ctx.write(self.ports.wdata, wdata as u64);
                ctx.write(self.ports.master, 0);
                self.issued_at = self.cycle;
                self.busy = true;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    const BASE: u32 = 0x8000_0000;

    fn run_script(script: Vec<(u32, bool, u32)>) -> (Vec<u32>, Vec<u64>) {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 2);
        let ports = SlavePorts::declare(&mut sim, "mem.s");
        let backend = Box::new(WrapperBackend::new(WrapperConfig {
            capacity: 4096,
            ..WrapperConfig::default()
        }));
        let module = MemoryModule::new("mem", clk, ports, BASE, backend);
        let mid = sim.add_component(Box::new(module));
        sim.subscribe(mid, clk, Edge::Rising);
        let n = script.len();
        let master = ScriptMaster {
            clk,
            ports,
            script,
            results: Vec::new(),
            latencies: Vec::new(),
            issued_at: 0,
            cycle: 0,
            index: 0,
            busy: false,
        };
        let sid = sim.add_component(Box::new(master));
        sim.subscribe(sid, clk, Edge::Rising);
        let summary = sim.run_until_stopped(1_000_000);
        assert!(
            summary.stop.is_some(),
            "script did not finish ({n} transactions)"
        );
        let m: &ScriptMaster = sim.component(sid).unwrap();
        (m.results.clone(), m.latencies.clone())
    }

    #[test]
    fn alloc_write_read_over_the_wire() {
        let (results, _lat) = run_script(vec![
            (BASE + regs::ARG0, true, 8),                     // dim = 8
            (BASE + regs::ARG1, true, ElemType::U32 as u32),  // type
            (BASE + regs::CMD, true, Opcode::Alloc as u32),   // alloc
            (BASE + regs::RESULT, false, 0),                  // -> vptr (0)
            (BASE + regs::ARG0, true, 0),                     // vptr
            (BASE + regs::ARG1, true, 0xCAFE),                // value
            (BASE + regs::ARG2, true, 2),                     // width: word
            (BASE + regs::CMD, true, Opcode::Write as u32),   // write
            (BASE + regs::CMD, true, Opcode::Read as u32),    // read
            (BASE + regs::RESULT, false, 0),                  // -> data
            (BASE + regs::STATUS, false, 0),                  // -> status
        ]);
        assert_eq!(results[3], 0, "first vptr is 0");
        assert_eq!(results[9], 0xCAFE);
        assert_eq!(results[10], Status::Ok as u32);
    }

    #[test]
    fn command_latency_exceeds_register_latency() {
        let (_, lat) = run_script(vec![
            (BASE + regs::ARG0, true, 256),
            (BASE + regs::ARG1, true, ElemType::U32 as u32),
            (BASE + regs::CMD, true, Opcode::Alloc as u32),
        ]);
        // ARG writes complete fast; the alloc CMD carries the delay model.
        assert!(
            lat[2] > lat[0],
            "alloc ({}) should be slower than arg write ({})",
            lat[2],
            lat[0]
        );
    }

    #[test]
    fn bad_opcode_sets_status() {
        let (results, _) = run_script(vec![
            (BASE + regs::CMD, true, 0xDEAD),
            (BASE + regs::STATUS, false, 0),
        ]);
        assert_eq!(results[1], Status::BadOpcode as u32);
    }

    #[test]
    fn info_register_reports_capacity() {
        let (results, _) = run_script(vec![(BASE + regs::INFO, false, 0)]);
        assert_eq!(results[0], 4096);
    }

    #[test]
    fn register_block_aliases_across_window() {
        // Accessing INFO via an aliased offset works.
        let (results, _) = run_script(vec![(
            BASE + regs::BLOCK_SIZE * 3 + regs::INFO,
            false,
            0,
        )]);
        assert_eq!(results[0], 4096);
    }
}
