//! The backend interface shared by all shared-memory models.
//!
//! A backend implements the *functional* semantics and the *timing cost* of
//! each protocol operation; the bus-facing FSM ([`crate::MemoryModule`])
//! is common to all models. This separation mirrors Figure 2 of the paper —
//! a cycle-true part in front of an exchangeable functional part — and is
//! what makes model comparisons (wrapper vs. simulated heap vs. static
//! tables) apples-to-apples: same protocol, same handshake, different
//! internals.

use dmi_kernel::{SnapshotError, StateReader, StateWriter};

use crate::host::HostStats;
use crate::protocol::{OpResult, Request, Status};

/// Functional + timing counters of one memory module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Scalar reads served.
    pub reads: u64,
    /// Scalar writes served.
    pub writes: u64,
    /// Burst beats transferred (both directions).
    pub burst_beats: u64,
    /// Operations that completed with an error status.
    pub errors: u64,
    /// Allocation denials due to the finite-size limit.
    pub denials: u64,
    /// Total simulated busy cycles charged by the backend.
    pub busy_cycles: u64,
    /// Translations served by the wrapper's TLB (zero for other models).
    pub tlb_hits: u64,
    /// Translations that fell through to the pointer-table search.
    pub tlb_misses: u64,
    /// Host-side allocation activity (non-zero only for the wrapper).
    pub host: HostStats,
}

impl MemStats {
    /// TLB hit rate over all translations (0.0 when none were served).
    pub fn tlb_hit_rate(&self) -> f64 {
        let total = self.tlb_hits + self.tlb_misses;
        if total == 0 {
            0.0
        } else {
            self.tlb_hits as f64 / total as f64
        }
    }
}

/// One beat of an active burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeatResult {
    /// Status of the beat ([`Status::Ok`] or the error that aborted the
    /// burst).
    pub status: Status,
    /// Data (reads only; zero for writes).
    pub data: u32,
    /// Simulated cycles this beat occupies the module.
    pub cycles: u64,
}

impl BeatResult {
    /// A successful beat.
    pub fn ok(data: u32, cycles: u64) -> Self {
        BeatResult {
            status: Status::Ok,
            data,
            cycles,
        }
    }

    /// A failed beat.
    pub fn err(status: Status, cycles: u64) -> Self {
        BeatResult {
            status,
            data: 0,
            cycles,
        }
    }
}

/// Outcome of a batched multi-beat transfer
/// ([`DsmBackend::burst_read_block`] / [`DsmBackend::burst_write_block`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockResult {
    /// [`Status::Ok`], or the error the first failing beat reported.
    pub status: Status,
    /// Beats actually transferred before completion or the error.
    pub beats: u32,
    /// Total simulated cycles the transferred beats occupy the module —
    /// identical to the sum the per-beat path would have charged.
    pub cycles: u64,
    /// Simulated cycles of each individual beat, so a caller draining a
    /// block buffer can keep charging cycle-true per-beat latencies.
    pub cycles_per_beat: u64,
}

impl BlockResult {
    /// A rejected block transfer: no beats moved, no cycles charged (the
    /// front-end re-issues a per-beat call to surface the error with its
    /// cycle cost). `cycles_per_beat` is advisory only when `beats == 0`.
    pub fn rejected(status: Status, cycles_per_beat: u64) -> Self {
        BlockResult {
            status,
            beats: 0,
            cycles: 0,
            cycles_per_beat,
        }
    }
}

/// Snapshot of a master's active burst, for callers that want to batch
/// ([`DsmBackend::burst_info`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstInfo {
    /// Direction: write (`true`) or read (`false`).
    pub writing: bool,
    /// Beats not yet transferred.
    pub remaining: u32,
}

/// A shared-memory model: functional semantics plus timing.
///
/// Implementations in this crate: [`WrapperBackend`] (the paper's
/// host-backed dynamic memory), [`SimHeapBackend`] (a detailed in-simulation
/// allocator — the "complex and slow" baseline the paper argues against).
///
/// [`WrapperBackend`]: crate::WrapperBackend
/// [`SimHeapBackend`]: crate::SimHeapBackend
pub trait DsmBackend: std::fmt::Debug {
    /// Short model name for reports ("wrapper", "simheap", …).
    fn kind(&self) -> &'static str;

    /// Executes a command (everything except burst data beats).
    fn execute(&mut self, req: &Request) -> OpResult;

    /// Accepts one beat of `master`'s active burst write. The final beat
    /// commits the I/O array to storage. I/O arrays are banked per master
    /// (per-port hardware buffers), so concurrent masters do not corrupt
    /// each other's bursts.
    fn burst_write_beat(&mut self, master: u8, value: u32) -> BeatResult;

    /// Produces one beat of `master`'s active burst read.
    fn burst_read_beat(&mut self, master: u8) -> BeatResult;

    /// Describes `master`'s active burst, if the model supports batching.
    ///
    /// Returning `None` (the default) tells callers to use the per-beat
    /// interface; models that implement the block transfers below should
    /// return the live state so front-ends (the memory module FSM) can
    /// stream a whole burst in one backend call.
    ///
    /// **Contract for implementors:** by returning `Some`, a backend
    /// opts into block streaming and promises that (a) its successful
    /// *read* beats all charge the same cycle cost (the front-end
    /// replays `BlockResult::cycles_per_beat` for every streamed beat),
    /// and (b) a failing `burst_read_beat` is idempotent — it charges no
    /// cycles and mutates no state, so the front-end may re-issue it to
    /// surface the error. Backends with non-uniform read beats must keep
    /// the default `None` and stay on the per-beat path.
    fn burst_info(&self, master: u8) -> Option<BurstInfo> {
        let _ = master;
        None
    }

    /// Batched form of [`burst_read_beat`](Self::burst_read_beat): fills
    /// `out` with up to `out.len()` beats in one call.
    ///
    /// Functionally and in charged cycles this must be *bit-identical* to
    /// calling `burst_read_beat` `out.len()` times — batching is a host-side
    /// fast path, never a timing-model change. The default implementation
    /// is exactly that loop.
    fn burst_read_block(&mut self, master: u8, out: &mut [u32]) -> BlockResult {
        let mut cycles = 0;
        let mut per_beat = 0;
        for (i, slot) in out.iter_mut().enumerate() {
            let beat = self.burst_read_beat(master);
            if !beat.status.is_ok() {
                return BlockResult {
                    status: beat.status,
                    beats: i as u32,
                    cycles,
                    cycles_per_beat: per_beat,
                };
            }
            *slot = beat.data;
            cycles += beat.cycles;
            // The first beat is the representative per-beat cost (a final
            // beat may carry extra completion work).
            if i == 0 {
                per_beat = beat.cycles;
            }
        }
        BlockResult {
            status: Status::Ok,
            beats: out.len() as u32,
            cycles,
            cycles_per_beat: per_beat,
        }
    }

    /// Batched form of [`burst_write_beat`](Self::burst_write_beat): feeds
    /// all of `values` in one call. Same bit-identical contract (and
    /// default implementation) as [`burst_read_block`](Self::burst_read_block).
    fn burst_write_block(&mut self, master: u8, values: &[u32]) -> BlockResult {
        let mut cycles = 0;
        let mut per_beat = 0;
        for (i, v) in values.iter().enumerate() {
            let beat = self.burst_write_beat(master, *v);
            if !beat.status.is_ok() {
                return BlockResult {
                    status: beat.status,
                    beats: i as u32,
                    cycles,
                    cycles_per_beat: per_beat,
                };
            }
            cycles += beat.cycles;
            // First beat as the representative cost: the final beat of a
            // write burst additionally carries the commit step, which must
            // not inflate per-beat charging.
            if i == 0 {
                per_beat = beat.cycles;
            }
        }
        BlockResult {
            status: Status::Ok,
            beats: values.len() as u32,
            cycles,
            cycles_per_beat: per_beat,
        }
    }

    /// Remaining capacity in bytes (INFO register).
    fn free_bytes(&self) -> u32;

    /// Activity counters.
    fn stats(&self) -> MemStats;

    /// Upcast for concrete-model inspection after a run.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Serializes the backend's mutable state (storage contents,
    /// allocation tables, in-flight bursts, counters) for a snapshot.
    /// Mirrors [`Component::save_state`]; configuration is not
    /// serialized. The default writes nothing.
    ///
    /// [`Component::save_state`]: dmi_kernel::Component::save_state
    fn save_state(&self, w: &mut StateWriter) {
        let _ = w;
    }

    /// Restores state written by [`DsmBackend::save_state`]. Must return
    /// a typed error (never panic) on corrupt input.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let _ = r;
        Ok(())
    }
}

/// Serializes a [`MemStats`] for a backend's snapshot payload.
pub(crate) fn write_mem_stats(w: &mut StateWriter, s: &MemStats) {
    w.put_u64(s.allocs);
    w.put_u64(s.frees);
    w.put_u64(s.reads);
    w.put_u64(s.writes);
    w.put_u64(s.burst_beats);
    w.put_u64(s.errors);
    w.put_u64(s.denials);
    w.put_u64(s.busy_cycles);
    w.put_u64(s.tlb_hits);
    w.put_u64(s.tlb_misses);
    w.put_u64(s.host.allocs);
    w.put_u64(s.host.frees);
    w.put_u64(s.host.bytes_allocated);
}

/// Reads back a [`MemStats`] written by [`write_mem_stats`].
pub(crate) fn read_mem_stats(r: &mut StateReader<'_>) -> Result<MemStats, SnapshotError> {
    Ok(MemStats {
        allocs: r.get_u64("mem stats.allocs")?,
        frees: r.get_u64("mem stats.frees")?,
        reads: r.get_u64("mem stats.reads")?,
        writes: r.get_u64("mem stats.writes")?,
        burst_beats: r.get_u64("mem stats.burst_beats")?,
        errors: r.get_u64("mem stats.errors")?,
        denials: r.get_u64("mem stats.denials")?,
        busy_cycles: r.get_u64("mem stats.busy_cycles")?,
        tlb_hits: r.get_u64("mem stats.tlb_hits")?,
        tlb_misses: r.get_u64("mem stats.tlb_misses")?,
        host: HostStats {
            allocs: r.get_u64("mem stats.host.allocs")?,
            frees: r.get_u64("mem stats.host.frees")?,
            bytes_allocated: r.get_u64("mem stats.host.bytes_allocated")?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beat_result_constructors() {
        let b = BeatResult::ok(7, 2);
        assert_eq!(b.status, Status::Ok);
        assert_eq!(b.data, 7);
        let e = BeatResult::err(Status::BadArgs, 1);
        assert_eq!(e.status, Status::BadArgs);
        assert_eq!(e.data, 0);
        assert_eq!(e.cycles, 1);
    }
}
