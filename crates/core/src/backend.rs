//! The backend interface shared by all shared-memory models.
//!
//! A backend implements the *functional* semantics and the *timing cost* of
//! each protocol operation; the bus-facing FSM ([`crate::MemoryModule`])
//! is common to all models. This separation mirrors Figure 2 of the paper —
//! a cycle-true part in front of an exchangeable functional part — and is
//! what makes model comparisons (wrapper vs. simulated heap vs. static
//! tables) apples-to-apples: same protocol, same handshake, different
//! internals.

use crate::host::HostStats;
use crate::protocol::{OpResult, Request, Status};

/// Functional + timing counters of one memory module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Scalar reads served.
    pub reads: u64,
    /// Scalar writes served.
    pub writes: u64,
    /// Burst beats transferred (both directions).
    pub burst_beats: u64,
    /// Operations that completed with an error status.
    pub errors: u64,
    /// Allocation denials due to the finite-size limit.
    pub denials: u64,
    /// Total simulated busy cycles charged by the backend.
    pub busy_cycles: u64,
    /// Host-side allocation activity (non-zero only for the wrapper).
    pub host: HostStats,
}

/// One beat of an active burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeatResult {
    /// Status of the beat ([`Status::Ok`] or the error that aborted the
    /// burst).
    pub status: Status,
    /// Data (reads only; zero for writes).
    pub data: u32,
    /// Simulated cycles this beat occupies the module.
    pub cycles: u64,
}

impl BeatResult {
    /// A successful beat.
    pub fn ok(data: u32, cycles: u64) -> Self {
        BeatResult {
            status: Status::Ok,
            data,
            cycles,
        }
    }

    /// A failed beat.
    pub fn err(status: Status, cycles: u64) -> Self {
        BeatResult {
            status,
            data: 0,
            cycles,
        }
    }
}

/// A shared-memory model: functional semantics plus timing.
///
/// Implementations in this crate: [`WrapperBackend`] (the paper's
/// host-backed dynamic memory), [`SimHeapBackend`] (a detailed in-simulation
/// allocator — the "complex and slow" baseline the paper argues against).
///
/// [`WrapperBackend`]: crate::WrapperBackend
/// [`SimHeapBackend`]: crate::SimHeapBackend
pub trait DsmBackend: std::fmt::Debug {
    /// Short model name for reports ("wrapper", "simheap", …).
    fn kind(&self) -> &'static str;

    /// Executes a command (everything except burst data beats).
    fn execute(&mut self, req: &Request) -> OpResult;

    /// Accepts one beat of `master`'s active burst write. The final beat
    /// commits the I/O array to storage. I/O arrays are banked per master
    /// (per-port hardware buffers), so concurrent masters do not corrupt
    /// each other's bursts.
    fn burst_write_beat(&mut self, master: u8, value: u32) -> BeatResult;

    /// Produces one beat of `master`'s active burst read.
    fn burst_read_beat(&mut self, master: u8) -> BeatResult;

    /// Remaining capacity in bytes (INFO register).
    fn free_bytes(&self) -> u32;

    /// Activity counters.
    fn stats(&self) -> MemStats;

    /// Upcast for concrete-model inspection after a run.
    fn as_any(&self) -> &dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beat_result_constructors() {
        let b = BeatResult::ok(7, 2);
        assert_eq!(b.status, Status::Ok);
        assert_eq!(b.data, 7);
        let e = BeatResult::err(Status::BadArgs, 1);
        assert_eq!(e.status, Status::BadArgs);
        assert_eq!(e.data, 0);
        assert_eq!(e.cycles, 1);
    }
}
