//! The pointer table: the functional heart of the dynamic memory wrapper.
//!
//! Each live allocation is one entry mapping a *virtual pointer* (the
//! address the simulated architecture sees) to a *host pointer* (the host
//! allocation that actually stores the data), together with its dimension,
//! element type and a reservation bit (Figure 2 of the paper).
//!
//! Virtual pointers follow the paper's generation rule: each new Vptr is
//! the previous entry's Vptr plus its size; the first Vptr is zero. The
//! table also supports the pointer-arithmetic lookup the paper describes —
//! an incoming Vptr that is not a table key is resolved by finding the
//! entry whose `[vptr, vptr + size)` range contains it.
//!
//! ## Vptr allocation policies
//!
//! The monotonic rule never reuses virtual addresses, so long-running
//! workloads with allocation churn eventually exhaust the 32-bit virtual
//! space — a limitation inherent in the published design. The table
//! therefore supports two policies, compared in the ablation experiments:
//!
//! * [`VptrPolicy::PaperMonotonic`] — the rule as published;
//! * [`VptrPolicy::FirstFitReuse`] — first-fit reuse of virtual-address
//!   gaps left by frees.
//!
//! ## Translation lookaside cache
//!
//! Every simulated memory access funnels through [`PointerTable::resolve`],
//! so its cost bounds the whole co-simulation's speed (the paper's
//! `ticks_per_sec` metric). The table therefore fronts the binary search
//! with a small TLB: a *last-hit slot* (covers repeated access to the same
//! allocation, e.g. burst beats and loop bodies) plus a *direct-mapped
//! cache* keyed by vptr page ([`TLB_PAGE_BITS`]-sized pages) that turns
//! repeat lookups anywhere in the working set into O(1) probes.
//!
//! **Determinism / correctness invariant:** a TLB line is only a *hint*.
//! Every hit is validated against the live entry (`Entry::contains`), and
//! because live ranges are disjoint, a validated hit is always the unique
//! correct translation — a stale line can produce a miss, never a wrong
//! answer. Lines are additionally invalidated wholesale on free (the
//! "table re-compacted" step shifts entry indices) via a generation
//! counter, so the cache state never outlives the entry layout it
//! describes. Functional results are therefore bit-identical with the TLB
//! on or off; only host-side speed differs.

use crate::gaps::GapIndex;
use crate::host::{HostAlloc, HostStats};
use crate::protocol::ElemType;

/// Log2 of the TLB page size in bytes (16-byte pages: fine enough that
/// small allocations get their own line, coarse enough to cover a burst).
pub const TLB_PAGE_BITS: u32 = 4;

/// Lines allocated for a fresh table (grown adaptively, power of two).
const TLB_MIN_LINES: usize = 64;

/// Upper bound on TLB lines (65536 lines = 12-byte lines, ~768 KiB host
/// memory when fully grown; only reached by tables with >16k live entries).
const TLB_MAX_LINES: usize = 1 << 16;

/// Sentinel: no page can hash to this tag (vptr >> 4 is at most 2^28 - 1).
const TLB_EMPTY: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct TlbLine {
    /// Page tag (`vptr >> TLB_PAGE_BITS`); [`TLB_EMPTY`] when unused.
    page: u32,
    /// Entry index the page translated to when the line was filled.
    idx: u32,
    /// Generation the line was filled in; stale generations are misses.
    gen: u32,
}

const EMPTY_LINE: TlbLine = TlbLine {
    page: TLB_EMPTY,
    idx: u32::MAX,
    gen: 0,
};

/// The translation lookaside cache fronting the pointer table's binary
/// search. See the module docs for the validation invariant.
#[derive(Debug)]
struct Tlb {
    lines: Box<[TlbLine]>,
    /// Index of the entry that served the last hit ([`u32::MAX`] = none).
    last: u32,
    /// Current generation; bumped on free to invalidate all lines at once.
    gen: u32,
}

impl Tlb {
    fn new() -> Self {
        Tlb {
            lines: vec![EMPTY_LINE; TLB_MIN_LINES].into_boxed_slice(),
            last: u32::MAX,
            gen: 0,
        }
    }

    #[inline]
    fn slot(&self, page: u32) -> usize {
        (page as usize) & (self.lines.len() - 1)
    }

    /// O(1) wholesale invalidation: bump the generation. The rare wrap
    /// falls back to clearing the lines so an ancient generation can never
    /// false-hit.
    fn invalidate(&mut self) {
        self.last = u32::MAX;
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.lines.fill(EMPTY_LINE);
        }
    }

    /// Grows the cache so `entries` live allocations keep conflict misses
    /// rare under a sweep of the whole table.
    fn grow_for(&mut self, entries: usize) {
        if entries * 2 <= self.lines.len() || self.lines.len() >= TLB_MAX_LINES {
            return;
        }
        let target = (entries * 4)
            .next_power_of_two()
            .clamp(TLB_MIN_LINES, TLB_MAX_LINES);
        self.lines = vec![EMPTY_LINE; target].into_boxed_slice();
    }
}

/// How virtual pointers for new allocations are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VptrPolicy {
    /// The paper's rule: `vptr(new) = vptr(last) + size(last)`, starting at
    /// zero. Never reuses addresses; may exhaust the virtual space.
    #[default]
    PaperMonotonic,
    /// First-fit into gaps left by frees; falls back to the end of the
    /// highest allocation. Never exhausts space while capacity remains.
    FirstFitReuse,
}

/// One live allocation (a row of Figure 2's pointer table).
#[derive(Debug)]
pub struct Entry {
    /// Virtual pointer: base address in the simulated virtual space.
    pub vptr: u32,
    /// Number of elements.
    pub dim: u32,
    /// Element type.
    pub elem: ElemType,
    /// Total size in bytes (`dim * elem.bytes()`).
    pub size: u32,
    /// Which master holds the reservation bit, if any.
    pub reserved_by: Option<u8>,
    /// The host allocation backing the data.
    pub host: HostAlloc,
}

impl Entry {
    /// Whether `vptr` falls inside this allocation.
    #[inline]
    pub fn contains(&self, vptr: u32) -> bool {
        vptr >= self.vptr && (vptr - self.vptr) < self.size
    }

    /// Whether `master` may access this entry under the reservation rules.
    #[inline]
    pub fn accessible_by(&self, master: u8) -> bool {
        match self.reserved_by {
            None => true,
            Some(owner) => owner == master,
        }
    }
}

/// Errors from allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Zero elements requested.
    ZeroSize,
    /// The configured capacity would be exceeded.
    OutOfMemory,
    /// The monotonic vptr rule ran out of 32-bit virtual space.
    VirtualExhausted,
}

/// Errors from operations on existing pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtrError {
    /// No live allocation matches / contains the pointer.
    BadPointer,
    /// The allocation is reserved by another master.
    Locked,
    /// The access escapes the allocation bounds.
    OutOfBounds,
}

/// Counters describing table activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Denied allocations (capacity).
    pub denials: u64,
    /// Exact-key lookups served.
    pub lookups: u64,
    /// Pointer-arithmetic (containment) resolutions served.
    pub arith_resolutions: u64,
    /// Resolutions served by the TLB (last-hit slot or direct-mapped line).
    pub tlb_hits: u64,
    /// Resolutions that fell through to the binary search.
    pub tlb_misses: u64,
    /// Wholesale TLB invalidations (one per free/compaction).
    pub tlb_invalidations: u64,
    /// Table re-compactions performed on free.
    pub compactions: u64,
    /// Peak number of simultaneous entries.
    pub peak_entries: usize,
}

impl TableStats {
    /// TLB hit rate over all resolutions (0.0 when none were served).
    pub fn tlb_hit_rate(&self) -> f64 {
        let total = self.tlb_hits + self.tlb_misses;
        if total == 0 {
            0.0
        } else {
            self.tlb_hits as f64 / total as f64
        }
    }
}

/// The pointer table of one dynamic shared memory.
///
/// Entries are kept sorted by `vptr`, so exact lookups and containment
/// resolutions are binary searches. On free, the backing vector is
/// re-compacted (the paper's "table re-compacted" step) — entries shift
/// down, keeping the storage dense.
#[derive(Debug)]
pub struct PointerTable {
    entries: Vec<Entry>,
    capacity: u32,
    used: u32,
    policy: VptrPolicy,
    stats: TableStats,
    host_stats: HostStats,
    tlb: Tlb,
    /// Whether [`resolve`](Self::resolve) may serve from the TLB.
    tlb_enabled: bool,
    /// Free-gap index mirroring `entries` (first-fit placement in
    /// O(log n)); maintained only under [`VptrPolicy::FirstFitReuse`].
    gaps: Option<GapIndex>,
}

impl PointerTable {
    /// Creates a table managing `capacity` bytes of simulated memory,
    /// with the translation cache enabled.
    pub fn new(capacity: u32, policy: VptrPolicy) -> Self {
        Self::with_translation_cache(capacity, policy, true)
    }

    /// Creates a table with the translation cache explicitly enabled or
    /// disabled. Disabling exists for A/B equivalence testing — results
    /// are bit-identical either way, only host-side speed differs.
    pub fn with_translation_cache(capacity: u32, policy: VptrPolicy, cache: bool) -> Self {
        PointerTable {
            entries: Vec::new(),
            capacity,
            used: 0,
            policy,
            stats: TableStats::default(),
            host_stats: HostStats::default(),
            tlb: Tlb::new(),
            tlb_enabled: cache,
            gaps: (policy == VptrPolicy::FirstFitReuse).then(GapIndex::new_full),
        }
    }

    /// Total capacity in bytes (the paper's finite-size memory limit).
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Bytes still available.
    pub fn free_bytes(&self) -> u32 {
        self.capacity - self.used
    }

    /// Number of live allocations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no allocations are live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The vptr policy in force.
    pub fn policy(&self) -> VptrPolicy {
        self.policy
    }

    /// Activity counters.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Host-side allocation counters.
    pub fn host_stats(&self) -> HostStats {
        self.host_stats
    }

    /// Iterates over live entries in vptr order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }

    /// Chooses the vptr for a new allocation of `size` bytes.
    fn place(&self, size: u32) -> Result<u32, AllocError> {
        match self.policy {
            VptrPolicy::PaperMonotonic => match self.entries.last() {
                None => Ok(0),
                Some(last) => last
                    .vptr
                    .checked_add(last.size)
                    .filter(|base| base.checked_add(size).is_some())
                    .ok_or(AllocError::VirtualExhausted),
            },
            VptrPolicy::FirstFitReuse => {
                // O(log n) address-ordered first fit over the gap index;
                // placement outcomes are property-tested identical to the
                // original linear entry scan (`place_scan`).
                let placed = self
                    .gaps
                    .as_ref()
                    .expect("gap index exists under FirstFitReuse")
                    .first_fit(size)
                    .ok_or(AllocError::VirtualExhausted);
                debug_assert_eq!(placed, self.place_scan(size), "gap index diverged");
                placed
            }
        }
    }

    /// The original O(live entries) first-fit scan, kept as the oracle the
    /// gap index is validated against (debug assertions and property
    /// tests).
    fn place_scan(&self, size: u32) -> Result<u32, AllocError> {
        let mut cursor: u32 = 0;
        for e in &self.entries {
            if e.vptr - cursor >= size {
                return Ok(cursor);
            }
            cursor = e.vptr + e.size; // dense, no overflow: ranges are disjoint in u32
        }
        cursor
            .checked_add(size)
            .map(|_| cursor)
            .ok_or(AllocError::VirtualExhausted)
    }

    /// Allocates `dim` elements of `elem`, returning the new vptr.
    ///
    /// The host storage is zero-initialised (`calloc` semantics).
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when the finite size would be exceeded;
    /// [`AllocError::VirtualExhausted`] under the monotonic policy when the
    /// virtual space runs out; [`AllocError::ZeroSize`] for empty requests.
    pub fn alloc(&mut self, dim: u32, elem: ElemType) -> Result<u32, AllocError> {
        let size = dim
            .checked_mul(elem.bytes())
            .ok_or(AllocError::OutOfMemory)?;
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        if self.used.checked_add(size).is_none_or(|u| u > self.capacity) {
            self.stats.denials += 1;
            return Err(AllocError::OutOfMemory);
        }
        let vptr = match self.place(size) {
            Ok(v) => v,
            Err(e) => {
                self.stats.denials += 1;
                return Err(e);
            }
        };
        let host = HostAlloc::calloc(size);
        self.host_stats.allocs += 1;
        self.host_stats.bytes_allocated += size as u64;
        let entry = Entry {
            vptr,
            dim,
            elem,
            size,
            reserved_by: None,
            host,
        };
        let pos = self
            .entries
            .binary_search_by_key(&vptr, |e| e.vptr)
            .unwrap_err();
        self.entries.insert(pos, entry);
        if let Some(g) = &mut self.gaps {
            g.consume(vptr, size);
        }
        self.used += size;
        self.stats.allocs += 1;
        self.stats.peak_entries = self.stats.peak_entries.max(self.entries.len());
        // Inserting shifts the indices of entries above `pos`; stale TLB
        // lines for those entries fail containment validation and refill
        // lazily, so no invalidation is required here. Growing keeps the
        // direct map conflict-free as the live population climbs.
        if self.tlb_enabled {
            self.tlb.grow_for(self.entries.len());
        }
        Ok(vptr)
    }

    /// Frees the allocation whose *base* vptr is `vptr`, removing the entry,
    /// re-compacting the table, restoring capacity and releasing the host
    /// allocation.
    ///
    /// # Errors
    ///
    /// [`PtrError::BadPointer`] if `vptr` is not a live base pointer;
    /// [`PtrError::Locked`] if another master holds the reservation.
    pub fn free(&mut self, vptr: u32, master: u8) -> Result<u32, PtrError> {
        let idx = self
            .entries
            .binary_search_by_key(&vptr, |e| e.vptr)
            .map_err(|_| PtrError::BadPointer)?;
        if !self.entries[idx].accessible_by(master) {
            return Err(PtrError::Locked);
        }
        // Vec::remove shifts the tail down — the "re-compacted" table.
        let entry = self.entries.remove(idx);
        if let Some(g) = &mut self.gaps {
            g.release(entry.vptr, entry.size);
        }
        self.stats.compactions += 1;
        // The compaction moved entry indices: invalidate the whole TLB in
        // O(1) by bumping its generation.
        if self.tlb_enabled {
            self.tlb.invalidate();
            self.stats.tlb_invalidations += 1;
        }
        self.used -= entry.size;
        self.stats.frees += 1;
        self.host_stats.frees += 1;
        Ok(entry.size) // entry (and its HostAlloc) drops here: host free
    }

    /// Exact-key lookup of a base vptr.
    pub fn lookup(&mut self, vptr: u32) -> Option<&Entry> {
        self.stats.lookups += 1;
        self.entries
            .binary_search_by_key(&vptr, |e| e.vptr)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Pointer-arithmetic resolution: finds the allocation containing
    /// `vptr` and the byte offset within it.
    ///
    /// Exact base pointers resolve with offset zero; interior pointers
    /// (`vptr = base + k`) resolve to `(entry, k)` as the paper describes.
    ///
    /// Served by the TLB when possible (see the module docs); a hit and a
    /// miss return identical results — only the host-side cost differs.
    pub fn resolve(&mut self, vptr: u32) -> Option<(usize, u32)> {
        self.stats.arith_resolutions += 1;

        if self.tlb_enabled {
            // Fast path 1: the last-hit slot.
            let last = self.tlb.last as usize;
            if let Some(e) = self.entries.get(last) {
                if e.contains(vptr) {
                    self.stats.tlb_hits += 1;
                    return Some((last, vptr - e.vptr));
                }
            }

            // Fast path 2: the direct-mapped line for this page.
            let page = vptr >> TLB_PAGE_BITS;
            let slot = self.tlb.slot(page);
            let line = self.tlb.lines[slot];
            if line.page == page && line.gen == self.tlb.gen {
                if let Some(e) = self.entries.get(line.idx as usize) {
                    if e.contains(vptr) {
                        self.stats.tlb_hits += 1;
                        self.tlb.last = line.idx;
                        return Some((line.idx as usize, vptr - e.vptr));
                    }
                }
            }
            self.stats.tlb_misses += 1;
        }

        // Slow path: binary search, then fill the line and last-hit slot.
        let idx = match self.entries.binary_search_by_key(&vptr, |e| e.vptr) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let e = &self.entries[idx];
        if !e.contains(vptr) {
            return None;
        }
        if self.tlb_enabled {
            let page = vptr >> TLB_PAGE_BITS;
            let slot = self.tlb.slot(page);
            self.tlb.lines[slot] = TlbLine {
                page,
                idx: idx as u32,
                gen: self.tlb.gen,
            };
            self.tlb.last = idx as u32;
        }
        Some((idx, vptr - e.vptr))
    }

    /// [`resolve`](Self::resolve) with a caller-provided entry-index hint
    /// (a per-master translation slot in the wrapper). A valid hint skips
    /// even the shared TLB probe; an invalid one falls back to `resolve`.
    pub fn resolve_hinted(&mut self, vptr: u32, hint: u32) -> Option<(usize, u32)> {
        if self.tlb_enabled {
            if let Some(e) = self.entries.get(hint as usize) {
                if e.contains(vptr) {
                    self.stats.arith_resolutions += 1;
                    self.stats.tlb_hits += 1;
                    return Some((hint as usize, vptr - e.vptr));
                }
            }
        }
        self.resolve(vptr)
    }

    /// Immutable, statistics-free resolve for observers (watchpoints,
    /// debug dumps): the same binary search over the vptr-sorted entries
    /// as [`resolve`](Self::resolve)'s slow path, but without touching
    /// the TLB or any counter — safe to call every polling slice without
    /// perturbing the measured simulation.
    pub fn peek(&self, vptr: u32) -> Option<(usize, u32)> {
        let idx = match self.entries.binary_search_by_key(&vptr, |e| e.vptr) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let e = &self.entries[idx];
        e.contains(vptr).then(|| (idx, vptr - e.vptr))
    }

    /// Entry access by index (from [`resolve`](Self::resolve)).
    pub fn entry(&self, idx: usize) -> &Entry {
        &self.entries[idx]
    }

    /// Mutable entry access by index.
    pub fn entry_mut(&mut self, idx: usize) -> &mut Entry {
        &mut self.entries[idx]
    }

    /// Acquires the reservation bit of the allocation containing `vptr` for
    /// `master`. Returns `true` on success (including re-acquisition by the
    /// owner), `false` when held by another master.
    pub fn reserve(&mut self, vptr: u32, master: u8) -> Result<bool, PtrError> {
        let (idx, _) = self.resolve(vptr).ok_or(PtrError::BadPointer)?;
        let e = &mut self.entries[idx];
        match e.reserved_by {
            None => {
                e.reserved_by = Some(master);
                Ok(true)
            }
            Some(owner) => Ok(owner == master),
        }
    }

    /// Releases a reservation held by `master` on the allocation containing
    /// `vptr`. Releasing an unreserved entry succeeds (idempotent).
    ///
    /// # Errors
    ///
    /// [`PtrError::Locked`] when another master holds the bit.
    pub fn release(&mut self, vptr: u32, master: u8) -> Result<(), PtrError> {
        let (idx, _) = self.resolve(vptr).ok_or(PtrError::BadPointer)?;
        let e = &mut self.entries[idx];
        match e.reserved_by {
            None => Ok(()),
            Some(owner) if owner == master => {
                e.reserved_by = None;
                Ok(())
            }
            Some(_) => Err(PtrError::Locked),
        }
    }

    /// Verifies internal invariants; used by tests and debug assertions.
    /// Returns a description of the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev_end: Option<u32> = None;
        let mut total = 0u64;
        for (i, e) in self.entries.iter().enumerate() {
            if e.size != e.dim * e.elem.bytes() {
                return Err(format!("entry {i}: size != dim * elem"));
            }
            if e.host.len() != e.size {
                return Err(format!("entry {i}: host size mismatch"));
            }
            if let Some(end) = prev_end {
                if e.vptr < end {
                    return Err(format!("entry {i}: overlaps previous (vptr {:#x})", e.vptr));
                }
            }
            prev_end = Some(e.vptr + e.size);
            total += e.size as u64;
        }
        if total != self.used as u64 {
            return Err(format!("used {} != sum of sizes {total}", self.used));
        }
        if self.used > self.capacity {
            return Err("used exceeds capacity".into());
        }
        if let Some(g) = &self.gaps {
            g.check()?;
            // The gap index must be the exact complement of the entries.
            let mut expected: Vec<(u32, u32)> = Vec::new();
            let mut cursor: u32 = 0;
            for e in &self.entries {
                if e.vptr > cursor {
                    expected.push((cursor, e.vptr - cursor));
                }
                cursor = e.vptr + e.size;
            }
            if cursor < u32::MAX {
                expected.push((cursor, u32::MAX - cursor));
            }
            if g.collect() != expected {
                return Err(format!(
                    "gap index {:x?} != complement of entries {:x?}",
                    g.collect(),
                    expected
                ));
            }
        }
        Ok(())
    }

    /// Serializes the live allocations (including their host-side
    /// payload bytes), accounting state, and counters. The TLB and the
    /// gap index are validated caches and are *reconstructed* on load,
    /// not serialized — so their hit/miss counters legitimately diverge
    /// between a restored and a continuous run.
    pub fn save_state(&self, w: &mut dmi_kernel::StateWriter) {
        w.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            w.put_u32(e.vptr);
            w.put_u32(e.dim);
            w.put_u8(e.elem as u8);
            w.put_u32(e.size);
            match e.reserved_by {
                Some(m) => {
                    w.put_bool(true);
                    w.put_u8(m);
                }
                None => w.put_bool(false),
            }
            w.put_bytes(e.host.bytes());
        }
        w.put_u32(self.used);
        w.put_u64(self.stats.allocs);
        w.put_u64(self.stats.frees);
        w.put_u64(self.stats.denials);
        w.put_u64(self.stats.lookups);
        w.put_u64(self.stats.arith_resolutions);
        w.put_u64(self.stats.tlb_hits);
        w.put_u64(self.stats.tlb_misses);
        w.put_u64(self.stats.tlb_invalidations);
        w.put_u64(self.stats.compactions);
        w.put_u64(self.stats.peak_entries as u64);
        w.put_u64(self.host_stats.allocs);
        w.put_u64(self.host_stats.frees);
        w.put_u64(self.host_stats.bytes_allocated);
    }

    /// Restores state written by [`PointerTable::save_state`] onto a
    /// table with the same configuration, rebuilding the TLB (cold) and
    /// the gap index (exact complement of the restored entries).
    pub fn load_state(
        &mut self,
        r: &mut dmi_kernel::StateReader<'_>,
    ) -> Result<(), dmi_kernel::SnapshotError> {
        use dmi_kernel::SnapshotError;
        let n = r.get_u32("table entry count")? as usize;
        let mut entries = Vec::with_capacity(n);
        let mut prev_end = 0u32;
        for i in 0..n {
            let vptr = r.get_u32("entry vptr")?;
            let dim = r.get_u32("entry dim")?;
            let elem = ElemType::from_u32(r.get_u8("entry elem")? as u32).ok_or_else(|| {
                SnapshotError::Corrupt {
                    context: format!("entry {i}: invalid element type"),
                }
            })?;
            let size = r.get_u32("entry size")?;
            let reserved_by = if r.get_bool("entry reservation flag")? {
                Some(r.get_u8("entry reservation owner")?)
            } else {
                None
            };
            let bytes = r.get_bytes("entry payload")?;
            if size != dim.saturating_mul(elem.bytes())
                || bytes.len() != size as usize
            {
                return Err(SnapshotError::Corrupt {
                    context: format!("entry {i}: inconsistent size"),
                });
            }
            if i > 0 && vptr < prev_end || vptr.checked_add(size).is_none() {
                return Err(SnapshotError::Corrupt {
                    context: format!("entry {i}: overlapping or wrapping vptr range"),
                });
            }
            prev_end = vptr + size;
            let mut host = HostAlloc::calloc(size);
            host.bytes_mut().copy_from_slice(bytes);
            entries.push(Entry {
                vptr,
                dim,
                elem,
                size,
                reserved_by,
                host,
            });
        }
        self.entries = entries;
        self.used = r.get_u32("table used")?;
        self.stats.allocs = r.get_u64("table stats.allocs")?;
        self.stats.frees = r.get_u64("table stats.frees")?;
        self.stats.denials = r.get_u64("table stats.denials")?;
        self.stats.lookups = r.get_u64("table stats.lookups")?;
        self.stats.arith_resolutions = r.get_u64("table stats.arith_resolutions")?;
        self.stats.tlb_hits = r.get_u64("table stats.tlb_hits")?;
        self.stats.tlb_misses = r.get_u64("table stats.tlb_misses")?;
        self.stats.tlb_invalidations = r.get_u64("table stats.tlb_invalidations")?;
        self.stats.compactions = r.get_u64("table stats.compactions")?;
        self.stats.peak_entries = r.get_u64("table stats.peak_entries")? as usize;
        self.host_stats.allocs = r.get_u64("table host.allocs")?;
        self.host_stats.frees = r.get_u64("table host.frees")?;
        self.host_stats.bytes_allocated = r.get_u64("table host.bytes_allocated")?;
        // Rebuild the validated caches instead of trusting serialized
        // copies: a cold TLB and the exact free-space complement.
        self.tlb = Tlb::new();
        if self.tlb_enabled {
            self.tlb.grow_for(self.entries.len());
        }
        self.gaps = (self.policy == VptrPolicy::FirstFitReuse).then(|| {
            GapIndex::from_allocated(self.entries.iter().map(|e| (e.vptr, e.size)))
        });
        self.check_invariants()
            .map_err(|detail| SnapshotError::Corrupt {
                context: format!("restored pointer table: {detail}"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(cap: u32) -> PointerTable {
        PointerTable::new(cap, VptrPolicy::PaperMonotonic)
    }

    #[test]
    fn first_vptr_is_zero_and_generation_is_monotonic() {
        let mut t = table(1024);
        let a = t.alloc(4, ElemType::U32).unwrap();
        assert_eq!(a, 0, "first vptr is zero by definition");
        let b = t.alloc(8, ElemType::U8).unwrap();
        assert_eq!(b, 16, "vptr(new) = vptr(last) + size(last)");
        let c = t.alloc(2, ElemType::U16).unwrap();
        assert_eq!(c, 24);
        t.check_invariants().unwrap();
    }

    #[test]
    fn monotonic_rule_after_middle_free() {
        let mut t = table(1024);
        let _a = t.alloc(4, ElemType::U32).unwrap(); // [0,16)
        let b = t.alloc(4, ElemType::U32).unwrap(); // [16,32)
        let _c = t.alloc(4, ElemType::U32).unwrap(); // [32,48)
        t.free(b, 0).unwrap();
        // Last entry is still c at [32,48): next vptr continues past it.
        let d = t.alloc(1, ElemType::U8).unwrap();
        assert_eq!(d, 48);
        t.check_invariants().unwrap();
    }

    #[test]
    fn finite_size_denial_and_restore() {
        let mut t = table(64);
        let a = t.alloc(16, ElemType::U32).unwrap(); // fills capacity
        assert_eq!(t.free_bytes(), 0);
        assert_eq!(t.alloc(1, ElemType::U8), Err(AllocError::OutOfMemory));
        assert_eq!(t.stats().denials, 1);
        t.free(a, 0).unwrap();
        assert_eq!(t.free_bytes(), 64);
        assert!(t.alloc(1, ElemType::U8).is_ok());
    }

    #[test]
    fn zero_and_overflowing_sizes_rejected() {
        let mut t = table(u32::MAX);
        assert_eq!(t.alloc(0, ElemType::U32), Err(AllocError::ZeroSize));
        assert_eq!(
            t.alloc(u32::MAX, ElemType::U32),
            Err(AllocError::OutOfMemory),
            "dim * width overflow"
        );
    }

    #[test]
    fn free_requires_base_pointer() {
        let mut t = table(1024);
        let a = t.alloc(4, ElemType::U32).unwrap();
        assert_eq!(t.free(a + 4, 0), Err(PtrError::BadPointer));
        assert!(t.free(a, 0).is_ok());
        assert_eq!(t.free(a, 0), Err(PtrError::BadPointer), "double free");
    }

    #[test]
    fn pointer_arithmetic_resolution() {
        let mut t = table(1024);
        let a = t.alloc(4, ElemType::U32).unwrap(); // [0,16)
        let b = t.alloc(2, ElemType::U16).unwrap(); // [16,20)
        // Interior pointer into a.
        let (idx, off) = t.resolve(a + 7).unwrap();
        assert_eq!(t.entry(idx).vptr, a);
        assert_eq!(off, 7);
        // Base pointer of b.
        let (idx, off) = t.resolve(b).unwrap();
        assert_eq!(t.entry(idx).vptr, b);
        assert_eq!(off, 0);
        // One past the end of b: unmapped.
        assert_eq!(t.resolve(b + 4), None);
        assert!(t.stats().arith_resolutions >= 3);
    }

    #[test]
    fn resolution_in_gaps_fails() {
        let mut t = PointerTable::new(1024, VptrPolicy::PaperMonotonic);
        let a = t.alloc(4, ElemType::U32).unwrap(); // [0,16)
        let b = t.alloc(4, ElemType::U32).unwrap(); // [16,32)
        t.free(a, 0).unwrap();
        assert_eq!(t.resolve(3), None, "freed range is unmapped");
        assert!(t.resolve(b + 3).is_some());
    }

    #[test]
    fn reservation_semaphore() {
        let mut t = table(1024);
        let a = t.alloc(4, ElemType::U32).unwrap();
        assert_eq!(t.reserve(a, 1), Ok(true));
        assert_eq!(t.reserve(a, 1), Ok(true), "re-acquire by owner");
        assert_eq!(t.reserve(a, 2), Ok(false), "held by master 1");
        assert_eq!(t.release(a, 2), Err(PtrError::Locked));
        assert_eq!(t.free(a, 2), Err(PtrError::Locked));
        t.release(a, 1).unwrap();
        assert_eq!(t.reserve(a, 2), Ok(true));
        t.release(a, 2).unwrap();
        t.release(a, 2).unwrap(); // idempotent
        assert!(t.free(a, 0).is_ok());
    }

    #[test]
    fn reservation_via_interior_pointer() {
        let mut t = table(1024);
        let a = t.alloc(16, ElemType::U32).unwrap();
        assert_eq!(t.reserve(a + 8, 3), Ok(true));
        assert_eq!(t.entry(0).reserved_by, Some(3));
    }

    #[test]
    fn first_fit_reuses_gaps() {
        let mut t = PointerTable::new(1024, VptrPolicy::FirstFitReuse);
        let a = t.alloc(4, ElemType::U32).unwrap(); // [0,16)
        let b = t.alloc(4, ElemType::U32).unwrap(); // [16,32)
        let c = t.alloc(4, ElemType::U32).unwrap(); // [32,48)
        t.free(b, 0).unwrap();
        let d = t.alloc(2, ElemType::U32).unwrap(); // fits in [16,24)
        assert_eq!(d, 16);
        let e = t.alloc(4, ElemType::U32).unwrap(); // gap too small now -> end
        assert_eq!(e, 48);
        t.check_invariants().unwrap();
        let _ = (a, c);
    }

    #[test]
    fn monotonic_cursor_resets_when_table_empties() {
        // With no live entries, "previous Vptr + previous size" has no
        // previous entry: the paper's rule restarts at zero.
        let mut t = PointerTable::new(1024, VptrPolicy::PaperMonotonic);
        let a = t.alloc(4, ElemType::U32).unwrap();
        t.free(a, 0).unwrap();
        let b = t.alloc(4, ElemType::U32).unwrap();
        assert_eq!(b, 0);
        t.free(b, 0).unwrap();
    }

    #[test]
    fn monotonic_exhaustion_versus_first_fit() {
        // Churn with a live "anchor" allocation: the monotonic cursor only
        // ever advances, so the 32-bit virtual space runs out even though
        // physical capacity is never exceeded. First-fit reuses the gaps.
        const BIG: u32 = 0x2000_0000;
        let churn = |policy: VptrPolicy| -> Result<(), AllocError> {
            let mut t = PointerTable::new(BIG + 64, policy);
            let mut anchor = t.alloc(4, ElemType::U32)?;
            for _ in 0..16 {
                let big = t.alloc(BIG, ElemType::U8)?;
                let next_anchor = t.alloc(4, ElemType::U32)?;
                t.free(big, 0).expect("big is live");
                t.free(anchor, 0).expect("old anchor is live");
                anchor = next_anchor;
                t.check_invariants().expect("invariants");
            }
            Ok(())
        };
        assert_eq!(
            churn(VptrPolicy::PaperMonotonic),
            Err(AllocError::VirtualExhausted),
            "monotonic policy must exhaust virtual space"
        );
        assert_eq!(churn(VptrPolicy::FirstFitReuse), Ok(()));
    }

    #[test]
    fn data_round_trip_through_host() {
        let mut t = table(1024);
        let a = t.alloc(4, ElemType::U32).unwrap();
        let (idx, off) = t.resolve(a + 4).unwrap();
        t.entry_mut(idx).host.bytes_mut()[off as usize] = 0x5A;
        assert_eq!(t.entry(idx).host.bytes()[4], 0x5A);
        // calloc semantics: fresh allocations are zeroed.
        let b = t.alloc(4, ElemType::U32).unwrap();
        let (idx, _) = t.resolve(b).unwrap();
        assert!(t.entry(idx).host.bytes().iter().all(|&x| x == 0));
    }

    #[test]
    fn tlb_serves_repeat_lookups() {
        let mut t = table(4096);
        let a = t.alloc(16, ElemType::U32).unwrap();
        let b = t.alloc(16, ElemType::U32).unwrap();
        // First touch of each allocation misses, repeats hit.
        assert!(t.resolve(a).is_some());
        assert!(t.resolve(a + 4).is_some());
        assert!(t.resolve(a + 60).is_some());
        let s = t.stats();
        assert_eq!(s.tlb_misses, 1, "only the first access searches");
        assert_eq!(s.tlb_hits, 2);
        // Different allocation: one more miss, then hits.
        assert!(t.resolve(b + 8).is_some());
        assert!(t.resolve(b + 12).is_some());
        let s = t.stats();
        assert_eq!(s.tlb_misses, 2);
        assert_eq!(s.tlb_hits, 3);
        assert!(s.tlb_hit_rate() > 0.5);
    }

    #[test]
    fn tlb_invalidated_on_free() {
        let mut t = table(4096);
        let a = t.alloc(16, ElemType::U32).unwrap();
        let b = t.alloc(16, ElemType::U32).unwrap();
        assert!(t.resolve(a).is_some());
        assert!(t.resolve(b).is_some());
        t.free(a, 0).unwrap();
        assert_eq!(t.stats().tlb_invalidations, 1);
        // The freed range must not resolve, hot TLB or not.
        assert_eq!(t.resolve(a), None);
        assert_eq!(t.resolve(a + 8), None);
        // The survivor still resolves correctly (index shifted from 1 to 0).
        let (idx, off) = t.resolve(b + 4).unwrap();
        assert_eq!(t.entry(idx).vptr, b);
        assert_eq!(off, 4);
    }

    #[test]
    fn tlb_correct_across_first_fit_reuse() {
        // Reusing a freed vptr range for a new allocation must translate to
        // the new entry, never the stale one.
        let mut t = PointerTable::new(4096, VptrPolicy::FirstFitReuse);
        let a = t.alloc(16, ElemType::U32).unwrap(); // [0, 64)
        let _b = t.alloc(16, ElemType::U32).unwrap(); // [64, 128)
        assert!(t.resolve(a + 32).is_some()); // warm the TLB for a's pages
        t.free(a, 0).unwrap();
        let c = t.alloc(8, ElemType::U32).unwrap(); // reuses [0, 32)
        assert_eq!(c, a, "first-fit reuses the gap");
        let (idx, off) = t.resolve(c + 16).unwrap();
        assert_eq!(t.entry(idx).vptr, c);
        assert_eq!(t.entry(idx).size, 32, "resolved to the new allocation");
        assert_eq!(off, 16);
        assert_eq!(t.resolve(c + 40), None, "beyond the new allocation");
    }

    #[test]
    fn resolve_hinted_validates_hint() {
        let mut t = table(4096);
        let a = t.alloc(4, ElemType::U32).unwrap();
        let b = t.alloc(4, ElemType::U32).unwrap();
        let (bi, _) = t.resolve(b).unwrap();
        // Correct hint short-circuits.
        let hits_before = t.stats().tlb_hits;
        let (idx, off) = t.resolve_hinted(b + 4, bi as u32).unwrap();
        assert_eq!((idx, off), (bi, 4));
        assert_eq!(t.stats().tlb_hits, hits_before + 1);
        // Wrong and out-of-range hints fall back to the normal path.
        let (idx, off) = t.resolve_hinted(a, bi as u32).unwrap();
        assert_eq!(t.entry(idx).vptr, a);
        assert_eq!(off, 0);
        assert_eq!(t.resolve_hinted(a + 2, u32::MAX).unwrap().1, 2);
        assert_eq!(t.resolve_hinted(0xFFFF, 0), None);
    }

    #[test]
    fn tlb_scales_with_table_population() {
        // A sweep over many entries should be TLB-hot on the second pass.
        let mut t = PointerTable::new(u32::MAX, VptrPolicy::PaperMonotonic);
        let vptrs: Vec<u32> = (0..2048)
            .map(|_| t.alloc(4, ElemType::U32).unwrap())
            .collect();
        for &v in &vptrs {
            t.resolve(v + 3);
        }
        let cold = t.stats();
        for &v in &vptrs {
            t.resolve(v + 7);
        }
        let warm = t.stats();
        assert_eq!(
            warm.tlb_misses, cold.tlb_misses,
            "second sweep is entirely TLB hits"
        );
        assert_eq!(warm.tlb_hits - cold.tlb_hits, 2048);
    }

    #[test]
    fn stats_track_activity() {
        let mut t = table(1024);
        let a = t.alloc(4, ElemType::U32).unwrap();
        let _b = t.alloc(4, ElemType::U32).unwrap();
        t.lookup(a);
        t.resolve(a + 1);
        t.free(a, 0).unwrap();
        let s = t.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 1);
        assert_eq!(s.lookups, 1);
        assert!(s.arith_resolutions >= 1);
        assert_eq!(s.peak_entries, 2);
        assert_eq!(s.compactions, 1);
        let h = t.host_stats();
        assert_eq!(h.allocs, 2);
        assert_eq!(h.frees, 1);
        assert_eq!(h.bytes_allocated, 32);
    }
}
