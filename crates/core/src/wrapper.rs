//! The dynamic shared-memory wrapper backend — the paper's contribution.
//!
//! Functional storage is delegated to the host machine (zeroed host
//! allocations stand in for `calloc`; dropping them for `free`), while the
//! pointer table keeps the simulated view (Vptr → Hptr, dimension, type,
//! reservation bit) and the translator converts endianness and widths.
//! Timing comes from a [`DelayModel`], so the module remains cycle-true
//! regardless of how fast the host serves the data.
//!
//! Burst transfers use the paper's *I/O array*: beats accumulate in a
//! buffer and move to host memory in one step when the communication
//! completes (writes), or are staged from host memory at burst setup
//! (reads).
//!
//! ## Hot-path engineering
//!
//! Three fast paths keep the host cost per simulated access near-constant
//! without changing any functional result or charged cycle:
//!
//! * **Per-master translation hints** — each master's last translated
//!   entry index short-circuits [`PointerTable::resolve`] for the common
//!   stride-through-one-buffer pattern (validated, so never stale-wrong);
//! * **Bulk I/O-array staging** — burst reads stage and burst writes
//!   commit through [`Translator::load_slice`]/[`Translator::store_slice`]
//!   in one pass over the host allocation instead of one call per element;
//! * **I/O-array reuse** — the paper's banked per-port burst buffers are
//!   allocated once per master and recycled, so burst setup does not touch
//!   the host allocator.

use crate::backend::{BeatResult, BlockResult, BurstInfo, DsmBackend, MemStats};
use crate::delay::DelayModel;
use crate::protocol::{ElemType, Opcode, OpResult, Request, Status};
use crate::table::{AllocError, PointerTable, PtrError, VptrPolicy};
use crate::translator::{Endian, Translator};

/// Width selector in scalar/burst requests: this value means "use the
/// element type recorded in the pointer table at allocation".
pub const WIDTH_FROM_TABLE: u32 = 0xFFFF_FFFF;

#[derive(Debug)]
struct BurstState {
    /// Entry index in the table.
    entry: usize,
    /// Byte offset of the first element.
    offset: u32,
    /// Element width for the transfer.
    elem: ElemType,
    /// Total number of elements.
    len: u32,
    /// Beats transferred so far.
    done: u32,
    /// Write (true) or read (false).
    writing: bool,
}

/// Configuration of a [`WrapperBackend`].
#[derive(Debug, Clone, Copy)]
pub struct WrapperConfig {
    /// Finite size of the simulated memory in bytes.
    pub capacity: u32,
    /// Virtual-pointer allocation policy.
    pub policy: VptrPolicy,
    /// Simulated-architecture endianness.
    pub endian: Endian,
    /// Delay parameters of the cycle-true part.
    pub delays: DelayModel,
    /// Whether the translation fast paths (pointer-table TLB and
    /// per-master hints) are used. On by default; turning it off exists
    /// for A/B equivalence testing — functional results and charged
    /// cycles are bit-identical either way (`tests/table_props.rs`).
    pub translation_cache: bool,
}

impl Default for WrapperConfig {
    fn default() -> Self {
        WrapperConfig {
            capacity: 1 << 20,
            policy: VptrPolicy::PaperMonotonic,
            endian: Endian::Little,
            delays: DelayModel::default(),
            translation_cache: true,
        }
    }
}

/// The host-backed dynamic memory model (paper Section 3).
#[derive(Debug)]
pub struct WrapperBackend {
    table: PointerTable,
    translator: Translator,
    delays: DelayModel,
    /// Per-master burst state (the paper's per-port burst engines).
    burst: [Option<BurstState>; 16],
    /// Per-master I/O arrays, allocated once and recycled across bursts.
    iobufs: [Vec<u32>; 16],
    /// Per-master translation hints: last entry index each master touched.
    /// Hints are validated against the live table on use, so a stale hint
    /// costs one containment check and never a wrong translation.
    xlat_hint: [u32; 16],
    stats: MemStats,
}

impl WrapperBackend {
    /// Creates a wrapper with the given configuration.
    pub fn new(config: WrapperConfig) -> Self {
        WrapperBackend {
            table: PointerTable::with_translation_cache(
                config.capacity,
                config.policy,
                config.translation_cache,
            ),
            translator: Translator::new(config.endian),
            delays: config.delays,
            burst: Default::default(),
            iobufs: Default::default(),
            xlat_hint: [u32::MAX; 16],
            stats: MemStats::default(),
        }
    }

    /// The pointer table (diagnostics and tests).
    pub fn table(&self) -> &PointerTable {
        &self.table
    }

    /// The delay model in force.
    pub fn delays(&self) -> &DelayModel {
        &self.delays
    }

    fn charge(&mut self, r: OpResult) -> OpResult {
        self.stats.busy_cycles += r.cycles;
        if !r.status.is_ok() {
            self.stats.errors += 1;
        }
        r
    }

    fn elem_for(&self, code: u32, entry: usize) -> Option<ElemType> {
        if code == WIDTH_FROM_TABLE {
            Some(self.table.entry(entry).elem)
        } else {
            ElemType::from_u32(code)
        }
    }

    fn do_alloc(&mut self, req: &Request) -> OpResult {
        let Some(elem) = ElemType::from_u32(req.arg1) else {
            return OpResult::err(Status::BadArgs, self.delays.alloc.cycles(0));
        };
        match self.table.alloc(req.arg0, elem) {
            Ok(vptr) => {
                self.stats.allocs += 1;
                let size = req.arg0 * elem.bytes();
                OpResult::ok(vptr, self.delays.alloc.cycles(size))
            }
            Err(AllocError::ZeroSize) => {
                OpResult::err(Status::BadArgs, self.delays.alloc.cycles(0))
            }
            Err(AllocError::OutOfMemory) => {
                self.stats.denials += 1;
                OpResult::err(Status::OutOfMemory, self.delays.alloc.cycles(0))
            }
            Err(AllocError::VirtualExhausted) => {
                self.stats.denials += 1;
                OpResult::err(Status::VirtualExhausted, self.delays.alloc.cycles(0))
            }
        }
    }

    fn do_free(&mut self, req: &Request) -> OpResult {
        match self.table.free(req.arg0, req.master) {
            Ok(size) => {
                self.stats.frees += 1;
                OpResult::ok(0, self.delays.free.cycles(size))
            }
            Err(PtrError::Locked) => OpResult::err(Status::Locked, self.delays.free.cycles(0)),
            Err(_) => OpResult::err(Status::BadPointer, self.delays.free.cycles(0)),
        }
    }

    /// Resolves a data access: entry index, offset, elem, after reservation
    /// and bounds checks. Translation goes through the calling master's
    /// hint slot first, then the table's TLB.
    fn data_target(
        &mut self,
        vptr: u32,
        width_code: u32,
        master: u8,
        len_elems: u32,
    ) -> Result<(usize, u32, ElemType), Status> {
        let slot = master as usize & 0xF;
        let (idx, offset) = self
            .table
            .resolve_hinted(vptr, self.xlat_hint[slot])
            .ok_or(Status::BadPointer)?;
        self.xlat_hint[slot] = idx as u32;
        let elem = self.elem_for(width_code, idx).ok_or(Status::BadArgs)?;
        let entry = self.table.entry(idx);
        if !entry.accessible_by(master) {
            return Err(Status::Locked);
        }
        let span = len_elems
            .checked_mul(elem.bytes())
            .ok_or(Status::BadArgs)?;
        if offset.checked_add(span).is_none_or(|end| end > entry.size) {
            return Err(Status::OutOfBounds);
        }
        Ok((idx, offset, elem))
    }

    fn do_read(&mut self, req: &Request) -> OpResult {
        match self.data_target(req.arg0, req.arg2, req.master, 1) {
            Ok((idx, offset, elem)) => {
                let entry = self.table.entry(idx);
                let value = self
                    .translator
                    .load(entry.host.bytes(), offset, elem)
                    .expect("bounds pre-checked");
                self.stats.reads += 1;
                OpResult::ok(value, self.delays.read.cycles(elem.bytes()))
            }
            Err(s) => OpResult::err(s, self.delays.read.cycles(0)),
        }
    }

    fn do_write(&mut self, req: &Request) -> OpResult {
        match self.data_target(req.arg0, req.arg2, req.master, 1) {
            Ok((idx, offset, elem)) => {
                let translator = self.translator;
                let entry = self.table.entry_mut(idx);
                let ok = translator.store(entry.host.bytes_mut(), offset, req.arg1, elem);
                debug_assert!(ok, "bounds pre-checked");
                self.stats.writes += 1;
                OpResult::ok(0, self.delays.write.cycles(elem.bytes()))
            }
            Err(s) => OpResult::err(s, self.delays.write.cycles(0)),
        }
    }

    fn do_burst(&mut self, req: &Request, writing: bool) -> OpResult {
        if req.arg2 == 0 {
            return OpResult::err(Status::BadArgs, self.delays.burst_setup.cycles(0));
        }
        match self.data_target(req.arg0, req.arg1, req.master, req.arg2) {
            Ok((idx, offset, elem)) => {
                let len = req.arg2;
                let total_bytes = len * elem.bytes();
                let slot = req.master as usize & 0xF;
                // Recycle the master's I/O array: no host allocation on the
                // burst hot path after the first use of each port.
                let iobuf = &mut self.iobufs[slot];
                iobuf.clear();
                if writing {
                    iobuf.reserve(len as usize);
                } else {
                    // Stage host data into the I/O array in one bulk pass;
                    // beats then stream it out.
                    let entry = self.table.entry(idx);
                    let ok = self
                        .translator
                        .load_slice(entry.host.bytes(), offset, len, elem, iobuf);
                    debug_assert!(ok, "bounds pre-checked");
                }
                self.burst[slot] = Some(BurstState {
                    entry: idx,
                    offset,
                    elem,
                    len,
                    done: 0,
                    writing,
                });
                OpResult::ok(0, self.delays.burst_setup.cycles(total_bytes))
            }
            Err(s) => OpResult::err(s, self.delays.burst_setup.cycles(0)),
        }
    }

    /// Commits a completed write burst's I/O array to the host allocation
    /// in one bulk pass, returning the extra cycles of the commit step.
    fn commit_write_burst(&mut self, slot: usize) -> u64 {
        let burst = self.burst[slot].take().expect("active write burst");
        let entry = self.table.entry_mut(burst.entry);
        let ok = self.translator.store_slice(
            entry.host.bytes_mut(),
            burst.offset,
            &self.iobufs[slot],
            burst.elem,
        );
        debug_assert!(ok, "bounds pre-checked at setup");
        self.delays.write.cycles(0)
    }

    fn do_reserve(&mut self, req: &Request) -> OpResult {
        let cycles = self.delays.reserve.cycles(0);
        match self.table.reserve(req.arg0, req.master) {
            Ok(acquired) => OpResult::ok(acquired as u32, cycles),
            Err(_) => OpResult::err(Status::BadPointer, cycles),
        }
    }

    fn do_release(&mut self, req: &Request) -> OpResult {
        let cycles = self.delays.reserve.cycles(0);
        match self.table.release(req.arg0, req.master) {
            Ok(()) => OpResult::ok(0, cycles),
            Err(PtrError::Locked) => OpResult::err(Status::Locked, cycles),
            Err(_) => OpResult::err(Status::BadPointer, cycles),
        }
    }
}

impl DsmBackend for WrapperBackend {
    fn kind(&self) -> &'static str {
        "wrapper"
    }

    fn execute(&mut self, req: &Request) -> OpResult {
        // A new command from a master aborts that master's unfinished
        // burst (other masters' I/O arrays are unaffected).
        if !matches!(req.op, Opcode::Nop) {
            self.burst[req.master as usize & 0xF] = None;
        }
        let result = match req.op {
            Opcode::Nop => OpResult::ok(0, 0),
            Opcode::Alloc => self.do_alloc(req),
            Opcode::Free => self.do_free(req),
            Opcode::Write => self.do_write(req),
            Opcode::Read => self.do_read(req),
            Opcode::WriteBurst => self.do_burst(req, true),
            Opcode::ReadBurst => self.do_burst(req, false),
            Opcode::Reserve => self.do_reserve(req),
            Opcode::Release => self.do_release(req),
            Opcode::Info => OpResult::ok(self.table.free_bytes(), self.delays.read.cycles(0)),
        };
        self.stats.host = self.table.host_stats();
        self.charge(result)
    }

    fn burst_write_beat(&mut self, master: u8, value: u32) -> BeatResult {
        let slot = master as usize & 0xF;
        let Some(burst) = self.burst[slot].as_mut() else {
            return BeatResult::err(Status::BadArgs, self.delays.reg_access.max(1));
        };
        if !burst.writing {
            return BeatResult::err(Status::BadArgs, self.delays.reg_access.max(1));
        }
        self.iobufs[slot].push(value);
        burst.done += 1;
        let complete = burst.done == burst.len;
        let mut cycles = self.delays.burst_beat;
        if complete {
            // Communication complete: move the I/O array to the host
            // allocation in one step.
            cycles += self.commit_write_burst(slot);
        }
        self.stats.burst_beats += 1;
        self.stats.busy_cycles += cycles;
        BeatResult::ok(0, cycles)
    }

    fn burst_read_beat(&mut self, master: u8) -> BeatResult {
        let slot = master as usize & 0xF;
        let Some(burst) = self.burst[slot].as_mut() else {
            return BeatResult::err(Status::BadArgs, self.delays.reg_access.max(1));
        };
        if burst.writing || burst.done >= burst.len {
            return BeatResult::err(Status::BadArgs, self.delays.reg_access.max(1));
        }
        let value = self.iobufs[slot][burst.done as usize];
        burst.done += 1;
        if burst.done == burst.len {
            self.burst[slot] = None;
        }
        let cycles = self.delays.burst_beat;
        self.stats.burst_beats += 1;
        self.stats.busy_cycles += cycles;
        BeatResult::ok(value, cycles)
    }

    fn burst_info(&self, master: u8) -> Option<BurstInfo> {
        self.burst[master as usize & 0xF].as_ref().map(|b| BurstInfo {
            writing: b.writing,
            remaining: b.len - b.done,
        })
    }

    fn burst_read_block(&mut self, master: u8, out: &mut [u32]) -> BlockResult {
        let slot = master as usize & 0xF;
        let per_beat = self.delays.burst_beat;
        let Some(burst) = self.burst[slot].as_mut() else {
            return BlockResult::rejected(Status::BadArgs, per_beat);
        };
        if burst.writing {
            return BlockResult::rejected(Status::BadArgs, per_beat);
        }
        // Bulk slice copy out of the staged I/O array — one memcpy instead
        // of one virtual call per beat.
        let n = (out.len() as u32).min(burst.len - burst.done);
        let from = burst.done as usize;
        out[..n as usize].copy_from_slice(&self.iobufs[slot][from..from + n as usize]);
        burst.done += n;
        let exhausted = burst.done == burst.len;
        if exhausted {
            self.burst[slot] = None;
        }
        let cycles = n as u64 * per_beat;
        self.stats.burst_beats += n as u64;
        self.stats.busy_cycles += cycles;
        BlockResult {
            // Mirror the per-beat loop: asking for more beats than remain
            // ends with the error the next per-beat call would return.
            status: if (out.len() as u32) > n {
                Status::BadArgs
            } else {
                Status::Ok
            },
            beats: n,
            cycles,
            cycles_per_beat: per_beat,
        }
    }

    fn burst_write_block(&mut self, master: u8, values: &[u32]) -> BlockResult {
        let slot = master as usize & 0xF;
        let per_beat = self.delays.burst_beat;
        let Some(burst) = self.burst[slot].as_mut() else {
            return BlockResult::rejected(Status::BadArgs, per_beat);
        };
        if !burst.writing {
            return BlockResult::rejected(Status::BadArgs, per_beat);
        }
        let n = (values.len() as u32).min(burst.len - burst.done);
        self.iobufs[slot].extend_from_slice(&values[..n as usize]);
        burst.done += n;
        let complete = burst.done == burst.len;
        let mut cycles = n as u64 * per_beat;
        if complete {
            cycles += self.commit_write_burst(slot);
        }
        self.stats.burst_beats += n as u64;
        self.stats.busy_cycles += cycles;
        BlockResult {
            status: if (values.len() as u32) > n {
                Status::BadArgs
            } else {
                Status::Ok
            },
            beats: n,
            cycles,
            cycles_per_beat: per_beat,
        }
    }

    fn free_bytes(&self) -> u32 {
        self.table.free_bytes()
    }

    fn stats(&self) -> MemStats {
        let mut s = self.stats;
        let t = self.table.stats();
        s.host = self.table.host_stats();
        s.denials = t.denials;
        s.tlb_hits = t.tlb_hits;
        s.tlb_misses = t.tlb_misses;
        s
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn save_state(&self, w: &mut dmi_kernel::StateWriter) {
        self.table.save_state(w);
        for slot in 0..16 {
            match &self.burst[slot] {
                Some(b) => {
                    w.put_bool(true);
                    w.put_u64(b.entry as u64);
                    w.put_u32(b.offset);
                    w.put_u8(b.elem as u8);
                    w.put_u32(b.len);
                    w.put_u32(b.done);
                    w.put_bool(b.writing);
                }
                None => w.put_bool(false),
            }
            // Mid-burst data lives in the staged I/O array; serialize it
            // whole (it is cleared between bursts anyway).
            let buf = &self.iobufs[slot];
            w.put_u64(buf.len() as u64);
            for v in buf {
                w.put_u32(*v);
            }
        }
        crate::backend::write_mem_stats(w, &self.stats);
    }

    fn load_state(
        &mut self,
        r: &mut dmi_kernel::StateReader<'_>,
    ) -> Result<(), dmi_kernel::SnapshotError> {
        use dmi_kernel::SnapshotError;
        self.table.load_state(r)?;
        for slot in 0..16 {
            self.burst[slot] = if r.get_bool("wrapper burst flag")? {
                let entry = r.get_u64("wrapper burst entry")? as usize;
                let offset = r.get_u32("wrapper burst offset")?;
                let elem = ElemType::from_u32(r.get_u8("wrapper burst elem")? as u32)
                    .ok_or_else(|| SnapshotError::Corrupt {
                        context: "wrapper burst: invalid element type".to_string(),
                    })?;
                let len = r.get_u32("wrapper burst len")?;
                let done = r.get_u32("wrapper burst done")?;
                let writing = r.get_bool("wrapper burst writing")?;
                if entry >= self.table.len() || done > len {
                    return Err(SnapshotError::Corrupt {
                        context: "wrapper burst: cursor out of range".to_string(),
                    });
                }
                Some(BurstState {
                    entry,
                    offset,
                    elem,
                    len,
                    done,
                    writing,
                })
            } else {
                None
            };
            let n = r.get_u64("wrapper iobuf len")? as usize;
            let buf = &mut self.iobufs[slot];
            buf.clear();
            for _ in 0..n {
                buf.push(r.get_u32("wrapper iobuf word")?);
            }
        }
        self.stats = crate::backend::read_mem_stats(r)?;
        // Translation hints are validated caches; restart cold.
        self.xlat_hint = [u32::MAX; 16];
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::NULL_VPTR;

    fn req(op: Opcode, arg0: u32, arg1: u32, arg2: u32) -> Request {
        Request {
            op,
            arg0,
            arg1,
            arg2,
            master: 0,
        }
    }

    fn wrapper() -> WrapperBackend {
        WrapperBackend::new(WrapperConfig {
            capacity: 4096,
            ..WrapperConfig::default()
        })
    }

    #[test]
    fn alloc_write_read_free_cycle() {
        let mut w = wrapper();
        let a = w.execute(&req(Opcode::Alloc, 8, ElemType::U32 as u32, 0));
        assert!(a.status.is_ok());
        let vptr = a.result;
        assert_eq!(vptr, 0);

        let wr = w.execute(&req(Opcode::Write, vptr + 4, 0xABCD_1234, 2));
        assert!(wr.status.is_ok());
        let rd = w.execute(&req(Opcode::Read, vptr + 4, 0, 2));
        assert_eq!(rd.result, 0xABCD_1234);

        // calloc semantics: untouched element reads zero.
        let rd0 = w.execute(&req(Opcode::Read, vptr, 0, 2));
        assert_eq!(rd0.result, 0);

        let fr = w.execute(&req(Opcode::Free, vptr, 0, 0));
        assert!(fr.status.is_ok());
        let rd_bad = w.execute(&req(Opcode::Read, vptr, 0, 2));
        assert_eq!(rd_bad.status, Status::BadPointer);
    }

    #[test]
    fn width_from_table_default() {
        let mut w = wrapper();
        let vptr = w
            .execute(&req(Opcode::Alloc, 4, ElemType::U16 as u32, 0))
            .result;
        let _ = w.execute(&req(Opcode::Write, vptr, 0xFFFF_BEEF, WIDTH_FROM_TABLE));
        let rd = w.execute(&req(Opcode::Read, vptr, 0, WIDTH_FROM_TABLE));
        assert_eq!(rd.result, 0xBEEF, "table says U16");
    }

    #[test]
    fn out_of_bounds_and_bad_width() {
        let mut w = wrapper();
        let vptr = w
            .execute(&req(Opcode::Alloc, 2, ElemType::U32 as u32, 0))
            .result;
        let r = w.execute(&req(Opcode::Read, vptr + 5, 0, 2));
        assert_eq!(r.status, Status::OutOfBounds, "word read at offset 5 of 8");
        let r = w.execute(&req(Opcode::Read, vptr, 0, 3));
        assert_eq!(r.status, Status::BadArgs);
    }

    #[test]
    fn capacity_denial_reports_out_of_memory() {
        let mut w = wrapper();
        let r = w.execute(&req(Opcode::Alloc, 2048, ElemType::U32 as u32, 0));
        assert_eq!(r.status, Status::OutOfMemory);
        assert_eq!(r.result, NULL_VPTR);
        assert_eq!(w.stats().denials, 1);
    }

    #[test]
    fn timing_is_data_dependent() {
        let mut w = wrapper();
        let small = w.execute(&req(Opcode::Alloc, 4, ElemType::U8 as u32, 0));
        let big = w.execute(&req(Opcode::Alloc, 900, ElemType::U32 as u32, 0));
        assert!(
            big.cycles > small.cycles,
            "alloc delay grows with size ({} vs {})",
            big.cycles,
            small.cycles
        );
    }

    #[test]
    fn burst_write_commits_on_last_beat() {
        let mut w = wrapper();
        let vptr = w
            .execute(&req(Opcode::Alloc, 4, ElemType::U32 as u32, 0))
            .result;
        let setup = w.execute(&req(Opcode::WriteBurst, vptr, WIDTH_FROM_TABLE, 4));
        assert!(setup.status.is_ok());
        for i in 0..4u32 {
            // Before the final beat, host data must still be zero.
            if i == 3 {
                let probe_before = {
                    // Peek via the table directly (host view).
                    let entry = w.table().iter().next().unwrap();
                    entry.host.bytes()[0]
                };
                assert_eq!(probe_before, 0, "I/O array not yet committed");
            }
            let b = w.burst_write_beat(0, 100 + i);
            assert!(b.status.is_ok());
        }
        for i in 0..4u32 {
            let rd = w.execute(&req(Opcode::Read, vptr + i * 4, 0, 2));
            assert_eq!(rd.result, 100 + i);
        }
    }

    #[test]
    fn burst_read_stages_then_streams() {
        let mut w = wrapper();
        let vptr = w
            .execute(&req(Opcode::Alloc, 3, ElemType::U32 as u32, 0))
            .result;
        for i in 0..3u32 {
            let _ = w.execute(&req(Opcode::Write, vptr + i * 4, 7 + i, 2));
        }
        let setup = w.execute(&req(Opcode::ReadBurst, vptr, WIDTH_FROM_TABLE, 3));
        assert!(setup.status.is_ok());
        for i in 0..3u32 {
            let b = w.burst_read_beat(0);
            assert!(b.status.is_ok());
            assert_eq!(b.data, 7 + i);
        }
        // Exhausted burst errors.
        assert_eq!(w.burst_read_beat(0).status, Status::BadArgs);
    }

    #[test]
    fn burst_bounds_checked_at_setup() {
        let mut w = wrapper();
        let vptr = w
            .execute(&req(Opcode::Alloc, 4, ElemType::U32 as u32, 0))
            .result;
        let r = w.execute(&req(Opcode::WriteBurst, vptr + 8, WIDTH_FROM_TABLE, 3));
        assert_eq!(r.status, Status::OutOfBounds);
        assert_eq!(w.burst_write_beat(0, 1).status, Status::BadArgs);
    }

    #[test]
    fn reservation_blocks_other_masters() {
        let mut w = wrapper();
        let vptr = w
            .execute(&req(Opcode::Alloc, 4, ElemType::U32 as u32, 0))
            .result;
        let r = w.execute(&Request {
            op: Opcode::Reserve,
            arg0: vptr,
            arg1: 0,
            arg2: 0,
            master: 1,
        });
        assert_eq!(r.result, 1);
        // Master 2 cannot write, read, or free.
        let wr = w.execute(&Request {
            op: Opcode::Write,
            arg0: vptr,
            arg1: 5,
            arg2: 2,
            master: 2,
        });
        assert_eq!(wr.status, Status::Locked);
        let fr = w.execute(&Request {
            op: Opcode::Free,
            arg0: vptr,
            arg1: 0,
            arg2: 0,
            master: 2,
        });
        assert_eq!(fr.status, Status::Locked);
        // Reserve attempt by master 2 fails (result 0) but status is Ok.
        let r2 = w.execute(&Request {
            op: Opcode::Reserve,
            arg0: vptr,
            arg1: 0,
            arg2: 0,
            master: 2,
        });
        assert!(r2.status.is_ok());
        assert_eq!(r2.result, 0);
        // Owner releases; master 2 can now write.
        let rel = w.execute(&Request {
            op: Opcode::Release,
            arg0: vptr,
            arg1: 0,
            arg2: 0,
            master: 1,
        });
        assert!(rel.status.is_ok());
        let wr2 = w.execute(&Request {
            op: Opcode::Write,
            arg0: vptr,
            arg1: 5,
            arg2: 2,
            master: 2,
        });
        assert!(wr2.status.is_ok());
    }

    #[test]
    fn info_reports_free_capacity() {
        let mut w = wrapper();
        let before = w.execute(&req(Opcode::Info, 0, 0, 0)).result;
        assert_eq!(before, 4096);
        let _ = w.execute(&req(Opcode::Alloc, 64, ElemType::U32 as u32, 0));
        let after = w.execute(&req(Opcode::Info, 0, 0, 0)).result;
        assert_eq!(after, 4096 - 256);
        assert_eq!(w.free_bytes(), after);
    }

    #[test]
    fn stats_accumulate() {
        let mut w = wrapper();
        let vptr = w
            .execute(&req(Opcode::Alloc, 4, ElemType::U32 as u32, 0))
            .result;
        let _ = w.execute(&req(Opcode::Write, vptr, 1, 2));
        let _ = w.execute(&req(Opcode::Read, vptr, 0, 2));
        let _ = w.execute(&req(Opcode::Free, vptr, 0, 0));
        let s = w.stats();
        assert_eq!(s.allocs, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.frees, 1);
        assert!(s.busy_cycles > 0);
        assert_eq!(s.host.allocs, 1);
        assert_eq!(s.host.frees, 1);
        assert_eq!(w.kind(), "wrapper");
    }
}
