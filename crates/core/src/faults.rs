//! Deterministic fault injection for the DSM protocol stack.
//!
//! A [`FaultPlan`] declares *where* ([`FaultSite`]), *when*
//! ([`FaultTrigger`]) and *what* ([`FaultKind`]) to inject. Plans are
//! compiled into a [`FaultController`] that the system builder shares
//! (via [`FaultHook`]) with every memory module and the interconnect.
//! The hooks are consulted on the same protocol events in every
//! configuration, so injection is **replay-exact**: triggers count
//! protocol accesses and draw from a seeded [splitmix64] stream — never
//! wall-clock, never host state. The same plan + seed produces the same
//! faults on the heap and wheel queues, with the clock calendar on or
//! off, because the access order those hooks observe is itself
//! bit-identical across queue kinds.
//!
//! An **empty plan is inert by construction**: every hook returns the
//! "no fault" action without touching a trigger counter, so a system
//! built with `FaultPlan::default()` is cycle-bit-identical to one
//! built with no plan at all (pinned by the system-level differential
//! tests).
//!
//! Like the other fast-path twins, injection is runtime-toggleable: the
//! `DMI_FAULTS` environment variable (`0`/`off` disables) provides the
//! default, and `SystemBuilder::fault_injection(bool)` pins it
//! per-system.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use std::cell::RefCell;
use std::rc::Rc;

use crate::protocol::{Opcode, Status};

/// Reads the `DMI_FAULTS` toggle from the environment; defaults to
/// enabled. Set `DMI_FAULTS=0` (or `off`) to neutralise every installed
/// fault hook without rebuilding the system — the reference twin for
/// differential runs.
pub fn faults_enabled_default() -> bool {
    match std::env::var("DMI_FAULTS") {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("off")),
        Err(_) => true,
    }
}

/// Where a fault is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A DSM command (CMD-register write) on memory module `mem`,
    /// optionally filtered to one opcode and/or one master index.
    MemOp {
        /// Memory module ordinal (builder registration order).
        mem: usize,
        /// Only this opcode, or any valid opcode when `None`.
        op: Option<Opcode>,
        /// Only this master-select, or any master when `None`.
        master: Option<u8>,
    },
    /// A DATA-register burst beat on memory module `mem`.
    MemBeat {
        /// Memory module ordinal (builder registration order).
        mem: usize,
        /// Only this master-select, or any master when `None`.
        master: Option<u8>,
        /// Only write beats (`Some(true)`), only read beats
        /// (`Some(false)`), or both (`None`).
        writing: Option<bool>,
    },
    /// A granted interconnect transaction, optionally filtered to one
    /// requesting master (wiring order: CPUs first, then masters).
    BusAccess {
        /// Only this master index, or any master when `None`.
        master: Option<usize>,
    },
}

/// When a fault fires, counted over the accesses that match its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Exactly the `n`-th matching access (1-based), once.
    Nth(u64),
    /// Every `period`-th matching access starting at the `first`-th
    /// (1-based). `period == 0` is treated as 1.
    Every {
        /// First matching access to fault (1-based).
        first: u64,
        /// Fault every this-many matching accesses thereafter.
        period: u64,
    },
    /// Each matching access fires with probability `threshold / 2^32`,
    /// drawn from the spec's private seeded PRNG stream. The stream
    /// advances only on matching accesses, so replays are exact.
    Random {
        /// Firing threshold out of `u32::MAX + 1`.
        threshold: u32,
    },
}

/// What the fault does at its site. Kinds only act on sites that can
/// express them (e.g. [`FaultKind::DecodeError`] on a memory site is
/// inert); mismatched pairs are documented no-ops, not errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Force the slave's STATUS register to this value; the faulted
    /// command is not executed (result = `NULL_VPTR`), a faulted beat
    /// does not reach the backend. Mem sites only.
    Status(Status),
    /// XOR the payload with `mask`: a command's write argument or read
    /// result, or a beat's data word. Mem sites only.
    FlipData {
        /// Bit mask XOR-ed into the payload.
        mask: u32,
    },
    /// The interconnect pretends the decode failed: the master is acked
    /// with the decode-error pattern and the slave never sees the
    /// transaction. Bus sites only.
    DecodeError,
    /// Stretch the grant by this many extra arbitration cycles. Bus
    /// sites only.
    GrantStall {
        /// Extra cycles spent in the arbitration state.
        cycles: u64,
    },
    /// Kill the in-flight burst: this and every following beat answers
    /// with [`Status::OutOfBounds`] until the master issues a fresh
    /// command. [`FaultSite::MemBeat`] only.
    AbortBurst,
}

/// One declared fault: site + trigger + kind, with an optional cap on
/// total fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Where to inject.
    pub site: FaultSite,
    /// When to fire.
    pub trigger: FaultTrigger,
    /// What to do.
    pub kind: FaultKind,
    /// Maximum number of fires, `0` = unlimited.
    pub max_fires: u64,
}

impl FaultSpec {
    /// A spec with no fire cap.
    pub fn new(site: FaultSite, trigger: FaultTrigger, kind: FaultKind) -> Self {
        FaultSpec {
            site,
            trigger,
            kind,
            max_fires: 0,
        }
    }

    /// Caps the spec at `n` total fires.
    pub fn limit(mut self, n: u64) -> Self {
        self.max_fires = n;
        self
    }
}

/// A declarative, seeded fault schedule. Passed to
/// `SystemBuilder::faults`; the default plan is empty and inert.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given PRNG seed for
    /// [`FaultTrigger::Random`] specs.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Adds a spec (builder style).
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Adds a spec in place.
    pub fn push(&mut self, spec: FaultSpec) {
        self.specs.push(spec);
    }

    /// Whether the plan declares no faults.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The declared specs.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Injection counters, per layer and in aggregate, surfaced through
/// `RunReport::faults`. The `retried`/`recovered`/`escalated` fields
/// are filled in by the system layer from master reports; the
/// controller itself only counts injections. Counters are cumulative
/// over the system's lifetime (not reset per `run_until` epoch).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Total faults injected across all sites.
    pub injected: u64,
    /// Faults injected at DSM commands ([`FaultSite::MemOp`]).
    pub mem_ops: u64,
    /// Faults injected at burst beats ([`FaultSite::MemBeat`]).
    pub mem_beats: u64,
    /// Faults injected at interconnect grants ([`FaultSite::BusAccess`]).
    pub bus_accesses: u64,
    /// Fires per declared spec, in plan order.
    pub per_spec: Vec<u64>,
    /// Master retry attempts caused by non-`Ok` statuses.
    pub retried: u64,
    /// Transfers (alloc dialogues or chunks) that succeeded after at
    /// least one retry.
    pub recovered: u64,
    /// Masters that gave up with an unrecovered [`MasterError`]
    /// (whether or not they escalated to a kernel stop).
    ///
    /// [`MasterError`]: https://docs.rs/ (see `dmi-interconnect`)
    pub escalated: u64,
}

impl FaultStats {
    /// Whether any fault was injected or observed.
    pub fn any(&self) -> bool {
        self.injected != 0 || self.retried != 0 || self.escalated != 0
    }
}

/// Outcome of consulting the controller at a DSM command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemOpFault {
    /// Fail the command with this status instead of executing it.
    pub force_status: Option<Status>,
    /// XOR this mask into the write argument / read result.
    pub flip_mask: u32,
}

/// Outcome of consulting the controller at a burst beat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemBeatFault {
    /// Fail this beat with this status; it does not reach the backend.
    pub force_status: Option<Status>,
    /// XOR this mask into the beat data.
    pub flip_mask: u32,
    /// Kill the burst: sticky error until the next command.
    pub abort: bool,
}

/// Outcome of consulting the controller at an interconnect grant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusFault {
    /// Route the transaction to the decode-error path.
    pub decode_error: bool,
    /// Extra arbitration cycles before the grant completes.
    pub stall_cycles: u64,
}

/// splitmix64 step: the PRNG behind [`FaultTrigger::Random`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One spec compiled with its runtime state: match counter, fire
/// counter, and a private PRNG stream (seeded from the plan seed and
/// the spec's index so specs never share randomness).
#[derive(Debug, Clone)]
struct CompiledSpec {
    spec: FaultSpec,
    matches: u64,
    fires: u64,
    rng: u64,
}

impl CompiledSpec {
    /// Records a matching access and decides whether this spec fires on
    /// it. Advances the PRNG only for `Random` triggers, and only on
    /// matching accesses.
    fn observe(&mut self) -> bool {
        self.matches += 1;
        if self.spec.max_fires != 0 && self.fires >= self.spec.max_fires {
            // Still consume randomness so capping a spec does not shift
            // the stream seen by earlier fires on replay.
            if let FaultTrigger::Random { .. } = self.spec.trigger {
                splitmix64(&mut self.rng);
            }
            return false;
        }
        let fire = match self.spec.trigger {
            FaultTrigger::Nth(n) => self.matches == n,
            FaultTrigger::Every { first, period } => {
                let period = period.max(1);
                self.matches >= first && (self.matches - first).is_multiple_of(period)
            }
            FaultTrigger::Random { threshold } => {
                ((splitmix64(&mut self.rng) >> 32) as u32) < threshold
            }
        };
        if fire {
            self.fires += 1;
        }
        fire
    }
}

/// The shared runtime behind a [`FaultPlan`]: consulted by memory
/// modules and the interconnect on every protocol access, merges the
/// actions of all matching specs, and counts injections.
#[derive(Debug, Clone)]
pub struct FaultController {
    enabled: bool,
    specs: Vec<CompiledSpec>,
    stats: FaultStats,
}

/// How fault hooks are shared between the controller's owner (the
/// system) and the components that consult it.
pub type FaultHook = Rc<RefCell<FaultController>>;

impl FaultController {
    /// Compiles a plan. Enablement defaults to
    /// [`faults_enabled_default`] (the `DMI_FAULTS` toggle).
    pub fn new(plan: FaultPlan) -> Self {
        let seed = plan.seed;
        let specs = plan
            .specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| CompiledSpec {
                spec,
                matches: 0,
                fires: 0,
                // Decorrelate per-spec streams: jump the seed by the
                // spec index through the same mixer.
                rng: {
                    let mut s = seed.wrapping_add((i as u64).wrapping_mul(0xA5A5_A5A5_A5A5_A5A5));
                    splitmix64(&mut s);
                    s
                },
            })
            .collect::<Vec<_>>();
        let n = specs.len();
        FaultController {
            enabled: faults_enabled_default(),
            specs,
            stats: FaultStats {
                per_spec: vec![0; n],
                ..FaultStats::default()
            },
        }
    }

    /// Pins enablement, overriding the environment default.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether injection is live.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Snapshot of the injection counters.
    pub fn stats(&self) -> FaultStats {
        self.stats.clone()
    }

    /// Wraps the controller for sharing with components.
    pub fn into_hook(self) -> FaultHook {
        Rc::new(RefCell::new(self))
    }

    /// Number of compiled specs (the plan's length).
    pub fn spec_count(&self) -> usize {
        self.specs.len()
    }

    /// Serializes the per-spec stream positions (match/fire counts and
    /// the raw splitmix64 state — the *position* in each spec's random
    /// stream) plus the injection counters. The `enabled` flag is a
    /// runtime twin toggle like the clock calendar and is *not*
    /// serialized; restore keeps the target's setting.
    pub fn save_state(&self, w: &mut dmi_kernel::StateWriter) {
        w.put_u32(self.specs.len() as u32);
        for s in &self.specs {
            w.put_u64(s.matches);
            w.put_u64(s.fires);
            w.put_u64(s.rng);
        }
        w.put_u64(self.stats.injected);
        w.put_u64(self.stats.mem_ops);
        w.put_u64(self.stats.mem_beats);
        w.put_u64(self.stats.bus_accesses);
        w.put_u64(self.stats.retried);
        w.put_u64(self.stats.recovered);
        w.put_u64(self.stats.escalated);
        w.put_u32(self.stats.per_spec.len() as u32);
        for n in &self.stats.per_spec {
            w.put_u64(*n);
        }
    }

    /// Restores state written by [`FaultController::save_state`] onto a
    /// controller compiled from the same plan (validated by spec count).
    pub fn load_state(
        &mut self,
        r: &mut dmi_kernel::StateReader<'_>,
    ) -> Result<(), dmi_kernel::SnapshotError> {
        use dmi_kernel::SnapshotError;
        let n = r.get_u32("fault spec count")? as usize;
        if n != self.specs.len() {
            return Err(SnapshotError::Mismatch {
                context: format!(
                    "snapshot has {n} fault specs, target plan has {}",
                    self.specs.len()
                ),
            });
        }
        for s in &mut self.specs {
            s.matches = r.get_u64("fault spec matches")?;
            s.fires = r.get_u64("fault spec fires")?;
            s.rng = r.get_u64("fault spec rng")?;
        }
        self.stats.injected = r.get_u64("fault stats.injected")?;
        self.stats.mem_ops = r.get_u64("fault stats.mem_ops")?;
        self.stats.mem_beats = r.get_u64("fault stats.mem_beats")?;
        self.stats.bus_accesses = r.get_u64("fault stats.bus_accesses")?;
        self.stats.retried = r.get_u64("fault stats.retried")?;
        self.stats.recovered = r.get_u64("fault stats.recovered")?;
        self.stats.escalated = r.get_u64("fault stats.escalated")?;
        let m = r.get_u32("fault per-spec count")? as usize;
        if m != self.stats.per_spec.len() {
            return Err(SnapshotError::Mismatch {
                context: format!(
                    "snapshot has {m} per-spec counters, target has {}",
                    self.stats.per_spec.len()
                ),
            });
        }
        for slot in &mut self.stats.per_spec {
            *slot = r.get_u64("fault per-spec fires")?;
        }
        Ok(())
    }

    /// Whether any injection can happen: the controller is enabled and
    /// the plan has at least one spec.
    pub fn live(&self) -> bool {
        self.enabled && !self.specs.is_empty()
    }

    /// Consult at a DSM command (valid opcode decoded on a CMD write).
    pub fn mem_op(&mut self, mem: usize, op: Opcode, master: u8) -> MemOpFault {
        let mut out = MemOpFault::default();
        if !self.live() {
            return out;
        }
        let mut fired = 0u64;
        for (i, c) in self.specs.iter_mut().enumerate() {
            let hit = match c.spec.site {
                FaultSite::MemOp {
                    mem: m,
                    op: want_op,
                    master: want_ms,
                } => m == mem && want_op.is_none_or(|o| o == op) && want_ms.is_none_or(|w| w == master),
                _ => false,
            };
            if !hit || !c.observe() {
                continue;
            }
            match c.spec.kind {
                FaultKind::Status(s) => {
                    if out.force_status.is_none() {
                        out.force_status = Some(s);
                    }
                }
                FaultKind::FlipData { mask } => out.flip_mask ^= mask,
                // Bus/beat kinds are inert at a command site.
                _ => continue,
            }
            fired += 1;
            self.stats.per_spec[i] += 1;
        }
        self.stats.injected += fired;
        self.stats.mem_ops += fired;
        out
    }

    /// Consult at a burst beat (DATA-register access).
    pub fn mem_beat(&mut self, mem: usize, master: u8, writing: bool) -> MemBeatFault {
        let mut out = MemBeatFault::default();
        if !self.live() {
            return out;
        }
        let mut fired = 0u64;
        for (i, c) in self.specs.iter_mut().enumerate() {
            let hit = match c.spec.site {
                FaultSite::MemBeat {
                    mem: m,
                    master: want_ms,
                    writing: want_w,
                } => {
                    m == mem
                        && want_ms.is_none_or(|w| w == master)
                        && want_w.is_none_or(|w| w == writing)
                }
                _ => false,
            };
            if !hit || !c.observe() {
                continue;
            }
            match c.spec.kind {
                FaultKind::Status(s) => {
                    if out.force_status.is_none() {
                        out.force_status = Some(s);
                    }
                }
                FaultKind::FlipData { mask } => out.flip_mask ^= mask,
                FaultKind::AbortBurst => out.abort = true,
                // Bus kinds are inert at a beat site.
                _ => continue,
            }
            fired += 1;
            self.stats.per_spec[i] += 1;
        }
        self.stats.injected += fired;
        self.stats.mem_beats += fired;
        out
    }

    /// Consult at an interconnect grant (once per granted transaction).
    pub fn bus_access(&mut self, master: usize) -> BusFault {
        let mut out = BusFault::default();
        if !self.live() {
            return out;
        }
        let mut fired = 0u64;
        for (i, c) in self.specs.iter_mut().enumerate() {
            let hit = match c.spec.site {
                FaultSite::BusAccess { master: want } => want.is_none_or(|w| w == master),
                _ => false,
            };
            if !hit || !c.observe() {
                continue;
            }
            match c.spec.kind {
                FaultKind::DecodeError => out.decode_error = true,
                FaultKind::GrantStall { cycles } => {
                    out.stall_cycles = out.stall_cycles.max(cycles)
                }
                // Mem kinds are inert at a bus site.
                _ => continue,
            }
            fired += 1;
            self.stats.per_spec[i] += 1;
        }
        self.stats.injected += fired;
        self.stats.bus_accesses += fired;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(plan: FaultPlan) -> FaultController {
        let mut c = FaultController::new(plan);
        c.set_enabled(true);
        c
    }

    fn op_site(mem: usize) -> FaultSite {
        FaultSite::MemOp {
            mem,
            op: None,
            master: None,
        }
    }

    #[test]
    fn empty_plan_is_inert() {
        let mut c = ctl(FaultPlan::default());
        for _ in 0..100 {
            assert_eq!(c.mem_op(0, Opcode::Alloc, 0), MemOpFault::default());
            assert_eq!(c.mem_beat(0, 0, true), MemBeatFault::default());
            assert_eq!(c.bus_access(0), BusFault::default());
        }
        assert_eq!(c.stats(), FaultStats::default());
    }

    #[test]
    fn disabled_controller_is_inert() {
        let plan = FaultPlan::new(1).with(FaultSpec::new(
            op_site(0),
            FaultTrigger::Every { first: 1, period: 1 },
            FaultKind::Status(Status::Locked),
        ));
        let mut c = FaultController::new(plan);
        c.set_enabled(false);
        assert_eq!(c.mem_op(0, Opcode::Alloc, 0), MemOpFault::default());
        assert_eq!(c.stats().injected, 0);
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let plan = FaultPlan::new(0).with(FaultSpec::new(
            op_site(0),
            FaultTrigger::Nth(3),
            FaultKind::Status(Status::OutOfMemory),
        ));
        let mut c = ctl(plan);
        let fires: Vec<bool> = (0..6)
            .map(|_| c.mem_op(0, Opcode::Alloc, 0).force_status.is_some())
            .collect();
        assert_eq!(fires, vec![false, false, true, false, false, false]);
        assert_eq!(c.stats().injected, 1);
        assert_eq!(c.stats().mem_ops, 1);
        assert_eq!(c.stats().per_spec, vec![1]);
    }

    #[test]
    fn every_trigger_and_limit() {
        let plan = FaultPlan::new(0).with(
            FaultSpec::new(
                op_site(0),
                FaultTrigger::Every { first: 2, period: 3 },
                FaultKind::FlipData { mask: 0xFF },
            )
            .limit(2),
        );
        let mut c = ctl(plan);
        let fires: Vec<bool> = (0..9)
            .map(|_| c.mem_op(0, Opcode::Write, 0).flip_mask != 0)
            .collect();
        // Matches 2 and 5 fire; match 8 is capped by limit(2).
        assert_eq!(
            fires,
            vec![false, true, false, false, true, false, false, false, false]
        );
        assert_eq!(c.stats().injected, 2);
    }

    #[test]
    fn site_filters_apply() {
        let plan = FaultPlan::new(0).with(FaultSpec::new(
            FaultSite::MemOp {
                mem: 1,
                op: Some(Opcode::Alloc),
                master: Some(2),
            },
            FaultTrigger::Nth(1),
            FaultKind::Status(Status::Locked),
        ));
        let mut c = ctl(plan);
        assert!(c.mem_op(0, Opcode::Alloc, 2).force_status.is_none());
        assert!(c.mem_op(1, Opcode::Write, 2).force_status.is_none());
        assert!(c.mem_op(1, Opcode::Alloc, 3).force_status.is_none());
        // Non-matching accesses must not advance the trigger.
        assert_eq!(
            c.mem_op(1, Opcode::Alloc, 2).force_status,
            Some(Status::Locked)
        );
    }

    #[test]
    fn beat_direction_filter() {
        let plan = FaultPlan::new(0).with(FaultSpec::new(
            FaultSite::MemBeat {
                mem: 0,
                master: None,
                writing: Some(false),
            },
            FaultTrigger::Every { first: 1, period: 1 },
            FaultKind::FlipData { mask: 1 },
        ));
        let mut c = ctl(plan);
        assert_eq!(c.mem_beat(0, 0, true).flip_mask, 0);
        assert_eq!(c.mem_beat(0, 0, false).flip_mask, 1);
        assert_eq!(c.stats().mem_beats, 1);
    }

    #[test]
    fn random_trigger_replays_exactly() {
        let plan = FaultPlan::new(0xDEAD_BEEF).with(FaultSpec::new(
            FaultSite::MemBeat {
                mem: 0,
                master: None,
                writing: None,
            },
            FaultTrigger::Random {
                threshold: u32::MAX / 4,
            },
            FaultKind::AbortBurst,
        ));
        let mut a = ctl(plan.clone());
        let mut b = ctl(plan);
        let seq_a: Vec<bool> = (0..256).map(|_| a.mem_beat(0, 0, true).abort).collect();
        let seq_b: Vec<bool> = (0..256).map(|_| b.mem_beat(0, 0, true).abort).collect();
        assert_eq!(seq_a, seq_b);
        let hits = seq_a.iter().filter(|&&x| x).count();
        assert!(hits > 16 && hits < 128, "~25% expected, got {hits}/256");
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn mismatched_kind_is_inert() {
        // A bus kind declared on a mem site never fires.
        let plan = FaultPlan::new(0).with(FaultSpec::new(
            op_site(0),
            FaultTrigger::Every { first: 1, period: 1 },
            FaultKind::DecodeError,
        ));
        let mut c = ctl(plan);
        assert_eq!(c.mem_op(0, Opcode::Alloc, 0), MemOpFault::default());
        assert_eq!(c.stats().injected, 0);
    }

    #[test]
    fn bus_faults_merge() {
        let plan = FaultPlan::new(0)
            .with(FaultSpec::new(
                FaultSite::BusAccess { master: None },
                FaultTrigger::Nth(1),
                FaultKind::GrantStall { cycles: 3 },
            ))
            .with(FaultSpec::new(
                FaultSite::BusAccess { master: Some(0) },
                FaultTrigger::Nth(1),
                FaultKind::GrantStall { cycles: 7 },
            ));
        let mut c = ctl(plan);
        let f = c.bus_access(0);
        assert_eq!(f.stall_cycles, 7);
        assert_eq!(c.stats().bus_accesses, 2);
    }
}
