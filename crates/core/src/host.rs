//! Host-machine storage: the `calloc`/`free` substitution.
//!
//! The paper maps simulated allocations onto the host's own memory
//! management (`calloc(dim, DATA_SIZE)` through the host OS and MMU). The
//! Rust equivalent is a zero-initialised heap allocation from the global
//! allocator; dropping it is the `free`. The cost of these operations is
//! *host* time only — they are invisible to simulated time, which is the
//! whole point of the technique.

/// A host-side allocation backing one simulated allocation.
///
/// Wrapping the buffer in a struct keeps the substitution explicit and
/// gives a single place to account for host-side allocation statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostAlloc {
    bytes: Box<[u8]>,
}

impl HostAlloc {
    /// Allocates `size` zeroed bytes on the host — the `calloc` analogue.
    pub fn calloc(size: u32) -> Self {
        HostAlloc {
            bytes: vec![0u8; size as usize].into_boxed_slice(),
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Whether the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Read view of the payload.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Write view of the payload.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// An opaque host-pointer-like identity for diagnostics (the paper's
    /// `Hptr` column). Stable for the lifetime of the allocation.
    pub fn hptr(&self) -> usize {
        self.bytes.as_ptr() as usize
    }
}

/// Counters for host-side memory activity of one wrapper instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// calloc-equivalent calls performed.
    pub allocs: u64,
    /// free-equivalent operations (allocation drops).
    pub frees: u64,
    /// Total bytes ever requested from the host.
    pub bytes_allocated: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calloc_zeroes() {
        let a = HostAlloc::calloc(64);
        assert_eq!(a.len(), 64);
        assert!(!a.is_empty());
        assert!(a.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn writes_persist() {
        let mut a = HostAlloc::calloc(8);
        a.bytes_mut()[3] = 0xAB;
        assert_eq!(a.bytes()[3], 0xAB);
    }

    #[test]
    fn hptrs_are_distinct_for_live_allocations() {
        let a = HostAlloc::calloc(16);
        let b = HostAlloc::calloc(16);
        assert_ne!(a.hptr(), b.hptr());
    }

    #[test]
    fn zero_size_allocation() {
        let a = HostAlloc::calloc(0);
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }
}
