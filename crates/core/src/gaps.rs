//! Sorted-gap index: O(log n) address-ordered first-fit placement.
//!
//! The [`VptrPolicy::FirstFitReuse`](crate::VptrPolicy) placement rule is
//! "lowest virtual address whose free gap fits the request". The obvious
//! implementation — walking the live entries — is O(live entries) per
//! allocation, which dominates allocation-churn workloads as populations
//! grow (ROADMAP open item). This module maintains the *free gaps* instead,
//! in a treap (randomised balanced BST) keyed by gap start and augmented
//! with the maximum gap length per subtree:
//!
//! * **first-fit query** — descend left when the left subtree's `max`
//!   fits, else take the current node, else descend right: the leftmost
//!   (lowest-address) fitting gap in O(log n);
//! * **consume / release** — allocation shrinks the gap it lands in;
//!   free re-inserts a gap and coalesces with both neighbours (found by
//!   floor / exact lookup), all O(log n).
//!
//! Priorities are a deterministic hash of the gap start, so the tree shape
//! — and therefore host performance — is reproducible run to run. The
//! placement *outcomes* are property-tested equivalent to the linear scan
//! (`tests/table_props.rs`).
//!
//! The managed space is `[0, u32::MAX)`: the paper's rule caps an
//! allocation's end at `u32::MAX`, so the initial (empty-table) gap is
//! `(start = 0, len = u32::MAX)` and every gap length fits in `u32`.

/// splitmix64 finalizer: deterministic treap priority from the gap start.
#[inline]
fn priority(start: u32) -> u64 {
    let mut z = (start as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug)]
struct Node {
    start: u32,
    len: u32,
    /// Maximum gap length in this subtree (augmentation for first-fit).
    max: u32,
    prio: u64,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

impl Node {
    fn new(start: u32, len: u32) -> Box<Node> {
        Box::new(Node {
            start,
            len,
            max: len,
            prio: priority(start),
            left: None,
            right: None,
        })
    }

    #[inline]
    fn update(&mut self) {
        let mut m = self.len;
        if let Some(l) = &self.left {
            m = m.max(l.max);
        }
        if let Some(r) = &self.right {
            m = m.max(r.max);
        }
        self.max = m;
    }
}

fn rotate_right(mut n: Box<Node>) -> Box<Node> {
    let mut l = n.left.take().expect("rotate_right needs a left child");
    n.left = l.right.take();
    n.update();
    l.right = Some(n);
    l.update();
    l
}

fn rotate_left(mut n: Box<Node>) -> Box<Node> {
    let mut r = n.right.take().expect("rotate_left needs a right child");
    n.right = r.left.take();
    n.update();
    r.left = Some(n);
    r.update();
    r
}

fn insert(node: Option<Box<Node>>, new: Box<Node>) -> Box<Node> {
    let Some(mut n) = node else { return new };
    if new.start < n.start {
        n.left = Some(insert(n.left.take(), new));
        n.update();
        if n.left.as_ref().expect("just inserted").prio > n.prio {
            n = rotate_right(n);
        }
    } else {
        debug_assert!(new.start > n.start, "duplicate gap start");
        n.right = Some(insert(n.right.take(), new));
        n.update();
        if n.right.as_ref().expect("just inserted").prio > n.prio {
            n = rotate_left(n);
        }
    }
    n
}

/// Removes the node with `start`, returning the new subtree and the
/// removed gap's length (`None` if absent).
fn remove(node: Option<Box<Node>>, start: u32) -> (Option<Box<Node>>, Option<u32>) {
    let Some(mut n) = node else { return (None, None) };
    if start < n.start {
        let (sub, len) = remove(n.left.take(), start);
        n.left = sub;
        n.update();
        (Some(n), len)
    } else if start > n.start {
        let (sub, len) = remove(n.right.take(), start);
        n.right = sub;
        n.update();
        (Some(n), len)
    } else {
        let len = n.len;
        (delete_root(n), Some(len))
    }
}

/// Deletes a tree's root by rotating it down until it has at most one
/// child (preserving the heap priorities of everything above it).
fn delete_root(mut n: Box<Node>) -> Option<Box<Node>> {
    match (n.left.take(), n.right.take()) {
        (None, None) => None,
        (Some(l), None) => Some(l),
        (None, Some(r)) => Some(r),
        (l, r) => {
            n.left = l;
            n.right = r;
            let left_wins =
                n.left.as_ref().expect("set").prio > n.right.as_ref().expect("set").prio;
            let mut top = if left_wins {
                rotate_right(n)
            } else {
                rotate_left(n)
            };
            // The doomed node is now the child the rotation pushed down.
            if left_wins {
                top.right = delete_root(top.right.take().expect("rotated down"));
            } else {
                top.left = delete_root(top.left.take().expect("rotated down"));
            }
            top.update();
            Some(top)
        }
    }
}

/// The gap index: maximal free intervals of the virtual space, keyed by
/// start address.
#[derive(Debug, Default)]
pub struct GapIndex {
    root: Option<Box<Node>>,
    count: usize,
}

impl GapIndex {
    /// An index describing a fully free space: one gap covering
    /// `[0, u32::MAX)`.
    pub fn new_full() -> Self {
        GapIndex {
            root: Some(Node::new(0, u32::MAX)),
            count: 1,
        }
    }

    /// Number of gaps tracked.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Rebuilds an index as the exact complement of `allocated`
    /// — `(start, size)` ranges sorted by start, non-overlapping, with
    /// `start + size` not wrapping. This is how snapshot restore
    /// reconstructs the free-space view from the serialized allocation
    /// table instead of persisting the treap itself.
    pub fn from_allocated(allocated: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut idx = GapIndex { root: None, count: 0 };
        let mut cursor = 0u32;
        for (start, size) in allocated {
            debug_assert!(start >= cursor, "allocated ranges must be sorted and disjoint");
            if start > cursor {
                idx.insert_gap(cursor, start - cursor);
            }
            cursor = start + size;
        }
        if cursor < u32::MAX {
            idx.insert_gap(cursor, u32::MAX - cursor);
        }
        idx
    }

    /// Lowest gap start whose gap holds at least `size` bytes (first fit
    /// in address order), in O(log n).
    pub fn first_fit(&self, size: u32) -> Option<u32> {
        let mut cur = self.root.as_deref()?;
        if cur.max < size {
            return None;
        }
        loop {
            if let Some(l) = cur.left.as_deref() {
                if l.max >= size {
                    cur = l;
                    continue;
                }
            }
            if cur.len >= size {
                return Some(cur.start);
            }
            match cur.right.as_deref() {
                Some(r) if r.max >= size => cur = r,
                _ => unreachable!("ancestor max promised a fit"),
            }
        }
    }

    /// Exact-length lookup of the gap starting at `start`.
    fn gap_at(&self, start: u32) -> Option<u32> {
        let mut cur = self.root.as_deref()?;
        loop {
            cur = match start.cmp(&cur.start) {
                std::cmp::Ordering::Less => cur.left.as_deref()?,
                std::cmp::Ordering::Greater => cur.right.as_deref()?,
                std::cmp::Ordering::Equal => return Some(cur.len),
            };
        }
    }

    /// Greatest `(start, len)` with `start <= x`.
    fn floor(&self, x: u32) -> Option<(u32, u32)> {
        let mut best = None;
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            if n.start <= x {
                best = Some((n.start, n.len));
                cur = n.right.as_deref();
            } else {
                cur = n.left.as_deref();
            }
        }
        best
    }

    fn insert_gap(&mut self, start: u32, len: u32) {
        debug_assert!(len > 0, "zero-length gap");
        self.root = Some(insert(self.root.take(), Node::new(start, len)));
        self.count += 1;
    }

    fn remove_gap(&mut self, start: u32) -> u32 {
        let (root, len) = remove(self.root.take(), start);
        self.root = root;
        let len = len.expect("removing a gap that is not tracked");
        self.count -= 1;
        len
    }

    /// Consumes `size` bytes at the head of the gap starting at `start`
    /// (the position [`first_fit`](Self::first_fit) returned).
    pub fn consume(&mut self, start: u32, size: u32) {
        let len = self.remove_gap(start);
        debug_assert!(len >= size, "gap shorter than the allocation");
        if len > size {
            self.insert_gap(start + size, len - size);
        }
    }

    /// Releases `[start, start + len)` back to the free space, coalescing
    /// with adjacent gaps.
    pub fn release(&mut self, start: u32, len: u32) {
        let mut s = start;
        let mut l = len;
        if let Some((ps, pl)) = self.floor(start) {
            debug_assert!(
                ps.wrapping_add(pl) <= start || ps >= start,
                "released range overlaps a tracked gap"
            );
            if ps + pl == start {
                self.remove_gap(ps);
                s = ps;
                l += pl;
            }
        }
        let end = start + len;
        if let Some(nl) = self.gap_at(end) {
            self.remove_gap(end);
            l += nl;
        }
        self.insert_gap(s, l);
    }

    /// All gaps in address order (testing / invariant checking).
    pub fn collect(&self) -> Vec<(u32, u32)> {
        fn walk(n: Option<&Node>, out: &mut Vec<(u32, u32)>) {
            if let Some(n) = n {
                walk(n.left.as_deref(), out);
                out.push((n.start, n.len));
                walk(n.right.as_deref(), out);
            }
        }
        let mut out = Vec::with_capacity(self.count);
        walk(self.root.as_deref(), &mut out);
        out
    }

    /// Verifies the treap invariants (ordering, heap priorities, max
    /// augmentation, gap disjointness); returns the first violation.
    pub fn check(&self) -> Result<(), String> {
        fn walk(n: &Node) -> Result<(u32, u32), String> {
            let mut max = n.len;
            if let Some(l) = n.left.as_deref() {
                if l.prio > n.prio {
                    return Err(format!("heap violation at {:#x}", n.start));
                }
                let (_lo, l_max) = walk(l)?;
                if l.start >= n.start {
                    return Err(format!("order violation at {:#x}", n.start));
                }
                max = max.max(l_max);
            }
            if let Some(r) = n.right.as_deref() {
                if r.prio > n.prio {
                    return Err(format!("heap violation at {:#x}", n.start));
                }
                let (_lo, r_max) = walk(r)?;
                if r.start <= n.start {
                    return Err(format!("order violation at {:#x}", n.start));
                }
                max = max.max(r_max);
            }
            if n.max != max {
                return Err(format!(
                    "max augmentation stale at {:#x}: {} != {}",
                    n.start, n.max, max
                ));
            }
            Ok((n.start, max))
        }
        if let Some(r) = self.root.as_deref() {
            walk(r)?;
        }
        // Gaps must be disjoint and non-adjacent (adjacent gaps should
        // have been coalesced).
        let gaps = self.collect();
        for w in gaps.windows(2) {
            let (s0, l0) = w[0];
            let (s1, _) = w[1];
            if s0 as u64 + l0 as u64 >= s1 as u64 {
                return Err(format!(
                    "gaps not disjoint/coalesced: ({s0:#x},{l0:#x}) then {s1:#x}"
                ));
            }
        }
        if gaps.len() != self.count {
            return Err(format!(
                "count {} != tracked {}",
                gaps.len(),
                self.count
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_first_fits_at_zero() {
        let g = GapIndex::new_full();
        assert_eq!(g.first_fit(1), Some(0));
        assert_eq!(g.first_fit(u32::MAX), Some(0));
        assert_eq!(g.len(), 1);
        g.check().unwrap();
    }

    #[test]
    fn consume_release_roundtrip_coalesces() {
        let mut g = GapIndex::new_full();
        g.consume(0, 64); // [0,64) allocated
        assert_eq!(g.first_fit(1), Some(64));
        g.consume(64, 32); // [64,96) allocated
        g.consume(96, 16); // [96,112)
        g.check().unwrap();
        // Free the middle: a fresh gap, not adjacent to the tail gap.
        g.release(64, 32);
        assert_eq!(g.first_fit(32), Some(64));
        assert_eq!(g.first_fit(33), Some(112));
        g.check().unwrap();
        // Free the head: coalesces with [64,96).
        g.release(0, 64);
        assert_eq!(g.first_fit(96), Some(0));
        g.check().unwrap();
        // Free the last block: everything coalesces back to one gap.
        g.release(96, 16);
        assert_eq!(g.len(), 1);
        assert_eq!(g.collect(), vec![(0, u32::MAX)]);
        g.check().unwrap();
    }

    #[test]
    fn first_fit_prefers_lowest_address() {
        let mut g = GapIndex::new_full();
        // Allocate everything, then punch three gaps of sizes 8, 32, 16.
        g.consume(0, 1000);
        g.release(100, 8);
        g.release(300, 32);
        g.release(500, 16);
        assert_eq!(g.first_fit(8), Some(100));
        assert_eq!(g.first_fit(9), Some(300));
        assert_eq!(g.first_fit(16), Some(300), "lowest fitting, not best fit");
        assert_eq!(g.first_fit(33), Some(1000), "tail gap");
        g.check().unwrap();
    }

    #[test]
    fn many_gaps_stay_balanced_and_consistent() {
        let mut g = GapIndex::new_full();
        g.consume(0, 64 * 1024);
        // Punch alternating gaps.
        for i in 0..1024u32 {
            g.release(i * 64, 32);
        }
        g.check().unwrap();
        assert_eq!(g.len(), 1025); // 1024 punched + tail
        assert_eq!(g.first_fit(32), Some(0));
        // Consume a few, release them, verify convergence.
        for i in 0..256u32 {
            g.consume(i * 64, 32);
        }
        g.check().unwrap();
        for i in 0..256u32 {
            g.release(i * 64, 32);
        }
        g.check().unwrap();
        assert_eq!(g.len(), 1025);
    }
}
