//! Timing parameters of the wrapper's cycle-true part.
//!
//! The paper: *"To model data dependent latencies, a set of delay
//! parameters can be used in the FSM."* `DelayModel` captures those
//! parameters: each operation has a base latency plus an optional
//! size-proportional term, so e.g. allocation latency can grow with the
//! requested dimension exactly as a real DRAM-backed allocator's would.

/// A latency that depends linearly on the number of bytes involved:
/// `base + (bytes * per_byte_num) / per_byte_den` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinDelay {
    /// Fixed part in cycles.
    pub base: u64,
    /// Numerator of the per-byte slope.
    pub per_byte_num: u64,
    /// Denominator of the per-byte slope (≥ 1).
    pub per_byte_den: u64,
}

impl LinDelay {
    /// A purely fixed latency.
    pub const fn fixed(base: u64) -> Self {
        LinDelay {
            base,
            per_byte_num: 0,
            per_byte_den: 1,
        }
    }

    /// A latency of `base` plus `num/den` cycles per byte.
    pub const fn scaled(base: u64, num: u64, den: u64) -> Self {
        LinDelay {
            base,
            per_byte_num: num,
            per_byte_den: den,
        }
    }

    /// Evaluates the latency for an operation touching `bytes` bytes.
    #[inline]
    pub fn cycles(&self, bytes: u32) -> u64 {
        self.base + (bytes as u64 * self.per_byte_num) / self.per_byte_den.max(1)
    }
}

/// The full delay parameter set of one memory module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayModel {
    /// Allocation (size-dependent by default: clearing cost).
    pub alloc: LinDelay,
    /// Deallocation.
    pub free: LinDelay,
    /// Scalar read.
    pub read: LinDelay,
    /// Scalar write.
    pub write: LinDelay,
    /// Burst setup (charged at the burst command).
    pub burst_setup: LinDelay,
    /// Per-beat cost during a burst.
    pub burst_beat: u64,
    /// Reservation acquire/release.
    pub reserve: LinDelay,
    /// Plain register (ARG/STATUS/RESULT/INFO) access.
    pub reg_access: u64,
}

impl Default for DelayModel {
    /// Defaults modelled on a small on-chip SRAM-backed memory controller:
    /// single-digit latencies with a gentle size term on allocation.
    fn default() -> Self {
        DelayModel {
            alloc: LinDelay::scaled(6, 1, 256),
            free: LinDelay::fixed(4),
            read: LinDelay::fixed(2),
            write: LinDelay::fixed(2),
            burst_setup: LinDelay::fixed(3),
            burst_beat: 1,
            reserve: LinDelay::fixed(2),
            reg_access: 0,
        }
    }
}

impl DelayModel {
    /// A zero-latency model (functional simulation; ablation baseline).
    pub fn zero() -> Self {
        DelayModel {
            alloc: LinDelay::fixed(0),
            free: LinDelay::fixed(0),
            read: LinDelay::fixed(0),
            write: LinDelay::fixed(0),
            burst_setup: LinDelay::fixed(0),
            burst_beat: 0,
            reserve: LinDelay::fixed(0),
            reg_access: 0,
        }
    }

    /// A model with uniform latency `n` on every operation (sweeps).
    pub fn uniform(n: u64) -> Self {
        DelayModel {
            alloc: LinDelay::fixed(n),
            free: LinDelay::fixed(n),
            read: LinDelay::fixed(n),
            write: LinDelay::fixed(n),
            burst_setup: LinDelay::fixed(n),
            burst_beat: n.max(1),
            reserve: LinDelay::fixed(n),
            reg_access: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_ignores_size() {
        let d = LinDelay::fixed(5);
        assert_eq!(d.cycles(0), 5);
        assert_eq!(d.cycles(1_000_000), 5);
    }

    #[test]
    fn scaled_grows_linearly() {
        let d = LinDelay::scaled(6, 1, 256);
        assert_eq!(d.cycles(0), 6);
        assert_eq!(d.cycles(255), 6);
        assert_eq!(d.cycles(256), 7);
        assert_eq!(d.cycles(1024), 10);
    }

    #[test]
    fn zero_denominator_is_safe() {
        let d = LinDelay {
            base: 1,
            per_byte_num: 1,
            per_byte_den: 0,
        };
        assert_eq!(d.cycles(100), 101);
    }

    #[test]
    fn preset_models() {
        let z = DelayModel::zero();
        assert_eq!(z.read.cycles(4), 0);
        assert_eq!(z.burst_beat, 0);
        let u = DelayModel::uniform(7);
        assert_eq!(u.alloc.cycles(10_000), 7);
        assert_eq!(u.burst_beat, 7);
        let d = DelayModel::default();
        assert!(d.alloc.cycles(4096) > d.alloc.cycles(0), "data dependent");
    }
}
