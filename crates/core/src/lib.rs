//! # dmi-core — fast dynamic memory integration for MPSoC co-simulation
//!
//! This crate is the primary contribution of the reproduced paper (Villa,
//! Schaumont, Verbauwhede, Monchiero, Palermo — *"Fast Dynamic Memory
//! Integration in Co-Simulation Frameworks for Multiprocessor System
//! on-Chip"*, DATE 2005): a **dynamic shared-memory wrapper** that keeps
//! memory timing cycle-true while delegating functional storage to the
//! *host machine's* memory management.
//!
//! The wrapper (Figure 2 of the paper) is split exactly as published:
//!
//! * a **cycle-true part** — [`MemoryModule`], an FSM speaking a req/ack
//!   handshake on the interconnect, evaluating its inputs cycle by cycle
//!   and delaying acknowledges according to a configurable, data-dependent
//!   [`DelayModel`];
//! * a **functional part** — [`WrapperBackend`], composed of the
//!   [`PointerTable`] (Vptr → Hptr, dimension, type, reservation bit) and
//!   the [`Translator`] (endianness and data-size conversion), with host
//!   storage allocated through [`HostAlloc`] (the `calloc`/`free`
//!   substitution).
//!
//! Two baselines answer the same protocol / bus so every comparison in the
//! evaluation is apples-to-apples:
//!
//! * [`SimHeapBackend`] — a *detailed* in-simulation boundary-tag allocator,
//!   the "complex and slow dynamic memory model" of the paper's Section 2;
//! * [`StaticTableMemory`] — a flat fixed-latency RAM, the "static
//!   memories implemented as tables" traditional frameworks use.
//!
//! ## Functional quickstart (no simulation kernel)
//!
//! ```
//! use dmi_core::{DsmBackend, ElemType, Opcode, Request, WrapperBackend, WrapperConfig};
//!
//! let mut mem = WrapperBackend::new(WrapperConfig::default());
//! let alloc = mem.execute(&Request {
//!     op: Opcode::Alloc, arg0: 16, arg1: ElemType::U32 as u32, arg2: 0, master: 0,
//! });
//! assert!(alloc.status.is_ok());
//! let vptr = alloc.result;           // first Vptr is 0, per the paper
//! let w = mem.execute(&Request {
//!     op: Opcode::Write, arg0: vptr + 4, arg1: 0xBEEF, arg2: 2, master: 0,
//! });
//! assert!(w.status.is_ok());
//! let r = mem.execute(&Request {
//!     op: Opcode::Read, arg0: vptr + 4, arg1: 0, arg2: 2, master: 0,
//! });
//! assert_eq!(r.result, 0xBEEF);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod delay;
mod faults;
mod gaps;
mod host;
mod module;
mod protocol;
mod simheap;
mod staticmem;
mod table;
mod translator;
mod wrapper;

pub use backend::{BeatResult, BlockResult, BurstInfo, DsmBackend, MemStats};
pub use delay::{DelayModel, LinDelay};
pub use faults::{
    faults_enabled_default, BusFault, FaultController, FaultHook, FaultKind, FaultPlan, FaultSite,
    FaultSpec, FaultStats, FaultTrigger, MemBeatFault, MemOpFault,
};
pub use host::{HostAlloc, HostStats};
pub use module::{MemoryModule, ModuleStats, SlavePorts};
pub use protocol::{regs, ElemType, OpResult, Opcode, Request, Status, NULL_VPTR};
pub use simheap::{SimHeapBackend, SimHeapConfig};
pub use staticmem::{StaticMemConfig, StaticTableBackend, StaticTableMemory};
pub use table::{AllocError, Entry, PointerTable, PtrError, TableStats, VptrPolicy};
pub use translator::{Endian, Translator};
pub use wrapper::{WrapperBackend, WrapperConfig, WIDTH_FROM_TABLE};
