//! The detailed in-simulation allocator: the baseline the paper replaces.
//!
//! Traditional frameworks that want dynamic data must model the allocator
//! *inside* the simulated memory: metadata lives in the memory array and
//! every probe of the free list costs simulated cycles **and** host work.
//! `SimHeapBackend` implements exactly that — a boundary-tag first-fit
//! allocator (K&R style, with footers for O(1) coalescing) whose every
//! word touch charges `word_latency` cycles. This is the "complex and slow
//! dynamic memory model" of the paper's Section 2, built so the claimed
//! speedup of the host-backed wrapper can be measured rather than assumed.
//!
//! ## Block layout
//!
//! ```text
//! [ header u32 ][ payload ... ][ footer u32 ]
//! header = footer = block_size_bytes | used_bit
//! block_size is a multiple of 8; minimum block is 16 bytes
//! ```
//!
//! Virtual pointers returned by ALLOC are byte offsets of the payload
//! inside the array, so pointer arithmetic works natively.

use crate::backend::{BeatResult, BlockResult, BurstInfo, DsmBackend, MemStats};
use crate::protocol::{ElemType, Opcode, OpResult, Request, Status};
use crate::translator::{Endian, Translator};
use crate::wrapper::WIDTH_FROM_TABLE;

const MIN_BLOCK: u32 = 16;
const USED: u32 = 1;

#[derive(Debug)]
struct BurstState {
    offset: u32,
    elem: ElemType,
    len: u32,
    done: u32,
    writing: bool,
    iobuf: Vec<u32>,
}

/// Configuration of a [`SimHeapBackend`].
#[derive(Debug, Clone, Copy)]
pub struct SimHeapConfig {
    /// Size of the simulated memory array in bytes (multiple of 8, ≥ 16).
    pub capacity: u32,
    /// Simulated cycles charged per word touched inside the array.
    pub word_latency: u64,
    /// Simulated-architecture endianness.
    pub endian: Endian,
}

impl Default for SimHeapConfig {
    fn default() -> Self {
        SimHeapConfig {
            capacity: 1 << 20,
            word_latency: 2,
            endian: Endian::Little,
        }
    }
}

/// In-simulation boundary-tag allocator backend.
#[derive(Debug)]
pub struct SimHeapBackend {
    mem: Vec<u8>,
    word_latency: u64,
    translator: Translator,
    used_bytes: u32,
    /// Per-master I/O arrays (banked per port, like the wrapper's).
    burst: [Option<BurstState>; 16],
    stats: MemStats,
    /// Word accesses performed inside the simulated array (host work that
    /// the wrapper model avoids).
    pub word_touches: u64,
}

impl SimHeapBackend {
    /// Creates a heap covering `config.capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than one minimum block or not a
    /// multiple of 8.
    pub fn new(config: SimHeapConfig) -> Self {
        assert!(
            config.capacity >= MIN_BLOCK && config.capacity.is_multiple_of(8),
            "simheap capacity must be a multiple of 8 and at least {MIN_BLOCK}"
        );
        let mut heap = SimHeapBackend {
            mem: vec![0; config.capacity as usize],
            word_latency: config.word_latency,
            translator: Translator::new(config.endian),
            used_bytes: 0,
            burst: Default::default(),
            stats: MemStats::default(),
            word_touches: 0,
        };
        // One big free block.
        let cap = config.capacity;
        heap.put_word_silent(0, cap);
        heap.put_word_silent(cap - 4, cap);
        heap
    }

    #[inline]
    fn word(&mut self, offset: u32) -> u32 {
        self.word_touches += 1;
        let i = offset as usize;
        u32::from_le_bytes([
            self.mem[i],
            self.mem[i + 1],
            self.mem[i + 2],
            self.mem[i + 3],
        ])
    }

    #[inline]
    fn put_word(&mut self, offset: u32, value: u32) {
        self.word_touches += 1;
        self.put_word_silent(offset, value);
    }

    #[inline]
    fn put_word_silent(&mut self, offset: u32, value: u32) {
        let i = offset as usize;
        self.mem[i..i + 4].copy_from_slice(&value.to_le_bytes());
    }

    fn len(&self) -> u32 {
        self.mem.len() as u32
    }

    /// First-fit allocation walk. Returns (payload offset, cycles charged).
    fn heap_alloc(&mut self, nbytes: u32) -> (Option<u32>, u64) {
        let need = ((nbytes + 8 + 7) & !7).max(MIN_BLOCK);
        let mut cycles = 0u64;
        let mut h = 0u32;
        while h < self.len() {
            let hdr = self.word(h);
            cycles += self.word_latency;
            let size = hdr & !7;
            let used = hdr & USED != 0;
            debug_assert!(size >= MIN_BLOCK, "corrupt heap header at {h:#x}");
            if !used && size >= need {
                if size - need >= MIN_BLOCK {
                    // Split: used front part, free remainder.
                    self.put_word(h, need | USED);
                    self.put_word(h + need - 4, need | USED);
                    self.put_word(h + need, size - need);
                    self.put_word(h + size - 4, size - need);
                    cycles += 4 * self.word_latency;
                    self.used_bytes += need;
                } else {
                    self.put_word(h, size | USED);
                    self.put_word(h + size - 4, size | USED);
                    cycles += 2 * self.word_latency;
                    self.used_bytes += size;
                }
                return (Some(h + 4), cycles);
            }
            h += size;
        }
        (None, cycles)
    }

    /// Frees the block whose payload starts at `p`, coalescing neighbours.
    fn heap_free(&mut self, p: u32) -> (Status, u64) {
        if p < 4 || p >= self.len() {
            return (Status::BadPointer, self.word_latency);
        }
        let mut h = p - 4;
        let hdr = self.word(h);
        let mut cycles = self.word_latency;
        let mut size = hdr & !7;
        if hdr & USED == 0 || size < MIN_BLOCK || h + size > self.len() {
            return (Status::BadPointer, cycles);
        }
        self.used_bytes -= size;
        // Coalesce with the next block.
        let next = h + size;
        if next < self.len() {
            let nhdr = self.word(next);
            cycles += self.word_latency;
            if nhdr & USED == 0 {
                size += nhdr & !7;
            }
        }
        // Coalesce with the previous block via its footer.
        if h > 0 {
            let pfoot = self.word(h - 4);
            cycles += self.word_latency;
            if pfoot & USED == 0 {
                let psize = pfoot & !7;
                h -= psize;
                size += psize;
            }
        }
        self.put_word(h, size);
        self.put_word(h + size - 4, size);
        cycles += 2 * self.word_latency;
        (Status::Ok, cycles)
    }

    fn data_bounds(&self, vptr: u32, bytes: u32) -> Result<(), Status> {
        if vptr.checked_add(bytes).is_none_or(|end| end > self.len()) {
            Err(Status::OutOfBounds)
        } else {
            Ok(())
        }
    }

    fn elem_from(&self, code: u32) -> Option<ElemType> {
        if code == WIDTH_FROM_TABLE {
            // No per-allocation type metadata in this model; default word.
            Some(ElemType::U32)
        } else {
            ElemType::from_u32(code)
        }
    }

    fn charge(&mut self, r: OpResult) -> OpResult {
        self.stats.busy_cycles += r.cycles;
        if !r.status.is_ok() {
            self.stats.errors += 1;
        }
        r
    }

    /// Debug peek of one word of the simulated arena, by byte offset
    /// (the model's vptrs *are* arena offsets, so a vptr handed out by
    /// ALLOC reads back the live payload).
    ///
    /// Purely observational: no cycles are charged, no counters move, no
    /// burst state is touched — cheap enough for watchpoint polling
    /// (`StopCondition::watch_word` in `dmi-system` is built on it).
    /// Returns `None` when the word would escape the arena.
    pub fn peek_word(&self, offset: u32) -> Option<u32> {
        if offset.checked_add(4).is_none_or(|end| end > self.len()) {
            return None;
        }
        self.translator.load(&self.mem, offset, ElemType::U32)
    }
}

impl DsmBackend for SimHeapBackend {
    fn kind(&self) -> &'static str {
        "simheap"
    }

    fn execute(&mut self, req: &Request) -> OpResult {
        if !matches!(req.op, Opcode::Nop) {
            self.burst[req.master as usize & 0xF] = None;
        }
        let result = match req.op {
            Opcode::Nop => OpResult::ok(0, 0),
            Opcode::Alloc => {
                let Some(elem) = ElemType::from_u32(req.arg1) else {
                    return self.charge(OpResult::err(Status::BadArgs, self.word_latency));
                };
                let Some(bytes) = req.arg0.checked_mul(elem.bytes()).filter(|&b| b > 0) else {
                    return self.charge(OpResult::err(Status::BadArgs, self.word_latency));
                };
                let (place, cycles) = self.heap_alloc(bytes);
                match place {
                    Some(p) => {
                        self.stats.allocs += 1;
                        OpResult::ok(p, cycles)
                    }
                    None => {
                        self.stats.denials += 1;
                        OpResult::err(Status::OutOfMemory, cycles)
                    }
                }
            }
            Opcode::Free => {
                let (status, cycles) = self.heap_free(req.arg0);
                if status.is_ok() {
                    self.stats.frees += 1;
                    OpResult::ok(0, cycles)
                } else {
                    OpResult::err(status, cycles)
                }
            }
            Opcode::Write => {
                let Some(elem) = self.elem_from(req.arg2) else {
                    return self.charge(OpResult::err(Status::BadArgs, self.word_latency));
                };
                if let Err(s) = self.data_bounds(req.arg0, elem.bytes()) {
                    return self.charge(OpResult::err(s, self.word_latency));
                }
                let t = self.translator;
                let ok = t.store(&mut self.mem, req.arg0, req.arg1, elem);
                debug_assert!(ok);
                self.word_touches += 1;
                self.stats.writes += 1;
                OpResult::ok(0, self.word_latency)
            }
            Opcode::Read => {
                let Some(elem) = self.elem_from(req.arg2) else {
                    return self.charge(OpResult::err(Status::BadArgs, self.word_latency));
                };
                if let Err(s) = self.data_bounds(req.arg0, elem.bytes()) {
                    return self.charge(OpResult::err(s, self.word_latency));
                }
                let v = self.translator.load(&self.mem, req.arg0, elem).expect("bounds checked");
                self.word_touches += 1;
                self.stats.reads += 1;
                OpResult::ok(v, self.word_latency)
            }
            Opcode::WriteBurst | Opcode::ReadBurst => {
                let writing = req.op == Opcode::WriteBurst;
                let Some(elem) = self.elem_from(req.arg1) else {
                    return self.charge(OpResult::err(Status::BadArgs, self.word_latency));
                };
                let Some(total) = req.arg2.checked_mul(elem.bytes()).filter(|&b| b > 0) else {
                    return self.charge(OpResult::err(Status::BadArgs, self.word_latency));
                };
                if let Err(s) = self.data_bounds(req.arg0, total) {
                    return self.charge(OpResult::err(s, self.word_latency));
                }
                let mut iobuf = Vec::with_capacity(req.arg2 as usize);
                let mut cycles = self.word_latency;
                if !writing {
                    for i in 0..req.arg2 {
                        let v = self
                            .translator
                            .load(&self.mem, req.arg0 + i * elem.bytes(), elem)
                            .expect("bounds checked");
                        iobuf.push(v);
                        self.word_touches += 1;
                        cycles += self.word_latency;
                    }
                }
                self.burst[req.master as usize & 0xF] = Some(BurstState {
                    offset: req.arg0,
                    elem,
                    len: req.arg2,
                    done: 0,
                    writing,
                    iobuf,
                });
                OpResult::ok(0, cycles)
            }
            Opcode::Reserve | Opcode::Release => {
                OpResult::err(Status::Unsupported, self.word_latency)
            }
            Opcode::Info => {
                // A realistic INFO walks the free list, charging per block.
                let mut cycles = 0u64;
                let mut free = 0u32;
                let mut h = 0u32;
                while h < self.len() {
                    let hdr = self.word(h);
                    cycles += self.word_latency;
                    let size = hdr & !7;
                    if size < MIN_BLOCK {
                        break; // corrupt; stop the walk
                    }
                    if hdr & USED == 0 {
                        free += size;
                    }
                    h += size;
                }
                OpResult::ok(free, cycles)
            }
        };
        self.charge(result)
    }

    fn burst_write_beat(&mut self, master: u8, value: u32) -> BeatResult {
        let slot = master as usize & 0xF;
        let Some(burst) = self.burst[slot].as_mut() else {
            return BeatResult::err(Status::BadArgs, self.word_latency);
        };
        if !burst.writing {
            return BeatResult::err(Status::BadArgs, self.word_latency);
        }
        burst.iobuf.push(value);
        burst.done += 1;
        let mut cycles = 1;
        if burst.done == burst.len {
            let burst = self.burst[slot].take().expect("checked above");
            let t = self.translator;
            for (i, v) in burst.iobuf.iter().enumerate() {
                let ok = t.store(
                    &mut self.mem,
                    burst.offset + (i as u32) * burst.elem.bytes(),
                    *v,
                    burst.elem,
                );
                debug_assert!(ok);
                self.word_touches += 1;
                cycles += self.word_latency;
            }
        }
        self.stats.burst_beats += 1;
        self.stats.busy_cycles += cycles;
        BeatResult::ok(0, cycles)
    }

    fn burst_read_beat(&mut self, master: u8) -> BeatResult {
        let slot = master as usize & 0xF;
        let Some(burst) = self.burst[slot].as_mut() else {
            return BeatResult::err(Status::BadArgs, self.word_latency);
        };
        if burst.writing || burst.done >= burst.len {
            return BeatResult::err(Status::BadArgs, self.word_latency);
        }
        let value = burst.iobuf[burst.done as usize];
        burst.done += 1;
        if burst.done == burst.len {
            self.burst[slot] = None;
        }
        self.stats.burst_beats += 1;
        self.stats.busy_cycles += 1;
        BeatResult::ok(value, 1)
    }

    fn burst_info(&self, master: u8) -> Option<BurstInfo> {
        self.burst[master as usize & 0xF].as_ref().map(|b| BurstInfo {
            writing: b.writing,
            remaining: b.len - b.done,
        })
    }

    fn burst_read_block(&mut self, master: u8, out: &mut [u32]) -> BlockResult {
        let slot = master as usize & 0xF;
        let Some(burst) = self.burst[slot].as_mut() else {
            return BlockResult::rejected(Status::BadArgs, 1);
        };
        if burst.writing {
            return BlockResult::rejected(Status::BadArgs, 1);
        }
        // Bulk copy out of the staged I/O array; each successful read beat
        // of this model costs exactly 1 cycle (the uniform-beat contract
        // `burst_info` implies).
        let n = (out.len() as u32).min(burst.len - burst.done);
        let from = burst.done as usize;
        out[..n as usize].copy_from_slice(&burst.iobuf[from..from + n as usize]);
        burst.done += n;
        if burst.done == burst.len {
            self.burst[slot] = None;
        }
        let cycles = n as u64;
        self.stats.burst_beats += n as u64;
        self.stats.busy_cycles += cycles;
        BlockResult {
            // Mirror the per-beat loop: over-asking ends with the error
            // the next per-beat call would report.
            status: if (out.len() as u32) > n {
                Status::BadArgs
            } else {
                Status::Ok
            },
            beats: n,
            cycles,
            cycles_per_beat: 1,
        }
    }

    fn burst_write_block(&mut self, master: u8, values: &[u32]) -> BlockResult {
        let slot = master as usize & 0xF;
        let Some(burst) = self.burst[slot].as_mut() else {
            return BlockResult::rejected(Status::BadArgs, 1);
        };
        if !burst.writing {
            return BlockResult::rejected(Status::BadArgs, 1);
        }
        let n = (values.len() as u32).min(burst.len - burst.done);
        burst.iobuf.extend_from_slice(&values[..n as usize]);
        burst.done += n;
        let complete = burst.done == burst.len;
        // Accumulation beats cost 1 each; completion commits the I/O array
        // into the simulated array, charging `word_latency` per element —
        // identical to the final per-beat call.
        let mut cycles = n as u64;
        if complete {
            let burst = self.burst[slot].take().expect("checked above");
            let t = self.translator;
            for (i, v) in burst.iobuf.iter().enumerate() {
                let ok = t.store(
                    &mut self.mem,
                    burst.offset + (i as u32) * burst.elem.bytes(),
                    *v,
                    burst.elem,
                );
                debug_assert!(ok);
                self.word_touches += 1;
                cycles += self.word_latency;
            }
        }
        self.stats.burst_beats += n as u64;
        self.stats.busy_cycles += cycles;
        BlockResult {
            status: if (values.len() as u32) > n {
                Status::BadArgs
            } else {
                Status::Ok
            },
            beats: n,
            cycles,
            cycles_per_beat: 1,
        }
    }

    fn free_bytes(&self) -> u32 {
        self.len() - self.used_bytes
    }

    fn stats(&self) -> MemStats {
        self.stats
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn save_state(&self, w: &mut dmi_kernel::StateWriter) {
        // The whole simulated array: the allocator's block headers live
        // inside it, so the byte image *is* the allocation state.
        w.put_bytes(&self.mem);
        w.put_u32(self.used_bytes);
        w.put_u64(self.word_touches);
        for slot in 0..16 {
            match &self.burst[slot] {
                Some(b) => {
                    w.put_bool(true);
                    w.put_u32(b.offset);
                    w.put_u8(b.elem as u8);
                    w.put_u32(b.len);
                    w.put_u32(b.done);
                    w.put_bool(b.writing);
                    w.put_u64(b.iobuf.len() as u64);
                    for v in &b.iobuf {
                        w.put_u32(*v);
                    }
                }
                None => w.put_bool(false),
            }
        }
        crate::backend::write_mem_stats(w, &self.stats);
    }

    fn load_state(
        &mut self,
        r: &mut dmi_kernel::StateReader<'_>,
    ) -> Result<(), dmi_kernel::SnapshotError> {
        use dmi_kernel::SnapshotError;
        let mem = r.get_bytes("simheap array")?;
        if mem.len() != self.mem.len() {
            return Err(SnapshotError::Mismatch {
                context: format!(
                    "simheap snapshot covers {} bytes, target has {}",
                    mem.len(),
                    self.mem.len()
                ),
            });
        }
        self.mem.copy_from_slice(mem);
        self.used_bytes = r.get_u32("simheap used_bytes")?;
        self.word_touches = r.get_u64("simheap word_touches")?;
        for slot in 0..16 {
            self.burst[slot] = if r.get_bool("simheap burst flag")? {
                let offset = r.get_u32("simheap burst offset")?;
                let elem = ElemType::from_u32(r.get_u8("simheap burst elem")? as u32)
                    .ok_or_else(|| SnapshotError::Corrupt {
                        context: "simheap burst: invalid element type".to_string(),
                    })?;
                let len = r.get_u32("simheap burst len")?;
                let done = r.get_u32("simheap burst done")?;
                let writing = r.get_bool("simheap burst writing")?;
                let n = r.get_u64("simheap iobuf len")? as usize;
                let mut iobuf = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    iobuf.push(r.get_u32("simheap iobuf word")?);
                }
                if done > len {
                    return Err(SnapshotError::Corrupt {
                        context: "simheap burst: cursor out of range".to_string(),
                    });
                }
                Some(BurstState {
                    offset,
                    elem,
                    len,
                    done,
                    writing,
                    iobuf,
                })
            } else {
                None
            };
        }
        self.stats = crate::backend::read_mem_stats(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(op: Opcode, arg0: u32, arg1: u32, arg2: u32) -> Request {
        Request {
            op,
            arg0,
            arg1,
            arg2,
            master: 0,
        }
    }

    fn heap(cap: u32) -> SimHeapBackend {
        SimHeapBackend::new(SimHeapConfig {
            capacity: cap,
            word_latency: 2,
            endian: Endian::Little,
        })
    }

    #[test]
    fn alloc_free_reuse() {
        let mut h = heap(256);
        let a = h.execute(&req(Opcode::Alloc, 8, ElemType::U32 as u32, 0));
        assert!(a.status.is_ok());
        let p1 = a.result;
        let b = h.execute(&req(Opcode::Alloc, 8, ElemType::U32 as u32, 0));
        let p2 = b.result;
        assert_ne!(p1, p2);
        // Free then re-alloc reuses the space (first fit).
        let _ = h.execute(&req(Opcode::Free, p1, 0, 0));
        let c = h.execute(&req(Opcode::Alloc, 8, ElemType::U32 as u32, 0));
        assert_eq!(c.result, p1);
        assert_eq!(h.kind(), "simheap");
    }

    #[test]
    fn data_round_trip() {
        let mut h = heap(256);
        let p = h.execute(&req(Opcode::Alloc, 4, ElemType::U32 as u32, 0)).result;
        let _ = h.execute(&req(Opcode::Write, p + 4, 0xFEED_BEEF, 2));
        let r = h.execute(&req(Opcode::Read, p + 4, 0, 2));
        assert_eq!(r.result, 0xFEED_BEEF);
    }

    #[test]
    fn coalescing_recovers_full_block() {
        let mut h = heap(256);
        let p1 = h.execute(&req(Opcode::Alloc, 8, ElemType::U32 as u32, 0)).result;
        let p2 = h.execute(&req(Opcode::Alloc, 8, ElemType::U32 as u32, 0)).result;
        let p3 = h.execute(&req(Opcode::Alloc, 8, ElemType::U32 as u32, 0)).result;
        // Free in an order that exercises both next- and prev-coalescing.
        let _ = h.execute(&req(Opcode::Free, p1, 0, 0));
        let _ = h.execute(&req(Opcode::Free, p3, 0, 0));
        let _ = h.execute(&req(Opcode::Free, p2, 0, 0));
        // The whole arena is one free block again: a max alloc succeeds.
        let big = h.execute(&req(Opcode::Alloc, 256 - 8, ElemType::U8 as u32, 0));
        assert!(big.status.is_ok(), "status {:?}", big.status);
        assert_eq!(h.free_bytes(), 0);
    }

    #[test]
    fn denial_costs_a_full_walk() {
        let mut h = heap(1024);
        // Fill with small blocks.
        let mut ptrs = Vec::new();
        loop {
            let r = h.execute(&req(Opcode::Alloc, 8, ElemType::U32 as u32, 0));
            if !r.status.is_ok() {
                // Denial walked every block: expensive relative to the
                // early allocations.
                assert!(r.cycles > 2 * 10, "denial cycles = {}", r.cycles);
                break;
            }
            ptrs.push(r.result);
            assert!(ptrs.len() < 200, "allocation never failed");
        }
        assert_eq!(h.stats().denials, 1);
    }

    #[test]
    fn alloc_cost_grows_with_walk_length() {
        let mut h = heap(1 << 16);
        let first = h.execute(&req(Opcode::Alloc, 8, ElemType::U32 as u32, 0));
        let mut last = first;
        for _ in 0..100 {
            last = h.execute(&req(Opcode::Alloc, 8, ElemType::U32 as u32, 0));
        }
        assert!(
            last.cycles > first.cycles * 10,
            "first-fit walk should dominate: first {} vs later {}",
            first.cycles,
            last.cycles
        );
        assert!(h.word_touches > 100, "host work is real");
    }

    #[test]
    fn bad_frees_rejected() {
        let mut h = heap(256);
        let p = h.execute(&req(Opcode::Alloc, 8, ElemType::U32 as u32, 0)).result;
        assert_eq!(h.execute(&req(Opcode::Free, 0, 0, 0)).status, Status::BadPointer);
        assert_eq!(
            h.execute(&req(Opcode::Free, 10_000, 0, 0)).status,
            Status::BadPointer
        );
        assert!(h.execute(&req(Opcode::Free, p, 0, 0)).status.is_ok());
        // Double free: block is already marked free.
        assert_eq!(
            h.execute(&req(Opcode::Free, p, 0, 0)).status,
            Status::BadPointer
        );
    }

    #[test]
    fn reservation_unsupported() {
        let mut h = heap(256);
        assert_eq!(
            h.execute(&req(Opcode::Reserve, 0, 0, 0)).status,
            Status::Unsupported
        );
        assert_eq!(
            h.execute(&req(Opcode::Release, 0, 0, 0)).status,
            Status::Unsupported
        );
    }

    #[test]
    fn info_walks_and_reports() {
        let mut h = heap(512);
        let free0 = h.execute(&req(Opcode::Info, 0, 0, 0));
        assert_eq!(free0.result, 512);
        let _ = h.execute(&req(Opcode::Alloc, 16, ElemType::U32 as u32, 0));
        let free1 = h.execute(&req(Opcode::Info, 0, 0, 0));
        assert_eq!(free1.result, 512 - 72); // 64 payload + 8 tags
        assert!(free1.cycles >= free0.cycles, "walk grows with block count");
    }

    #[test]
    fn bursts_stream_through_iobuf() {
        let mut h = heap(512);
        let p = h.execute(&req(Opcode::Alloc, 8, ElemType::U32 as u32, 0)).result;
        let s = h.execute(&req(Opcode::WriteBurst, p, 2, 4));
        assert!(s.status.is_ok());
        for i in 0..4 {
            assert!(h.burst_write_beat(0, i * 11).status.is_ok());
        }
        let s = h.execute(&req(Opcode::ReadBurst, p, 2, 4));
        assert!(s.status.is_ok());
        for i in 0..4 {
            let b = h.burst_read_beat(0);
            assert_eq!(b.data, i * 11);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn bad_capacity_rejected() {
        heap(20);
    }

    #[test]
    fn peek_word_observes_without_charging() {
        let mut h = heap(256);
        let p = h.execute(&req(Opcode::Alloc, 4, ElemType::U32 as u32, 0)).result;
        let _ = h.execute(&req(Opcode::Write, p, 0x1234_5678, 2));
        let busy = h.stats().busy_cycles;
        let touches = h.word_touches;
        assert_eq!(h.peek_word(p), Some(0x1234_5678));
        assert_eq!(h.peek_word(253), None, "word straddles the arena end");
        assert_eq!(h.peek_word(4096), None, "outside the arena");
        assert_eq!(h.stats().busy_cycles, busy, "no cycles charged");
        assert_eq!(h.word_touches, touches, "no simulated word touches");
    }
}
