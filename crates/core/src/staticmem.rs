//! Static table memory: the traditional baseline.
//!
//! "Unless complex and slow dynamic memory models are added, static
//! memories implemented as tables are used" (paper, Section 2). This
//! component is that static table: a flat array serving every bus access
//! as a direct data read/write with a fixed latency. It supports no
//! allocation, no protocol and no reservations — which is precisely why
//! frameworks built on it cannot run dynamic-data applications, and what
//! the wrapper's overhead is measured against (experiment E2).

use std::any::Any;

use dmi_kernel::{Component, Ctx, Wake, Wire};

use crate::backend::{BeatResult, BlockResult, BurstInfo, DsmBackend, MemStats};
use crate::module::{ModuleStats, SlavePorts};
use crate::protocol::{ElemType, Opcode, OpResult, Request, Status};
use crate::translator::{Endian, Translator};
use crate::wrapper::WIDTH_FROM_TABLE;

/// Configuration of a [`StaticTableMemory`].
#[derive(Debug, Clone, Copy)]
pub struct StaticMemConfig {
    /// Size of the table in bytes.
    pub capacity: u32,
    /// Fixed read latency in cycles.
    pub read_latency: u64,
    /// Fixed write latency in cycles.
    pub write_latency: u64,
}

impl Default for StaticMemConfig {
    fn default() -> Self {
        StaticMemConfig {
            capacity: 1 << 20,
            read_latency: 2,
            write_latency: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FsmState {
    Idle,
    Exec { remaining: u64, data: u32 },
    AckWait,
}

/// A flat, fixed-latency RAM on the bus.
#[derive(Debug)]
pub struct StaticTableMemory {
    name: String,
    clk: Wire,
    ports: SlavePorts,
    base: u32,
    bytes: Vec<u8>,
    config: StaticMemConfig,
    stats: ModuleStats,
    reads: u64,
    writes: u64,
    state: FsmState,
}

impl StaticTableMemory {
    /// Creates a static memory decoded at `base`.
    pub fn new(
        name: impl Into<String>,
        clk: Wire,
        ports: SlavePorts,
        base: u32,
        config: StaticMemConfig,
    ) -> Self {
        StaticTableMemory {
            name: name.into(),
            clk,
            ports,
            base,
            bytes: vec![0; config.capacity as usize],
            config,
            stats: ModuleStats::default(),
            reads: 0,
            writes: 0,
            state: FsmState::Idle,
        }
    }

    /// Handshake statistics.
    pub fn stats(&self) -> ModuleStats {
        self.stats
    }

    /// Data accesses served, as `(reads, writes)`.
    pub fn access_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Direct view of the table (test verification).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    fn accept(&mut self, ctx: &Ctx<'_>) -> (u32, u64) {
        let addr = ctx.read(self.ports.addr) as u32;
        let we = ctx.read_bit(self.ports.we);
        let size = ctx.read(self.ports.size);
        let width = match size {
            0 => 1u32,
            1 => 2,
            _ => 4,
        };
        let offset = addr.wrapping_sub(self.base) as usize;
        // Out-of-range accesses read as zero and drop writes (a real SRAM
        // macro would wrap; zero-fill keeps bugs visible).
        if offset + width as usize > self.bytes.len() {
            return (0, self.config.read_latency);
        }
        if we {
            let wdata = ctx.read(self.ports.wdata) as u32;
            let le = wdata.to_le_bytes();
            self.bytes[offset..offset + width as usize].copy_from_slice(&le[..width as usize]);
            self.writes += 1;
            (0, self.config.write_latency)
        } else {
            let mut le = [0u8; 4];
            le[..width as usize].copy_from_slice(&self.bytes[offset..offset + width as usize]);
            self.reads += 1;
            (u32::from_le_bytes(le), self.config.read_latency)
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, data: u32) {
        ctx.write_bit(self.ports.ack, true);
        ctx.write(self.ports.rdata, data as u64);
        self.state = FsmState::AckWait;
        self.stats.transactions += 1;
    }
}

impl Component for StaticTableMemory {
    fn name(&self) -> &str {
        &self.name
    }

    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.cause() {
            Wake::Start => {
                ctx.write_bit(self.ports.ack, false);
                ctx.write(self.ports.rdata, 0);
            }
            Wake::Signal(_) if ctx.is_signal(self.clk) => match self.state {
                FsmState::Idle => {
                    if ctx.read_bit(self.ports.req) {
                        let (data, busy) = self.accept(ctx);
                        if busy == 0 {
                            self.finish(ctx, data);
                        } else {
                            self.state = FsmState::Exec {
                                remaining: busy,
                                data,
                            };
                        }
                    } else {
                        self.stats.idle_cycles += 1;
                    }
                }
                FsmState::Exec { remaining, data } => {
                    self.stats.busy_cycles += 1;
                    if remaining <= 1 {
                        self.finish(ctx, data);
                    } else {
                        self.state = FsmState::Exec {
                            remaining: remaining - 1,
                            data,
                        };
                    }
                }
                FsmState::AckWait => {
                    ctx.write_bit(self.ports.ack, false);
                    if !ctx.read_bit(self.ports.req) {
                        self.state = FsmState::Idle;
                    }
                }
            },
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn save_state(&self, w: &mut dmi_kernel::StateWriter) {
        w.put_bytes(&self.bytes);
        match self.state {
            FsmState::Idle => w.put_u8(0),
            FsmState::Exec { remaining, data } => {
                w.put_u8(1);
                w.put_u64(remaining);
                w.put_u32(data);
            }
            FsmState::AckWait => w.put_u8(2),
        }
        w.put_u64(self.stats.transactions);
        w.put_u64(self.stats.busy_cycles);
        w.put_u64(self.stats.idle_cycles);
        w.put_u64(self.reads);
        w.put_u64(self.writes);
    }

    fn load_state(
        &mut self,
        r: &mut dmi_kernel::StateReader<'_>,
    ) -> Result<(), dmi_kernel::SnapshotError> {
        use dmi_kernel::SnapshotError;
        let bytes = r.get_bytes("static memory array")?;
        if bytes.len() != self.bytes.len() {
            return Err(SnapshotError::Mismatch {
                context: format!(
                    "static memory snapshot covers {} bytes, target has {}",
                    bytes.len(),
                    self.bytes.len()
                ),
            });
        }
        self.bytes.copy_from_slice(bytes);
        self.state = match r.get_u8("static memory fsm")? {
            0 => FsmState::Idle,
            1 => FsmState::Exec {
                remaining: r.get_u64("static memory fsm remaining")?,
                data: r.get_u32("static memory fsm data")?,
            },
            2 => FsmState::AckWait,
            t => {
                return Err(SnapshotError::Corrupt {
                    context: format!("static memory: unknown fsm tag {t}"),
                })
            }
        };
        self.stats.transactions = r.get_u64("static memory stats.transactions")?;
        self.stats.busy_cycles = r.get_u64("static memory stats.busy_cycles")?;
        self.stats.idle_cycles = r.get_u64("static memory stats.idle_cycles")?;
        self.reads = r.get_u64("static memory reads")?;
        self.writes = r.get_u64("static memory writes")?;
        Ok(())
    }
}

#[derive(Debug)]
struct StaticBurst {
    offset: u32,
    elem: ElemType,
    len: u32,
    done: u32,
    writing: bool,
    iobuf: Vec<u32>,
}

/// The static table as a protocol backend: a flat array behind the same
/// command register block as the dynamic models, so the traditional
/// baseline can sit behind [`crate::MemoryModule`] and be compared
/// handshake-for-handshake (including the burst streaming fast path).
///
/// Allocation, free and reservations answer [`Status::Unsupported`] —
/// that *is* the baseline's limitation the paper starts from; data
/// accesses address the array directly by offset. Reads charge
/// `read_latency` and writes `write_latency` per element; burst data
/// beats stream the banked I/O array at one cycle per beat with the
/// element transfers charged at setup (reads) or commit (writes).
#[derive(Debug)]
pub struct StaticTableBackend {
    mem: Vec<u8>,
    config: StaticMemConfig,
    translator: Translator,
    burst: [Option<StaticBurst>; 16],
    stats: MemStats,
}

impl StaticTableBackend {
    /// Creates a zeroed table of `config.capacity` bytes.
    pub fn new(config: StaticMemConfig) -> Self {
        StaticTableBackend {
            mem: vec![0; config.capacity as usize],
            config,
            translator: Translator::new(Endian::Little),
            burst: Default::default(),
            stats: MemStats::default(),
        }
    }

    /// Observational word read at a byte offset into the table: no
    /// cycles charged, no counters moved. `None` out of bounds — the
    /// debug peek behind watchpoints on static-protocol memories, like
    /// `SimHeapBackend::peek_word` for the simheap arena.
    pub fn peek_word(&self, offset: u32) -> Option<u32> {
        let off = offset as usize;
        let bytes = self.mem.get(off..off.checked_add(4)?)?;
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    }

    fn elem_from(&self, code: u32) -> Option<ElemType> {
        if code == WIDTH_FROM_TABLE {
            // No allocation metadata to consult; default to words.
            Some(ElemType::U32)
        } else {
            ElemType::from_u32(code)
        }
    }

    fn bounds(&self, offset: u32, bytes: u32) -> Result<(), Status> {
        if offset
            .checked_add(bytes)
            .is_none_or(|end| end > self.mem.len() as u32)
        {
            Err(Status::OutOfBounds)
        } else {
            Ok(())
        }
    }

    fn charge(&mut self, r: OpResult) -> OpResult {
        self.stats.busy_cycles += r.cycles;
        if !r.status.is_ok() {
            self.stats.errors += 1;
        }
        r
    }
}

impl DsmBackend for StaticTableBackend {
    fn kind(&self) -> &'static str {
        "static"
    }

    fn execute(&mut self, req: &Request) -> OpResult {
        if !matches!(req.op, Opcode::Nop) {
            self.burst[req.master as usize & 0xF] = None;
        }
        let rd_lat = self.config.read_latency;
        let wr_lat = self.config.write_latency;
        let result = match req.op {
            Opcode::Nop => OpResult::ok(0, 0),
            Opcode::Alloc | Opcode::Free | Opcode::Reserve | Opcode::Release => {
                OpResult::err(Status::Unsupported, rd_lat.max(1))
            }
            Opcode::Write => {
                let Some(elem) = self.elem_from(req.arg2) else {
                    return self.charge(OpResult::err(Status::BadArgs, wr_lat.max(1)));
                };
                if let Err(s) = self.bounds(req.arg0, elem.bytes()) {
                    return self.charge(OpResult::err(s, wr_lat.max(1)));
                }
                let t = self.translator;
                let ok = t.store(&mut self.mem, req.arg0, req.arg1, elem);
                debug_assert!(ok);
                self.stats.writes += 1;
                OpResult::ok(0, wr_lat)
            }
            Opcode::Read => {
                let Some(elem) = self.elem_from(req.arg2) else {
                    return self.charge(OpResult::err(Status::BadArgs, rd_lat.max(1)));
                };
                if let Err(s) = self.bounds(req.arg0, elem.bytes()) {
                    return self.charge(OpResult::err(s, rd_lat.max(1)));
                }
                let v = self
                    .translator
                    .load(&self.mem, req.arg0, elem)
                    .expect("bounds checked");
                self.stats.reads += 1;
                OpResult::ok(v, rd_lat)
            }
            Opcode::WriteBurst | Opcode::ReadBurst => {
                let writing = req.op == Opcode::WriteBurst;
                // Setup and argument errors charge the latency of the
                // direction being set up, mirroring the scalar ops.
                let lat = if writing { wr_lat } else { rd_lat };
                let Some(elem) = self.elem_from(req.arg1) else {
                    return self.charge(OpResult::err(Status::BadArgs, lat.max(1)));
                };
                let Some(total) = req.arg2.checked_mul(elem.bytes()).filter(|&b| b > 0) else {
                    return self.charge(OpResult::err(Status::BadArgs, lat.max(1)));
                };
                if let Err(s) = self.bounds(req.arg0, total) {
                    return self.charge(OpResult::err(s, lat.max(1)));
                }
                let mut iobuf = Vec::with_capacity(req.arg2 as usize);
                let mut cycles = lat.max(1);
                if !writing {
                    // Stage the whole block at setup: a static RAM burst
                    // read is `read_latency` per element up front.
                    let ok = self.translator.load_slice(
                        &self.mem,
                        req.arg0,
                        req.arg2,
                        elem,
                        &mut iobuf,
                    );
                    debug_assert!(ok, "bounds checked");
                    cycles += rd_lat * req.arg2 as u64;
                }
                self.burst[req.master as usize & 0xF] = Some(StaticBurst {
                    offset: req.arg0,
                    elem,
                    len: req.arg2,
                    done: 0,
                    writing,
                    iobuf,
                });
                OpResult::ok(0, cycles)
            }
            Opcode::Info => OpResult::ok(self.mem.len() as u32, rd_lat),
        };
        self.charge(result)
    }

    fn burst_write_beat(&mut self, master: u8, value: u32) -> BeatResult {
        let slot = master as usize & 0xF;
        let Some(burst) = self.burst[slot].as_mut() else {
            return BeatResult::err(Status::BadArgs, 1);
        };
        if !burst.writing {
            return BeatResult::err(Status::BadArgs, 1);
        }
        burst.iobuf.push(value);
        burst.done += 1;
        let mut cycles = 1;
        if burst.done == burst.len {
            let burst = self.burst[slot].take().expect("checked above");
            let t = self.translator;
            let ok = t.store_slice(&mut self.mem, burst.offset, &burst.iobuf, burst.elem);
            debug_assert!(ok, "bounds checked at setup");
            cycles += self.config.write_latency * burst.len as u64;
        }
        self.stats.burst_beats += 1;
        self.stats.busy_cycles += cycles;
        BeatResult::ok(0, cycles)
    }

    fn burst_read_beat(&mut self, master: u8) -> BeatResult {
        let slot = master as usize & 0xF;
        let Some(burst) = self.burst[slot].as_mut() else {
            return BeatResult::err(Status::BadArgs, 1);
        };
        if burst.writing || burst.done >= burst.len {
            return BeatResult::err(Status::BadArgs, 1);
        }
        let value = burst.iobuf[burst.done as usize];
        burst.done += 1;
        if burst.done == burst.len {
            self.burst[slot] = None;
        }
        self.stats.burst_beats += 1;
        self.stats.busy_cycles += 1;
        BeatResult::ok(value, 1)
    }

    fn burst_info(&self, master: u8) -> Option<BurstInfo> {
        self.burst[master as usize & 0xF].as_ref().map(|b| BurstInfo {
            writing: b.writing,
            remaining: b.len - b.done,
        })
    }

    fn burst_read_block(&mut self, master: u8, out: &mut [u32]) -> BlockResult {
        let slot = master as usize & 0xF;
        let Some(burst) = self.burst[slot].as_mut() else {
            return BlockResult::rejected(Status::BadArgs, 1);
        };
        if burst.writing {
            return BlockResult::rejected(Status::BadArgs, 1);
        }
        let n = (out.len() as u32).min(burst.len - burst.done);
        let from = burst.done as usize;
        out[..n as usize].copy_from_slice(&burst.iobuf[from..from + n as usize]);
        burst.done += n;
        if burst.done == burst.len {
            self.burst[slot] = None;
        }
        let cycles = n as u64;
        self.stats.burst_beats += n as u64;
        self.stats.busy_cycles += cycles;
        BlockResult {
            status: if (out.len() as u32) > n {
                Status::BadArgs
            } else {
                Status::Ok
            },
            beats: n,
            cycles,
            cycles_per_beat: 1,
        }
    }

    fn burst_write_block(&mut self, master: u8, values: &[u32]) -> BlockResult {
        let slot = master as usize & 0xF;
        let Some(burst) = self.burst[slot].as_mut() else {
            return BlockResult::rejected(Status::BadArgs, 1);
        };
        if !burst.writing {
            return BlockResult::rejected(Status::BadArgs, 1);
        }
        let n = (values.len() as u32).min(burst.len - burst.done);
        burst.iobuf.extend_from_slice(&values[..n as usize]);
        burst.done += n;
        let complete = burst.done == burst.len;
        let mut cycles = n as u64;
        if complete {
            let burst = self.burst[slot].take().expect("checked above");
            let t = self.translator;
            let ok = t.store_slice(&mut self.mem, burst.offset, &burst.iobuf, burst.elem);
            debug_assert!(ok, "bounds checked at setup");
            cycles += self.config.write_latency * burst.len as u64;
        }
        self.stats.burst_beats += n as u64;
        self.stats.busy_cycles += cycles;
        BlockResult {
            status: if (values.len() as u32) > n {
                Status::BadArgs
            } else {
                Status::Ok
            },
            beats: n,
            cycles,
            cycles_per_beat: 1,
        }
    }

    fn free_bytes(&self) -> u32 {
        // No allocation concept: the whole table is always "available".
        self.mem.len() as u32
    }

    fn stats(&self) -> MemStats {
        self.stats
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn save_state(&self, w: &mut dmi_kernel::StateWriter) {
        w.put_bytes(&self.mem);
        for slot in 0..16 {
            match &self.burst[slot] {
                Some(b) => {
                    w.put_bool(true);
                    w.put_u32(b.offset);
                    w.put_u8(b.elem as u8);
                    w.put_u32(b.len);
                    w.put_u32(b.done);
                    w.put_bool(b.writing);
                    w.put_u64(b.iobuf.len() as u64);
                    for v in &b.iobuf {
                        w.put_u32(*v);
                    }
                }
                None => w.put_bool(false),
            }
        }
        crate::backend::write_mem_stats(w, &self.stats);
    }

    fn load_state(
        &mut self,
        r: &mut dmi_kernel::StateReader<'_>,
    ) -> Result<(), dmi_kernel::SnapshotError> {
        use dmi_kernel::SnapshotError;
        let mem = r.get_bytes("static backend array")?;
        if mem.len() != self.mem.len() {
            return Err(SnapshotError::Mismatch {
                context: format!(
                    "static backend snapshot covers {} bytes, target has {}",
                    mem.len(),
                    self.mem.len()
                ),
            });
        }
        self.mem.copy_from_slice(mem);
        for slot in 0..16 {
            self.burst[slot] = if r.get_bool("static burst flag")? {
                let offset = r.get_u32("static burst offset")?;
                let elem = ElemType::from_u32(r.get_u8("static burst elem")? as u32)
                    .ok_or_else(|| SnapshotError::Corrupt {
                        context: "static burst: invalid element type".to_string(),
                    })?;
                let len = r.get_u32("static burst len")?;
                let done = r.get_u32("static burst done")?;
                let writing = r.get_bool("static burst writing")?;
                let n = r.get_u64("static iobuf len")? as usize;
                let mut iobuf = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    iobuf.push(r.get_u32("static iobuf word")?);
                }
                if done > len {
                    return Err(SnapshotError::Corrupt {
                        context: "static burst: cursor out of range".to_string(),
                    });
                }
                Some(StaticBurst {
                    offset,
                    elem,
                    len,
                    done,
                    writing,
                    iobuf,
                })
            } else {
                None
            };
        }
        self.stats = crate::backend::read_mem_stats(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_kernel::{Edge, Simulator};

    /// Minimal scripted master mirroring the one in `module::tests`.
    #[derive(Debug)]
    struct Script {
        clk: Wire,
        ports: SlavePorts,
        ops: Vec<(u32, bool, u32, u64)>, // addr, we, wdata, size
        results: Vec<u32>,
        index: usize,
        busy: bool,
    }

    impl Component for Script {
        fn name(&self) -> &str {
            "script"
        }
        fn wake(&mut self, ctx: &mut Ctx<'_>) {
            if !ctx.is_signal(self.clk) {
                return;
            }
            if self.busy {
                if ctx.read_bit(self.ports.ack) {
                    self.results.push(ctx.read(self.ports.rdata) as u32);
                    ctx.write_bit(self.ports.req, false);
                    self.busy = false;
                    self.index += 1;
                    if self.index == self.ops.len() {
                        ctx.stop("done");
                    }
                }
                return;
            }
            if self.index < self.ops.len() {
                let (addr, we, wdata, size) = self.ops[self.index];
                ctx.write_bit(self.ports.req, true);
                ctx.write_bit(self.ports.we, we);
                ctx.write(self.ports.addr, addr as u64);
                ctx.write(self.ports.wdata, wdata as u64);
                ctx.write(self.ports.size, size);
                self.busy = true;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    const BASE: u32 = 0x8000_0000;

    fn run(ops: Vec<(u32, bool, u32, u64)>) -> Vec<u32> {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 2);
        let ports = SlavePorts::declare(&mut sim, "ram.s");
        let ram = StaticTableMemory::new(
            "ram",
            clk,
            ports,
            BASE,
            StaticMemConfig {
                capacity: 0x100,
                read_latency: 2,
                write_latency: 1,
            },
        );
        let rid = sim.add_component(Box::new(ram));
        sim.subscribe(rid, clk, Edge::Rising);
        let script = Script {
            clk,
            ports,
            ops,
            results: Vec::new(),
            index: 0,
            busy: false,
        };
        let sid = sim.add_component(Box::new(script));
        sim.subscribe(sid, clk, Edge::Rising);
        let summary = sim.run_until_stopped(100_000);
        assert!(summary.stop.is_some(), "script did not finish");
        sim.component::<Script>(sid).unwrap().results.clone()
    }

    #[test]
    fn word_write_read() {
        let r = run(vec![
            (BASE + 0x10, true, 0xDEAD_BEEF, 2),
            (BASE + 0x10, false, 0, 2),
        ]);
        assert_eq!(r[1], 0xDEAD_BEEF);
    }

    #[test]
    fn sub_word_accesses() {
        let r = run(vec![
            (BASE + 0x20, true, 0x1122_3344, 2),
            (BASE + 0x20, false, 0, 0),  // byte -> 0x44
            (BASE + 0x20, false, 0, 1),  // half -> 0x3344
            (BASE + 0x22, true, 0xAB, 0), // byte write
            (BASE + 0x20, false, 0, 2),
        ]);
        assert_eq!(r[1], 0x44);
        assert_eq!(r[2], 0x3344);
        assert_eq!(r[4], 0x11AB_3344);
    }

    #[test]
    fn out_of_range_reads_zero() {
        let r = run(vec![
            (BASE + 0x200, true, 7, 2),  // dropped
            (BASE + 0x200, false, 0, 2), // zero
        ]);
        assert_eq!(r[1], 0);
    }

    fn breq(op: Opcode, arg0: u32, arg1: u32, arg2: u32) -> Request {
        Request {
            op,
            arg0,
            arg1,
            arg2,
            master: 0,
        }
    }

    fn backend(cap: u32) -> StaticTableBackend {
        StaticTableBackend::new(StaticMemConfig {
            capacity: cap,
            read_latency: 2,
            write_latency: 1,
        })
    }

    #[test]
    fn backend_scalar_round_trip_and_unsupported_protocol() {
        let mut m = backend(256);
        assert_eq!(m.kind(), "static");
        assert_eq!(
            m.execute(&breq(Opcode::Alloc, 4, 2, 0)).status,
            Status::Unsupported
        );
        assert_eq!(
            m.execute(&breq(Opcode::Reserve, 0, 0, 0)).status,
            Status::Unsupported
        );
        assert!(m.execute(&breq(Opcode::Write, 0x10, 0xBEEF, 2)).status.is_ok());
        assert_eq!(m.execute(&breq(Opcode::Read, 0x10, 0, 2)).result, 0xBEEF);
        assert_eq!(
            m.execute(&breq(Opcode::Read, 0x100, 0, 2)).status,
            Status::OutOfBounds
        );
        assert_eq!(m.execute(&breq(Opcode::Info, 0, 0, 0)).result, 256);
        assert_eq!(m.free_bytes(), 256);
    }

    #[test]
    fn backend_bursts_round_trip_per_beat_and_block() {
        let mut m = backend(256);
        assert!(m.execute(&breq(Opcode::WriteBurst, 0x20, 2, 4)).status.is_ok());
        for i in 0..4u32 {
            assert!(m.burst_write_beat(0, 0x50 + i).status.is_ok());
        }
        // Per-beat read back.
        assert!(m.execute(&breq(Opcode::ReadBurst, 0x20, 2, 4)).status.is_ok());
        assert_eq!(
            m.burst_info(0),
            Some(BurstInfo {
                writing: false,
                remaining: 4
            })
        );
        for i in 0..4u32 {
            assert_eq!(m.burst_read_beat(0).data, 0x50 + i);
        }
        assert_eq!(m.burst_read_beat(0).status, Status::BadArgs);
        // Block read back.
        assert!(m.execute(&breq(Opcode::ReadBurst, 0x20, 2, 4)).status.is_ok());
        let mut out = [0u32; 4];
        let r = m.burst_read_block(0, &mut out);
        assert_eq!(r.status, Status::Ok);
        assert_eq!(r.beats, 4);
        assert_eq!(out, [0x50, 0x51, 0x52, 0x53]);
        // Block write path.
        let s = m.execute(&breq(Opcode::WriteBurst, 0x40, 2, 3));
        assert!(s.status.is_ok());
        let w = m.burst_write_block(0, &[9, 8, 7]);
        assert_eq!(w.status, Status::Ok);
        assert_eq!(w.beats, 3);
        assert_eq!(m.execute(&breq(Opcode::Read, 0x44, 0, 2)).result, 8);
    }

    #[test]
    fn backend_block_cycles_match_beats() {
        // Same data through blocks and through beats: identical charged
        // cycles (the stream_equivalence contract).
        let data: Vec<u32> = (0..9).map(|i| i * 3 + 1).collect();
        let len = data.len() as u32;
        let mut a = backend(256);
        let mut b = backend(256);
        assert!(a.execute(&breq(Opcode::WriteBurst, 0, 2, len)).status.is_ok());
        assert!(b.execute(&breq(Opcode::WriteBurst, 0, 2, len)).status.is_ok());
        let block = a.burst_write_block(0, &data);
        let mut beat_cycles = 0;
        for v in &data {
            let beat = b.burst_write_beat(0, *v);
            assert!(beat.status.is_ok());
            beat_cycles += beat.cycles;
        }
        assert_eq!(block.cycles, beat_cycles);
        assert!(a.execute(&breq(Opcode::ReadBurst, 0, 2, len)).status.is_ok());
        assert!(b.execute(&breq(Opcode::ReadBurst, 0, 2, len)).status.is_ok());
        let mut out = vec![0u32; data.len()];
        let rblock = a.burst_read_block(0, &mut out);
        let mut read_cycles = 0;
        for (i, expect) in data.iter().enumerate() {
            let beat = b.burst_read_beat(0);
            assert_eq!(beat.data, *expect, "beat {i}");
            read_cycles += beat.cycles;
        }
        assert_eq!(out, data);
        assert_eq!(rblock.cycles, read_cycles);
    }
}
