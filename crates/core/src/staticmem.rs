//! Static table memory: the traditional baseline.
//!
//! "Unless complex and slow dynamic memory models are added, static
//! memories implemented as tables are used" (paper, Section 2). This
//! component is that static table: a flat array serving every bus access
//! as a direct data read/write with a fixed latency. It supports no
//! allocation, no protocol and no reservations — which is precisely why
//! frameworks built on it cannot run dynamic-data applications, and what
//! the wrapper's overhead is measured against (experiment E2).

use std::any::Any;

use dmi_kernel::{Component, Ctx, Wake, Wire};

use crate::module::{ModuleStats, SlavePorts};

/// Configuration of a [`StaticTableMemory`].
#[derive(Debug, Clone, Copy)]
pub struct StaticMemConfig {
    /// Size of the table in bytes.
    pub capacity: u32,
    /// Fixed read latency in cycles.
    pub read_latency: u64,
    /// Fixed write latency in cycles.
    pub write_latency: u64,
}

impl Default for StaticMemConfig {
    fn default() -> Self {
        StaticMemConfig {
            capacity: 1 << 20,
            read_latency: 2,
            write_latency: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FsmState {
    Idle,
    Exec { remaining: u64, data: u32 },
    AckWait,
}

/// A flat, fixed-latency RAM on the bus.
#[derive(Debug)]
pub struct StaticTableMemory {
    name: String,
    clk: Wire,
    ports: SlavePorts,
    base: u32,
    bytes: Vec<u8>,
    config: StaticMemConfig,
    stats: ModuleStats,
    reads: u64,
    writes: u64,
    state: FsmState,
}

impl StaticTableMemory {
    /// Creates a static memory decoded at `base`.
    pub fn new(
        name: impl Into<String>,
        clk: Wire,
        ports: SlavePorts,
        base: u32,
        config: StaticMemConfig,
    ) -> Self {
        StaticTableMemory {
            name: name.into(),
            clk,
            ports,
            base,
            bytes: vec![0; config.capacity as usize],
            config,
            stats: ModuleStats::default(),
            reads: 0,
            writes: 0,
            state: FsmState::Idle,
        }
    }

    /// Handshake statistics.
    pub fn stats(&self) -> ModuleStats {
        self.stats
    }

    /// Data accesses served, as `(reads, writes)`.
    pub fn access_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Direct view of the table (test verification).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    fn accept(&mut self, ctx: &Ctx<'_>) -> (u32, u64) {
        let addr = ctx.read(self.ports.addr) as u32;
        let we = ctx.read_bit(self.ports.we);
        let size = ctx.read(self.ports.size);
        let width = match size {
            0 => 1u32,
            1 => 2,
            _ => 4,
        };
        let offset = addr.wrapping_sub(self.base) as usize;
        // Out-of-range accesses read as zero and drop writes (a real SRAM
        // macro would wrap; zero-fill keeps bugs visible).
        if offset + width as usize > self.bytes.len() {
            return (0, self.config.read_latency);
        }
        if we {
            let wdata = ctx.read(self.ports.wdata) as u32;
            let le = wdata.to_le_bytes();
            self.bytes[offset..offset + width as usize].copy_from_slice(&le[..width as usize]);
            self.writes += 1;
            (0, self.config.write_latency)
        } else {
            let mut le = [0u8; 4];
            le[..width as usize].copy_from_slice(&self.bytes[offset..offset + width as usize]);
            self.reads += 1;
            (u32::from_le_bytes(le), self.config.read_latency)
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, data: u32) {
        ctx.write_bit(self.ports.ack, true);
        ctx.write(self.ports.rdata, data as u64);
        self.state = FsmState::AckWait;
        self.stats.transactions += 1;
    }
}

impl Component for StaticTableMemory {
    fn name(&self) -> &str {
        &self.name
    }

    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.cause() {
            Wake::Start => {
                ctx.write_bit(self.ports.ack, false);
                ctx.write(self.ports.rdata, 0);
            }
            Wake::Signal(_) if ctx.is_signal(self.clk) => match self.state {
                FsmState::Idle => {
                    if ctx.read_bit(self.ports.req) {
                        let (data, busy) = self.accept(ctx);
                        if busy == 0 {
                            self.finish(ctx, data);
                        } else {
                            self.state = FsmState::Exec {
                                remaining: busy,
                                data,
                            };
                        }
                    } else {
                        self.stats.idle_cycles += 1;
                    }
                }
                FsmState::Exec { remaining, data } => {
                    self.stats.busy_cycles += 1;
                    if remaining <= 1 {
                        self.finish(ctx, data);
                    } else {
                        self.state = FsmState::Exec {
                            remaining: remaining - 1,
                            data,
                        };
                    }
                }
                FsmState::AckWait => {
                    ctx.write_bit(self.ports.ack, false);
                    if !ctx.read_bit(self.ports.req) {
                        self.state = FsmState::Idle;
                    }
                }
            },
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_kernel::{Edge, Simulator};

    /// Minimal scripted master mirroring the one in `module::tests`.
    #[derive(Debug)]
    struct Script {
        clk: Wire,
        ports: SlavePorts,
        ops: Vec<(u32, bool, u32, u64)>, // addr, we, wdata, size
        results: Vec<u32>,
        index: usize,
        busy: bool,
    }

    impl Component for Script {
        fn name(&self) -> &str {
            "script"
        }
        fn wake(&mut self, ctx: &mut Ctx<'_>) {
            if !ctx.is_signal(self.clk) {
                return;
            }
            if self.busy {
                if ctx.read_bit(self.ports.ack) {
                    self.results.push(ctx.read(self.ports.rdata) as u32);
                    ctx.write_bit(self.ports.req, false);
                    self.busy = false;
                    self.index += 1;
                    if self.index == self.ops.len() {
                        ctx.stop("done");
                    }
                }
                return;
            }
            if self.index < self.ops.len() {
                let (addr, we, wdata, size) = self.ops[self.index];
                ctx.write_bit(self.ports.req, true);
                ctx.write_bit(self.ports.we, we);
                ctx.write(self.ports.addr, addr as u64);
                ctx.write(self.ports.wdata, wdata as u64);
                ctx.write(self.ports.size, size);
                self.busy = true;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    const BASE: u32 = 0x8000_0000;

    fn run(ops: Vec<(u32, bool, u32, u64)>) -> Vec<u32> {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 2);
        let ports = SlavePorts::declare(&mut sim, "ram.s");
        let ram = StaticTableMemory::new(
            "ram",
            clk,
            ports,
            BASE,
            StaticMemConfig {
                capacity: 0x100,
                read_latency: 2,
                write_latency: 1,
            },
        );
        let rid = sim.add_component(Box::new(ram));
        sim.subscribe(rid, clk, Edge::Rising);
        let script = Script {
            clk,
            ports,
            ops,
            results: Vec::new(),
            index: 0,
            busy: false,
        };
        let sid = sim.add_component(Box::new(script));
        sim.subscribe(sid, clk, Edge::Rising);
        let summary = sim.run_until_stopped(100_000);
        assert!(summary.stop.is_some(), "script did not finish");
        sim.component::<Script>(sid).unwrap().results.clone()
    }

    #[test]
    fn word_write_read() {
        let r = run(vec![
            (BASE + 0x10, true, 0xDEAD_BEEF, 2),
            (BASE + 0x10, false, 0, 2),
        ]);
        assert_eq!(r[1], 0xDEAD_BEEF);
    }

    #[test]
    fn sub_word_accesses() {
        let r = run(vec![
            (BASE + 0x20, true, 0x1122_3344, 2),
            (BASE + 0x20, false, 0, 0),  // byte -> 0x44
            (BASE + 0x20, false, 0, 1),  // half -> 0x3344
            (BASE + 0x22, true, 0xAB, 0), // byte write
            (BASE + 0x20, false, 0, 2),
        ]);
        assert_eq!(r[1], 0x44);
        assert_eq!(r[2], 0x3344);
        assert_eq!(r[4], 0x11AB_3344);
    }

    #[test]
    fn out_of_range_reads_zero() {
        let r = run(vec![
            (BASE + 0x200, true, 7, 2),  // dropped
            (BASE + 0x200, false, 0, 2), // zero
        ]);
        assert_eq!(r[1], 0);
    }
}
