//! The shared-memory command protocol.
//!
//! Every transaction between an ISS and a memory module starts with an
//! opcode and the module address (the paper's `sm_addr`, realized here as
//! the interconnect's address decode), followed by operation-specific
//! operands. The protocol is implemented as a small MMIO register block so
//! ordinary load/store instructions can drive it; all three memory models
//! (host-backed wrapper, static table, simulated heap) answer the same
//! block, which is what makes cross-model experiments fair.
//!
//! ## Register map (byte offsets inside the module's window)
//!
//! | offset | name   | dir | meaning |
//! |--------|--------|-----|---------|
//! | 0x00   | CMD    | W   | opcode; writing triggers execution (ack delayed until done) |
//! | 0x04   | ARG0   | W   | dim (alloc) / vptr (free, read, write, bursts, reserve) |
//! | 0x08   | ARG1   | W   | element type (alloc) / value (write) / width (read) |
//! | 0x0C   | ARG2   | W   | burst length in elements / scalar access width |
//! | 0x10   | STATUS | R   | [`Status`] of the last operation |
//! | 0x14   | RESULT | R   | vptr (alloc) / data (read) |
//! | 0x18   | DATA   | RW  | burst data port (one element per access) |
//! | 0x1C   | INFO   | R   | free capacity in bytes |

/// Null virtual pointer returned by failed allocations. `0` cannot be the
/// sentinel because the paper defines the *first* Vptr to be zero.
pub const NULL_VPTR: u32 = 0xFFFF_FFFF;

/// Byte offsets of the MMIO registers.
pub mod regs {
    /// Command register (write to execute).
    pub const CMD: u32 = 0x00;
    /// First argument register.
    pub const ARG0: u32 = 0x04;
    /// Second argument register.
    pub const ARG1: u32 = 0x08;
    /// Third argument register.
    pub const ARG2: u32 = 0x0C;
    /// Status of the last command.
    pub const STATUS: u32 = 0x10;
    /// Result of the last command.
    pub const RESULT: u32 = 0x14;
    /// Burst data port.
    pub const DATA: u32 = 0x18;
    /// Free-capacity probe.
    pub const INFO: u32 = 0x1C;
    /// Size of the register block (modules are decoded on this granule).
    pub const BLOCK_SIZE: u32 = 0x20;
}

/// Operation codes written to the CMD register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Opcode {
    /// No operation (STATUS := Ok).
    Nop = 0,
    /// Allocate `ARG0` elements of type `ARG1`; RESULT := vptr.
    Alloc = 1,
    /// Free the allocation containing vptr `ARG0` (must be the base vptr).
    Free = 2,
    /// Write `ARG1` at vptr `ARG0` with width `ARG2`.
    Write = 3,
    /// Read from vptr `ARG0` with width `ARG2`; RESULT := data.
    Read = 4,
    /// Begin a burst write of `ARG2` elements at vptr `ARG0`.
    WriteBurst = 5,
    /// Begin a burst read of `ARG2` elements at vptr `ARG0`.
    ReadBurst = 6,
    /// Reserve (semaphore-acquire) the allocation containing `ARG0`.
    /// RESULT := 1 on success, 0 when held by another master.
    Reserve = 7,
    /// Release a reservation on `ARG0`.
    Release = 8,
    /// RESULT := free capacity in bytes.
    Info = 9,
}

impl Opcode {
    /// Decodes a CMD register value.
    pub fn from_u32(v: u32) -> Option<Opcode> {
        Some(match v {
            0 => Opcode::Nop,
            1 => Opcode::Alloc,
            2 => Opcode::Free,
            3 => Opcode::Write,
            4 => Opcode::Read,
            5 => Opcode::WriteBurst,
            6 => Opcode::ReadBurst,
            7 => Opcode::Reserve,
            8 => Opcode::Release,
            9 => Opcode::Info,
            _ => return None,
        })
    }
}

/// Completion status of an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Status {
    /// Completed successfully.
    Ok = 0,
    /// Operation in progress (visible only on live STATUS polls).
    Busy = 1,
    /// Allocation denied: capacity would be exceeded.
    OutOfMemory = 2,
    /// The vptr does not resolve to a live allocation.
    BadPointer = 3,
    /// The allocation is reserved by another master.
    Locked = 4,
    /// Unknown opcode.
    BadOpcode = 5,
    /// Malformed arguments (zero size, bad width code, …).
    BadArgs = 6,
    /// The paper's monotonic vptr rule exhausted the 32-bit virtual space.
    VirtualExhausted = 7,
    /// The model does not support this operation.
    Unsupported = 8,
    /// Access escapes the bounds of the allocation.
    OutOfBounds = 9,
}

impl Status {
    /// Decodes a STATUS register value.
    pub fn from_u32(v: u32) -> Option<Status> {
        Some(match v {
            0 => Status::Ok,
            1 => Status::Busy,
            2 => Status::OutOfMemory,
            3 => Status::BadPointer,
            4 => Status::Locked,
            5 => Status::BadOpcode,
            6 => Status::BadArgs,
            7 => Status::VirtualExhausted,
            8 => Status::Unsupported,
            9 => Status::OutOfBounds,
            _ => return None,
        })
    }

    /// Whether this is the success status.
    pub fn is_ok(self) -> bool {
        self == Status::Ok
    }
}

/// Element types stored in the pointer table (the paper's `Type` column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u32)]
pub enum ElemType {
    /// 8-bit elements.
    U8 = 0,
    /// 16-bit elements.
    U16 = 1,
    /// 32-bit elements (the common case for ISS data).
    #[default]
    U32 = 2,
}

impl ElemType {
    /// Decodes an ARG1 type code.
    pub fn from_u32(v: u32) -> Option<ElemType> {
        Some(match v {
            0 => ElemType::U8,
            1 => ElemType::U16,
            2 => ElemType::U32,
            _ => return None,
        })
    }

    /// Element width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            ElemType::U8 => 1,
            ElemType::U16 => 2,
            ElemType::U32 => 4,
        }
    }
}

/// A decoded command as presented to a memory backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The operation.
    pub op: Opcode,
    /// First operand (dim / vptr).
    pub arg0: u32,
    /// Second operand (type / value / width).
    pub arg1: u32,
    /// Third operand (burst length / width).
    pub arg2: u32,
    /// Index of the issuing bus master (for reservations).
    pub master: u8,
}

/// Outcome of a backend operation: architectural result plus the simulated
/// time it must appear to take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpResult {
    /// Completion status.
    pub status: Status,
    /// RESULT register value.
    pub result: u32,
    /// Simulated cycles before the module acknowledges.
    pub cycles: u64,
}

impl OpResult {
    /// Successful completion.
    pub fn ok(result: u32, cycles: u64) -> Self {
        OpResult {
            status: Status::Ok,
            result,
            cycles,
        }
    }

    /// Failed completion (RESULT := [`NULL_VPTR`]).
    pub fn err(status: Status, cycles: u64) -> Self {
        OpResult {
            status,
            result: NULL_VPTR,
            cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_roundtrip() {
        for v in 0..=9 {
            assert_eq!(Opcode::from_u32(v).unwrap() as u32, v);
        }
        assert_eq!(Opcode::from_u32(10), None);
    }

    #[test]
    fn status_roundtrip() {
        for v in 0..=9 {
            assert_eq!(Status::from_u32(v).unwrap() as u32, v);
        }
        assert_eq!(Status::from_u32(100), None);
        assert!(Status::Ok.is_ok());
        assert!(!Status::Busy.is_ok());
    }

    #[test]
    fn elem_type_widths() {
        assert_eq!(ElemType::U8.bytes(), 1);
        assert_eq!(ElemType::U16.bytes(), 2);
        assert_eq!(ElemType::U32.bytes(), 4);
        assert_eq!(ElemType::from_u32(3), None);
        assert_eq!(ElemType::from_u32(2), Some(ElemType::U32));
    }

    #[test]
    fn op_result_constructors() {
        let r = OpResult::ok(5, 3);
        assert!(r.status.is_ok());
        assert_eq!(r.result, 5);
        let e = OpResult::err(Status::OutOfMemory, 2);
        assert_eq!(e.result, NULL_VPTR);
        assert_eq!(e.cycles, 2);
    }

    #[test]
    fn register_map_is_word_spaced() {
        use regs::*;
        let all = [CMD, ARG0, ARG1, ARG2, STATUS, RESULT, DATA, INFO];
        for (i, r) in all.iter().enumerate() {
            assert_eq!(*r, (i as u32) * 4);
        }
        const { assert!(BLOCK_SIZE >= INFO + 4) };
    }
}
