//! The translator: endianness and data-size conversion between the
//! simulated architecture and host storage.
//!
//! In the paper the translator sits in the wrapper's functional part: it
//! performs "endianess, data type translation and host machine functional
//! calls". Here it converts values crossing the design/host boundary —
//! the simulated machine may be little- or big-endian while host buffers
//! are plain byte arrays.

use crate::protocol::ElemType;

/// Byte order of the *simulated* architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Endian {
    /// Little-endian (matches SimARM's native order).
    #[default]
    Little,
    /// Big-endian.
    Big,
}

/// Converts element values to and from host byte buffers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Translator {
    /// Byte order the simulated architecture expects in memory.
    pub sim_endian: Endian,
}

impl Translator {
    /// Creates a translator for the given simulated endianness.
    pub fn new(sim_endian: Endian) -> Self {
        Translator { sim_endian }
    }

    /// Stores `value` as an element at `offset` in a host buffer.
    ///
    /// Returns `false` when the access would escape the buffer.
    #[must_use]
    pub fn store(&self, buf: &mut [u8], offset: u32, value: u32, elem: ElemType) -> bool {
        let width = elem.bytes() as usize;
        let Some(slice) = buf
            .get_mut(offset as usize..)
            .and_then(|s| s.get_mut(..width))
        else {
            return false;
        };
        let bytes = match self.sim_endian {
            Endian::Little => value.to_le_bytes(),
            Endian::Big => value.to_be_bytes(),
        };
        match self.sim_endian {
            Endian::Little => slice.copy_from_slice(&bytes[..width]),
            Endian::Big => slice.copy_from_slice(&bytes[4 - width..]),
        }
        true
    }

    /// Loads an element value from `offset` in a host buffer.
    ///
    /// Returns `None` when the access would escape the buffer.
    pub fn load(&self, buf: &[u8], offset: u32, elem: ElemType) -> Option<u32> {
        let width = elem.bytes() as usize;
        let slice = buf.get(offset as usize..)?.get(..width)?;
        let mut bytes = [0u8; 4];
        match self.sim_endian {
            Endian::Little => {
                bytes[..width].copy_from_slice(slice);
                Some(u32::from_le_bytes(bytes))
            }
            Endian::Big => {
                bytes[4 - width..].copy_from_slice(slice);
                Some(u32::from_be_bytes(bytes))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_round_trip() {
        let t = Translator::new(Endian::Little);
        let mut buf = [0u8; 8];
        assert!(t.store(&mut buf, 0, 0x1122_3344, ElemType::U32));
        assert_eq!(&buf[..4], &[0x44, 0x33, 0x22, 0x11]);
        assert_eq!(t.load(&buf, 0, ElemType::U32), Some(0x1122_3344));
        assert_eq!(t.load(&buf, 0, ElemType::U16), Some(0x3344));
        assert_eq!(t.load(&buf, 0, ElemType::U8), Some(0x44));
    }

    #[test]
    fn big_endian_round_trip() {
        let t = Translator::new(Endian::Big);
        let mut buf = [0u8; 8];
        assert!(t.store(&mut buf, 0, 0x1122_3344, ElemType::U32));
        assert_eq!(&buf[..4], &[0x11, 0x22, 0x33, 0x44]);
        assert_eq!(t.load(&buf, 0, ElemType::U32), Some(0x1122_3344));
        // Narrow stores keep the low-order part of the value.
        assert!(t.store(&mut buf, 4, 0xABCD, ElemType::U16));
        assert_eq!(&buf[4..6], &[0xAB, 0xCD]);
        assert_eq!(t.load(&buf, 4, ElemType::U16), Some(0xABCD));
    }

    #[test]
    fn truncation_of_wide_values() {
        let t = Translator::default();
        let mut buf = [0u8; 4];
        assert!(t.store(&mut buf, 0, 0xDEAD_BEEF, ElemType::U8));
        assert_eq!(t.load(&buf, 0, ElemType::U8), Some(0xEF));
        assert!(t.store(&mut buf, 0, 0xDEAD_BEEF, ElemType::U16));
        assert_eq!(t.load(&buf, 0, ElemType::U16), Some(0xBEEF));
    }

    #[test]
    fn bounds_are_checked() {
        let t = Translator::default();
        let mut buf = [0u8; 4];
        assert!(!t.store(&mut buf, 1, 0, ElemType::U32));
        assert!(!t.store(&mut buf, 4, 0, ElemType::U8));
        assert_eq!(t.load(&buf, 2, ElemType::U32), None);
        assert_eq!(t.load(&buf, 4, ElemType::U8), None);
        assert!(t.store(&mut buf, 3, 0xFF, ElemType::U8));
    }

    #[test]
    fn cross_endian_views_differ() {
        let le = Translator::new(Endian::Little);
        let be = Translator::new(Endian::Big);
        let mut buf = [0u8; 4];
        assert!(le.store(&mut buf, 0, 0x0102_0304, ElemType::U32));
        assert_eq!(be.load(&buf, 0, ElemType::U32), Some(0x0403_0201));
    }
}
