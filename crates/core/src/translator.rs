//! The translator: endianness and data-size conversion between the
//! simulated architecture and host storage.
//!
//! In the paper the translator sits in the wrapper's functional part: it
//! performs "endianess, data type translation and host machine functional
//! calls". Here it converts values crossing the design/host boundary —
//! the simulated machine may be little- or big-endian while host buffers
//! are plain byte arrays.

use crate::protocol::ElemType;

/// Byte order of the *simulated* architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Endian {
    /// Little-endian (matches SimARM's native order).
    #[default]
    Little,
    /// Big-endian.
    Big,
}

/// Converts element values to and from host byte buffers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Translator {
    /// Byte order the simulated architecture expects in memory.
    pub sim_endian: Endian,
}

impl Translator {
    /// Creates a translator for the given simulated endianness.
    pub fn new(sim_endian: Endian) -> Self {
        Translator { sim_endian }
    }

    /// Stores `value` as an element at `offset` in a host buffer.
    ///
    /// Returns `false` when the access would escape the buffer.
    #[must_use]
    pub fn store(&self, buf: &mut [u8], offset: u32, value: u32, elem: ElemType) -> bool {
        let width = elem.bytes() as usize;
        let Some(slice) = buf
            .get_mut(offset as usize..)
            .and_then(|s| s.get_mut(..width))
        else {
            return false;
        };
        let bytes = match self.sim_endian {
            Endian::Little => value.to_le_bytes(),
            Endian::Big => value.to_be_bytes(),
        };
        match self.sim_endian {
            Endian::Little => slice.copy_from_slice(&bytes[..width]),
            Endian::Big => slice.copy_from_slice(&bytes[4 - width..]),
        }
        true
    }

    /// Stages `values.len()` elements into a host buffer in one pass — the
    /// bulk equivalent of repeated [`store`](Self::store) calls, used by the
    /// burst fast path to commit a whole I/O array at once.
    ///
    /// Returns `false` (without writing) when the span escapes the buffer.
    #[must_use]
    pub fn store_slice(&self, buf: &mut [u8], offset: u32, values: &[u32], elem: ElemType) -> bool {
        let width = elem.bytes() as usize;
        let total = values.len() * width;
        let Some(dst) = buf
            .get_mut(offset as usize..)
            .and_then(|s| s.get_mut(..total))
        else {
            return false;
        };
        match (self.sim_endian, elem) {
            // The common case: word elements in simulated little-endian
            // order; one flat pass the compiler vectorises.
            (Endian::Little, ElemType::U32) => {
                for (c, v) in dst.chunks_exact_mut(4).zip(values) {
                    c.copy_from_slice(&v.to_le_bytes());
                }
            }
            _ => {
                for (c, v) in dst.chunks_exact_mut(width).zip(values) {
                    let bytes = match self.sim_endian {
                        Endian::Little => v.to_le_bytes(),
                        Endian::Big => v.to_be_bytes(),
                    };
                    match self.sim_endian {
                        Endian::Little => c.copy_from_slice(&bytes[..width]),
                        Endian::Big => c.copy_from_slice(&bytes[4 - width..]),
                    }
                }
            }
        }
        true
    }

    /// Loads `len` elements from `offset` into `out` in one pass — the bulk
    /// equivalent of repeated [`load`](Self::load) calls, used to stage a
    /// burst read's I/O array from the host allocation.
    ///
    /// Returns `false` (without touching `out`) when the span escapes the
    /// buffer.
    #[must_use]
    pub fn load_slice(
        &self,
        buf: &[u8],
        offset: u32,
        len: u32,
        elem: ElemType,
        out: &mut Vec<u32>,
    ) -> bool {
        let width = elem.bytes() as usize;
        let total = len as usize * width;
        let Some(src) = buf.get(offset as usize..).and_then(|s| s.get(..total)) else {
            return false;
        };
        out.reserve(len as usize);
        match (self.sim_endian, elem) {
            (Endian::Little, ElemType::U32) => out.extend(
                src.chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4"))),
            ),
            _ => out.extend(src.chunks_exact(width).map(|c| {
                let mut bytes = [0u8; 4];
                match self.sim_endian {
                    Endian::Little => {
                        bytes[..width].copy_from_slice(c);
                        u32::from_le_bytes(bytes)
                    }
                    Endian::Big => {
                        bytes[4 - width..].copy_from_slice(c);
                        u32::from_be_bytes(bytes)
                    }
                }
            })),
        }
        true
    }

    /// Loads an element value from `offset` in a host buffer.
    ///
    /// Returns `None` when the access would escape the buffer.
    pub fn load(&self, buf: &[u8], offset: u32, elem: ElemType) -> Option<u32> {
        let width = elem.bytes() as usize;
        let slice = buf.get(offset as usize..)?.get(..width)?;
        let mut bytes = [0u8; 4];
        match self.sim_endian {
            Endian::Little => {
                bytes[..width].copy_from_slice(slice);
                Some(u32::from_le_bytes(bytes))
            }
            Endian::Big => {
                bytes[4 - width..].copy_from_slice(slice);
                Some(u32::from_be_bytes(bytes))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_round_trip() {
        let t = Translator::new(Endian::Little);
        let mut buf = [0u8; 8];
        assert!(t.store(&mut buf, 0, 0x1122_3344, ElemType::U32));
        assert_eq!(&buf[..4], &[0x44, 0x33, 0x22, 0x11]);
        assert_eq!(t.load(&buf, 0, ElemType::U32), Some(0x1122_3344));
        assert_eq!(t.load(&buf, 0, ElemType::U16), Some(0x3344));
        assert_eq!(t.load(&buf, 0, ElemType::U8), Some(0x44));
    }

    #[test]
    fn big_endian_round_trip() {
        let t = Translator::new(Endian::Big);
        let mut buf = [0u8; 8];
        assert!(t.store(&mut buf, 0, 0x1122_3344, ElemType::U32));
        assert_eq!(&buf[..4], &[0x11, 0x22, 0x33, 0x44]);
        assert_eq!(t.load(&buf, 0, ElemType::U32), Some(0x1122_3344));
        // Narrow stores keep the low-order part of the value.
        assert!(t.store(&mut buf, 4, 0xABCD, ElemType::U16));
        assert_eq!(&buf[4..6], &[0xAB, 0xCD]);
        assert_eq!(t.load(&buf, 4, ElemType::U16), Some(0xABCD));
    }

    #[test]
    fn truncation_of_wide_values() {
        let t = Translator::default();
        let mut buf = [0u8; 4];
        assert!(t.store(&mut buf, 0, 0xDEAD_BEEF, ElemType::U8));
        assert_eq!(t.load(&buf, 0, ElemType::U8), Some(0xEF));
        assert!(t.store(&mut buf, 0, 0xDEAD_BEEF, ElemType::U16));
        assert_eq!(t.load(&buf, 0, ElemType::U16), Some(0xBEEF));
    }

    #[test]
    fn bounds_are_checked() {
        let t = Translator::default();
        let mut buf = [0u8; 4];
        assert!(!t.store(&mut buf, 1, 0, ElemType::U32));
        assert!(!t.store(&mut buf, 4, 0, ElemType::U8));
        assert_eq!(t.load(&buf, 2, ElemType::U32), None);
        assert_eq!(t.load(&buf, 4, ElemType::U8), None);
        assert!(t.store(&mut buf, 3, 0xFF, ElemType::U8));
    }

    #[test]
    fn slice_ops_match_element_ops() {
        for endian in [Endian::Little, Endian::Big] {
            let t = Translator::new(endian);
            for elem in [ElemType::U8, ElemType::U16, ElemType::U32] {
                let values = [0xDEAD_BEEF, 0x0102_0304, 0, 0xFFFF_FFFF, 0x8000_0001];
                let mut bulk = vec![0u8; 64];
                let mut scalar = vec![0u8; 64];
                assert!(t.store_slice(&mut bulk, 4, &values, elem));
                for (i, v) in values.iter().enumerate() {
                    assert!(t.store(&mut scalar, 4 + (i as u32) * elem.bytes(), *v, elem));
                }
                assert_eq!(bulk, scalar, "{endian:?}/{elem:?} stores");
                let mut out = Vec::new();
                assert!(t.load_slice(&bulk, 4, values.len() as u32, elem, &mut out));
                let per: Vec<u32> = (0..values.len())
                    .map(|i| t.load(&bulk, 4 + (i as u32) * elem.bytes(), elem).unwrap())
                    .collect();
                assert_eq!(out, per, "{endian:?}/{elem:?} loads");
            }
        }
    }

    #[test]
    fn slice_ops_bounds_checked() {
        let t = Translator::default();
        let mut buf = [0u8; 8];
        assert!(!t.store_slice(&mut buf, 4, &[1, 2], ElemType::U32));
        assert!(buf.iter().all(|&b| b == 0), "failed store writes nothing");
        let mut out = Vec::new();
        assert!(!t.load_slice(&buf, 4, 2, ElemType::U32, &mut out));
        assert!(out.is_empty());
        assert!(t.store_slice(&mut buf, 0, &[7, 9], ElemType::U32));
        assert!(t.load_slice(&buf, 0, 2, ElemType::U32, &mut out));
        assert_eq!(out, vec![7, 9]);
    }

    #[test]
    fn cross_endian_views_differ() {
        let le = Translator::new(Endian::Little);
        let be = Translator::new(Endian::Big);
        let mut buf = [0u8; 4];
        assert!(le.store(&mut buf, 0, 0x0102_0304, ElemType::U32));
        assert_eq!(be.load(&buf, 0, ElemType::U32), Some(0x0403_0201));
    }
}
