//! Equivalence tests for the burst fast paths: with module-side burst
//! streaming (one `burst_read_block` backend call per burst) on or off,
//! every bus-visible observable — read data, per-transaction latency,
//! status — must be *bit-identical*. The fast path may only change host
//! speed, never simulated behaviour.

use std::any::Any;

use dmi_core::{
    regs, DsmBackend, ElemType, MemoryModule, Opcode, SimHeapBackend, SimHeapConfig, SlavePorts,
    StaticMemConfig, StaticTableBackend, Status, WrapperBackend, WrapperConfig, WIDTH_FROM_TABLE,
};
use dmi_kernel::{Component, Ctx, Edge, Simulator, Wire};

/// A scripted bus master driving the slave handshake directly.
#[derive(Debug)]
struct ScriptMaster {
    clk: Wire,
    ports: SlavePorts,
    script: Vec<(u32, bool, u32)>,
    results: Vec<u32>,
    latencies: Vec<u64>,
    issued_at: u64,
    cycle: u64,
    index: usize,
    busy: bool,
}

impl Component for ScriptMaster {
    fn name(&self) -> &str {
        "script_master"
    }
    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        if !ctx.is_signal(self.clk) {
            return;
        }
        self.cycle += 1;
        if self.busy {
            if ctx.read_bit(self.ports.ack) {
                self.results.push(ctx.read(self.ports.rdata) as u32);
                self.latencies.push(self.cycle - self.issued_at);
                ctx.write_bit(self.ports.req, false);
                self.busy = false;
                self.index += 1;
                if self.index == self.script.len() {
                    ctx.stop("script done");
                }
            }
            return;
        }
        if self.index < self.script.len() {
            let (addr, we, wdata) = self.script[self.index];
            ctx.write_bit(self.ports.req, true);
            ctx.write_bit(self.ports.we, we);
            ctx.write(self.ports.addr, addr as u64);
            ctx.write(self.ports.wdata, wdata as u64);
            ctx.write(self.ports.master, 0);
            self.issued_at = self.cycle;
            self.busy = true;
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const BASE: u32 = 0x8000_0000;

/// Backend under test, constructed fresh per run.
type BackendFactory = fn() -> Box<dyn DsmBackend>;

fn wrapper_backend() -> Box<dyn DsmBackend> {
    Box::new(WrapperBackend::new(WrapperConfig {
        capacity: 65536,
        ..WrapperConfig::default()
    }))
}

fn simheap_backend() -> Box<dyn DsmBackend> {
    Box::new(SimHeapBackend::new(SimHeapConfig {
        capacity: 65536,
        ..SimHeapConfig::default()
    }))
}

fn static_backend() -> Box<dyn DsmBackend> {
    Box::new(StaticTableBackend::new(StaticMemConfig {
        capacity: 65536,
        ..StaticMemConfig::default()
    }))
}

/// Runs `script` against a wrapper-backed module (the default subject).
fn run_script(script: Vec<(u32, bool, u32)>, streaming: bool) -> (Vec<u32>, Vec<u64>, u64, u64) {
    run_script_on(wrapper_backend, script, streaming)
}

/// Runs `script` against a module over the given backend and returns
/// `(results, latencies, module transactions, backend burst beats)`.
fn run_script_on(
    mk: BackendFactory,
    script: Vec<(u32, bool, u32)>,
    streaming: bool,
) -> (Vec<u32>, Vec<u64>, u64, u64) {
    let mut sim = Simulator::new();
    let clk = sim.add_clock("clk", 2);
    let ports = SlavePorts::declare(&mut sim, "mem.s");
    let backend = mk();
    let mut module = MemoryModule::new("mem", clk, ports, BASE, backend);
    module.set_stream_bursts(streaming);
    let mid = sim.add_component(Box::new(module));
    sim.subscribe(mid, clk, Edge::Rising);
    let n = script.len();
    let master = ScriptMaster {
        clk,
        ports,
        script,
        results: Vec::new(),
        latencies: Vec::new(),
        issued_at: 0,
        cycle: 0,
        index: 0,
        busy: false,
    };
    let sid = sim.add_component(Box::new(master));
    sim.subscribe(sid, clk, Edge::Rising);
    let summary = sim.run_until_stopped(10_000_000);
    assert!(summary.stop.is_some(), "script did not finish ({n} ops)");
    let m: &ScriptMaster = sim.component(sid).unwrap();
    let module: &MemoryModule = sim.component(mid).unwrap();
    (
        m.results.clone(),
        m.latencies.clone(),
        module.stats().transactions,
        module.backend().stats().burst_beats,
    )
}

/// Asserts the two paths observe exactly the same behaviour on `script`.
///
/// `burst_beats` counts beats transferred *between module and backend*:
/// streaming drains a whole burst up front, so on aborted bursts it may
/// exceed the number of beats the master consumed — never the other way
/// around. Every bus-visible observable must still match exactly.
fn assert_equivalent(script: Vec<(u32, bool, u32)>) {
    assert_equivalent_on(wrapper_backend, script)
}

fn assert_equivalent_on(mk: BackendFactory, script: Vec<(u32, bool, u32)>) {
    let (r_on, l_on, t_on, b_on) = run_script_on(mk, script.clone(), true);
    let (r_off, l_off, t_off, b_off) = run_script_on(mk, script, false);
    assert_eq!(r_on, r_off, "read data must be bit-identical");
    assert_eq!(l_on, l_off, "per-transaction latencies must be identical");
    assert_eq!(t_on, t_off, "transaction counts must match");
    assert!(
        b_on >= b_off,
        "streaming may prefetch but never under-transfer: {b_on} vs {b_off}"
    );
}

fn burst_write_read_script(len: u32) -> Vec<(u32, bool, u32)> {
    let mut s = vec![
        (BASE + regs::ARG0, true, len),
        (BASE + regs::ARG1, true, ElemType::U32 as u32),
        (BASE + regs::CMD, true, Opcode::Alloc as u32),
        (BASE + regs::RESULT, false, 0),
        // Write burst of `len` beats at vptr 0.
        (BASE + regs::ARG0, true, 0),
        (BASE + regs::ARG1, true, WIDTH_FROM_TABLE),
        (BASE + regs::ARG2, true, len),
        (BASE + regs::CMD, true, Opcode::WriteBurst as u32),
    ];
    for i in 0..len {
        s.push((BASE + regs::DATA, true, 0x1000 + i));
    }
    // Read it back as a burst.
    s.push((BASE + regs::CMD, true, Opcode::ReadBurst as u32));
    for _ in 0..len {
        s.push((BASE + regs::DATA, false, 0));
    }
    s.push((BASE + regs::STATUS, false, 0));
    s
}

#[test]
fn burst_round_trip_is_equivalent() {
    for len in [1u32, 2, 7, 64] {
        assert_equivalent(burst_write_read_script(len));
        // Fully consumed bursts additionally keep exact beat accounting.
        let (_, _, _, b_on) = run_script(burst_write_read_script(len), true);
        let (_, _, _, b_off) = run_script(burst_write_read_script(len), false);
        assert_eq!(b_on, b_off, "fully consumed bursts count identically");
    }
}

#[test]
fn burst_round_trip_returns_written_data() {
    let (results, _, _, _) = run_script(burst_write_read_script(8), true);
    // The last 9 results are the 8 read beats plus STATUS.
    let beats = &results[results.len() - 9..results.len() - 1];
    let expect: Vec<u32> = (0..8).map(|i| 0x1000 + i).collect();
    assert_eq!(beats, expect.as_slice());
    assert_eq!(results[results.len() - 1], Status::Ok as u32);
}

#[test]
fn aborted_burst_is_equivalent() {
    // Setup a read burst, consume two beats, then abort with a scalar read
    // command and keep using the module. Streaming must drop its buffered
    // tail exactly like the backend drops its I/O array.
    let mut s = vec![
        (BASE + regs::ARG0, true, 8),
        (BASE + regs::ARG1, true, ElemType::U32 as u32),
        (BASE + regs::CMD, true, Opcode::Alloc as u32),
        (BASE + regs::ARG0, true, 0),
        (BASE + regs::ARG1, true, 0xAB),
        (BASE + regs::ARG2, true, 2),
        (BASE + regs::CMD, true, Opcode::Write as u32),
        // Burst read, 2 of 8 beats consumed.
        (BASE + regs::ARG1, true, WIDTH_FROM_TABLE),
        (BASE + regs::ARG2, true, 8),
        (BASE + regs::CMD, true, Opcode::ReadBurst as u32),
        (BASE + regs::DATA, false, 0),
        (BASE + regs::DATA, false, 0),
        // Abort with a scalar read; then DATA reads must error identically.
        (BASE + regs::ARG2, true, 2),
        (BASE + regs::CMD, true, Opcode::Read as u32),
        (BASE + regs::RESULT, false, 0),
        (BASE + regs::DATA, false, 0),
        (BASE + regs::STATUS, false, 0),
    ];
    // A fresh burst afterwards still works.
    s.extend([
        (BASE + regs::ARG1, true, WIDTH_FROM_TABLE),
        (BASE + regs::ARG2, true, 4),
        (BASE + regs::CMD, true, Opcode::ReadBurst as u32),
        (BASE + regs::DATA, false, 0),
        (BASE + regs::DATA, false, 0),
        (BASE + regs::DATA, false, 0),
        (BASE + regs::DATA, false, 0),
        (BASE + regs::STATUS, false, 0),
    ]);
    assert_equivalent(s);
}

#[test]
fn overrun_burst_is_equivalent() {
    // Reading one beat more than the burst length errors the same way.
    let mut s = burst_write_read_script(3);
    s.push((BASE + regs::DATA, false, 0));
    s.push((BASE + regs::STATUS, false, 0));
    assert_equivalent(s);
}

#[test]
fn wrong_direction_data_access_is_equivalent() {
    // DATA write during a read burst errors without killing the burst.
    let s = vec![
        (BASE + regs::ARG0, true, 4),
        (BASE + regs::ARG1, true, ElemType::U32 as u32),
        (BASE + regs::CMD, true, Opcode::Alloc as u32),
        (BASE + regs::ARG0, true, 0),
        (BASE + regs::ARG1, true, WIDTH_FROM_TABLE),
        (BASE + regs::ARG2, true, 4),
        (BASE + regs::CMD, true, Opcode::ReadBurst as u32),
        (BASE + regs::DATA, false, 0),
        (BASE + regs::DATA, true, 0xBAD), // wrong direction
        (BASE + regs::STATUS, false, 0),
        (BASE + regs::DATA, false, 0), // burst continues
        (BASE + regs::DATA, false, 0),
        (BASE + regs::DATA, false, 0),
        (BASE + regs::STATUS, false, 0),
    ];
    assert_equivalent(s);
}

/// Burst write + read back addressed by raw offset (no allocation): the
/// script the in-simulation heap and the static table share, since the
/// latter supports no ALLOC.
fn raw_burst_script(offset: u32, len: u32) -> Vec<(u32, bool, u32)> {
    let mut s = vec![
        (BASE + regs::ARG0, true, offset),
        (BASE + regs::ARG1, true, ElemType::U32 as u32),
        (BASE + regs::ARG2, true, len),
        (BASE + regs::CMD, true, Opcode::WriteBurst as u32),
    ];
    for i in 0..len {
        s.push((BASE + regs::DATA, true, 0x9000 + i * 5));
    }
    s.push((BASE + regs::CMD, true, Opcode::ReadBurst as u32));
    for _ in 0..len {
        s.push((BASE + regs::DATA, false, 0));
    }
    s.push((BASE + regs::STATUS, false, 0));
    s
}

/// Read burst set up, partially consumed, aborted by a scalar command,
/// then re-issued — all by raw offset.
fn raw_aborted_script(offset: u32) -> Vec<(u32, bool, u32)> {
    vec![
        (BASE + regs::ARG0, true, offset),
        (BASE + regs::ARG1, true, 0xAB),
        (BASE + regs::ARG2, true, 2),
        (BASE + regs::CMD, true, Opcode::Write as u32),
        (BASE + regs::ARG1, true, ElemType::U32 as u32),
        (BASE + regs::ARG2, true, 8),
        (BASE + regs::CMD, true, Opcode::ReadBurst as u32),
        (BASE + regs::DATA, false, 0),
        (BASE + regs::DATA, false, 0),
        // Abort with a scalar read; DATA then errors identically.
        (BASE + regs::ARG2, true, 2),
        (BASE + regs::CMD, true, Opcode::Read as u32),
        (BASE + regs::RESULT, false, 0),
        (BASE + regs::DATA, false, 0),
        (BASE + regs::STATUS, false, 0),
        // A fresh burst afterwards still works.
        (BASE + regs::ARG1, true, ElemType::U32 as u32),
        (BASE + regs::ARG2, true, 4),
        (BASE + regs::CMD, true, Opcode::ReadBurst as u32),
        (BASE + regs::DATA, false, 0),
        (BASE + regs::DATA, false, 0),
        (BASE + regs::DATA, false, 0),
        (BASE + regs::DATA, false, 0),
        (BASE + regs::STATUS, false, 0),
    ]
}

#[test]
fn simheap_bursts_are_equivalent() {
    for len in [1u32, 2, 7, 64] {
        assert_equivalent_on(simheap_backend, raw_burst_script(0x40, len));
    }
    assert_equivalent_on(simheap_backend, raw_aborted_script(0x40));
    // Over-reading one beat past the burst errors identically.
    let mut s = raw_burst_script(0x40, 3);
    s.push((BASE + regs::DATA, false, 0));
    s.push((BASE + regs::STATUS, false, 0));
    assert_equivalent_on(simheap_backend, s);
}

#[test]
fn simheap_burst_data_round_trips_when_streamed() {
    let (results, _, _, _) = run_script_on(simheap_backend, raw_burst_script(0x40, 8), true);
    let beats = &results[results.len() - 9..results.len() - 1];
    let expect: Vec<u32> = (0..8).map(|i| 0x9000 + i * 5).collect();
    assert_eq!(beats, expect.as_slice());
    assert_eq!(results[results.len() - 1], Status::Ok as u32);
}

#[test]
fn static_table_bursts_are_equivalent() {
    for len in [1u32, 2, 7, 64] {
        assert_equivalent_on(static_backend, raw_burst_script(0x40, len));
    }
    assert_equivalent_on(static_backend, raw_aborted_script(0x40));
    let mut s = raw_burst_script(0x40, 3);
    s.push((BASE + regs::DATA, false, 0));
    s.push((BASE + regs::STATUS, false, 0));
    assert_equivalent_on(static_backend, s);
}

#[test]
fn static_table_burst_data_round_trips_when_streamed() {
    let (results, _, _, _) = run_script_on(static_backend, raw_burst_script(0x80, 8), true);
    let beats = &results[results.len() - 9..results.len() - 1];
    let expect: Vec<u32> = (0..8).map(|i| 0x9000 + i * 5).collect();
    assert_eq!(beats, expect.as_slice());
    assert_eq!(results[results.len() - 1], Status::Ok as u32);
}
