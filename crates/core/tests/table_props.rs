//! Property tests on the wrapper's functional part: the pointer table and
//! the simulated-heap baseline stay consistent under arbitrary operation
//! sequences, and the two dynamic models agree functionally.

use dmi_core::{
    AllocError, DsmBackend, ElemType, Opcode, PointerTable, Request, SimHeapBackend,
    SimHeapConfig, Status, VptrPolicy, WrapperBackend, WrapperConfig,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc { dim: u32, elem: u8 },
    Free { pick: usize },
    Write { pick: usize, off: u32, value: u32 },
    Read { pick: usize, off: u32 },
    Reserve { pick: usize, master: u8 },
    Release { pick: usize, master: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u32..64, 0u8..3).prop_map(|(dim, elem)| Op::Alloc { dim, elem }),
        2 => any::<prop::sample::Index>().prop_map(|i| Op::Free { pick: i.index(64) }),
        3 => (any::<prop::sample::Index>(), 0u32..256, any::<u32>())
            .prop_map(|(i, off, value)| Op::Write { pick: i.index(64), off, value }),
        3 => (any::<prop::sample::Index>(), 0u32..256)
            .prop_map(|(i, off)| Op::Read { pick: i.index(64), off }),
        1 => (any::<prop::sample::Index>(), 0u8..4)
            .prop_map(|(i, master)| Op::Reserve { pick: i.index(64), master }),
        1 => (any::<prop::sample::Index>(), 0u8..4)
            .prop_map(|(i, master)| Op::Release { pick: i.index(64), master }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Table invariants (disjoint sorted ranges, exact capacity accounting)
    /// hold after any operation sequence, under both vptr policies.
    #[test]
    fn pointer_table_invariants(
        ops in prop::collection::vec(op_strategy(), 1..120),
        first_fit in any::<bool>(),
    ) {
        let policy = if first_fit { VptrPolicy::FirstFitReuse } else { VptrPolicy::PaperMonotonic };
        let mut t = PointerTable::new(4096, policy);
        let mut live: Vec<u32> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc { dim, elem } => {
                    let elem = ElemType::from_u32(elem as u32).unwrap();
                    match t.alloc(dim, elem) {
                        Ok(v) => live.push(v),
                        Err(AllocError::OutOfMemory | AllocError::VirtualExhausted) => {}
                        Err(AllocError::ZeroSize) => unreachable!("dim >= 1"),
                    }
                }
                Op::Free { pick } if !live.is_empty() => {
                    let v = live.remove(pick % live.len());
                    // Frees may fail only due to reservations (master 0 here
                    // frees; reservation owners vary).
                    let _ = t.free(v, 0).or_else(|_| { live.push(v); Ok::<u32, ()>(0) });
                }
                Op::Reserve { pick, master } if !live.is_empty() => {
                    let v = live[pick % live.len()];
                    let _ = t.reserve(v, master);
                }
                Op::Release { pick, master } if !live.is_empty() => {
                    let v = live[pick % live.len()];
                    let _ = t.release(v, master);
                }
                Op::Write { pick, off, .. } | Op::Read { pick, off } if !live.is_empty() => {
                    let v = live[pick % live.len()];
                    // resolve() must map interior pointers of live entries
                    // to the right entry and offset.
                    if let Some((idx, o)) = t.resolve(v.wrapping_add(off)) {
                        let e = t.entry(idx);
                        prop_assert!(e.contains(v.wrapping_add(off)));
                        prop_assert_eq!(v.wrapping_add(off) - e.vptr, o);
                    }
                }
                _ => {}
            }
            if let Err(msg) = t.check_invariants() {
                return Err(TestCaseError::fail(format!("invariant violated: {msg}")));
            }
        }
        // Every live vptr resolves to itself at offset 0.
        for v in live {
            match t.resolve(v) {
                Some((idx, 0)) => prop_assert_eq!(t.entry(idx).vptr, v),
                other => return Err(TestCaseError::fail(format!("{v:#x} -> {other:?}"))),
            }
        }
    }

    /// The wrapper and the simulated heap agree functionally: identical
    /// write/read sequences return identical data (timing differs — that
    /// is the paper's point).
    #[test]
    fn wrapper_and_simheap_agree_on_data(
        writes in prop::collection::vec((0u32..16, any::<u32>()), 1..40),
        dim in 16u32..64,
    ) {
        let mut w = WrapperBackend::new(WrapperConfig::default());
        let mut h = SimHeapBackend::new(SimHeapConfig::default());
        let req = |op, a0, a1, a2| Request { op, arg0: a0, arg1: a1, arg2: a2, master: 0 };

        let wv = w.execute(&req(Opcode::Alloc, dim, ElemType::U32 as u32, 0));
        let hv = h.execute(&req(Opcode::Alloc, dim, ElemType::U32 as u32, 0));
        prop_assert!(wv.status.is_ok() && hv.status.is_ok());

        for (idx, value) in &writes {
            let off = idx * 4;
            let a = w.execute(&req(Opcode::Write, wv.result + off, *value, 2));
            let b = h.execute(&req(Opcode::Write, hv.result + off, *value, 2));
            prop_assert_eq!(a.status, b.status);
        }
        for (idx, _) in &writes {
            let off = idx * 4;
            let a = w.execute(&req(Opcode::Read, wv.result + off, 0, 2));
            let b = h.execute(&req(Opcode::Read, hv.result + off, 0, 2));
            prop_assert_eq!(a.result, b.result, "offset {}", off);
        }
    }

    /// Alloc/free churn on the simulated heap conserves memory: after
    /// freeing everything, the largest allocation fits again.
    #[test]
    fn simheap_conserves_capacity(
        sizes in prop::collection::vec(1u32..200, 1..24),
    ) {
        let mut h = SimHeapBackend::new(SimHeapConfig {
            capacity: 1 << 16,
            word_latency: 1,
            endian: dmi_core::Endian::Little,
        });
        let req = |op, a0, a1, a2| Request { op, arg0: a0, arg1: a1, arg2: a2, master: 0 };
        let mut ptrs = Vec::new();
        for s in &sizes {
            let r = h.execute(&req(Opcode::Alloc, *s, ElemType::U8 as u32, 0));
            prop_assert!(r.status.is_ok());
            ptrs.push(r.result);
        }
        // Free in reverse order (exercises prev-coalescing heavily).
        for p in ptrs.into_iter().rev() {
            let r = h.execute(&req(Opcode::Free, p, 0, 0));
            prop_assert_eq!(r.status, Status::Ok);
        }
        prop_assert_eq!(h.free_bytes(), 1 << 16);
        // Whole arena reusable as one block.
        let big = h.execute(&req(Opcode::Alloc, (1 << 16) - 8, ElemType::U8 as u32, 0));
        prop_assert!(big.status.is_ok());
    }

    /// Burst transfers and scalar writes are equivalent on the wrapper.
    #[test]
    fn burst_equals_scalar_writes(data in prop::collection::vec(any::<u32>(), 1..32)) {
        let req = |op, a0, a1, a2| Request { op, arg0: a0, arg1: a1, arg2: a2, master: 0 };
        let len = data.len() as u32;

        let mut a = WrapperBackend::new(WrapperConfig::default());
        let va = a.execute(&req(Opcode::Alloc, len, ElemType::U32 as u32, 0)).result;
        let setup = a.execute(&req(Opcode::WriteBurst, va, 2, len));
        prop_assert!(setup.status.is_ok());
        for v in &data {
            prop_assert!(a.burst_write_beat(0, *v).status.is_ok());
        }

        let mut b = WrapperBackend::new(WrapperConfig::default());
        let vb = b.execute(&req(Opcode::Alloc, len, ElemType::U32 as u32, 0)).result;
        for (i, v) in data.iter().enumerate() {
            let r = b.execute(&req(Opcode::Write, vb + (i as u32) * 4, *v, 2));
            prop_assert!(r.status.is_ok());
        }

        for i in 0..len {
            let ra = a.execute(&req(Opcode::Read, va + i * 4, 0, 2));
            let rb = b.execute(&req(Opcode::Read, vb + i * 4, 0, 2));
            prop_assert_eq!(ra.result, rb.result);
        }
    }
}
