//! Property tests on the wrapper's functional part: the pointer table and
//! the simulated-heap baseline stay consistent under arbitrary operation
//! sequences, and the two dynamic models agree functionally.

use dmi_core::{
    AllocError, DsmBackend, ElemType, Opcode, PointerTable, Request, SimHeapBackend,
    SimHeapConfig, Status, VptrPolicy, WrapperBackend, WrapperConfig,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc { dim: u32, elem: u8 },
    Free { pick: usize },
    Write { pick: usize, off: u32, value: u32 },
    Read { pick: usize, off: u32 },
    Reserve { pick: usize, master: u8 },
    Release { pick: usize, master: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u32..64, 0u8..3).prop_map(|(dim, elem)| Op::Alloc { dim, elem }),
        2 => any::<prop::sample::Index>().prop_map(|i| Op::Free { pick: i.index(64) }),
        3 => (any::<prop::sample::Index>(), 0u32..256, any::<u32>())
            .prop_map(|(i, off, value)| Op::Write { pick: i.index(64), off, value }),
        3 => (any::<prop::sample::Index>(), 0u32..256)
            .prop_map(|(i, off)| Op::Read { pick: i.index(64), off }),
        1 => (any::<prop::sample::Index>(), 0u8..4)
            .prop_map(|(i, master)| Op::Reserve { pick: i.index(64), master }),
        1 => (any::<prop::sample::Index>(), 0u8..4)
            .prop_map(|(i, master)| Op::Release { pick: i.index(64), master }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Table invariants (disjoint sorted ranges, exact capacity accounting)
    /// hold after any operation sequence, under both vptr policies.
    #[test]
    fn pointer_table_invariants(
        ops in prop::collection::vec(op_strategy(), 1..120),
        first_fit in any::<bool>(),
    ) {
        let policy = if first_fit { VptrPolicy::FirstFitReuse } else { VptrPolicy::PaperMonotonic };
        let mut t = PointerTable::new(4096, policy);
        let mut live: Vec<u32> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc { dim, elem } => {
                    let elem = ElemType::from_u32(elem as u32).unwrap();
                    match t.alloc(dim, elem) {
                        Ok(v) => live.push(v),
                        Err(AllocError::OutOfMemory | AllocError::VirtualExhausted) => {}
                        Err(AllocError::ZeroSize) => unreachable!("dim >= 1"),
                    }
                }
                Op::Free { pick } if !live.is_empty() => {
                    let v = live.remove(pick % live.len());
                    // Frees may fail only due to reservations (master 0 here
                    // frees; reservation owners vary).
                    let _ = t.free(v, 0).or_else(|_| { live.push(v); Ok::<u32, ()>(0) });
                }
                Op::Reserve { pick, master } if !live.is_empty() => {
                    let v = live[pick % live.len()];
                    let _ = t.reserve(v, master);
                }
                Op::Release { pick, master } if !live.is_empty() => {
                    let v = live[pick % live.len()];
                    let _ = t.release(v, master);
                }
                Op::Write { pick, off, .. } | Op::Read { pick, off } if !live.is_empty() => {
                    let v = live[pick % live.len()];
                    // resolve() must map interior pointers of live entries
                    // to the right entry and offset.
                    if let Some((idx, o)) = t.resolve(v.wrapping_add(off)) {
                        let e = t.entry(idx);
                        prop_assert!(e.contains(v.wrapping_add(off)));
                        prop_assert_eq!(v.wrapping_add(off) - e.vptr, o);
                    }
                }
                _ => {}
            }
            if let Err(msg) = t.check_invariants() {
                return Err(TestCaseError::fail(format!("invariant violated: {msg}")));
            }
        }
        // Every live vptr resolves to itself at offset 0.
        for v in live {
            match t.resolve(v) {
                Some((idx, 0)) => prop_assert_eq!(t.entry(idx).vptr, v),
                other => return Err(TestCaseError::fail(format!("{v:#x} -> {other:?}"))),
            }
        }
    }

    /// The wrapper and the simulated heap agree functionally: identical
    /// write/read sequences return identical data (timing differs — that
    /// is the paper's point).
    #[test]
    fn wrapper_and_simheap_agree_on_data(
        writes in prop::collection::vec((0u32..16, any::<u32>()), 1..40),
        dim in 16u32..64,
    ) {
        let mut w = WrapperBackend::new(WrapperConfig::default());
        let mut h = SimHeapBackend::new(SimHeapConfig::default());
        let req = |op, a0, a1, a2| Request { op, arg0: a0, arg1: a1, arg2: a2, master: 0 };

        let wv = w.execute(&req(Opcode::Alloc, dim, ElemType::U32 as u32, 0));
        let hv = h.execute(&req(Opcode::Alloc, dim, ElemType::U32 as u32, 0));
        prop_assert!(wv.status.is_ok() && hv.status.is_ok());

        for (idx, value) in &writes {
            let off = idx * 4;
            let a = w.execute(&req(Opcode::Write, wv.result + off, *value, 2));
            let b = h.execute(&req(Opcode::Write, hv.result + off, *value, 2));
            prop_assert_eq!(a.status, b.status);
        }
        for (idx, _) in &writes {
            let off = idx * 4;
            let a = w.execute(&req(Opcode::Read, wv.result + off, 0, 2));
            let b = h.execute(&req(Opcode::Read, hv.result + off, 0, 2));
            prop_assert_eq!(a.result, b.result, "offset {}", off);
        }
    }

    /// Alloc/free churn on the simulated heap conserves memory: after
    /// freeing everything, the largest allocation fits again.
    #[test]
    fn simheap_conserves_capacity(
        sizes in prop::collection::vec(1u32..200, 1..24),
    ) {
        let mut h = SimHeapBackend::new(SimHeapConfig {
            capacity: 1 << 16,
            word_latency: 1,
            endian: dmi_core::Endian::Little,
        });
        let req = |op, a0, a1, a2| Request { op, arg0: a0, arg1: a1, arg2: a2, master: 0 };
        let mut ptrs = Vec::new();
        for s in &sizes {
            let r = h.execute(&req(Opcode::Alloc, *s, ElemType::U8 as u32, 0));
            prop_assert!(r.status.is_ok());
            ptrs.push(r.result);
        }
        // Free in reverse order (exercises prev-coalescing heavily).
        for p in ptrs.into_iter().rev() {
            let r = h.execute(&req(Opcode::Free, p, 0, 0));
            prop_assert_eq!(r.status, Status::Ok);
        }
        prop_assert_eq!(h.free_bytes(), 1 << 16);
        // Whole arena reusable as one block.
        let big = h.execute(&req(Opcode::Alloc, (1 << 16) - 8, ElemType::U8 as u32, 0));
        prop_assert!(big.status.is_ok());
    }

    /// The TLB never serves a stale translation: resolutions on a table
    /// with the cache enabled are identical, op for op, to resolutions on
    /// a cache-less shadow table fed the same operation sequence —
    /// including across frees (invalidation), first-fit vptr reuse and
    /// entry-index shifts.
    #[test]
    fn tlb_resolutions_match_uncached_table(
        ops in prop::collection::vec(op_strategy(), 1..120),
        probes in prop::collection::vec(0u32..4096, 16),
        first_fit in any::<bool>(),
    ) {
        let policy = if first_fit { VptrPolicy::FirstFitReuse } else { VptrPolicy::PaperMonotonic };
        let mut cached = PointerTable::with_translation_cache(4096, policy, true);
        let mut plain = PointerTable::with_translation_cache(4096, policy, false);
        let mut live: Vec<u32> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc { dim, elem } => {
                    let elem = ElemType::from_u32(elem as u32).unwrap();
                    let a = cached.alloc(dim, elem);
                    let b = plain.alloc(dim, elem);
                    prop_assert_eq!(a, b);
                    if let Ok(v) = a { live.push(v); }
                }
                Op::Free { pick } if !live.is_empty() => {
                    let v = live.remove(pick % live.len());
                    let a = cached.free(v, 0);
                    let b = plain.free(v, 0);
                    prop_assert_eq!(a, b);
                }
                Op::Read { pick, off } | Op::Write { pick, off, .. } if !live.is_empty() => {
                    let v = live[pick % live.len()].wrapping_add(off);
                    let a = cached.resolve(v).map(|(i, o)| (cached.entry(i).vptr, o));
                    let b = plain.resolve(v).map(|(i, o)| (plain.entry(i).vptr, o));
                    prop_assert_eq!(a, b, "resolve({:#x})", v);
                }
                _ => {}
            }
            // Sweep fixed probe addresses after every op: any stale TLB
            // line would show up as a divergence here.
            for &p in &probes {
                let a = cached.resolve(p).map(|(i, o)| (cached.entry(i).vptr, o));
                let b = plain.resolve(p).map(|(i, o)| (plain.entry(i).vptr, o));
                prop_assert_eq!(a, b, "probe {:#x}", p);
            }
        }
    }

    /// Wrapper equivalence: with the translation cache on vs off, every
    /// operation's result, status and charged cycles are bit-identical —
    /// the fast path may only change host speed, never simulated
    /// behaviour.
    #[test]
    fn wrapper_equivalent_with_and_without_tlb(
        ops in prop::collection::vec(op_strategy(), 1..100),
    ) {
        let mut fast = WrapperBackend::new(WrapperConfig::default());
        let mut slow = WrapperBackend::new(WrapperConfig {
            translation_cache: false,
            ..WrapperConfig::default()
        });
        let req = |op, a0, a1, a2| Request { op, arg0: a0, arg1: a1, arg2: a2, master: 0 };
        let mut live: Vec<u32> = Vec::new();
        for op in ops {
            let r = match op {
                Op::Alloc { dim, elem } => {
                    let a = fast.execute(&req(Opcode::Alloc, dim, elem as u32, 0));
                    let b = slow.execute(&req(Opcode::Alloc, dim, elem as u32, 0));
                    if a.status.is_ok() { live.push(a.result); }
                    (a, b)
                }
                Op::Free { pick } if !live.is_empty() => {
                    let v = live.remove(pick % live.len());
                    (fast.execute(&req(Opcode::Free, v, 0, 0)),
                     slow.execute(&req(Opcode::Free, v, 0, 0)))
                }
                Op::Write { pick, off, value } if !live.is_empty() => {
                    let v = live[pick % live.len()].wrapping_add(off);
                    (fast.execute(&req(Opcode::Write, v, value, 0)),
                     slow.execute(&req(Opcode::Write, v, value, 0)))
                }
                Op::Read { pick, off } if !live.is_empty() => {
                    let v = live[pick % live.len()].wrapping_add(off);
                    (fast.execute(&req(Opcode::Read, v, 0, 0)),
                     slow.execute(&req(Opcode::Read, v, 0, 0)))
                }
                Op::Reserve { pick, master } if !live.is_empty() => {
                    let v = live[pick % live.len()];
                    let rq = |m| Request { op: Opcode::Reserve, arg0: v, arg1: 0, arg2: 0, master: m };
                    (fast.execute(&rq(master)), slow.execute(&rq(master)))
                }
                Op::Release { pick, master } if !live.is_empty() => {
                    let v = live[pick % live.len()];
                    let rq = |m| Request { op: Opcode::Release, arg0: v, arg1: 0, arg2: 0, master: m };
                    (fast.execute(&rq(master)), slow.execute(&rq(master)))
                }
                _ => continue,
            };
            prop_assert_eq!(r.0.status, r.1.status);
            prop_assert_eq!(r.0.result, r.1.result);
            prop_assert_eq!(r.0.cycles, r.1.cycles, "charged cycles must match");
        }
    }

    /// Batched burst blocks are bit-identical to per-beat transfers: data,
    /// per-beat cycle charges and final memory state all match.
    #[test]
    fn burst_blocks_equal_beats(
        data in prop::collection::vec(any::<u32>(), 1..48),
    ) {
        let req = |op, a0, a1, a2| Request { op, arg0: a0, arg1: a1, arg2: a2, master: 0 };
        let len = data.len() as u32;

        let mut a = WrapperBackend::new(WrapperConfig::default());
        let va = a.execute(&req(Opcode::Alloc, len, ElemType::U32 as u32, 0)).result;
        prop_assert!(a.execute(&req(Opcode::WriteBurst, va, 2, len)).status.is_ok());
        let block = a.burst_write_block(0, &data);
        prop_assert_eq!(block.status, Status::Ok);
        prop_assert_eq!(block.beats, len);

        let mut b = WrapperBackend::new(WrapperConfig::default());
        let vb = b.execute(&req(Opcode::Alloc, len, ElemType::U32 as u32, 0)).result;
        prop_assert!(b.execute(&req(Opcode::WriteBurst, vb, 2, len)).status.is_ok());
        let mut beat_cycles = 0;
        for v in &data {
            let beat = b.burst_write_beat(0, *v);
            prop_assert!(beat.status.is_ok());
            beat_cycles += beat.cycles;
        }
        prop_assert_eq!(block.cycles, beat_cycles, "identical charged cycles");

        // Read back through a block on one side, beats on the other.
        prop_assert!(a.execute(&req(Opcode::ReadBurst, va, 2, len)).status.is_ok());
        prop_assert!(b.execute(&req(Opcode::ReadBurst, vb, 2, len)).status.is_ok());
        let mut out = vec![0u32; data.len()];
        let rblock = a.burst_read_block(0, &mut out);
        prop_assert_eq!(rblock.status, Status::Ok);
        let mut read_cycles = 0;
        for (i, expect) in data.iter().enumerate() {
            let beat = b.burst_read_beat(0);
            prop_assert!(beat.status.is_ok());
            prop_assert_eq!(beat.data, *expect, "beat {}", i);
            prop_assert_eq!(out[i], *expect, "block element {}", i);
            read_cycles += beat.cycles;
        }
        prop_assert_eq!(rblock.cycles, read_cycles);
    }

    /// Burst transfers and scalar writes are equivalent on the wrapper.
    #[test]
    fn burst_equals_scalar_writes(data in prop::collection::vec(any::<u32>(), 1..32)) {
        let req = |op, a0, a1, a2| Request { op, arg0: a0, arg1: a1, arg2: a2, master: 0 };
        let len = data.len() as u32;

        let mut a = WrapperBackend::new(WrapperConfig::default());
        let va = a.execute(&req(Opcode::Alloc, len, ElemType::U32 as u32, 0)).result;
        let setup = a.execute(&req(Opcode::WriteBurst, va, 2, len));
        prop_assert!(setup.status.is_ok());
        for v in &data {
            prop_assert!(a.burst_write_beat(0, *v).status.is_ok());
        }

        let mut b = WrapperBackend::new(WrapperConfig::default());
        let vb = b.execute(&req(Opcode::Alloc, len, ElemType::U32 as u32, 0)).result;
        for (i, v) in data.iter().enumerate() {
            let r = b.execute(&req(Opcode::Write, vb + (i as u32) * 4, *v, 2));
            prop_assert!(r.status.is_ok());
        }

        for i in 0..len {
            let ra = a.execute(&req(Opcode::Read, va + i * 4, 0, 2));
            let rb = b.execute(&req(Opcode::Read, vb + i * 4, 0, 2));
            prop_assert_eq!(ra.result, rb.result);
        }
    }
}

/// Independent oracle for first-fit placement: a shadow list of live
/// `[start, end)` ranges walked linearly, reimplementing the published
/// rule from scratch (deliberately *not* sharing code with the table's
/// gap index or its internal scan).
#[derive(Debug, Default)]
struct LinearOracle {
    ranges: Vec<(u32, u32)>, // sorted by start
}

impl LinearOracle {
    fn place(&self, size: u32) -> Option<u32> {
        let mut cursor: u32 = 0;
        for &(s, e) in &self.ranges {
            if s - cursor >= size {
                return Some(cursor);
            }
            cursor = e;
        }
        cursor.checked_add(size).map(|_| cursor)
    }

    fn alloc(&mut self, size: u32) -> Option<u32> {
        let v = self.place(size)?;
        let pos = self.ranges.partition_point(|&(s, _)| s < v);
        self.ranges.insert(pos, (v, v + size));
        Some(v)
    }

    fn free(&mut self, vptr: u32) {
        let pos = self
            .ranges
            .iter()
            .position(|&(s, _)| s == vptr)
            .expect("oracle free of live range");
        self.ranges.remove(pos);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The O(log n) gap index chooses bit-identical placements to the
    /// linear first-fit scan over arbitrary alloc/free churn.
    #[test]
    fn first_fit_gap_index_matches_linear_scan(
        ops in prop::collection::vec(
            prop_oneof![
                3 => (1u32..200).prop_map(|dim| (true, dim)),
                2 => any::<prop::sample::Index>().prop_map(|i| (false, i.index(64) as u32)),
            ],
            1..200,
        ),
    ) {
        let mut t = PointerTable::new(1 << 16, VptrPolicy::FirstFitReuse);
        let mut oracle = LinearOracle::default();
        let mut live: Vec<u32> = Vec::new();
        for (is_alloc, arg) in ops {
            if is_alloc {
                let dim = arg;
                match t.alloc(dim, ElemType::U8) {
                    Ok(v) => {
                        let ov = oracle.alloc(dim).expect("oracle capacity differs");
                        prop_assert_eq!(v, ov, "placement diverged from linear first fit");
                        live.push(v);
                    }
                    Err(AllocError::OutOfMemory) => {
                        // Capacity denial happens before placement; the
                        // oracle tracks only placement, so skip.
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("alloc failed: {e:?}"))),
                }
            } else if !live.is_empty() {
                let v = live.remove(arg as usize % live.len());
                t.free(v, 0).expect("free of live vptr");
                oracle.free(v);
            }
            if let Err(msg) = t.check_invariants() {
                return Err(TestCaseError::fail(format!("invariant violated: {msg}")));
            }
        }
    }
}
