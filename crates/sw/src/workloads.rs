//! Workload program builders.
//!
//! Each builder returns an assembled [`Program`] exercising the dynamic
//! shared memory through the DSM driver. Programs halt with exit code 0 on
//! success and a non-zero code on any self-check failure, so both the
//! functional tests and the co-simulation experiments can assert
//! correctness, not just completion.

use dmi_core::NULL_VPTR;
use dmi_isa::{Asm, Cond, Program, Reg};

use crate::driver::emit_dsm_driver;

const R0: Reg = Reg::R0;
const R1: Reg = Reg::R1;
const R2: Reg = Reg::R2;
const R3: Reg = Reg::R3;
const R4: Reg = Reg::R4;
const R5: Reg = Reg::R5;
const R6: Reg = Reg::R6;
const R7: Reg = Reg::R7;
const R8: Reg = Reg::R8;
const R9: Reg = Reg::R9;
const R10: Reg = Reg::R10;

/// Width code for 32-bit elements (protocol `ElemType::U32`).
const W32: u32 = 2;

/// Parameters shared by the workload builders.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadCfg {
    /// MMIO base of the shared-memory module the program talks to.
    pub mem_base: u32,
    /// Main loop iterations.
    pub iterations: u32,
    /// Working-set size in 32-bit words.
    pub buf_words: u32,
    /// Burst length in words (burst workloads).
    pub burst_len: u32,
}

impl Default for WorkloadCfg {
    fn default() -> Self {
        WorkloadCfg {
            mem_base: 0x8000_0000,
            iterations: 16,
            buf_words: 16,
            burst_len: 16,
        }
    }
}

impl WorkloadCfg {
    /// Default parameters against the memory decoded at `mem_base` —
    /// matches the explicit-window builder flow, where the base comes
    /// from the `MemSpec` the program is paired with:
    ///
    /// ```text
    /// let mem = b.add_memory(MemSpec::wrapper(BASE));
    /// b.add_cpu(CpuSpec::new(workloads::alloc_churn(
    ///     &WorkloadCfg::at(BASE).iterations(100))));
    /// ```
    pub fn at(mem_base: u32) -> Self {
        WorkloadCfg {
            mem_base,
            ..WorkloadCfg::default()
        }
    }

    /// Sets the main-loop iteration count.
    pub fn iterations(mut self, n: u32) -> Self {
        self.iterations = n;
        self
    }

    /// Sets the working-set size in 32-bit words.
    pub fn buf_words(mut self, n: u32) -> Self {
        self.buf_words = n;
        self
    }

    /// Sets the burst length in words (burst workloads).
    pub fn burst_len(mut self, n: u32) -> Self {
        self.burst_len = n;
        self
    }
}

/// Emits the common failure epilogue: label `fail` halts with exit code 1.
fn fail_exit(a: &mut Asm) {
    a.label("fail");
    a.li(R0, 1);
    a.swi(0);
}

/// Emits `swi #0` with exit code 0.
fn ok_exit(a: &mut Asm) {
    a.li(R0, 0);
    a.swi(0);
}

/// Branches to `fail` when `reg` holds the null vptr.
fn check_not_null(a: &mut Asm, reg: Reg) {
    debug_assert_eq!(NULL_VPTR, u32::MAX);
    a.cmn(reg, 1u32.into()); // reg + 1 == 0 <=> reg == 0xFFFF_FFFF
    a.beq("fail");
}

/// Allocation churn: repeatedly allocate, write, read back, verify, free.
///
/// The canonical dynamic-data stress test (experiment E3): every iteration
/// exercises the full table life-cycle and the data path.
pub fn alloc_churn(cfg: &WorkloadCfg) -> Program {
    let mut a = Asm::new();
    a.li(R4, cfg.iterations);
    a.label("outer");
    // vptr = dsm_alloc(mem, buf_words, U32)
    a.li(R0, cfg.mem_base);
    a.li(R1, cfg.buf_words);
    a.li(R2, W32);
    a.bl("dsm_alloc");
    check_not_null(&mut a, R0);
    a.mov(R5, R0.into());
    // dsm_write(mem, vptr, iter, W32); dsm_write(mem, vptr+4, iter^0x55, W32)
    a.li(R0, cfg.mem_base);
    a.mov(R1, R5.into());
    a.mov(R2, R4.into());
    a.li(R3, W32);
    a.bl("dsm_write");
    a.li(R0, cfg.mem_base);
    a.add(R1, R5, 4u32.into());
    a.eor(R2, R4, 0x55u32.into());
    a.li(R3, W32);
    a.bl("dsm_write");
    // verify both
    a.li(R0, cfg.mem_base);
    a.mov(R1, R5.into());
    a.li(R2, W32);
    a.bl("dsm_read");
    a.cmp(R0, R4.into());
    a.bne("fail");
    a.li(R0, cfg.mem_base);
    a.add(R1, R5, 4u32.into());
    a.li(R2, W32);
    a.bl("dsm_read");
    a.eor(R6, R4, 0x55u32.into());
    a.cmp(R0, R6.into());
    a.bne("fail");
    // dsm_free(mem, vptr)
    a.li(R0, cfg.mem_base);
    a.mov(R1, R5.into());
    a.bl("dsm_free");
    a.subs(R4, R4, 1u32.into());
    a.bne("outer");
    ok_exit(&mut a);
    fail_exit(&mut a);
    emit_dsm_driver(&mut a);
    a.assemble(0).expect("alloc_churn assembles")
}

/// Scalar read/write traffic against one shared buffer (experiment E2,
/// wrapper side): allocate once, then cycle writes and verifying reads.
pub fn scalar_rw(cfg: &WorkloadCfg) -> Program {
    let mut a = Asm::new();
    a.li(R0, cfg.mem_base);
    a.li(R1, cfg.buf_words);
    a.li(R2, W32);
    a.bl("dsm_alloc");
    check_not_null(&mut a, R0);
    a.mov(R5, R0.into()); // vptr base
    a.li(R4, cfg.iterations);
    a.li(R6, 0); // byte offset cursor
    a.label("loop");
    // dsm_write(mem, vptr + off, iter, W32)
    a.li(R0, cfg.mem_base);
    a.add(R1, R5, R6.into());
    a.mov(R2, R4.into());
    a.li(R3, W32);
    a.bl("dsm_write");
    // verify
    a.li(R0, cfg.mem_base);
    a.add(R1, R5, R6.into());
    a.li(R2, W32);
    a.bl("dsm_read");
    a.cmp(R0, R4.into());
    a.bne("fail");
    // advance cursor, wrap at buffer end
    a.add(R6, R6, 4u32.into());
    a.li(R7, cfg.buf_words * 4);
    a.cmp(R6, R7.into());
    a.mov_cond(Cond::Eq, R6, 0u32.into());
    a.subs(R4, R4, 1u32.into());
    a.bne("loop");
    ok_exit(&mut a);
    fail_exit(&mut a);
    emit_dsm_driver(&mut a);
    a.assemble(0).expect("scalar_rw assembles")
}

/// The same scalar traffic as [`scalar_rw`], but issued as raw loads and
/// stores against a directly-addressed static memory window (experiment
/// E2, static-table side). No protocol, no allocation — the traditional
/// baseline.
pub fn scalar_rw_static(cfg: &WorkloadCfg) -> Program {
    let mut a = Asm::new();
    a.li(R5, cfg.mem_base);
    a.li(R4, cfg.iterations);
    a.li(R6, 0); // byte offset cursor
    a.label("loop");
    a.str_r(R4, R5, R6); // mem[off] = iter
    a.ldr_r(R7, R5, R6); // verify
    a.cmp(R7, R4.into());
    a.bne("fail");
    a.add(R6, R6, 4u32.into());
    a.li(R7, cfg.buf_words * 4);
    a.cmp(R6, R7.into());
    a.mov_cond(Cond::Eq, R6, 0u32.into());
    a.subs(R4, R4, 1u32.into());
    a.bne("loop");
    ok_exit(&mut a);
    fail_exit(&mut a);
    a.assemble(0).expect("scalar_rw_static assembles")
}

/// Burst copy (experiment E6): stream a local buffer to shared memory with
/// `dsm_write_burst`, read it back with `dsm_read_burst`, verify.
pub fn burst_copy(cfg: &WorkloadCfg) -> Program {
    let n = cfg.burst_len;
    let mut a = Asm::new();
    a.li(R0, cfg.mem_base);
    a.li(R1, n);
    a.li(R2, W32);
    a.bl("dsm_alloc");
    check_not_null(&mut a, R0);
    a.mov(R5, R0.into());
    // Fill the local source: src[i] = 7*i + 3.
    a.adr(R6, "src");
    a.li(R7, n);
    a.li(R8, 0);
    a.label("fill");
    a.li(R9, 7);
    a.mul(R10, R8, R9);
    a.add(R10, R10, 3u32.into());
    a.str_post(R10, R6, 4);
    a.add(R8, R8, 1u32.into());
    a.cmp(R8, R7.into());
    a.bne("fill");
    // Main loop: burst out, burst back.
    a.li(R4, cfg.iterations);
    a.label("loop");
    a.li(R0, cfg.mem_base);
    a.mov(R1, R5.into());
    a.adr(R2, "src");
    a.li(R3, n);
    a.bl("dsm_write_burst");
    a.li(R0, cfg.mem_base);
    a.mov(R1, R5.into());
    a.adr(R2, "dst");
    a.li(R3, n);
    a.bl("dsm_read_burst");
    a.subs(R4, R4, 1u32.into());
    a.bne("loop");
    // Verify dst == src.
    a.adr(R6, "src");
    a.adr(R7, "dst");
    a.li(R8, n);
    a.label("verify");
    a.ldr_post(R9, R6, 4);
    a.ldr_post(R10, R7, 4);
    a.cmp(R9, R10.into());
    a.bne("fail");
    a.subs(R8, R8, 1u32.into());
    a.bne("verify");
    ok_exit(&mut a);
    fail_exit(&mut a);
    emit_dsm_driver(&mut a);
    a.label("src");
    a.zeros(n as usize);
    a.label("dst");
    a.zeros(n as usize);
    a.assemble(0).expect("burst_copy assembles")
}

/// The same data volume as [`burst_copy`] moved with scalar `dsm_write` /
/// `dsm_read` calls — the per-element baseline the I/O arrays beat.
pub fn scalar_copy(cfg: &WorkloadCfg) -> Program {
    let n = cfg.burst_len;
    let mut a = Asm::new();
    a.li(R0, cfg.mem_base);
    a.li(R1, n);
    a.li(R2, W32);
    a.bl("dsm_alloc");
    check_not_null(&mut a, R0);
    a.mov(R5, R0.into());
    a.li(R4, cfg.iterations);
    a.label("loop");
    // Write n elements: value = 7*i + 3.
    a.li(R8, 0);
    a.label("wr");
    a.li(R9, 7);
    a.mul(R2, R8, R9);
    a.add(R2, R2, 3u32.into());
    a.li(R0, cfg.mem_base);
    a.lsl(R1, R8, 2);
    a.add(R1, R5, R1.into());
    a.li(R3, W32);
    a.bl("dsm_write");
    a.add(R8, R8, 1u32.into());
    a.li(R9, n);
    a.cmp(R8, R9.into());
    a.bne("wr");
    // Read and verify n elements.
    a.li(R8, 0);
    a.label("rd");
    a.li(R0, cfg.mem_base);
    a.lsl(R1, R8, 2);
    a.add(R1, R5, R1.into());
    a.li(R2, W32);
    a.bl("dsm_read");
    a.li(R9, 7);
    a.mul(R9, R8, R9);
    a.add(R9, R9, 3u32.into());
    a.cmp(R0, R9.into());
    a.bne("fail");
    a.add(R8, R8, 1u32.into());
    a.li(R9, n);
    a.cmp(R8, R9.into());
    a.bne("rd");
    a.subs(R4, R4, 1u32.into());
    a.bne("loop");
    ok_exit(&mut a);
    fail_exit(&mut a);
    emit_dsm_driver(&mut a);
    a.assemble(0).expect("scalar_copy assembles")
}

/// Linked-list build + traversal: every `next` pointer is a Vptr and every
/// hop reads `node + 4` — a direct stress of the paper's
/// pointer-arithmetic resolution. The list holds `iterations` nodes.
pub fn linked_list(cfg: &WorkloadCfg) -> Program {
    let n = cfg.iterations;
    let expected: u32 = (n as u64 * (n as u64 + 1) / 2) as u32;
    let mut a = Asm::new();
    a.li(R7, NULL_VPTR); // head = null
    a.li(R4, n);
    a.label("build");
    // node = dsm_alloc(mem, 2, U32); node.value = i; node.next = head
    a.li(R0, cfg.mem_base);
    a.li(R1, 2);
    a.li(R2, W32);
    a.bl("dsm_alloc");
    check_not_null(&mut a, R0);
    a.mov(R5, R0.into());
    a.li(R0, cfg.mem_base);
    a.mov(R1, R5.into());
    a.mov(R2, R4.into());
    a.li(R3, W32);
    a.bl("dsm_write");
    a.li(R0, cfg.mem_base);
    a.add(R1, R5, 4u32.into());
    a.mov(R2, R7.into());
    a.li(R3, W32);
    a.bl("dsm_write");
    a.mov(R7, R5.into());
    a.subs(R4, R4, 1u32.into());
    a.bne("build");
    // Traverse, summing values.
    a.li(R8, 0);
    a.label("trav");
    a.cmn(R7, 1u32.into()); // head == null?
    a.beq("check");
    a.li(R0, cfg.mem_base);
    a.mov(R1, R7.into());
    a.li(R2, W32);
    a.bl("dsm_read");
    a.add(R8, R8, R0.into());
    a.li(R0, cfg.mem_base);
    a.add(R1, R7, 4u32.into());
    a.li(R2, W32);
    a.bl("dsm_read");
    a.mov(R7, R0.into());
    a.b("trav");
    a.label("check");
    a.li(R9, expected);
    a.cmp(R8, R9.into());
    a.bne("fail");
    ok_exit(&mut a);
    fail_exit(&mut a);
    emit_dsm_driver(&mut a);
    a.assemble(0).expect("linked_list assembles")
}

/// Producer half of the flag-handshake pipe: sends `1..=iterations`
/// through a two-word control block (`[flag, data]`) at Vptr 0.
///
/// The producer performs the module's *first* allocation, so the control
/// block lands at Vptr 0 (the paper defines the first Vptr to be zero) —
/// that is the rendezvous convention with [`pipe_consumer`].
pub fn pipe_producer(cfg: &WorkloadCfg) -> Program {
    let mut a = Asm::new();
    a.li(R0, cfg.mem_base);
    a.li(R1, 2);
    a.li(R2, W32);
    a.bl("dsm_alloc");
    check_not_null(&mut a, R0);
    a.li(R4, cfg.iterations);
    a.li(R6, 1); // next value to send
    a.label("loop");
    // wait for flag == 0
    a.label("wait");
    a.li(R0, cfg.mem_base);
    a.li(R1, 0);
    a.li(R2, W32);
    a.bl("dsm_read");
    a.cmp(R0, 0u32.into());
    a.bne("wait");
    // data := value
    a.li(R0, cfg.mem_base);
    a.li(R1, 4);
    a.mov(R2, R6.into());
    a.li(R3, W32);
    a.bl("dsm_write");
    // flag := 1
    a.li(R0, cfg.mem_base);
    a.li(R1, 0);
    a.li(R2, 1);
    a.li(R3, W32);
    a.bl("dsm_write");
    a.add(R6, R6, 1u32.into());
    a.subs(R4, R4, 1u32.into());
    a.bne("loop");
    ok_exit(&mut a);
    fail_exit(&mut a);
    emit_dsm_driver(&mut a);
    a.assemble(0).expect("pipe_producer assembles")
}

/// Consumer half of the flag-handshake pipe: receives `iterations` values
/// from Vptr 0 and verifies their sum.
pub fn pipe_consumer(cfg: &WorkloadCfg) -> Program {
    let n = cfg.iterations as u64;
    let expected: u32 = (n * (n + 1) / 2) as u32;
    let mut a = Asm::new();
    a.li(R4, cfg.iterations);
    a.li(R8, 0); // sum
    a.label("loop");
    // Wait for flag == 1. Before the producer's first allocation the read
    // errors and returns the null marker, which also fails the compare.
    a.label("wait");
    a.li(R0, cfg.mem_base);
    a.li(R1, 0);
    a.li(R2, W32);
    a.bl("dsm_read");
    a.cmp(R0, 1u32.into());
    a.bne("wait");
    // sum += data
    a.li(R0, cfg.mem_base);
    a.li(R1, 4);
    a.li(R2, W32);
    a.bl("dsm_read");
    a.add(R8, R8, R0.into());
    // flag := 0
    a.li(R0, cfg.mem_base);
    a.li(R1, 0);
    a.li(R2, 0);
    a.li(R3, W32);
    a.bl("dsm_write");
    a.subs(R4, R4, 1u32.into());
    a.bne("loop");
    a.li(R9, expected);
    a.cmp(R8, R9.into());
    a.bne("fail");
    ok_exit(&mut a);
    fail_exit(&mut a);
    emit_dsm_driver(&mut a);
    a.assemble(0).expect("pipe_consumer assembles")
}

/// Reservation-guarded shared counter: every CPU increments the counter at
/// Vptr 0 `iterations` times inside a reserve/release critical section.
/// When `allocator` is set, the program performs the initial allocation
/// (exactly one CPU per memory must).
pub fn reserved_counter(cfg: &WorkloadCfg, allocator: bool) -> Program {
    let mut a = Asm::new();
    if allocator {
        a.li(R0, cfg.mem_base);
        a.li(R1, 1);
        a.li(R2, W32);
        a.bl("dsm_alloc");
        check_not_null(&mut a, R0);
    }
    a.li(R4, cfg.iterations);
    a.label("loop");
    // acquire
    a.li(R0, cfg.mem_base);
    a.li(R1, 0);
    a.bl("dsm_reserve_spin");
    // counter += 1
    a.li(R0, cfg.mem_base);
    a.li(R1, 0);
    a.li(R2, W32);
    a.bl("dsm_read");
    a.add(R6, R0, 1u32.into());
    a.li(R0, cfg.mem_base);
    a.li(R1, 0);
    a.mov(R2, R6.into());
    a.li(R3, W32);
    a.bl("dsm_write");
    // release
    a.li(R0, cfg.mem_base);
    a.li(R1, 0);
    a.bl("dsm_release");
    a.subs(R4, R4, 1u32.into());
    a.bne("loop");
    ok_exit(&mut a);
    fail_exit(&mut a);
    emit_dsm_driver(&mut a);
    a.assemble(0).expect("reserved_counter assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_assemble() {
        let cfg = WorkloadCfg::default();
        for (name, p) in [
            ("alloc_churn", alloc_churn(&cfg)),
            ("scalar_rw", scalar_rw(&cfg)),
            ("scalar_rw_static", scalar_rw_static(&cfg)),
            ("burst_copy", burst_copy(&cfg)),
            ("scalar_copy", scalar_copy(&cfg)),
            ("linked_list", linked_list(&cfg)),
            ("pipe_producer", pipe_producer(&cfg)),
            ("pipe_consumer", pipe_consumer(&cfg)),
            ("reserved_counter", reserved_counter(&cfg, true)),
        ] {
            assert!(!p.words().is_empty(), "{name} is empty");
            assert!(p.symbol("fail").is_some(), "{name} lacks fail path");
        }
    }
}
