//! Functional DSM bus: instant-completion adapter for fast simulation.
//!
//! `FunctionalDsmBus` exposes one or more memory backends directly as an
//! [`ExtBus`], serving every MMIO access in zero host hops and without a
//! simulation kernel. Uses:
//!
//! * **driver verification** — run a `CpuCore` against the real protocol
//!   semantics at interpreter speed;
//! * **functional (untimed) simulation mode** — the "fast path" a designer
//!   uses before switching on the cycle-true interconnect.

use dmi_core::{regs, DsmBackend, Opcode, Request, Status};
use dmi_iss::{ExtBus, ExtResult, ExtWidth};

#[derive(Clone, Copy)]
struct MasterCtx {
    args: [u32; 3],
    status: Status,
    result: u32,
}

impl Default for MasterCtx {
    fn default() -> Self {
        MasterCtx {
            args: [0; 3],
            status: Status::Ok,
            result: 0,
        }
    }
}

struct Slot {
    base: u32,
    size: u32,
    backend: Box<dyn DsmBackend>,
    // Banked per master, mirroring `MemoryModule`: interleaved register
    // sequences from different masters must not corrupt each other.
    ctxs: [MasterCtx; 16],
}

/// An [`ExtBus`] serving the shared-memory command protocol functionally.
pub struct FunctionalDsmBus {
    slots: Vec<Slot>,
    /// Master index reported to backends (reservations).
    pub master: u8,
}

impl std::fmt::Debug for FunctionalDsmBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionalDsmBus")
            .field("modules", &self.slots.len())
            .field("master", &self.master)
            .finish()
    }
}

impl FunctionalDsmBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        FunctionalDsmBus {
            slots: Vec::new(),
            master: 0,
        }
    }

    /// Maps `backend` at `[base, base + size)`.
    pub fn add_module(&mut self, base: u32, size: u32, backend: Box<dyn DsmBackend>) {
        self.slots.push(Slot {
            base,
            size,
            backend,
            ctxs: [MasterCtx::default(); 16],
        });
    }

    /// The backend mapped at index `i` (statistics extraction).
    pub fn backend(&self, i: usize) -> &dyn DsmBackend {
        self.slots[i].backend.as_ref()
    }

    fn slot_for(&mut self, addr: u32) -> Option<&mut Slot> {
        self.slots
            .iter_mut()
            .find(|s| addr >= s.base && addr - s.base < s.size)
    }
}

impl Default for FunctionalDsmBus {
    fn default() -> Self {
        Self::new()
    }
}

impl ExtBus for FunctionalDsmBus {
    fn ext_read(&mut self, addr: u32, _width: ExtWidth) -> ExtResult {
        let master = (self.master as usize) & 0xF;
        let Some(slot) = self.slot_for(addr) else {
            return ExtResult::Fault;
        };
        let offset = (addr - slot.base) % regs::BLOCK_SIZE;
        let value = match offset {
            regs::STATUS => slot.ctxs[master].status as u32,
            regs::RESULT => slot.ctxs[master].result,
            regs::INFO => slot.backend.free_bytes(),
            regs::DATA => {
                let b = slot.backend.burst_read_beat(master as u8);
                slot.ctxs[master].status = b.status;
                b.data
            }
            _ => 0,
        };
        ExtResult::Done(value)
    }

    fn ext_write(&mut self, addr: u32, value: u32, _width: ExtWidth) -> ExtResult {
        let master = (self.master as usize) & 0xF;
        let Some(slot) = self.slot_for(addr) else {
            return ExtResult::Fault;
        };
        let offset = (addr - slot.base) % regs::BLOCK_SIZE;
        match offset {
            regs::ARG0 => slot.ctxs[master].args[0] = value,
            regs::ARG1 => slot.ctxs[master].args[1] = value,
            regs::ARG2 => slot.ctxs[master].args[2] = value,
            regs::CMD => match Opcode::from_u32(value) {
                Some(op) => {
                    let mc = slot.ctxs[master];
                    let r = slot.backend.execute(&Request {
                        op,
                        arg0: mc.args[0],
                        arg1: mc.args[1],
                        arg2: mc.args[2],
                        master: master as u8,
                    });
                    slot.ctxs[master].status = r.status;
                    slot.ctxs[master].result = r.result;
                }
                None => slot.ctxs[master].status = Status::BadOpcode,
            },
            regs::DATA => {
                let b = slot.backend.burst_write_beat(master as u8, value);
                slot.ctxs[master].status = b.status;
            }
            _ => {}
        }
        ExtResult::Done(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_core::{WrapperBackend, WrapperConfig};

    #[test]
    fn serves_protocol_functionally() {
        let mut bus = FunctionalDsmBus::new();
        bus.add_module(
            0x8000_0000,
            0x1000,
            Box::new(WrapperBackend::new(WrapperConfig::default())),
        );
        let b = 0x8000_0000;
        // alloc(4, U32)
        bus.ext_write(b + regs::ARG0, 4, ExtWidth::Word);
        bus.ext_write(b + regs::ARG1, 2, ExtWidth::Word);
        bus.ext_write(b + regs::CMD, Opcode::Alloc as u32, ExtWidth::Word);
        let ExtResult::Done(vptr) = bus.ext_read(b + regs::RESULT, ExtWidth::Word) else {
            panic!()
        };
        assert_eq!(vptr, 0);
        // write / read
        bus.ext_write(b + regs::ARG0, vptr, ExtWidth::Word);
        bus.ext_write(b + regs::ARG1, 0x77, ExtWidth::Word);
        bus.ext_write(b + regs::ARG2, 2, ExtWidth::Word);
        bus.ext_write(b + regs::CMD, Opcode::Write as u32, ExtWidth::Word);
        bus.ext_write(b + regs::CMD, Opcode::Read as u32, ExtWidth::Word);
        let ExtResult::Done(v) = bus.ext_read(b + regs::RESULT, ExtWidth::Word) else {
            panic!()
        };
        assert_eq!(v, 0x77);
        // unmapped
        assert_eq!(bus.ext_read(0x1000, ExtWidth::Word), ExtResult::Fault);
    }
}
