//! # dmi-sw — the software layer of the DMI co-simulation framework
//!
//! The paper's Figure 1 shows a *software layer* above the design-model
//! layer: the programs the ISSs execute and the high-level memory API they
//! use. This crate provides both:
//!
//! * [`emit_dsm_driver`] — the C-formalism API (`dsm_alloc`, `dsm_free`,
//!   `dsm_read`, `dsm_write`, bursts, reservations) lowered to SimARM
//!   subroutines that drive the wrapper's MMIO command protocol;
//! * [`workloads`] — self-checking workload programs (allocation churn,
//!   scalar/burst traffic, linked lists, producer/consumer pipes,
//!   reservation-guarded counters) used by the tests and every experiment;
//! * [`FunctionalDsmBus`] — an instant-completion protocol adapter for
//!   running driver code on a bare [`CpuCore`](dmi_iss::CpuCore), i.e. the
//!   untimed functional simulation mode.
//!
//! ## Example: run a workload functionally
//!
//! ```
//! use dmi_core::{WrapperBackend, WrapperConfig};
//! use dmi_iss::{CpuCore, LocalMemory, StepEvent};
//! use dmi_sw::{workloads, FunctionalDsmBus};
//!
//! let cfg = workloads::WorkloadCfg { iterations: 4, ..Default::default() };
//! let prog = workloads::alloc_churn(&cfg);
//!
//! let mut bus = FunctionalDsmBus::new();
//! bus.add_module(cfg.mem_base, 0x1000,
//!     Box::new(WrapperBackend::new(WrapperConfig::default())));
//!
//! let mut cpu = CpuCore::new(0, LocalMemory::new(0, 0x10000));
//! cpu.load_program(&prog);
//! assert_eq!(cpu.run(&mut bus, 1_000_000), StepEvent::Halted);
//! assert_eq!(cpu.exit_code(), 0, "workload self-check passed");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod funcbus;
pub mod workloads;

pub use driver::emit_dsm_driver;
pub use funcbus::FunctionalDsmBus;
pub use workloads::WorkloadCfg;
