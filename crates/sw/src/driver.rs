//! The DSM driver: the paper's high-level API, lowered to SimARM assembly.
//!
//! "High level APIs very similar to the host machine functions are used by
//! the ISSs" — this module emits those routines. Each is a subroutine
//! following the standard calling convention (arguments in `r0..r3`,
//! result in `r0`, `r12` scratch, `r4..r11` callee-saved) that drives the
//! memory-mapped command protocol of a shared-memory module.
//!
//! | routine | C formalism | arguments |
//! |---|---|---|
//! | `dsm_alloc` | `vptr = dsm_alloc(mem, dim, type)` | r0 = module base, r1 = dim, r2 = type |
//! | `dsm_alloc_retry` | `vptr = dsm_alloc_retry(mem, dim, type, tries)` | r3 = max attempts; returns `NULL_VPTR` when exhausted |
//! | `dsm_free` | `dsm_free(mem, vptr)` | r1 = vptr |
//! | `dsm_write` | `dsm_write(mem, vptr, value, width)` | r2 = value, r3 = width code |
//! | `dsm_read` | `value = dsm_read(mem, vptr, width)` | r2 = width code |
//! | `dsm_write_burst` | `dsm_write_burst(mem, vptr, buf, len)` | r2 = local buffer, r3 = words |
//! | `dsm_read_burst` | `dsm_read_burst(mem, vptr, buf, len)` | r2 = local buffer, r3 = words |
//! | `dsm_reserve` | `ok = dsm_reserve(mem, vptr)` | returns 1 when acquired |
//! | `dsm_reserve_spin` | `dsm_reserve_spin(mem, vptr)` | spins until acquired |
//! | `dsm_release` | `dsm_release(mem, vptr)` | |
//! | `dsm_status` | `s = dsm_status(mem)` | last status |
//! | `dsm_info` | `n = dsm_info(mem)` | free bytes |

use dmi_core::regs;
use dmi_core::Opcode;
use dmi_isa::{Asm, Reg};

const R0: Reg = Reg::R0;
const R1: Reg = Reg::R1;
const R2: Reg = Reg::R2;
const R3: Reg = Reg::R3;
const R4: Reg = Reg::R4;
const R12: Reg = Reg::R12;

/// Emits all DSM driver routines into `asm`.
///
/// Call once per program, anywhere unreachable by fall-through (typically
/// after the final `swi #0`). Programs then invoke the routines with
/// `bl dsm_alloc` etc.
pub fn emit_dsm_driver(asm: &mut Asm) {
    emit_alloc(asm);
    emit_alloc_retry(asm);
    emit_free(asm);
    emit_write(asm);
    emit_read(asm);
    emit_write_burst(asm);
    emit_read_burst(asm);
    emit_reserve(asm);
    emit_reserve_spin(asm);
    emit_release(asm);
    emit_status(asm);
    emit_info(asm);
}

/// Stores `opcode` into CMD — the transaction whose ack carries the
/// operation's latency.
fn fire(asm: &mut Asm, opcode: Opcode) {
    asm.li(R12, opcode as u32);
    asm.str(R12, R0, regs::CMD as i32);
}

fn emit_alloc(asm: &mut Asm) {
    asm.label("dsm_alloc");
    asm.str(R1, R0, regs::ARG0 as i32); // dim
    asm.str(R2, R0, regs::ARG1 as i32); // type
    fire(asm, Opcode::Alloc);
    asm.ldr(R0, R0, regs::RESULT as i32); // vptr
    asm.ret();
}

/// Software-side error recovery: re-issue ALLOC until STATUS reads `Ok`,
/// up to r3 attempts. The CPU analogue of the DMA engine's
/// `RetryPolicy` — fault-injection scenarios that hit the CPU wrapper
/// path use this instead of hanging on a `NULL_VPTR`. Returns the vptr,
/// or `NULL_VPTR` once the attempts are exhausted.
fn emit_alloc_retry(asm: &mut Asm) {
    asm.label("dsm_alloc_retry");
    asm.push(&[R4, Reg::LR]);
    asm.mov(R4, R3.into()); // attempts remaining
    asm.label("dsm_ar_loop");
    asm.str(R1, R0, regs::ARG0 as i32); // dim
    asm.str(R2, R0, regs::ARG1 as i32); // type
    fire(asm, Opcode::Alloc);
    asm.ldr(R12, R0, regs::STATUS as i32);
    asm.cmp(R12, 0u32.into()); // Status::Ok
    asm.beq("dsm_ar_ok");
    asm.subs(R4, R4, 1u32.into());
    asm.bne("dsm_ar_loop");
    asm.li(R0, dmi_core::NULL_VPTR); // exhausted
    asm.pop(&[R4, Reg::LR]);
    asm.ret();
    asm.label("dsm_ar_ok");
    asm.ldr(R0, R0, regs::RESULT as i32); // vptr
    asm.pop(&[R4, Reg::LR]);
    asm.ret();
}

fn emit_free(asm: &mut Asm) {
    asm.label("dsm_free");
    asm.str(R1, R0, regs::ARG0 as i32);
    fire(asm, Opcode::Free);
    asm.ret();
}

fn emit_write(asm: &mut Asm) {
    asm.label("dsm_write");
    asm.str(R1, R0, regs::ARG0 as i32); // vptr
    asm.str(R2, R0, regs::ARG1 as i32); // value
    asm.str(R3, R0, regs::ARG2 as i32); // width
    fire(asm, Opcode::Write);
    asm.ret();
}

fn emit_read(asm: &mut Asm) {
    asm.label("dsm_read");
    asm.str(R1, R0, regs::ARG0 as i32); // vptr
    asm.str(R2, R0, regs::ARG2 as i32); // width
    fire(asm, Opcode::Read);
    asm.ldr(R0, R0, regs::RESULT as i32);
    asm.ret();
}

fn emit_write_burst(asm: &mut Asm) {
    asm.label("dsm_write_burst");
    asm.push(&[R4, Reg::LR]);
    asm.str(R1, R0, regs::ARG0 as i32); // vptr
    asm.li(R12, 2); // width: words
    asm.str(R12, R0, regs::ARG1 as i32);
    asm.str(R3, R0, regs::ARG2 as i32); // len
    fire(asm, Opcode::WriteBurst);
    asm.label("dsm_wb_loop");
    asm.ldr_post(R4, R2, 4); // next local word
    asm.str(R4, R0, regs::DATA as i32); // beat
    asm.subs(R3, R3, 1u32.into());
    asm.bne("dsm_wb_loop");
    asm.pop(&[R4, Reg::LR]);
    asm.ret();
}

fn emit_read_burst(asm: &mut Asm) {
    asm.label("dsm_read_burst");
    asm.push(&[R4, Reg::LR]);
    asm.str(R1, R0, regs::ARG0 as i32); // vptr
    asm.li(R12, 2); // width: words
    asm.str(R12, R0, regs::ARG1 as i32);
    asm.str(R3, R0, regs::ARG2 as i32); // len
    fire(asm, Opcode::ReadBurst);
    asm.label("dsm_rb_loop");
    asm.ldr(R4, R0, regs::DATA as i32); // beat
    asm.str_post(R4, R2, 4); // store locally
    asm.subs(R3, R3, 1u32.into());
    asm.bne("dsm_rb_loop");
    asm.pop(&[R4, Reg::LR]);
    asm.ret();
}

fn emit_reserve(asm: &mut Asm) {
    asm.label("dsm_reserve");
    asm.str(R1, R0, regs::ARG0 as i32);
    fire(asm, Opcode::Reserve);
    asm.ldr(R0, R0, regs::RESULT as i32); // 1 = acquired
    asm.ret();
}

fn emit_reserve_spin(asm: &mut Asm) {
    asm.label("dsm_reserve_spin");
    asm.label("dsm_rs_loop");
    asm.str(R1, R0, regs::ARG0 as i32);
    fire(asm, Opcode::Reserve);
    asm.ldr(R12, R0, regs::RESULT as i32);
    asm.cmp(R12, 1u32.into());
    asm.bne("dsm_rs_loop");
    asm.ret();
}

fn emit_release(asm: &mut Asm) {
    asm.label("dsm_release");
    asm.str(R1, R0, regs::ARG0 as i32);
    fire(asm, Opcode::Release);
    asm.ret();
}

fn emit_status(asm: &mut Asm) {
    asm.label("dsm_status");
    asm.ldr(R0, R0, regs::STATUS as i32);
    asm.ret();
}

fn emit_info(asm: &mut Asm) {
    asm.label("dsm_info");
    asm.ldr(R0, R0, regs::INFO as i32);
    asm.ret();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_assembles_with_all_symbols() {
        let mut a = Asm::new();
        a.swi(0);
        emit_dsm_driver(&mut a);
        let p = a.assemble(0).unwrap();
        for sym in [
            "dsm_alloc",
            "dsm_alloc_retry",
            "dsm_free",
            "dsm_write",
            "dsm_read",
            "dsm_write_burst",
            "dsm_read_burst",
            "dsm_reserve",
            "dsm_reserve_spin",
            "dsm_release",
            "dsm_status",
            "dsm_info",
        ] {
            assert!(p.symbol(sym).is_some(), "missing symbol {sym}");
        }
        // Every word decodes (no garbage emitted).
        for (i, w) in p.words().iter().enumerate() {
            assert!(
                dmi_isa::decode(*w).is_ok(),
                "word {i} ({w:#010x}) does not decode"
            );
        }
    }
}
