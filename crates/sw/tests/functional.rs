//! Functional verification of the DSM driver and every workload program:
//! each runs to completion on a bare CPU core against the real protocol
//! semantics (wrapper and, where supported, simulated-heap backends).

use dmi_core::{SimHeapBackend, SimHeapConfig, VptrPolicy, WrapperBackend, WrapperConfig};
use dmi_iss::{CpuCore, LocalMemory, StepEvent};
use dmi_sw::{workloads, FunctionalDsmBus, WorkloadCfg};

const MEM_BASE: u32 = 0x8000_0000;

fn wrapper_bus() -> FunctionalDsmBus {
    let mut bus = FunctionalDsmBus::new();
    bus.add_module(
        MEM_BASE,
        0x1000,
        Box::new(WrapperBackend::new(WrapperConfig::default())),
    );
    bus
}

fn simheap_bus() -> FunctionalDsmBus {
    let mut bus = FunctionalDsmBus::new();
    bus.add_module(
        MEM_BASE,
        0x1000,
        Box::new(SimHeapBackend::new(SimHeapConfig::default())),
    );
    bus
}

fn run_to_halt(prog: &dmi_isa::Program, bus: &mut FunctionalDsmBus) -> u32 {
    let mut cpu = CpuCore::new(0, LocalMemory::new(0, 0x20000));
    cpu.load_program(prog);
    match cpu.run(bus, 50_000_000) {
        StepEvent::Halted => cpu.exit_code(),
        other => panic!(
            "program did not halt: {other:?} at pc={:#x}, fault={:?}",
            cpu.pc(),
            cpu.fault()
        ),
    }
}

#[test]
fn alloc_churn_on_wrapper() {
    let cfg = WorkloadCfg {
        iterations: 50,
        ..WorkloadCfg::default()
    };
    let mut bus = wrapper_bus();
    assert_eq!(run_to_halt(&workloads::alloc_churn(&cfg), &mut bus), 0);
    let stats = bus.backend(0).stats();
    assert_eq!(stats.allocs, 50);
    assert_eq!(stats.frees, 50);
    assert_eq!(stats.writes, 100);
    assert_eq!(stats.reads, 100);
}

#[test]
fn alloc_churn_on_simheap() {
    let cfg = WorkloadCfg {
        iterations: 25,
        ..WorkloadCfg::default()
    };
    let mut bus = simheap_bus();
    assert_eq!(run_to_halt(&workloads::alloc_churn(&cfg), &mut bus), 0);
    assert_eq!(bus.backend(0).stats().allocs, 25);
}

#[test]
fn scalar_rw_on_both_models() {
    let cfg = WorkloadCfg {
        iterations: 64,
        buf_words: 8,
        ..WorkloadCfg::default()
    };
    let prog = workloads::scalar_rw(&cfg);
    assert_eq!(run_to_halt(&prog, &mut wrapper_bus()), 0);
    assert_eq!(run_to_halt(&prog, &mut simheap_bus()), 0);
}

#[test]
fn burst_and_scalar_copy() {
    let cfg = WorkloadCfg {
        iterations: 8,
        burst_len: 32,
        ..WorkloadCfg::default()
    };
    let mut bus = wrapper_bus();
    assert_eq!(run_to_halt(&workloads::burst_copy(&cfg), &mut bus), 0);
    let beats = bus.backend(0).stats().burst_beats;
    assert_eq!(beats, 8 * 32 * 2, "write + read beats per iteration");

    let mut bus = wrapper_bus();
    assert_eq!(run_to_halt(&workloads::scalar_copy(&cfg), &mut bus), 0);
    let s = bus.backend(0).stats();
    assert_eq!(s.writes, 8 * 32);
    assert_eq!(s.reads, 8 * 32);
}

#[test]
fn linked_list_pointer_arithmetic() {
    let cfg = WorkloadCfg {
        iterations: 40,
        ..WorkloadCfg::default()
    };
    let mut bus = wrapper_bus();
    assert_eq!(run_to_halt(&workloads::linked_list(&cfg), &mut bus), 0);
    // 40 nodes stay allocated (list is never freed).
    assert_eq!(bus.backend(0).stats().allocs, 40);
}

#[test]
fn linked_list_on_first_fit_policy() {
    let cfg = WorkloadCfg {
        iterations: 24,
        ..WorkloadCfg::default()
    };
    let mut bus = FunctionalDsmBus::new();
    bus.add_module(
        MEM_BASE,
        0x1000,
        Box::new(WrapperBackend::new(WrapperConfig {
            policy: VptrPolicy::FirstFitReuse,
            ..WrapperConfig::default()
        })),
    );
    assert_eq!(run_to_halt(&workloads::linked_list(&cfg), &mut bus), 0);
}

/// Interleaves two cores over one shared wrapper, scheduling one
/// instruction each alternately, to validate the pipe protocol and
/// reservations without the full co-simulation stack.
fn run_pair(prog_a: &dmi_isa::Program, prog_b: &dmi_isa::Program) -> (u32, u32) {
    let mut bus = wrapper_bus();
    let mut a = CpuCore::new(0, LocalMemory::new(0, 0x20000));
    a.load_program(prog_a);
    let mut b = CpuCore::new(1, LocalMemory::new(0, 0x20000));
    b.load_program(prog_b);
    for step in 0..100_000_000u64 {
        if a.is_halted() && b.is_halted() {
            return (a.exit_code(), b.exit_code());
        }
        let (cpu, master) = if step % 2 == 0 { (&mut a, 0) } else { (&mut b, 1) };
        bus.master = master;
        match cpu.step(&mut bus) {
            StepEvent::Executed { .. } | StepEvent::Halted => {}
            StepEvent::Stalled => panic!("functional bus never stalls"),
            StepEvent::Fault(f) => panic!("cpu{master} fault: {f}"),
        }
    }
    panic!("pair did not converge");
}

#[test]
fn producer_consumer_pipe() {
    let cfg = WorkloadCfg {
        iterations: 30,
        ..WorkloadCfg::default()
    };
    let (pe, ce) = run_pair(
        &workloads::pipe_producer(&cfg),
        &workloads::pipe_consumer(&cfg),
    );
    assert_eq!(pe, 0, "producer exit");
    assert_eq!(ce, 0, "consumer checksum verified");
}

#[test]
fn reserved_counter_no_lost_updates() {
    let cfg = WorkloadCfg {
        iterations: 50,
        ..WorkloadCfg::default()
    };
    let mut bus = wrapper_bus();
    let mut a = CpuCore::new(0, LocalMemory::new(0, 0x20000));
    a.load_program(&workloads::reserved_counter(&cfg, true));
    let mut b = CpuCore::new(1, LocalMemory::new(0, 0x20000));
    b.load_program(&workloads::reserved_counter(&cfg, false));
    let mut step = 0u64;
    while !(a.is_halted() && b.is_halted()) {
        let (cpu, master) = if step.is_multiple_of(2) { (&mut a, 0) } else { (&mut b, 1) };
        bus.master = master;
        match cpu.step(&mut bus) {
            StepEvent::Executed { .. } | StepEvent::Halted => {}
            other => panic!("cpu{master}: {other:?}"),
        }
        step += 1;
        assert!(step < 200_000_000, "did not converge");
    }
    assert_eq!(a.exit_code(), 0);
    assert_eq!(b.exit_code(), 0);
    // Both CPUs incremented 50 times each; no update lost under the
    // reservation discipline. Verify through a third reader program.
    let mut reader = CpuCore::new(2, LocalMemory::new(0, 0x10000));
    let mut asmr = dmi_isa::Asm::new();
    asmr.li(dmi_isa::Reg::R0, MEM_BASE);
    asmr.li(dmi_isa::Reg::R1, 0);
    asmr.li(dmi_isa::Reg::R2, 2);
    asmr.bl("dsm_read");
    asmr.swi(0); // halt with counter in r0
    dmi_sw::emit_dsm_driver(&mut asmr);
    reader.load_program(&asmr.assemble(0).unwrap());
    bus.master = 2;
    assert_eq!(reader.run(&mut bus, 10_000), StepEvent::Halted);
    assert_eq!(reader.exit_code(), 100);
}
