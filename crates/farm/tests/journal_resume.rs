//! Crash-safe resume: a journal truncated at *any* byte offset (the
//! moral equivalent of `kill -9` mid-write) reloads without panicking,
//! skips exactly the durably completed legs, and the resumed farm's
//! aggregate results are bit-identical to an uninterrupted run.

use std::path::PathBuf;
use std::sync::Arc;

use dmi_farm::{
    run_farm, Catalog, FarmConfig, FarmError, JournalError, Registry, ScenarioSpec,
};
use dmi_sw::{workloads, WorkloadCfg};
use dmi_system::{mem_base, CpuSpec, MemSpec, SystemBuilder};
use proptest::prelude::*;

fn quick(iterations: u32) -> SystemBuilder {
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_cpu(CpuSpec::new(workloads::alloc_churn(&WorkloadCfg {
        mem_base: mem_base(0),
        iterations,
        ..WorkloadCfg::default()
    })));
    b
}

fn registry() -> Arc<Registry> {
    let mut r = Registry::new();
    r.register("quick4", || quick(4));
    r.register("quick8", || quick(8));
    Arc::new(r)
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.push(ScenarioSpec::new("a", "quick4", 150_000).checkpoint(25_000));
    c.push(ScenarioSpec::new("b", "quick8", 250_000));
    c.push(ScenarioSpec::new("c", "quick4", 80_000));
    c
}

/// A per-test scratch path that does not rely on wall-clock entropy.
fn scratch(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dmi-farm-{}-{tag}.journal", std::process::id()));
    p
}

#[test]
fn journal_resume_skips_completed_legs_and_matches_uninterrupted_run() {
    let reg = registry();
    let cat = catalog();
    let path = scratch("resume");
    let _ = std::fs::remove_file(&path);

    // Uninterrupted run, journaling as it goes.
    let cfg = FarmConfig {
        workers: 2,
        journal: Some(path.clone()),
        ..FarmConfig::default()
    };
    let full = run_farm(&cat, Arc::clone(&reg), &cfg).expect("first run");
    assert_eq!(full.skipped, 0);
    assert!(full.all_expected(&cat), "{}", full.summary());

    // Re-running against the completed journal executes nothing.
    let again = run_farm(&cat, Arc::clone(&reg), &cfg).expect("resume over complete journal");
    assert_eq!(again.skipped, cat.len());
    assert!(again.legs.iter().all(|l| l.adopted));
    for (a, b) in full.legs.iter().zip(&again.legs) {
        assert_eq!(a.outcome, b.outcome, "adopted outcomes must be verbatim");
    }

    // Interrupt: chop the journal mid-tail (inside the last record) and
    // append write debris, like a process killed during an append.
    let bytes = std::fs::read(&path).expect("journal bytes");
    let mut torn = bytes[..bytes.len() - 7].to_vec();
    torn.extend_from_slice(&[0xAB; 3]);
    std::fs::write(&path, &torn).expect("write torn journal");

    let resumed = run_farm(&cat, Arc::clone(&reg), &cfg).expect("resume over torn journal");
    assert!(
        resumed.skipped < cat.len(),
        "the torn record must not count as completed"
    );
    for (a, b) in full.legs.iter().zip(&resumed.legs) {
        assert_eq!(
            a.outcome, b.outcome,
            "resumed aggregate must be bit-identical to the uninterrupted run"
        );
    }
    // And the journal healed: one more resume skips everything.
    let healed = run_farm(&cat, Arc::clone(&reg), &cfg).expect("resume over healed journal");
    assert_eq!(healed.skipped, cat.len());

    let _ = std::fs::remove_file(&path);
}

#[test]
fn journal_refuses_a_different_catalog() {
    let reg = registry();
    let cat = catalog();
    let path = scratch("mismatch");
    let _ = std::fs::remove_file(&path);

    let cfg = FarmConfig {
        workers: 1,
        journal: Some(path.clone()),
        ..FarmConfig::default()
    };
    run_farm(&cat, Arc::clone(&reg), &cfg).expect("seed the journal");

    let mut other = cat.clone();
    other.scenarios[0].cycles += 1;
    let err = run_farm(&other, reg, &cfg).expect_err("must refuse foreign journal");
    assert!(
        matches!(
            err,
            FarmError::Journal(JournalError::CatalogMismatch { .. })
        ),
        "{err}"
    );
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating the journal at an arbitrary byte offset — header,
    /// record boundary, or mid-record — never panics, never invents a
    /// completed leg, and the resumed run's aggregate equals the
    /// uninterrupted run's.
    #[test]
    fn truncation_at_any_offset_resumes_bit_identically(cut_frac in 0u32..=1000) {
        let reg = registry();
        let cat = catalog();
        let path = scratch(&format!("prop{cut_frac}"));
        let _ = std::fs::remove_file(&path);

        let cfg = FarmConfig {
            workers: 2,
            journal: Some(path.clone()),
            ..FarmConfig::default()
        };
        let full = run_farm(&cat, Arc::clone(&reg), &cfg).expect("uninterrupted run");

        let bytes = std::fs::read(&path).expect("journal bytes");
        let cut = (bytes.len() as u64 * cut_frac as u64 / 1000) as usize;
        std::fs::write(&path, &bytes[..cut]).expect("truncate journal");

        let resumed = run_farm(&cat, Arc::clone(&reg), &cfg).expect("resume");
        prop_assert!(resumed.skipped <= cat.len());
        for (a, b) in full.legs.iter().zip(&resumed.legs) {
            prop_assert_eq!(&a.outcome, &b.outcome);
        }
        let _ = std::fs::remove_file(&path);
    }
}
