//! Supervision contract: panics are isolated, watchdogs fire, retries
//! resume from checkpoints and reproduce uninterrupted fingerprints,
//! hung workers are abandoned without taking the farm down.

use std::sync::Arc;
use std::time::Duration;

use dmi_farm::{
    panics_caught, run_farm, run_farm_stream, Catalog, FarmConfig, FarmError, Registry,
    ScenarioOutcome, ScenarioSpec,
};
use dmi_masters::{DmaConfig, DmaEngine, DmaKind};
use dmi_sw::{workloads, WorkloadCfg};
use dmi_system::{mem_base, CpuSpec, MemSpec, StopCondition, SystemBuilder};

/// One alloc-churn CPU on a wrapper memory: halts on its own quickly.
fn quick() -> SystemBuilder {
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_cpu(CpuSpec::new(workloads::alloc_churn(&WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 4,
        ..WorkloadCfg::default()
    })));
    b
}

/// A scalar CPU plus a bounded DMA fill: deterministic, runs a while.
fn stream() -> SystemBuilder {
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_cpu(CpuSpec::new(workloads::scalar_rw(&WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 16,
        ..WorkloadCfg::default()
    })));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 7 },
        dst: mem_base(0),
        words: 32,
        passes: 64,
        ..DmaConfig::default()
    })));
    b
}

/// A DMA fill that never finishes: the watchdog fodder.
fn endless() -> SystemBuilder {
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 3 },
        dst: mem_base(0),
        words: 16,
        passes: u32::MAX,
        ..DmaConfig::default()
    })));
    b
}

fn registry() -> Arc<Registry> {
    let mut r = Registry::new();
    r.register("quick", quick);
    r.register("stream", stream);
    r.register("endless", endless);
    Arc::new(r)
}

fn fingerprint_of(outcome: &ScenarioOutcome) -> u32 {
    match outcome {
        ScenarioOutcome::Completed { fingerprint, .. } => *fingerprint,
        other => panic!("expected Completed, got {other:?}"),
    }
}

#[test]
fn farm_outcomes_are_deterministic_across_runs_and_worker_counts() {
    let mut catalog = Catalog::new();
    catalog.push(ScenarioSpec::new("quick-a", "quick", 200_000));
    catalog.push(ScenarioSpec::new("stream-a", "stream", 60_000).checkpoint(10_000));
    catalog.push(ScenarioSpec::new("stream-b", "stream", 2_000));
    catalog.push(ScenarioSpec::new("quick-b", "quick", 200_000).checkpoint(25_000));

    let reg = registry();
    let run = |workers: usize| {
        run_farm(
            &catalog,
            Arc::clone(&reg),
            &FarmConfig {
                workers,
                ..FarmConfig::default()
            },
        )
        .expect("farm runs")
    };
    let serial = run(1);
    let wide = run(4);
    assert_eq!(serial.legs.len(), 4);
    assert!(serial.all_expected(&catalog), "{}", serial.summary());
    for (a, b) in serial.legs.iter().zip(&wide.legs) {
        assert_eq!(a.outcome, b.outcome, "legs must not depend on scheduling");
    }
    // Identical scenario prefixes, different budgets: different states.
    assert_ne!(
        fingerprint_of(&serial.legs[1].outcome),
        fingerprint_of(&serial.legs[2].outcome),
        "different budgets must fingerprint differently"
    );
    // Same scenario, same budget, re-run: identical fingerprint.
    assert_eq!(
        fingerprint_of(&serial.legs[0].outcome),
        fingerprint_of(&wide.legs[0].outcome),
    );
}

#[test]
fn injected_panic_is_isolated_and_retry_reproduces_the_fingerprint() {
    let reg = registry();

    // Reference: the same leg without the probe.
    let mut reference = Catalog::new();
    reference.push(ScenarioSpec::new("stream", "stream", 60_000).checkpoint(2_000));
    let expected = run_farm(&reference, Arc::clone(&reg), &FarmConfig::default())
        .expect("reference run");
    let expected_fp = fingerprint_of(&expected.legs[0].outcome);

    // Probe: attempt 0 panics mid-leg; the retry resumes from the last
    // exported checkpoint and must land on the identical fingerprint.
    let mut catalog = Catalog::new();
    catalog.push(
        ScenarioSpec::new("stream", "stream", 60_000)
            .checkpoint(2_000)
            .retries(1)
            .inject_panic_at(6_000),
    );
    catalog.push(ScenarioSpec::new("sibling", "quick", 200_000));

    let before = panics_caught();
    let report = run_farm(&catalog, reg, &FarmConfig::default()).expect("farm survives the panic");
    assert!(panics_caught() > before, "the panic must actually fire");
    assert_eq!(report.retried, 1, "{}", report.summary());
    assert_eq!(report.legs[0].attempts, 2);
    assert_eq!(fingerprint_of(&report.legs[0].outcome), expected_fp);
    assert!(
        report.legs[1].outcome.is_success(),
        "sibling leg must be unaffected: {}",
        report.summary()
    );
}

#[test]
fn exhausted_retries_leave_a_typed_panic_outcome() {
    let mut catalog = Catalog::new();
    catalog.push(
        ScenarioSpec::new("boom", "stream", 60_000)
            .checkpoint(2_000)
            .inject_panic_at(4_000)
            .expect_failure(),
    );
    catalog.push(ScenarioSpec::new("sibling", "quick", 200_000));

    let report = run_farm(&catalog, registry(), &FarmConfig::default()).expect("farm survives");
    match &report.legs[0].outcome {
        ScenarioOutcome::Panicked { message } => {
            assert!(message.contains("injected panic"), "{message}");
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    assert_eq!(report.legs[0].attempts, 1, "retries=0 means one attempt");
    assert!(report.legs[1].outcome.is_success());
    assert!(report.all_expected(&catalog), "{}", report.summary());
}

#[test]
fn soft_watchdog_times_out_an_endless_leg() {
    let mut catalog = Catalog::new();
    catalog.push(
        ScenarioSpec::new("runaway", "endless", u64::MAX / 8)
            .deadline_ms(60)
            .expect_failure(),
    );
    catalog.push(ScenarioSpec::new("sibling", "quick", 200_000));

    let report = run_farm(
        &catalog,
        registry(),
        &FarmConfig {
            workers: 2,
            watchdog_poll: 64,
            ..FarmConfig::default()
        },
    )
    .expect("farm survives");
    assert_eq!(
        report.legs[0].outcome,
        ScenarioOutcome::TimedOut { hard: false },
        "{}",
        report.summary()
    );
    assert!(report.legs[1].outcome.is_success());
    assert!(report.all_expected(&catalog));
}

#[test]
fn hard_deadline_abandons_a_hung_worker_without_killing_the_farm() {
    let mut catalog = Catalog::new();
    // The hang probe sleeps far past the hard deadline without ever
    // reaching the in-run watchdog.
    catalog.push(
        ScenarioSpec::new("stuck", "quick", 1_000)
            .hang_ms(3_000)
            .expect_failure(),
    );
    catalog.push(ScenarioSpec::new("sibling-a", "quick", 200_000));
    catalog.push(ScenarioSpec::new("sibling-b", "stream", 30_000));

    let report = run_farm(
        &catalog,
        registry(),
        &FarmConfig {
            workers: 2,
            hard_deadline: Some(Duration::from_millis(200)),
            ..FarmConfig::default()
        },
    )
    .expect("farm survives the hang");
    assert_eq!(
        report.legs[0].outcome,
        ScenarioOutcome::TimedOut { hard: true },
        "{}",
        report.summary()
    );
    assert!(report.abandoned >= 1);
    assert!(report.legs[1].outcome.is_success());
    assert!(report.legs[2].outcome.is_success());
    assert!(report.all_expected(&catalog));
}

#[test]
fn unknown_system_and_empty_catalog_are_typed_not_fatal() {
    let mut catalog = Catalog::new();
    catalog.push(ScenarioSpec::new("ghost", "no-such-system", 1_000).expect_failure());
    let report = run_farm(&catalog, registry(), &FarmConfig::default()).expect("farm runs");
    match &report.legs[0].outcome {
        ScenarioOutcome::Failed { message } => {
            assert!(message.contains("unknown system"), "{message}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert_eq!(report.legs[0].attempts, 1, "build failures are not retried");

    let empty = run_farm(&Catalog::new(), registry(), &FarmConfig::default()).expect("empty");
    assert!(empty.legs.is_empty());
}

#[test]
fn zero_workers_is_a_typed_error_not_a_hang() {
    let mut catalog = Catalog::new();
    catalog.push(ScenarioSpec::new("leg", "quick", 1_000));
    let err = run_farm(
        &catalog,
        registry(),
        &FarmConfig {
            workers: 0,
            ..FarmConfig::default()
        },
    )
    .expect_err("zero workers must be refused");
    assert!(matches!(err, FarmError::NoWorkers), "{err}");
}

#[test]
fn warm_snapshot_file_reproduces_the_cold_fingerprint() {
    let reg = registry();
    let mut cold = Catalog::new();
    cold.push(ScenarioSpec::new("s", "stream", 60_000));
    let cold_fp = fingerprint_of(
        &run_farm(&cold, Arc::clone(&reg), &FarmConfig::default())
            .expect("cold run")
            .legs[0]
            .outcome,
    );

    // Export the warm prefix the way a user would: run the system 20k
    // cycles and save its checkpoint to a file.
    let mut path = std::env::temp_dir();
    path.push(format!("dmi-farm-{}-warmsnap.snap", std::process::id()));
    let mut sys = stream().build().expect("build");
    sys.run_until(&StopCondition::cycles(20_000));
    sys.checkpoint().save(&path).expect("save warm snapshot");

    let mut warm = Catalog::new();
    warm.push(
        ScenarioSpec::new("w", "stream", 60_000).warm_snapshot(path.to_string_lossy().as_ref()),
    );
    let report = run_farm(&warm, Arc::clone(&reg), &FarmConfig::default()).expect("warm run");
    assert_eq!(
        fingerprint_of(&report.legs[0].outcome),
        cold_fp,
        "file-warmed leg diverged: {}",
        report.summary()
    );
    let _ = std::fs::remove_file(&path);

    // A missing snapshot file is a deterministic typed failure, never a
    // silent cold fallback (which would fingerprint differently from
    // the catalog's intent).
    let mut broken = Catalog::new();
    broken.push(
        ScenarioSpec::new("b", "stream", 60_000)
            .warm_snapshot("/nonexistent/warm.snap")
            .expect_failure(),
    );
    let report = run_farm(&broken, reg, &FarmConfig::default()).expect("farm survives");
    match &report.legs[0].outcome {
        ScenarioOutcome::Failed { message } => {
            assert!(message.contains("warm snapshot"), "{message}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert_eq!(report.legs[0].attempts, 1, "spec errors are not retried");
}

#[test]
fn streamed_catalog_runs_identically_to_a_materialized_one() {
    let mut catalog = Catalog::new();
    catalog.push(ScenarioSpec::new("quick-a", "quick", 200_000));
    catalog.push(ScenarioSpec::new("stream-a", "stream", 60_000).checkpoint(10_000));
    catalog.push(ScenarioSpec::new("stream-b", "stream", 2_000));
    catalog.push(ScenarioSpec::new("quick-b", "quick", 200_000).checkpoint(25_000));

    let reg = registry();
    let materialized =
        run_farm(&catalog, Arc::clone(&reg), &FarmConfig::default()).expect("materialized");

    let text = catalog.to_text();
    let streamed = run_farm_stream(
        Catalog::stream(std::io::Cursor::new(text)),
        Arc::clone(&reg),
        &FarmConfig::default(),
    )
    .expect("streamed");
    assert_eq!(materialized.legs.len(), streamed.legs.len());
    for (m, s) in materialized.legs.iter().zip(&streamed.legs) {
        assert_eq!(m.name, s.name);
        assert_eq!(m.outcome, s.outcome, "dispatch laziness must not matter");
    }

    // A stream that errors mid-way surfaces the catalog error, typed.
    let err = run_farm_stream(
        Catalog::stream(std::io::Cursor::new("[leg]\nstray")),
        Arc::clone(&reg),
        &FarmConfig::default(),
    )
    .expect_err("parse error must surface");
    assert!(matches!(err, FarmError::Catalog(_)), "{err}");

    // Journaling a stream is refused: the journal pins a catalog CRC a
    // stream cannot provide.
    let mut path = std::env::temp_dir();
    path.push("dmi-farm-stream.journal");
    let err = run_farm_stream(
        Catalog::stream(std::io::Cursor::new("")),
        reg,
        &FarmConfig {
            journal: Some(path),
            ..FarmConfig::default()
        },
    )
    .expect_err("stream + journal must be refused");
    assert!(matches!(err, FarmError::StreamedJournal), "{err}");
}

#[test]
fn warm_start_reproduces_the_cold_fingerprint() {
    let reg = registry();
    let mut cold = Catalog::new();
    cold.push(ScenarioSpec::new("s", "stream", 60_000));
    let cold_fp = fingerprint_of(
        &run_farm(&cold, Arc::clone(&reg), &FarmConfig::default())
            .expect("cold run")
            .legs[0]
            .outcome,
    );

    let mut warm = Catalog::new();
    // Three legs sharing one warm prefix; same budget, so all three and
    // the cold reference must agree bit-for-bit.
    for name in ["w1", "w2", "w3"] {
        warm.push(ScenarioSpec::new(name, "stream", 60_000).warm(20_000));
    }
    let report = run_farm(
        &warm,
        reg,
        &FarmConfig {
            workers: 3,
            ..FarmConfig::default()
        },
    )
    .expect("warm run");
    for leg in &report.legs {
        assert_eq!(
            fingerprint_of(&leg.outcome),
            cold_fp,
            "warm-started leg diverged: {}",
            report.summary()
        );
    }
}
