//! Process-isolation contract: worker deaths (abort, SIGKILL) become
//! typed outcomes, killed legs are retried from their on-disk
//! checkpoints to bit-identical fingerprints, and thread vs process
//! mode agree on a clean catalog.
//!
//! This test runs with `harness = false`: the binary doubles as the
//! farm's worker process (`worker_entry_from_env` at the top of `main`
//! re-enters it as a worker when the supervisor spawns it), and
//! libtest's harness would pollute the stdout the framed worker
//! protocol owns.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dmi_farm::{
    run_farm, Catalog, FarmConfig, FarmError, Isolation, Registry, ScenarioOutcome, ScenarioSpec,
};
use dmi_masters::{DmaConfig, DmaEngine, DmaKind};
use dmi_sw::{workloads, WorkloadCfg};
use dmi_system::{mem_base, CpuSpec, MemSpec, SystemBuilder};
use proptest::test_runner::{fnv, Rng};

/// One alloc-churn CPU on a wrapper memory: halts on its own quickly.
fn quick() -> SystemBuilder {
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_cpu(CpuSpec::new(workloads::alloc_churn(&WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 4,
        ..WorkloadCfg::default()
    })));
    b
}

/// A scalar CPU plus a bounded DMA fill: deterministic, runs a while.
fn stream() -> SystemBuilder {
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_cpu(CpuSpec::new(workloads::scalar_rw(&WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 16,
        ..WorkloadCfg::default()
    })));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 7 },
        dst: mem_base(0),
        words: 32,
        passes: 64,
        ..DmaConfig::default()
    })));
    b
}

fn registry() -> Arc<Registry> {
    let mut r = Registry::new();
    r.register("quick", quick);
    r.register("stream", stream);
    Arc::new(r)
}

fn fingerprint_of(outcome: &ScenarioOutcome) -> u32 {
    match outcome {
        ScenarioOutcome::Completed { fingerprint, .. } => *fingerprint,
        other => panic!("expected Completed, got {other:?}"),
    }
}

fn thread_cfg() -> FarmConfig {
    FarmConfig {
        workers: 2,
        ..FarmConfig::default()
    }
}

fn process_cfg(pool: usize) -> FarmConfig {
    FarmConfig::default().isolation(Isolation::Process { pool_size: pool })
}

fn scratch(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dmi-procmode-{}-{tag}.journal", std::process::id()));
    p
}

fn zero_workers_is_a_typed_error(reg: &Arc<Registry>) {
    let mut cat = Catalog::new();
    cat.push(ScenarioSpec::new("leg", "quick", 1_000));
    for cfg in [
        FarmConfig {
            workers: 0,
            ..FarmConfig::default()
        },
        process_cfg(0),
    ] {
        let err = run_farm(&cat, Arc::clone(reg), &cfg).expect_err("zero workers must be refused");
        assert!(matches!(err, FarmError::NoWorkers), "{err}");
    }
}

/// Thread and process isolation are two transports for the same
/// deterministic work: on a clean catalog the reports must agree leg
/// for leg, including warm-started legs (whose warm snapshots cross
/// the process boundary through the scratch spill directory).
fn process_mode_matches_thread_mode(reg: &Arc<Registry>) {
    let mut cat = Catalog::new();
    cat.push(ScenarioSpec::new("quick-a", "quick", 200_000));
    cat.push(ScenarioSpec::new("stream-a", "stream", 60_000).checkpoint(10_000));
    cat.push(ScenarioSpec::new("stream-b", "stream", 2_000));
    cat.push(ScenarioSpec::new("warm-1", "stream", 60_000).warm(20_000));
    cat.push(ScenarioSpec::new("warm-2", "stream", 60_000).warm(20_000));
    cat.push(ScenarioSpec::new("quick-b", "quick", 200_000).checkpoint(25_000));

    let threaded = run_farm(&cat, Arc::clone(reg), &thread_cfg()).expect("thread run");
    let processed = run_farm(&cat, Arc::clone(reg), &process_cfg(3)).expect("process run");
    assert_eq!(threaded.legs.len(), processed.legs.len());
    for (t, p) in threaded.legs.iter().zip(&processed.legs) {
        assert_eq!(
            t.outcome, p.outcome,
            "isolation mode must not affect outcomes:\nthread:\n{}\nprocess:\n{}",
            threaded.summary(),
            processed.summary()
        );
        assert_eq!(t.attempts, p.attempts);
    }
    assert_eq!(processed.retried, 0);
    assert_eq!(processed.worker_deaths, 0, "{}", processed.summary());
    assert!(processed.all_expected(&cat));
}

/// A panic inside a worker *process* is caught at that process's unwind
/// boundary (not the farm's) and retried to the reference fingerprint.
fn panic_in_a_process_worker_is_isolated(reg: &Arc<Registry>) {
    let mut reference = Catalog::new();
    reference.push(ScenarioSpec::new("stream", "stream", 60_000).checkpoint(2_000));
    let expected = run_farm(&reference, Arc::clone(reg), &thread_cfg()).expect("reference");
    let expected_fp = fingerprint_of(&expected.legs[0].outcome);

    let mut cat = Catalog::new();
    cat.push(
        ScenarioSpec::new("stream", "stream", 60_000)
            .checkpoint(2_000)
            .retries(1)
            .inject_panic_at(6_000),
    );
    cat.push(ScenarioSpec::new("sibling", "quick", 200_000));
    let report = run_farm(&cat, Arc::clone(reg), &process_cfg(2)).expect("farm survives");
    assert_eq!(report.legs[0].attempts, 2, "{}", report.summary());
    assert_eq!(fingerprint_of(&report.legs[0].outcome), expected_fp);
    assert!(report.legs[1].outcome.is_success());
    assert_eq!(report.worker_deaths, 0, "a panic must not kill the worker");
}

/// The abort probe takes its whole worker process down mid-leg — the
/// stand-in for an OOM kill. The supervisor must see the death, respawn,
/// and retry the leg from the checkpoint file the dead worker exported,
/// landing on the bit-identical fingerprint.
fn abort_mid_leg_is_retried_bit_identically(reg: &Arc<Registry>) {
    let mut reference = Catalog::new();
    reference.push(ScenarioSpec::new("stream", "stream", 60_000).checkpoint(2_000));
    let expected = run_farm(&reference, Arc::clone(reg), &thread_cfg()).expect("reference");
    let expected_fp = fingerprint_of(&expected.legs[0].outcome);

    let mut cat = Catalog::new();
    cat.push(
        ScenarioSpec::new("stream", "stream", 60_000)
            .checkpoint(2_000)
            .retries(1)
            .inject_abort_at(6_000),
    );
    cat.push(ScenarioSpec::new("sibling", "quick", 200_000));
    let report = run_farm(&cat, Arc::clone(reg), &process_cfg(2)).expect("farm survives the abort");
    assert!(report.worker_deaths >= 1, "{}", report.summary());
    assert!(report.retried >= 1);
    assert_eq!(report.legs[0].attempts, 2);
    assert_eq!(
        fingerprint_of(&report.legs[0].outcome),
        expected_fp,
        "retry after worker death must resume from the exported checkpoint"
    );
    assert!(report.legs[1].outcome.is_success());

    // With no retry budget, the death is the leg's final, typed outcome.
    let mut cat = Catalog::new();
    cat.push(
        ScenarioSpec::new("doomed", "stream", 60_000)
            .checkpoint(2_000)
            .inject_abort_at(6_000)
            .expect_failure(),
    );
    let report = run_farm(&cat, Arc::clone(reg), &process_cfg(1)).expect("farm survives");
    match &report.legs[0].outcome {
        ScenarioOutcome::WorkerDied { signal, attempt } => {
            assert!(signal.is_some(), "abort raises a signal");
            assert_eq!(*attempt, 0);
        }
        other => panic!("expected WorkerDied, got {other:?}"),
    }
    assert!(report.all_expected(&cat));
}

/// Pids of live worker processes spawned by *this* process: children
/// (by /proc stat ppid) whose environment carries the worker marker.
fn worker_children() -> Vec<u32> {
    let me = std::process::id();
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return out;
    };
    for entry in entries.flatten() {
        let Some(pid) = entry
            .file_name()
            .to_str()
            .and_then(|s| s.parse::<u32>().ok())
        else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        // Fields after the parenthesized comm: state ppid ...
        let Some(rest) = stat.rsplit_once(')').map(|(_, r)| r) else {
            continue;
        };
        let ppid: Option<u32> = rest.split_whitespace().nth(1).and_then(|f| f.parse().ok());
        if ppid != Some(me) {
            continue;
        }
        let Ok(environ) = std::fs::read(format!("/proc/{pid}/environ")) else {
            continue;
        };
        if environ
            .split(|b| *b == 0)
            .any(|kv| kv.starts_with(dmi_farm::WORKER_ENV.as_bytes()))
        {
            out.push(pid);
        }
    }
    out
}

fn sigkill(pid: u32) {
    let _ = std::process::Command::new("sh")
        .arg("-c")
        .arg(format!("kill -9 {pid}"))
        .status();
}

/// The SIGKILL property: a worker process killed at a *random* moment
/// mid-farm never panics the farm, never loses a completed leg, and the
/// journal-resumed aggregate is bit-identical to an undisturbed run.
fn random_sigkill_never_loses_a_leg(reg: &Arc<Registry>) {
    let catalog = || {
        let mut c = Catalog::new();
        c.push(
            ScenarioSpec::new("a", "stream", 150_000)
                .checkpoint(5_000)
                .retries(2),
        );
        c.push(
            ScenarioSpec::new("b", "quick", 200_000)
                .checkpoint(25_000)
                .retries(2),
        );
        c.push(
            ScenarioSpec::new("c", "stream", 120_000)
                .checkpoint(5_000)
                .retries(2),
        );
        c
    };
    let reference = run_farm(&catalog(), Arc::clone(reg), &thread_cfg()).expect("reference");

    let seed = fnv("process_mode::random_sigkill_never_loses_a_leg");
    let cases: u64 = std::env::var("DMI_SIGKILL_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    for case in 0..cases {
        let mut rng = Rng::for_case(seed, case);
        // Two kills max: each leg has a 3-attempt budget, so even both
        // kills landing on the same leg cannot exhaust it.
        let delays: Vec<u64> = (0..2).map(|_| 5 + rng.below(150)).collect();
        let journal = scratch(&format!("sigkill{case}"));
        let _ = std::fs::remove_file(&journal);

        let stop = Arc::new(AtomicBool::new(false));
        let killer = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for delay in delays {
                    let mut waited = 0;
                    while waited < delay && !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(10));
                        waited += 10;
                    }
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    if let Some(pid) = worker_children().first() {
                        sigkill(*pid);
                    }
                }
            })
        };

        let cfg = FarmConfig {
            journal: Some(journal.clone()),
            ..process_cfg(2)
        };
        let report = run_farm(&catalog(), Arc::clone(reg), &cfg).expect("farm survives SIGKILL");
        stop.store(true, Ordering::Relaxed);
        killer.join().expect("killer thread");

        assert_eq!(report.legs.len(), 3, "no leg may be lost");
        for (r, f) in reference.legs.iter().zip(&report.legs) {
            assert_eq!(
                r.outcome,
                f.outcome,
                "case {case}: killed-and-retried aggregate must be bit-identical\n{}",
                report.summary()
            );
        }
        // Resume over the journal: everything was durably recorded.
        let resumed = run_farm(&catalog(), Arc::clone(reg), &cfg).expect("journal resume");
        assert_eq!(resumed.skipped, 3, "case {case}");
        for (r, f) in report.legs.iter().zip(&resumed.legs) {
            assert_eq!(r.outcome, f.outcome);
        }
        eprintln!(
            "  case {case}: worker_deaths={} retried={}",
            report.worker_deaths, report.retried
        );
        let _ = std::fs::remove_file(&journal);
    }
}

type TestFn = fn(&Arc<Registry>);

fn main() {
    let reg = registry();
    // Worker re-entry MUST precede any stdout writes: when the farm
    // spawns this binary as a worker, stdout is the framed result pipe.
    dmi_farm::worker_entry_from_env(&reg);

    let tests: &[(&str, TestFn)] = &[
        ("zero_workers_is_a_typed_error", zero_workers_is_a_typed_error),
        (
            "process_mode_matches_thread_mode",
            process_mode_matches_thread_mode,
        ),
        (
            "panic_in_a_process_worker_is_isolated",
            panic_in_a_process_worker_is_isolated,
        ),
        (
            "abort_mid_leg_is_retried_bit_identically",
            abort_mid_leg_is_retried_bit_identically,
        ),
        (
            "random_sigkill_never_loses_a_leg",
            random_sigkill_never_loses_a_leg,
        ),
    ];
    for (name, test) in tests {
        eprintln!("running {name} ...");
        test(&reg);
        eprintln!("ok      {name}");
    }
    println!("process_mode: {} tests passed", tests.len());
}
