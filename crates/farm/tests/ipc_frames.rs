//! The IPC cousin of `journal_resume.rs`: the worker pipe uses the same
//! CRC-framed record protocol as the journal, so a stream truncated at
//! *any* byte offset (a SIGKILLed worker mid-write) must deliver
//! exactly the complete prefix of records — never a torn or corrupt
//! one — and a mid-stream bit flip must poison the stream rather than
//! resynchronize onto garbage.

use dmi_farm::ScenarioOutcome;
use dmi_kernel::{frame_record, FrameStream, StateReader, StateWriter};
use proptest::prelude::*;

/// A deterministic mix of outcome records, like a worker's result
/// stream.
fn records(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let outcome = match i % 4 {
                0 => ScenarioOutcome::Completed {
                    fingerprint: 0xC0DE_0000 ^ i as u32,
                    cycles: 10_000 + i as u64,
                    cause: "CycleBudget".into(),
                },
                1 => ScenarioOutcome::Panicked {
                    message: format!("injected panic #{i}"),
                },
                2 => ScenarioOutcome::TimedOut { hard: i % 8 == 2 },
                _ => ScenarioOutcome::WorkerDied {
                    signal: (i % 8 == 3).then_some(9),
                    attempt: i as u32,
                },
            };
            let mut w = StateWriter::new();
            outcome.encode(&mut w);
            w.into_bytes()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation at any offset, fed in any chunking, yields exactly
    /// the records that fit completely before the cut — the partial
    /// tail stays buffered, is never delivered, and never corrupts.
    #[test]
    fn truncated_stream_delivers_exactly_the_complete_prefix(
        n in 1usize..10,
        cut_frac in 0u32..=1000,
        chunk in 1usize..64,
    ) {
        let payloads = records(n);
        let wire: Vec<u8> = payloads.iter().flat_map(|p| frame_record(p)).collect();
        let cut = (wire.len() as u64 * cut_frac as u64 / 1000) as usize;
        let torn = &wire[..cut];

        let mut stream = FrameStream::new();
        let mut delivered = Vec::new();
        for piece in torn.chunks(chunk) {
            stream.feed(piece);
            while let Some(p) = stream.next_payload() {
                delivered.push(p);
            }
        }
        prop_assert!(!stream.is_corrupt(), "truncation is not corruption");

        // How many records fit completely before the cut?
        let mut fit = 0usize;
        let mut off = 0usize;
        for p in &payloads {
            off += 8 + p.len();
            if off <= cut {
                fit += 1;
            } else {
                break;
            }
        }
        prop_assert_eq!(delivered.len(), fit);
        for (d, p) in delivered.iter().zip(&payloads) {
            prop_assert_eq!(d, p);
            // And each delivered payload decodes to the original record.
            let mut r = StateReader::new(d);
            prop_assert!(ScenarioOutcome::decode(&mut r).is_ok());
        }
    }

    /// A bit flip anywhere in the stream delivers only records strictly
    /// before the flip, then latches corrupt — no resynchronization, no
    /// invented records, exactly the journal's torn-tail discipline.
    #[test]
    fn bit_flip_poisons_the_stream_without_inventing_records(
        n in 2usize..10,
        flip_frac in 0u32..1000,
        bit in 0u8..8,
        chunk in 1usize..64,
    ) {
        let payloads = records(n);
        let mut wire: Vec<u8> = payloads.iter().flat_map(|p| frame_record(p)).collect();
        let flip = (wire.len() as u64 * flip_frac as u64 / 1000) as usize;
        let flip = flip.min(wire.len() - 1);
        wire[flip] ^= 1 << bit;

        let mut stream = FrameStream::new();
        let mut delivered = Vec::new();
        for piece in wire.chunks(chunk) {
            stream.feed(piece);
            while let Some(p) = stream.next_payload() {
                delivered.push(p);
            }
        }
        // Records wholly before the flipped byte are intact...
        let mut intact = 0usize;
        let mut off = 0usize;
        for p in &payloads {
            off += 8 + p.len();
            if off <= flip {
                intact += 1;
            } else {
                break;
            }
        }
        prop_assert!(delivered.len() >= intact);
        for (d, p) in delivered.iter().take(intact).zip(&payloads) {
            prop_assert_eq!(d, p);
        }
        // ...and nothing delivered may differ from the original record
        // at its position: a flip either leaves a frame's CRC check
        // failing (stream corrupt, delivery stops) or never delivers it.
        for (d, p) in delivered.iter().zip(&payloads) {
            prop_assert_eq!(d, p, "a corrupted frame must never be delivered");
        }
        prop_assert!(delivered.len() <= payloads.len());
    }
}
