//! Divergence bisection: two builds that differ only in a deterministic
//! fault plan diverge at the fault's first firing; the bisector must
//! localize that to one checkpoint-grid interval and produce a repro
//! that replays from the shared base snapshot.

use dmi_farm::bisect_divergence;
use dmi_masters::{BurstSpec, DmaConfig, DmaEngine, DmaKind, RetryPolicy};
use dmi_system::{
    mem_base, FaultKind, FaultPlan, FaultSite, FaultSpec, FaultTrigger, McSystem, MemSpec,
    SystemBuilder,
};

/// A DMA system carrying a one-spec fault plan that XOR-flips the 5th
/// write beat with `mask`. The two variants under bisection differ
/// *only* in the mask: `0` is an armed no-op (same trigger bookkeeping,
/// same RNG stream, identical serialized fault state), a non-zero mask
/// corrupts stored data — so their snapshots are bit-identical until
/// the fault fires and permanently different after.
fn dma_system(mask: u32) -> McSystem {
    dma_system_nth(mask, 5)
}

fn dma_system_nth(mask: u32, nth: u64) -> McSystem {
    let plan = FaultPlan::new(0xB15E).with(FaultSpec::new(
        FaultSite::MemBeat {
            mem: 0,
            master: None,
            writing: Some(true),
        },
        FaultTrigger::Nth(nth),
        FaultKind::FlipData { mask },
    ));
    let mut b = SystemBuilder::new().faults(plan).fault_injection(true);
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 0xC0DE },
        dst: mem_base(0),
        words: 64,
        passes: 1,
        burst: Some(BurstSpec {
            beats: 16,
            verify: false,
            at: None,
        }),
        retry: Some(RetryPolicy {
            max_retries: 4,
            backoff_cycles: 2,
            escalate: false,
        }),
        ..DmaConfig::default()
    })));
    b.build().expect("dma system")
}

#[test]
fn bisector_localizes_the_divergence_and_replays_it() {
    const END: u64 = 4_000;
    const GRID: u64 = 250;

    let d = bisect_divergence(
        || dma_system(0),
        || dma_system(0x8000_0001),
        END,
        GRID,
    )
    .expect("fault-injected twin must diverge");
    assert!(
        d.first_diverge > 0 && d.first_diverge <= END,
        "diverge cycle {} out of range",
        d.first_diverge
    );
    assert_eq!(
        d.interval(),
        GRID,
        "bisection must tighten to one grid interval: {}",
        d.repro_spec()
    );
    assert_eq!(d.last_agree + GRID, d.first_diverge);
    assert!(
        !d.sections.is_empty(),
        "differing snapshot sections must be named"
    );
    assert!(
        d.repro_spec().contains("run 250 cycles"),
        "{}",
        d.repro_spec()
    );
    // The minimized repro reproduces the divergence from the shared
    // base snapshot, without re-simulating the prefix.
    assert!(
        d.replay(|| dma_system(0), || dma_system(0x8000_0001)),
        "repro must replay: {}",
        d.repro_spec()
    );
}

#[test]
fn identical_builds_report_no_divergence() {
    assert!(bisect_divergence(|| dma_system(0), || dma_system(0), 2_000, 200).is_none());
    // A fault that never fires inside the window is also clean, even
    // though the two builds' armed masks differ.
    assert!(
        bisect_divergence(
            || dma_system_nth(0, 1_000_000),
            || dma_system_nth(0x8000_0001, 1_000_000),
            2_000,
            200,
        )
        .is_none(),
        "an unfired fault must not count as divergence"
    );
}
