//! The crash-safe run journal: an append-only record of completed legs,
//! so a farm process killed mid-run (power loss, OOM kill, `kill -9`)
//! resumes by skipping exactly the legs that already finished.
//!
//! # File format
//!
//! ```text
//! magic    b"DMIFARM\x1a"      (8 bytes)
//! version  u32 LE              (currently 1)
//! crc      u32 LE              catalog CRC (Catalog::crc)
//! legs     u32 LE              catalog leg count
//! records  *                   CRC-framed records (dmi_kernel::frame_record)
//! ```
//!
//! Each record's payload is a tagged [`StateWriter`] encoding; the only
//! tag today is `1` = *leg done*: `leg u32, attempts u32,`
//! [`ScenarioOutcome`] encoding. Records are appended with an fsync per
//! leg — a leg is either durably journaled or it is not.
//!
//! # Torn tails
//!
//! A crash can tear the last record (or even the header). Opening a
//! journal is therefore *tolerant*: records are replayed up to the
//! first torn or corrupt frame, the file is physically truncated there,
//! and appending continues from the trimmed tail. A torn *header* means
//! nothing was durably recorded, so the journal restarts empty. The one
//! non-tolerated condition is a valid header whose catalog CRC differs
//! from the catalog being run — that journal belongs to different work,
//! and silently skipping its leg indices would corrupt results.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use dmi_kernel::{frame_record, next_framed_record, FramedRecord, StateReader, StateWriter};

use crate::outcome::ScenarioOutcome;

/// Magic bytes at the start of every journal file.
pub const JOURNAL_MAGIC: [u8; 8] = *b"DMIFARM\x1a";

/// Current journal format version.
pub const JOURNAL_VERSION: u32 = 1;

/// Record tag: a leg completed with a final outcome.
const TAG_LEG_DONE: u8 = 1;

/// Why a journal could not be opened.
#[derive(Debug)]
pub enum JournalError {
    /// Reading, writing, or truncating the journal file failed.
    Io(std::io::Error),
    /// The journal was written by a different catalog: resuming from it
    /// would map completed-leg indices onto the wrong scenarios.
    CatalogMismatch {
        /// CRC of the catalog being run.
        expected: u32,
        /// CRC recorded in the journal header.
        found: u32,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::CatalogMismatch { expected, found } => write!(
                f,
                "journal belongs to a different catalog \
                 (catalog crc {expected:08x}, journal has {found:08x})"
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::CatalogMismatch { .. } => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// An open run journal: the completed legs replayed from disk, plus the
/// handle further completions are appended to.
#[derive(Debug)]
pub struct Journal {
    file: File,
    /// Completed legs by catalog index: `(attempts, outcome)`.
    completed: Vec<Option<(u32, ScenarioOutcome)>>,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for the catalog
    /// identified by `catalog_crc` with `leg_count` legs.
    ///
    /// Replays whatever was durably recorded, trims any torn tail, and
    /// positions the file for appending. A missing file, or one whose
    /// header itself is torn or unrecognizable, starts an empty journal
    /// (nothing durable was ever written).
    ///
    /// # Errors
    ///
    /// [`JournalError::CatalogMismatch`] if the file has a valid header
    /// for a *different* catalog; [`JournalError::Io`] on filesystem
    /// failures.
    pub fn open(
        path: impl AsRef<Path>,
        catalog_crc: u32,
        leg_count: usize,
    ) -> Result<Journal, JournalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut completed: Vec<Option<(u32, ScenarioOutcome)>> = vec![None; leg_count];
        let header_len = JOURNAL_MAGIC.len() + 12;
        let header_ok = bytes.len() >= header_len
            && bytes[..JOURNAL_MAGIC.len()] == JOURNAL_MAGIC
            && u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) == JOURNAL_VERSION;

        let keep = if header_ok {
            let found = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
            if found != catalog_crc {
                return Err(JournalError::CatalogMismatch {
                    expected: catalog_crc,
                    found,
                });
            }
            // Replay records up to the first torn frame; remember where
            // the durable prefix ends so debris past it can be trimmed.
            let mut off = header_len;
            while let FramedRecord::Complete { payload, consumed } =
                next_framed_record(&bytes[off..])
            {
                Self::apply_record(payload, &mut completed);
                off += consumed;
            }
            off as u64
        } else {
            // Torn or foreign header: restart the journal. (A foreign
            // *valid* header was handled above as CatalogMismatch; what
            // lands here is an interrupted first write or a non-journal
            // file the caller pointed us at.)
            let mut header = Vec::with_capacity(header_len);
            header.extend_from_slice(&JOURNAL_MAGIC);
            header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
            header.extend_from_slice(&catalog_crc.to_le_bytes());
            header.extend_from_slice(&(leg_count as u32).to_le_bytes());
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&header)?;
            header.len() as u64
        };

        file.set_len(keep)?;
        file.seek(SeekFrom::Start(keep))?;
        file.sync_data()?;
        Ok(Journal { file, completed })
    }

    /// Decodes one record payload into the completed-leg table. Corrupt
    /// payloads inside a CRC-valid frame cannot happen by bit rot (the
    /// frame checksum covers them); they would mean a writer bug, and
    /// are ignored rather than trusted.
    fn apply_record(payload: &[u8], completed: &mut [Option<(u32, ScenarioOutcome)>]) {
        let mut r = StateReader::new(payload);
        let parsed = (|| -> Result<(u32, u32, ScenarioOutcome), dmi_kernel::SnapshotError> {
            let tag = r.get_u8("journal record tag")?;
            if tag != TAG_LEG_DONE {
                return Err(dmi_kernel::SnapshotError::Corrupt {
                    context: format!("unknown journal record tag {tag}"),
                });
            }
            let leg = r.get_u32("journal leg index")?;
            let attempts = r.get_u32("journal attempts")?;
            let outcome = ScenarioOutcome::decode(&mut r)?;
            r.finish("journal record")?;
            Ok((leg, attempts, outcome))
        })();
        if let Ok((leg, attempts, outcome)) = parsed {
            if let Some(slot) = completed.get_mut(leg as usize) {
                *slot = Some((attempts, outcome));
            }
        }
    }

    /// The journaled result for `leg`, if that leg already completed in
    /// a previous (interrupted) run.
    pub fn completed(&self, leg: usize) -> Option<&(u32, ScenarioOutcome)> {
        self.completed.get(leg).and_then(|s| s.as_ref())
    }

    /// How many legs the journal already has final outcomes for.
    pub fn completed_count(&self) -> usize {
        self.completed.iter().filter(|s| s.is_some()).count()
    }

    /// Durably appends a completed leg: the record is framed, written,
    /// and fsynced before this returns.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on error the on-disk tail may be
    /// torn, which the next [`open`](Self::open) trims automatically.
    pub fn record(
        &mut self,
        leg: usize,
        attempts: u32,
        outcome: &ScenarioOutcome,
    ) -> Result<(), JournalError> {
        let mut w = StateWriter::new();
        w.put_u8(TAG_LEG_DONE);
        w.put_u32(leg as u32);
        w.put_u32(attempts);
        outcome.encode(&mut w);
        let framed = frame_record(&w.into_bytes());
        self.file.write_all(&framed)?;
        self.file.sync_data()?;
        if let Some(slot) = self.completed.get_mut(leg) {
            *slot = Some((attempts, outcome.clone()));
        }
        Ok(())
    }
}
