//! One scenario leg: what to run, for how long, and under which
//! supervision envelope.

/// A single entry of a scenario [`Catalog`](crate::Catalog): which
/// registered system to build, how many cycles to run it, and the
/// supervision envelope (checkpoint interval, watchdog deadline, retry
/// budget) the farm wraps around it.
///
/// The `inject_*` and `hang_ms` fields are deterministic *probe* hooks
/// for tests and CI smoke runs: they make a leg panic, stall, or abort
/// its whole worker process on purpose so the farm's isolation,
/// watchdog, and process-supervision paths are exercised on every run,
/// not only when something actually breaks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Display name of the leg (unique within a catalog by convention).
    pub name: String,
    /// Key of the system factory in the [`Registry`](crate::Registry).
    pub system: String,
    /// Cycle budget, counted from the scenario's cold start. The leg is
    /// complete when the system reaches this cycle (or halts earlier).
    pub cycles: u64,
    /// Checkpoint interval in cycles. `Some(n)`: the worker snapshots
    /// the system every `n` cycles, so a retry resumes from the last
    /// snapshot instead of cold. `None`: retries restart cold.
    pub checkpoint_every: Option<u64>,
    /// Soft watchdog: host-time budget for one attempt of this leg,
    /// enforced *inside* the worker via
    /// [`StopCondition::wall_clock_every`](dmi_system::StopCondition::wall_clock_every).
    /// `None`: no per-attempt deadline (the supervisor's hard deadline,
    /// if any, still applies).
    pub deadline_ms: Option<u64>,
    /// How many times a failed attempt (panic or soft timeout) is
    /// retried before the leg is given up. `0` = one attempt only.
    pub retries: u32,
    /// Warm-start point: legs sharing a `system` key and this value
    /// reuse one cached snapshot taken after `warm_cycles` cold cycles
    /// instead of each re-simulating the warmup prefix.
    pub warm_cycles: Option<u64>,
    /// Path of an on-disk [`Snapshot`](dmi_kernel::Snapshot) file the
    /// leg starts from instead of a cold build — the file-based cousin
    /// of `warm_cycles` for prefixes exported by an earlier run
    /// (`McSystem::checkpoint().save(..)`). The snapshot must fit the
    /// leg's `system` topology; a missing or foreign file is a
    /// deterministic [`Failed`](crate::ScenarioOutcome::Failed) outcome,
    /// not a cold fallback (a leg silently fingerprinting differently
    /// from its catalog intent would be worse). Ignored on checkpoint
    /// resume (the mid-leg snapshot already embeds the prefix).
    pub warm_snapshot: Option<String>,
    /// Overrides the built system's fault-injection master switch
    /// (leaves the builder's setting alone when `None`).
    pub fault_injection: Option<bool>,
    /// Whether this leg is *expected* not to complete (probe legs:
    /// injected panics that exhaust retries, injected hangs). Used by
    /// the CLI to turn "the probe failed as designed" into a passing
    /// exit code.
    pub expect_failure: bool,
    /// Probe hook: on attempt 0, the worker panics once the system
    /// crosses this cycle (after exporting its checkpoint, so a retry
    /// resumes warm and the leg still produces its deterministic
    /// fingerprint).
    pub inject_panic_at: Option<u64>,
    /// Probe hook: every attempt sleeps this long at leg start before
    /// simulating — a stand-in for a genuinely stuck worker that never
    /// reaches the in-run watchdog, so the supervisor's hard deadline
    /// and worker-abandonment path can be tested deterministically.
    pub hang_ms: Option<u64>,
    /// Probe hook: on attempt 0, the worker calls
    /// [`std::process::abort`] once the system crosses this cycle
    /// (after exporting its checkpoint) — no unwind, no cleanup, the
    /// stand-in for an OOM kill or stack overflow. Only meaningful
    /// under [`Isolation::Process`](crate::Isolation::Process); in
    /// thread mode the abort takes the whole farm process with it,
    /// which is exactly the gap process isolation exists to close.
    pub inject_abort_at: Option<u64>,
}

impl ScenarioSpec {
    /// A spec with the given identity and cycle budget; every
    /// supervision knob at its default (no checkpoints, no deadline, no
    /// retries, no probes).
    pub fn new(name: impl Into<String>, system: impl Into<String>, cycles: u64) -> Self {
        ScenarioSpec {
            name: name.into(),
            system: system.into(),
            cycles,
            checkpoint_every: None,
            deadline_ms: None,
            retries: 0,
            warm_cycles: None,
            warm_snapshot: None,
            fault_injection: None,
            expect_failure: false,
            inject_panic_at: None,
            hang_ms: None,
            inject_abort_at: None,
        }
    }

    /// Sets the checkpoint interval (see
    /// [`checkpoint_every`](Self::checkpoint_every)).
    pub fn checkpoint(mut self, interval_cycles: u64) -> Self {
        self.checkpoint_every = Some(interval_cycles.max(1));
        self
    }

    /// Sets the per-attempt soft watchdog deadline in milliseconds.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the retry budget.
    pub fn retries(mut self, n: u32) -> Self {
        self.retries = n;
        self
    }

    /// Sets the warm-start point (see [`warm_cycles`](Self::warm_cycles)).
    pub fn warm(mut self, cycles: u64) -> Self {
        self.warm_cycles = Some(cycles);
        self
    }

    /// Starts the leg from an on-disk snapshot file (see
    /// [`warm_snapshot`](Self::warm_snapshot)).
    pub fn warm_snapshot(mut self, path: impl Into<String>) -> Self {
        self.warm_snapshot = Some(path.into());
        self
    }

    /// Overrides the fault-injection master switch for this leg.
    pub fn faults(mut self, on: bool) -> Self {
        self.fault_injection = Some(on);
        self
    }

    /// Marks the leg as an expected-failure probe.
    pub fn expect_failure(mut self) -> Self {
        self.expect_failure = true;
        self
    }

    /// Arms the injected-panic probe (see
    /// [`inject_panic_at`](Self::inject_panic_at)).
    pub fn inject_panic_at(mut self, cycle: u64) -> Self {
        self.inject_panic_at = Some(cycle);
        self
    }

    /// Arms the injected-hang probe (see [`hang_ms`](Self::hang_ms)).
    pub fn hang_ms(mut self, ms: u64) -> Self {
        self.hang_ms = Some(ms);
        self
    }

    /// Arms the injected-abort probe (see
    /// [`inject_abort_at`](Self::inject_abort_at)).
    pub fn inject_abort_at(mut self, cycle: u64) -> Self {
        self.inject_abort_at = Some(cycle);
        self
    }
}
