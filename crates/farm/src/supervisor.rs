//! The farm supervisor: M workers (threads or child processes), one
//! dispatcher, typed failure handling.
//!
//! Supervision model:
//!
//! * every leg runs on a worker inside `catch_unwind` — a panicking
//!   scenario is converted to a typed outcome and the worker survives
//!   to take the next job;
//! * under [`Isolation::Process`] each worker is a child process; a
//!   worker that aborts, is SIGKILLed, OOM-killed, or tears its result
//!   pipe mid-frame becomes a typed
//!   [`ScenarioOutcome::WorkerDied`] instead of taking the farm down,
//!   and the pool respawns a replacement with bounded respawn-storm
//!   throttling;
//! * a failed attempt (panic, soft watchdog timeout, or worker death)
//!   is retried with capped exponential backoff, resuming from the
//!   newest checkpoint the attempt exported — across the unwind
//!   boundary in thread mode, via an on-disk checkpoint file in
//!   process mode (where it survives even SIGKILL);
//! * a worker that stops responding entirely (it never reaches the
//!   in-run watchdog) is *abandoned* at the supervisor's hard deadline:
//!   its thread is detached (or its process killed), a replacement is
//!   spawned, and any result the zombie later produces is recognized by
//!   its stale job id and dropped;
//! * completed legs are durably journaled (when a journal is
//!   configured) before the next job is dispatched, so a killed farm
//!   process resumes by skipping exactly the finished legs.

// The supervisor's scheduling (backoff expiry, hard deadlines, respawn
// throttling) is host-time by nature; this is the sanctioned wall-clock
// site of the crate, next to the watchdogs in `worker.rs`.
#![allow(clippy::disallowed_methods)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dmi_kernel::Snapshot;

use crate::catalog::{Catalog, CatalogError};
use crate::journal::{Journal, JournalError};
use crate::outcome::{LegResult, ScenarioOutcome};
use crate::proc::{spawn_process, ProcWorker, ScratchDir, WireJob};
use crate::registry::Registry;
use crate::spec::ScenarioSpec;
use crate::worker::{run_leg, WarmCache};

/// How worker failures are contained: by unwind boundary or by process
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Isolation {
    /// Workers are threads of the farm process (the default). Panics
    /// and watchdog timeouts are isolated; an abort, stack overflow, or
    /// OOM kill still takes the whole farm down.
    Thread,
    /// Workers are child processes speaking the CRC-framed pipe
    /// protocol (see `crates/farm/README.md`). Any single-worker death
    /// — abort, SIGKILL, OOM kill, torn pipe — becomes a typed
    /// [`ScenarioOutcome::WorkerDied`] and the leg is retried from its
    /// last exported checkpoint file. Requires the spawned binary to
    /// call [`worker_entry_from_env`](crate::worker_entry_from_env)
    /// before writing anything to stdout.
    Process {
        /// Number of worker processes in the pool.
        pool_size: usize,
    },
}

/// How a farm run is supervised.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Worker thread count under [`Isolation::Thread`]. `0` is refused
    /// as [`FarmError::NoWorkers`].
    pub workers: usize,
    /// Journal file for crash-safe resume; `None` = in-memory only.
    pub journal: Option<PathBuf>,
    /// Hard per-attempt deadline: a worker that has not reported for
    /// this long is abandoned and replaced. Should comfortably exceed
    /// every leg's soft `deadline_ms`. `None` = never abandon.
    pub hard_deadline: Option<Duration>,
    /// Poll granularity (cycles) for the legs' soft wall-clock
    /// watchdogs — how much simulation a leg may overshoot its deadline
    /// by. See [`StopCondition::wall_clock_every`](dmi_system::StopCondition::wall_clock_every).
    pub watchdog_poll: u64,
    /// Base retry backoff; retry `n` waits `backoff << (n-1)`, capped.
    /// Also throttles process-worker respawns after consecutive deaths.
    pub backoff: Duration,
    /// Upper bound on the retry (and respawn) backoff.
    pub backoff_cap: Duration,
    /// Thread or process workers; see [`Isolation`].
    pub isolation: Isolation,
    /// Program + arguments to spawn as a worker process (`None`:
    /// re-exec [`std::env::current_exe`] with no arguments). Only used
    /// under [`Isolation::Process`]. The binary must call
    /// [`worker_entry_from_env`](crate::worker_entry_from_env) first
    /// thing in `main`.
    pub worker_command: Option<Vec<String>>,
    /// Cap on total worker-process deaths in one farm run before the
    /// run itself fails as [`FarmError::RespawnStorm`] — the backstop
    /// against an environment (broken worker binary, hostile OOM
    /// killer) where respawned workers just keep dying.
    pub respawn_limit: u32,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            workers: 2,
            journal: None,
            hard_deadline: None,
            watchdog_poll: dmi_system::DEFAULT_POLL_CYCLES,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            isolation: Isolation::Thread,
            worker_command: None,
            respawn_limit: 64,
        }
    }
}

impl FarmConfig {
    /// Sets the isolation mode (builder style).
    pub fn isolation(mut self, isolation: Isolation) -> Self {
        self.isolation = isolation;
        self
    }

    /// The effective pool size for the configured isolation mode.
    fn pool_size(&self) -> usize {
        match self.isolation {
            Isolation::Thread => self.workers,
            Isolation::Process { pool_size } => pool_size,
        }
    }
}

/// Why a farm run could not execute at all (individual leg failures are
/// *outcomes*, not errors).
#[derive(Debug)]
pub enum FarmError {
    /// The journal could not be opened or written.
    Journal(JournalError),
    /// Every worker disappeared with legs still outstanding (a farm
    /// bug by construction — workers survive scenario panics).
    WorkersLost,
    /// The configured pool size is zero: the run could never make
    /// progress, and silently hanging on an empty pool would be worse.
    NoWorkers,
    /// A streamed catalog yielded a parse error mid-run (legs already
    /// finished stay finished; their results are in completed work the
    /// caller may re-request, but the run as a whole is refused).
    Catalog(CatalogError),
    /// A worker process could not be spawned.
    Spawn(std::io::Error),
    /// Worker processes died more than
    /// [`respawn_limit`](FarmConfig::respawn_limit) times in one run —
    /// the environment is eating workers faster than respawning them
    /// can help.
    RespawnStorm {
        /// Worker deaths counted when the run gave up.
        deaths: u32,
    },
    /// A journal was configured together with a streamed catalog. The
    /// journal identifies legs by index in a catalog whose CRC it pins;
    /// a stream has neither a CRC nor a known leg count up front, so
    /// the combination is refused rather than mis-resumed.
    StreamedJournal,
}

impl std::fmt::Display for FarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FarmError::Journal(e) => write!(f, "farm journal: {e}"),
            FarmError::WorkersLost => write!(f, "all farm workers lost"),
            FarmError::NoWorkers => write!(f, "farm configured with zero workers"),
            FarmError::Catalog(e) => write!(f, "streamed catalog: {e}"),
            FarmError::Spawn(e) => write!(f, "cannot spawn worker process: {e}"),
            FarmError::RespawnStorm { deaths } => {
                write!(f, "respawn storm: {deaths} worker deaths in one run")
            }
            FarmError::StreamedJournal => {
                write!(f, "journaling requires a materialized catalog, not a stream")
            }
        }
    }
}

impl std::error::Error for FarmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FarmError::Journal(e) => Some(e),
            FarmError::Catalog(e) => Some(e),
            FarmError::Spawn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JournalError> for FarmError {
    fn from(e: JournalError) -> Self {
        FarmError::Journal(e)
    }
}

/// What a farm run produced.
#[derive(Debug, Clone)]
pub struct FarmReport {
    /// One final result per catalog leg, in catalog order.
    pub legs: Vec<LegResult>,
    /// Legs adopted from the journal of an interrupted earlier run.
    pub skipped: usize,
    /// Retry attempts dispatched (across all legs).
    pub retried: u32,
    /// Workers abandoned at the hard deadline.
    pub abandoned: u32,
    /// Worker processes that died mid-run (always 0 in thread mode).
    pub worker_deaths: u32,
}

impl FarmReport {
    /// Whether every leg matched its catalog expectation
    /// (`expect_failure` probes count as matched when they fail).
    pub fn all_expected(&self, catalog: &Catalog) -> bool {
        self.legs
            .iter()
            .zip(&catalog.scenarios)
            .all(|(leg, spec)| leg.matches_expectation(spec.expect_failure))
    }

    /// Multi-line human rendering, one leg per line.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for leg in &self.legs {
            let adopted = if leg.adopted { " [journaled]" } else { "" };
            out.push_str(&format!(
                "{:24} attempts={} {}{}\n",
                leg.name,
                leg.attempts,
                leg.outcome.brief(),
                adopted
            ));
        }
        out.push_str(&format!(
            "{} legs ({} resumed from journal), {} retries, {} workers abandoned, \
             {} worker deaths\n",
            self.legs.len(),
            self.skipped,
            self.retried,
            self.abandoned,
            self.worker_deaths
        ));
        out
    }
}

/// Where a retried attempt resumes from.
enum ResumeFrom {
    /// An in-memory snapshot exported across the unwind boundary
    /// (thread mode).
    Memory(Snapshot),
    /// A checkpoint file a (possibly dead) worker process exported
    /// (process mode).
    File(PathBuf),
}

/// One dispatched attempt.
struct Job {
    job_id: u64,
    leg: u32,
    attempt: u32,
    spec: ScenarioSpec,
    resume: Option<ResumeFrom>,
}

/// What a worker sends back.
pub(crate) struct WorkerMsg {
    pub(crate) worker: u64,
    pub(crate) job_id: u64,
    pub(crate) leg: u32,
    pub(crate) attempt: u32,
    pub(crate) outcome: ScenarioOutcome,
    /// Thread mode: the newest checkpoint, exported in memory.
    pub(crate) checkpoint: Option<(u64, Snapshot)>,
    /// Process mode: the cycle of the newest checkpoint the attempt
    /// exported to its leg's checkpoint file.
    pub(crate) file_checkpoint: Option<u64>,
}

/// Everything the supervisor can hear back.
pub(crate) enum SupMsg {
    /// A worker finished an attempt.
    Result(WorkerMsg),
    /// A worker process died or tore its pipe (reported by its reader
    /// thread; never sent in thread mode).
    Died {
        /// Id of the dead worker's slot.
        worker: u64,
    },
}

enum Backend {
    Thread {
        sender: Sender<Job>,
        handle: Option<JoinHandle<()>>,
    },
    Process(ProcWorker),
}

struct WorkerSlot {
    id: u64,
    backend: Backend,
    inflight: Option<InFlight>,
}

struct InFlight {
    job_id: u64,
    leg: u32,
    attempt: u32,
    /// The leg's spec, kept supervisor-side so retries and finalization
    /// never depend on a materialized catalog (streamed dispatch).
    spec: ScenarioSpec,
    started: Instant,
}

/// Count of panics the farm has converted to typed outcomes in this
/// process — lets tests assert isolation actually happened.
static PANICS_CAUGHT: AtomicU32 = AtomicU32::new(0);

/// Panics caught (process-wide) by farm workers so far.
pub fn panics_caught() -> u32 {
    PANICS_CAUGHT.load(Ordering::Relaxed)
}

pub(crate) fn note_panic_caught() {
    PANICS_CAUGHT.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn spawn_thread_worker(
    id: u64,
    registry: Arc<Registry>,
    warm: Arc<WarmCache>,
    watchdog_poll: u64,
    results: Sender<SupMsg>,
) -> WorkerSlot {
    let (tx, rx): (Sender<Job>, Receiver<Job>) = mpsc::channel();
    let handle = std::thread::Builder::new()
        .name(format!("farm-worker-{id}"))
        .spawn(move || {
            while let Ok(job) = rx.recv() {
                let mut export: Option<(u64, Snapshot)> = None;
                let outcome = match catch_unwind(AssertUnwindSafe(|| {
                    let resume = match &job.resume {
                        Some(ResumeFrom::Memory(snap)) => Some(snap.clone()),
                        // Thread dispatch never builds File resumes, but
                        // honoring one is harmless and keeps the enum
                        // total.
                        Some(ResumeFrom::File(path)) => Snapshot::load(path).ok(),
                        None => None,
                    };
                    run_leg(
                        &registry,
                        &job.spec,
                        job.attempt,
                        resume.as_ref(),
                        &warm,
                        watchdog_poll,
                        &mut |cycle, snap| export = Some((cycle, snap)),
                    )
                })) {
                    Ok(outcome) => outcome,
                    Err(payload) => {
                        note_panic_caught();
                        ScenarioOutcome::Panicked {
                            message: panic_message(payload),
                        }
                    }
                };
                let msg = WorkerMsg {
                    worker: id,
                    job_id: job.job_id,
                    leg: job.leg,
                    attempt: job.attempt,
                    outcome,
                    checkpoint: export,
                    file_checkpoint: None,
                };
                if results.send(SupMsg::Result(msg)).is_err() {
                    break; // supervisor gone
                }
            }
        })
        .expect("spawn farm worker");
    WorkerSlot {
        id,
        backend: Backend::Thread {
            sender: tx,
            handle: Some(handle),
        },
        inflight: None,
    }
}

fn backoff_delay(cfg: &FarmConfig, attempt_done: u32) -> Duration {
    // attempt_done = the attempt index that just failed (0-based);
    // retry n backs off base << n, capped.
    let shift = attempt_done.min(16);
    let d = cfg
        .backoff
        .checked_mul(1u32 << shift)
        .unwrap_or(cfg.backoff_cap);
    d.min(cfg.backoff_cap)
}

/// Respawn throttle: the first death in a streak respawns immediately,
/// every further consecutive death doubles the delay, capped — so a
/// single SIGKILL costs nothing, while a storm (every respawned worker
/// dying again) backs off instead of burning the host on exec loops.
fn respawn_delay(cfg: &FarmConfig, consecutive_deaths: u32) -> Duration {
    if consecutive_deaths <= 1 {
        Duration::ZERO
    } else {
        backoff_delay(cfg, consecutive_deaths - 2)
    }
}

/// Shuts a worker down (thread: close channel + join; process: kill +
/// reap + join reader) and returns the death signal for process
/// workers, if any.
fn shutdown_slot(slot: &mut WorkerSlot) -> Option<i32> {
    match &mut slot.backend {
        Backend::Thread { sender, handle } => {
            let (dead_tx, _) = mpsc::channel();
            *sender = dead_tx; // drop the real sender
            if let Some(handle) = handle.take() {
                let _ = handle.join();
            }
            None
        }
        Backend::Process(proc) => proc.shutdown(),
    }
}

/// Runs every leg of `catalog` over the configured worker pool.
///
/// Returns one [`LegResult`] per leg, in catalog order, regardless of
/// completion order. Individual leg failures (panics, timeouts, build
/// errors, worker-process deaths) are data in the report; only
/// infrastructure failures (the journal, total worker loss, respawn
/// storms) are `Err`.
///
/// # Errors
///
/// See [`FarmError`].
pub fn run_farm(
    catalog: &Catalog,
    registry: Arc<Registry>,
    cfg: &FarmConfig,
) -> Result<FarmReport, FarmError> {
    let n = catalog.len();
    let mut finals: Vec<Option<LegResult>> = vec![None; n];
    let mut skipped = 0usize;

    let journal = match &cfg.journal {
        Some(path) => Some(Journal::open(path, catalog.crc(), n)?),
        None => None,
    };
    if let Some(j) = &journal {
        for (i, spec) in catalog.scenarios.iter().enumerate() {
            if let Some((attempts, outcome)) = j.completed(i) {
                finals[i] = Some(LegResult {
                    leg: i as u32,
                    name: spec.name.clone(),
                    attempts: *attempts,
                    outcome: outcome.clone(),
                    adopted: true,
                });
                skipped += 1;
            }
        }
    }

    let mut source = catalog.scenarios.iter().cloned().map(Ok);
    run_farm_core(&mut source, finals, skipped, journal, registry, cfg)
}

/// Runs legs pulled lazily from `legs` — typically
/// [`Catalog::stream`](crate::Catalog::stream) over a file too large to
/// materialize. Legs are dispatched as workers go idle; at most
/// pool-size + retry-queue specs are held in memory at once.
///
/// Journaling is refused ([`FarmError::StreamedJournal`]): the journal
/// pins a catalog CRC and leg count a stream cannot provide up front.
///
/// # Errors
///
/// [`FarmError::Catalog`] the moment the stream yields a parse error
/// (legs already dispatched still finish first); otherwise see
/// [`FarmError`].
pub fn run_farm_stream<I>(
    legs: I,
    registry: Arc<Registry>,
    cfg: &FarmConfig,
) -> Result<FarmReport, FarmError>
where
    I: IntoIterator<Item = Result<ScenarioSpec, CatalogError>>,
{
    if cfg.journal.is_some() {
        return Err(FarmError::StreamedJournal);
    }
    let mut source = legs.into_iter();
    run_farm_core(&mut source, Vec::new(), 0, None, registry, cfg)
}

/// The dispatch loop shared by [`run_farm`] and [`run_farm_stream`]:
/// pulls legs lazily from `source` (skipping indices `finals` already
/// holds — journal adoptions), fans them out over the pool, supervises
/// retries / hard deadlines / worker deaths, and finalizes results in
/// leg order.
fn run_farm_core(
    source: &mut dyn Iterator<Item = Result<ScenarioSpec, CatalogError>>,
    mut finals: Vec<Option<LegResult>>,
    skipped: usize,
    mut journal: Option<Journal>,
    registry: Arc<Registry>,
    cfg: &FarmConfig,
) -> Result<FarmReport, FarmError> {
    let pool = cfg.pool_size();
    if pool == 0 {
        return Err(FarmError::NoWorkers);
    }
    let process_mode = matches!(cfg.isolation, Isolation::Process { .. });
    let scratch = if process_mode {
        Some(ScratchDir::create().map_err(FarmError::Spawn)?)
    } else {
        None
    };

    let warm = Arc::new(WarmCache::new());
    let (results_tx, results_rx) = mpsc::channel::<SupMsg>();
    let mut next_worker_id = 0u64;
    let spawn_slot = |next_worker_id: &mut u64| -> Result<WorkerSlot, FarmError> {
        let id = *next_worker_id;
        *next_worker_id += 1;
        if process_mode {
            let proc = spawn_process(id, cfg.worker_command.as_ref(), results_tx.clone())
                .map_err(FarmError::Spawn)?;
            Ok(WorkerSlot {
                id,
                backend: Backend::Process(proc),
                inflight: None,
            })
        } else {
            Ok(spawn_thread_worker(
                id,
                Arc::clone(&registry),
                Arc::clone(&warm),
                cfg.watchdog_poll,
                results_tx.clone(),
            ))
        }
    };

    let mut workers: Vec<WorkerSlot> = Vec::with_capacity(pool);
    let mut spawn_err = None;
    for _ in 0..pool {
        match spawn_slot(&mut next_worker_id) {
            Ok(slot) => workers.push(slot),
            Err(e) => {
                spawn_err = Some(e);
                break;
            }
        }
    }

    let mut pending: VecDeque<Job> = VecDeque::new();
    let mut delayed: Vec<(Instant, Job)> = Vec::new();
    let mut respawns_due: Vec<Instant> = Vec::new();
    let mut next_job_id = 0u64;
    let mut next_leg = 0u32;
    let mut source_done = false;
    let mut retried = 0u32;
    let mut abandoned = 0u32;
    let mut worker_deaths = 0u32;
    let mut consecutive_deaths = 0u32;

    // The loop body runs inside a closure so every early error return
    // still flows through the shutdown below — in process mode an
    // abandoned run must not leak live children.
    let mut body = || -> Result<(), FarmError> {
        if let Some(e) = spawn_err.take() {
            return Err(e);
        }
        loop {
            let now = Instant::now();

            // Promote backoff-expired retries.
            let mut i = 0;
            while i < delayed.len() {
                if delayed[i].0 <= now {
                    pending.push_back(delayed.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }

            // Spawn throttled replacement workers whose delay expired.
            let mut i = 0;
            while i < respawns_due.len() {
                if respawns_due[i] <= now {
                    respawns_due.swap_remove(i);
                    workers.push(spawn_slot(&mut next_worker_id)?);
                } else {
                    i += 1;
                }
            }

            // Dispatch to idle workers: queued retries first, then
            // fresh legs pulled lazily off the source.
            for slot in workers.iter_mut() {
                if slot.inflight.is_some() {
                    continue;
                }
                let job = match pending.pop_front() {
                    Some(job) => Some(job),
                    None => pull_next_leg(
                        source,
                        &mut source_done,
                        &mut next_leg,
                        &mut finals,
                        &mut next_job_id,
                    )?,
                };
                let Some(job) = job else { break };
                slot.inflight = Some(InFlight {
                    job_id: job.job_id,
                    leg: job.leg,
                    attempt: job.attempt,
                    spec: job.spec.clone(),
                    started: now,
                });
                match &mut slot.backend {
                    Backend::Thread { sender, .. } => {
                        if sender.send(job).is_err() {
                            // Worker thread gone (cannot normally
                            // happen): a farm bug, not a leg outcome.
                            return Err(FarmError::WorkersLost);
                        }
                    }
                    Backend::Process(proc) => {
                        let wire = WireJob {
                            job_id: job.job_id,
                            leg: job.leg,
                            attempt: job.attempt,
                            watchdog_poll: cfg.watchdog_poll,
                            resume_path: match &job.resume {
                                Some(ResumeFrom::File(path)) => Some(path.clone()),
                                // Memory resumes cannot cross the
                                // process boundary; process-mode retries
                                // are built as File resumes.
                                _ => None,
                            },
                            ckpt_path: job
                                .spec
                                .checkpoint_every
                                .and(scratch.as_ref().map(|s| s.ckpt_path(job.leg))),
                            warm_dir: scratch.as_ref().map(|s| s.warm_dir()),
                            spec: job.spec,
                        };
                        // A failed write means the worker is dying; its
                        // reader thread will report the death and the
                        // in-flight bookkeeping retries the leg then.
                        let _ = proc.send(&wire);
                    }
                }
            }

            // Abandon workers past the hard deadline.
            if let Some(hd) = cfg.hard_deadline {
                let mut idx = 0;
                while idx < workers.len() {
                    let expired = workers[idx]
                        .inflight
                        .as_ref()
                        .is_some_and(|f| now.duration_since(f.started) >= hd);
                    if !expired {
                        idx += 1;
                        continue;
                    }
                    let mut slot = workers.swap_remove(idx);
                    let inflight = slot.inflight.take().expect("expired implies inflight");
                    match &mut slot.backend {
                        // Detach the zombie thread: dropping the handle
                        // without a join lets the hung thread die with
                        // the process; dropping its sender means it
                        // finds a closed channel if it ever finishes.
                        Backend::Thread { handle, .. } => drop(handle.take()),
                        // A hung process can actually be killed. Its
                        // reader thread sends a Died for the stale slot
                        // id, which lands in the ignore path below.
                        Backend::Process(proc) => {
                            let _ = proc.shutdown();
                        }
                    }
                    abandoned += 1;
                    workers.push(spawn_slot(&mut next_worker_id)?);

                    let attempts_used = inflight.attempt + 1;
                    if attempts_used > inflight.spec.retries {
                        finalize(
                            &mut finals,
                            &mut journal,
                            inflight.leg,
                            &inflight.spec.name,
                            attempts_used,
                            ScenarioOutcome::TimedOut { hard: true },
                        )?;
                    } else {
                        // Thread mode: the checkpoint is trapped in the
                        // zombie thread — retry cold. Process mode: the
                        // dead worker's exports survive on disk.
                        retried += 1;
                        delayed.push((
                            now + backoff_delay(cfg, inflight.attempt),
                            Job {
                                job_id: next_job_id,
                                leg: inflight.leg,
                                attempt: inflight.attempt + 1,
                                resume: file_resume(scratch.as_ref(), inflight.leg),
                                spec: inflight.spec,
                            },
                        ));
                        next_job_id += 1;
                    }
                }
            }

            let inflight_any = workers.iter().any(|w| w.inflight.is_some());
            if source_done && !inflight_any && pending.is_empty() && delayed.is_empty() {
                return Ok(());
            }

            let msg = match results_rx.recv_timeout(Duration::from_millis(10)) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return Err(FarmError::WorkersLost),
            };

            match msg {
                SupMsg::Result(msg) => {
                    consecutive_deaths = 0;
                    // Stale results from abandoned workers carry a job
                    // id no live slot is waiting for — drop them.
                    let Some(slot) = workers.iter_mut().find(|w| {
                        w.id == msg.worker
                            && w.inflight.as_ref().is_some_and(|f| f.job_id == msg.job_id)
                    }) else {
                        continue;
                    };
                    let inflight = slot.inflight.take().expect("matched on inflight");

                    let attempts_used = msg.attempt + 1;
                    if msg.outcome.is_success()
                        || matches!(msg.outcome, ScenarioOutcome::Failed { .. })
                        || attempts_used > inflight.spec.retries
                    {
                        // Success, a deterministic build failure
                        // (retrying cannot help), or retry budget
                        // exhausted: final.
                        finalize(
                            &mut finals,
                            &mut journal,
                            msg.leg,
                            &inflight.spec.name,
                            attempts_used,
                            msg.outcome,
                        )?;
                    } else {
                        retried += 1;
                        let resume = match msg.checkpoint {
                            Some((_, snap)) => Some(ResumeFrom::Memory(snap)),
                            None if msg.file_checkpoint.is_some() => {
                                file_resume(scratch.as_ref(), msg.leg)
                            }
                            None => None,
                        };
                        delayed.push((
                            Instant::now() + backoff_delay(cfg, msg.attempt),
                            Job {
                                job_id: next_job_id,
                                leg: msg.leg,
                                attempt: msg.attempt + 1,
                                spec: inflight.spec,
                                resume,
                            },
                        ));
                        next_job_id += 1;
                    }
                }
                SupMsg::Died { worker } => {
                    // A Died for a slot we already removed (abandoned at
                    // the hard deadline, or shut down) is stale.
                    let Some(pos) = workers.iter().position(|w| w.id == worker) else {
                        continue;
                    };
                    let mut slot = workers.swap_remove(pos);
                    worker_deaths += 1;
                    consecutive_deaths += 1;
                    let signal = shutdown_slot(&mut slot);
                    if worker_deaths > cfg.respawn_limit {
                        return Err(FarmError::RespawnStorm {
                            deaths: worker_deaths,
                        });
                    }
                    respawns_due.push(now + respawn_delay(cfg, consecutive_deaths));

                    if let Some(inflight) = slot.inflight.take() {
                        let attempts_used = inflight.attempt + 1;
                        if attempts_used > inflight.spec.retries {
                            finalize(
                                &mut finals,
                                &mut journal,
                                inflight.leg,
                                &inflight.spec.name,
                                attempts_used,
                                ScenarioOutcome::WorkerDied {
                                    signal,
                                    attempt: inflight.attempt,
                                },
                            )?;
                        } else {
                            // The dead worker's checkpoint file (if it
                            // exported one before dying) survives the
                            // kill: the retry resumes from it and still
                            // lands on the bit-identical fingerprint.
                            retried += 1;
                            delayed.push((
                                now + backoff_delay(cfg, inflight.attempt),
                                Job {
                                    job_id: next_job_id,
                                    leg: inflight.leg,
                                    attempt: inflight.attempt + 1,
                                    resume: file_resume(scratch.as_ref(), inflight.leg),
                                    spec: inflight.spec,
                                },
                            ));
                            next_job_id += 1;
                        }
                    }
                }
            }
        }
    };
    let outcome = body();

    // Orderly shutdown — also the cleanup path for every error return.
    for slot in &mut workers {
        shutdown_slot(slot);
    }
    drop(scratch);
    outcome?;

    Ok(FarmReport {
        legs: finals.into_iter().flatten().collect(),
        skipped,
        retried,
        abandoned,
        worker_deaths,
    })
}

/// Pulls the next not-yet-completed leg off the source, growing
/// `finals` to cover it. Legs the journal already adopted are skipped
/// here (their `finals` slot is occupied).
fn pull_next_leg(
    source: &mut dyn Iterator<Item = Result<ScenarioSpec, CatalogError>>,
    source_done: &mut bool,
    next_leg: &mut u32,
    finals: &mut Vec<Option<LegResult>>,
    next_job_id: &mut u64,
) -> Result<Option<Job>, FarmError> {
    if *source_done {
        return Ok(None);
    }
    loop {
        let Some(item) = source.next() else {
            *source_done = true;
            return Ok(None);
        };
        let spec = item.map_err(FarmError::Catalog)?;
        let leg = *next_leg;
        *next_leg += 1;
        if finals.len() < *next_leg as usize {
            finals.resize(*next_leg as usize, None);
        }
        if finals[leg as usize].is_some() {
            continue; // adopted from the journal
        }
        let job_id = *next_job_id;
        *next_job_id += 1;
        return Ok(Some(Job {
            job_id,
            leg,
            attempt: 0,
            spec,
            resume: None,
        }));
    }
}

/// A `ResumeFrom::File` pointing at the leg's checkpoint file, if the
/// (possibly SIGKILLed) previous attempt managed to export one.
fn file_resume(scratch: Option<&ScratchDir>, leg: u32) -> Option<ResumeFrom> {
    let path = scratch?.ckpt_path(leg);
    path.exists().then_some(ResumeFrom::File(path))
}

/// Journals (when configured) and records one leg's final result.
fn finalize(
    finals: &mut [Option<LegResult>],
    journal: &mut Option<Journal>,
    leg: u32,
    name: &str,
    attempts: u32,
    outcome: ScenarioOutcome,
) -> Result<(), FarmError> {
    if let Some(j) = journal {
        j.record(leg as usize, attempts, &outcome)?;
    }
    finals[leg as usize] = Some(LegResult {
        leg,
        name: name.to_string(),
        attempts,
        outcome,
        adopted: false,
    });
    Ok(())
}
