//! The farm supervisor: M worker threads, one dispatcher, typed
//! failure handling.
//!
//! Supervision model:
//!
//! * every leg runs on a worker thread inside `catch_unwind` — a
//!   panicking scenario is converted to a typed outcome and the worker
//!   thread survives to take the next job;
//! * a failed attempt (panic or soft watchdog timeout) is retried with
//!   capped exponential backoff, resuming from the newest checkpoint
//!   the attempt exported across the unwind boundary;
//! * a worker that stops responding entirely (it never reaches the
//!   in-run watchdog) is *abandoned* at the supervisor's hard deadline:
//!   its thread is detached, a replacement worker is spawned, and any
//!   result the zombie later produces is recognized by its stale job id
//!   and dropped;
//! * completed legs are durably journaled (when a journal is
//!   configured) before the next job is dispatched, so a killed farm
//!   process resumes by skipping exactly the finished legs.

// The supervisor's scheduling (backoff expiry, hard deadlines) is
// host-time by nature; this is the sanctioned wall-clock site of the
// crate, next to the watchdogs in `worker.rs`.
#![allow(clippy::disallowed_methods)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dmi_kernel::Snapshot;

use crate::catalog::Catalog;
use crate::journal::{Journal, JournalError};
use crate::outcome::{LegResult, ScenarioOutcome};
use crate::registry::Registry;
use crate::spec::ScenarioSpec;
use crate::worker::{run_leg, WarmCache};

/// How a farm run is supervised.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Worker thread count (clamped to at least 1).
    pub workers: usize,
    /// Journal file for crash-safe resume; `None` = in-memory only.
    pub journal: Option<PathBuf>,
    /// Hard per-attempt deadline: a worker that has not reported for
    /// this long is abandoned and replaced. Should comfortably exceed
    /// every leg's soft `deadline_ms`. `None` = never abandon.
    pub hard_deadline: Option<Duration>,
    /// Poll granularity (cycles) for the legs' soft wall-clock
    /// watchdogs — how much simulation a leg may overshoot its deadline
    /// by. See [`StopCondition::wall_clock_every`](dmi_system::StopCondition::wall_clock_every).
    pub watchdog_poll: u64,
    /// Base retry backoff; retry `n` waits `backoff << (n-1)`, capped.
    pub backoff: Duration,
    /// Upper bound on the retry backoff.
    pub backoff_cap: Duration,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            workers: 2,
            journal: None,
            hard_deadline: None,
            watchdog_poll: dmi_system::DEFAULT_POLL_CYCLES,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
        }
    }
}

/// Why a farm run could not execute at all (individual leg failures are
/// *outcomes*, not errors).
#[derive(Debug)]
pub enum FarmError {
    /// The journal could not be opened or written.
    Journal(JournalError),
    /// Every worker disappeared with legs still outstanding (a farm
    /// bug by construction — workers survive scenario panics).
    WorkersLost,
}

impl std::fmt::Display for FarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FarmError::Journal(e) => write!(f, "farm journal: {e}"),
            FarmError::WorkersLost => write!(f, "all farm workers lost"),
        }
    }
}

impl std::error::Error for FarmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FarmError::Journal(e) => Some(e),
            FarmError::WorkersLost => None,
        }
    }
}

impl From<JournalError> for FarmError {
    fn from(e: JournalError) -> Self {
        FarmError::Journal(e)
    }
}

/// What a farm run produced.
#[derive(Debug, Clone)]
pub struct FarmReport {
    /// One final result per catalog leg, in catalog order.
    pub legs: Vec<LegResult>,
    /// Legs adopted from the journal of an interrupted earlier run.
    pub skipped: usize,
    /// Retry attempts dispatched (across all legs).
    pub retried: u32,
    /// Workers abandoned at the hard deadline.
    pub abandoned: u32,
}

impl FarmReport {
    /// Whether every leg matched its catalog expectation
    /// (`expect_failure` probes count as matched when they fail).
    pub fn all_expected(&self, catalog: &Catalog) -> bool {
        self.legs
            .iter()
            .zip(&catalog.scenarios)
            .all(|(leg, spec)| leg.matches_expectation(spec.expect_failure))
    }

    /// Multi-line human rendering, one leg per line.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for leg in &self.legs {
            let adopted = if leg.adopted { " [journaled]" } else { "" };
            out.push_str(&format!(
                "{:24} attempts={} {}{}\n",
                leg.name,
                leg.attempts,
                leg.outcome.brief(),
                adopted
            ));
        }
        out.push_str(&format!(
            "{} legs ({} resumed from journal), {} retries, {} workers abandoned\n",
            self.legs.len(),
            self.skipped,
            self.retried,
            self.abandoned
        ));
        out
    }
}

/// One dispatched attempt.
struct Job {
    job_id: u64,
    leg: u32,
    attempt: u32,
    spec: ScenarioSpec,
    resume: Option<(u64, Snapshot)>,
}

/// What a worker sends back.
struct WorkerMsg {
    worker: u64,
    job_id: u64,
    leg: u32,
    attempt: u32,
    outcome: ScenarioOutcome,
    checkpoint: Option<(u64, Snapshot)>,
}

struct WorkerSlot {
    id: u64,
    sender: Sender<Job>,
    handle: Option<JoinHandle<()>>,
    inflight: Option<InFlight>,
}

struct InFlight {
    job_id: u64,
    leg: u32,
    attempt: u32,
    started: Instant,
}

/// Count of panics the farm has converted to typed outcomes in this
/// process — lets tests assert isolation actually happened.
static PANICS_CAUGHT: AtomicU32 = AtomicU32::new(0);

/// Panics caught (process-wide) by farm workers so far.
pub fn panics_caught() -> u32 {
    PANICS_CAUGHT.load(Ordering::Relaxed)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn spawn_worker(
    id: u64,
    registry: Arc<Registry>,
    warm: Arc<WarmCache>,
    watchdog_poll: u64,
    results: Sender<WorkerMsg>,
) -> WorkerSlot {
    let (tx, rx): (Sender<Job>, Receiver<Job>) = mpsc::channel();
    let handle = std::thread::Builder::new()
        .name(format!("farm-worker-{id}"))
        .spawn(move || {
            while let Ok(job) = rx.recv() {
                let mut export = None;
                let outcome = match catch_unwind(AssertUnwindSafe(|| {
                    run_leg(
                        &registry,
                        &job.spec,
                        job.attempt,
                        job.resume.as_ref(),
                        &warm,
                        watchdog_poll,
                        &mut export,
                    )
                })) {
                    Ok(outcome) => outcome,
                    Err(payload) => {
                        PANICS_CAUGHT.fetch_add(1, Ordering::Relaxed);
                        ScenarioOutcome::Panicked {
                            message: panic_message(payload),
                        }
                    }
                };
                let msg = WorkerMsg {
                    worker: id,
                    job_id: job.job_id,
                    leg: job.leg,
                    attempt: job.attempt,
                    outcome,
                    checkpoint: export,
                };
                if results.send(msg).is_err() {
                    break; // supervisor gone
                }
            }
        })
        .expect("spawn farm worker");
    WorkerSlot {
        id,
        sender: tx,
        handle: Some(handle),
        inflight: None,
    }
}

fn backoff_delay(cfg: &FarmConfig, attempt_done: u32) -> Duration {
    // attempt_done = the attempt index that just failed (0-based);
    // retry n backs off base << n, capped.
    let shift = attempt_done.min(16);
    let d = cfg
        .backoff
        .checked_mul(1u32 << shift)
        .unwrap_or(cfg.backoff_cap);
    d.min(cfg.backoff_cap)
}

/// Runs every leg of `catalog` over `cfg.workers` supervised workers.
///
/// Returns one [`LegResult`] per leg, in catalog order, regardless of
/// completion order. Individual leg failures (panics, timeouts, build
/// errors) are data in the report; only infrastructure failures (the
/// journal, total worker loss) are `Err`.
///
/// # Errors
///
/// See [`FarmError`].
pub fn run_farm(
    catalog: &Catalog,
    registry: Arc<Registry>,
    cfg: &FarmConfig,
) -> Result<FarmReport, FarmError> {
    let n = catalog.len();
    let mut finals: Vec<Option<LegResult>> = vec![None; n];
    let mut skipped = 0usize;

    let mut journal = match &cfg.journal {
        Some(path) => Some(Journal::open(path, catalog.crc(), n)?),
        None => None,
    };
    if let Some(j) = &journal {
        for (i, spec) in catalog.scenarios.iter().enumerate() {
            if let Some((attempts, outcome)) = j.completed(i) {
                finals[i] = Some(LegResult {
                    leg: i as u32,
                    name: spec.name.clone(),
                    attempts: *attempts,
                    outcome: outcome.clone(),
                    adopted: true,
                });
                skipped += 1;
            }
        }
    }

    let mut pending: VecDeque<Job> = VecDeque::new();
    let mut next_job_id = 0u64;
    for (i, spec) in catalog.scenarios.iter().enumerate() {
        if finals[i].is_some() {
            continue;
        }
        pending.push_back(Job {
            job_id: next_job_id,
            leg: i as u32,
            attempt: 0,
            spec: spec.clone(),
            resume: None,
        });
        next_job_id += 1;
    }

    let mut outstanding = pending.len();
    if outstanding == 0 {
        return Ok(FarmReport {
            legs: finals.into_iter().flatten().collect(),
            skipped,
            retried: 0,
            abandoned: 0,
        });
    }

    let warm = Arc::new(WarmCache::new());
    let (results_tx, results_rx) = mpsc::channel::<WorkerMsg>();
    let mut next_worker_id = 0u64;
    let mut workers: Vec<WorkerSlot> = (0..cfg.workers.max(1))
        .map(|_| {
            let slot = spawn_worker(
                next_worker_id,
                Arc::clone(&registry),
                Arc::clone(&warm),
                cfg.watchdog_poll,
                results_tx.clone(),
            );
            next_worker_id += 1;
            slot
        })
        .collect();

    let mut delayed: Vec<(Instant, Job)> = Vec::new();
    let mut retried = 0u32;
    let mut abandoned = 0u32;

    let finalize = |finals: &mut Vec<Option<LegResult>>,
                        journal: &mut Option<Journal>,
                        outstanding: &mut usize,
                        leg: u32,
                        attempts: u32,
                        outcome: ScenarioOutcome|
     -> Result<(), FarmError> {
        if let Some(j) = journal {
            j.record(leg as usize, attempts, &outcome)?;
        }
        finals[leg as usize] = Some(LegResult {
            leg,
            name: catalog.scenarios[leg as usize].name.clone(),
            attempts,
            outcome,
            adopted: false,
        });
        *outstanding -= 1;
        Ok(())
    };

    while outstanding > 0 {
        let now = Instant::now();

        // Promote backoff-expired retries.
        let mut i = 0;
        while i < delayed.len() {
            if delayed[i].0 <= now {
                pending.push_back(delayed.swap_remove(i).1);
            } else {
                i += 1;
            }
        }

        // Dispatch to idle workers.
        for slot in workers.iter_mut() {
            if slot.inflight.is_some() {
                continue;
            }
            let Some(job) = pending.pop_front() else { break };
            slot.inflight = Some(InFlight {
                job_id: job.job_id,
                leg: job.leg,
                attempt: job.attempt,
                started: now,
            });
            if slot.sender.send(job).is_err() {
                // Worker thread gone (cannot normally happen): the job
                // is lost with it — respawn and let the in-flight
                // bookkeeping below retry via the hard deadline, or
                // fail hard if no deadline is set.
                slot.inflight = None;
                return Err(FarmError::WorkersLost);
            }
        }

        // Abandon workers past the hard deadline.
        if let Some(hd) = cfg.hard_deadline {
            let mut idx = 0;
            while idx < workers.len() {
                let expired = workers[idx]
                    .inflight
                    .as_ref()
                    .is_some_and(|f| now.duration_since(f.started) >= hd);
                if !expired {
                    idx += 1;
                    continue;
                }
                let mut slot = workers.swap_remove(idx);
                let inflight = slot.inflight.take().expect("expired implies inflight");
                // Detach the zombie: dropping the handle without a join
                // lets the hung thread die with the process; dropping
                // its sender means it finds a closed channel if it ever
                // finishes its current job.
                drop(slot.handle.take());
                abandoned += 1;
                workers.push(spawn_worker(
                    next_worker_id,
                    Arc::clone(&registry),
                    Arc::clone(&warm),
                    cfg.watchdog_poll,
                    results_tx.clone(),
                ));
                next_worker_id += 1;

                let spec = &catalog.scenarios[inflight.leg as usize];
                let attempts_used = inflight.attempt + 1;
                if attempts_used > spec.retries {
                    finalize(
                        &mut finals,
                        &mut journal,
                        &mut outstanding,
                        inflight.leg,
                        attempts_used,
                        ScenarioOutcome::TimedOut { hard: true },
                    )?;
                } else {
                    // Hard-abandoned attempts leave no checkpoint behind
                    // (it is trapped in the zombie thread): retry cold.
                    retried += 1;
                    delayed.push((
                        now + backoff_delay(cfg, inflight.attempt),
                        Job {
                            job_id: next_job_id,
                            leg: inflight.leg,
                            attempt: inflight.attempt + 1,
                            spec: spec.clone(),
                            resume: None,
                        },
                    ));
                    next_job_id += 1;
                }
            }
        }

        if outstanding == 0 {
            break;
        }

        let msg = match results_rx.recv_timeout(Duration::from_millis(10)) {
            Ok(msg) => msg,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return Err(FarmError::WorkersLost),
        };

        // Stale results from abandoned workers carry a job id no live
        // slot is waiting for — drop them.
        let Some(slot) = workers.iter_mut().find(|w| {
            w.id == msg.worker && w.inflight.as_ref().is_some_and(|f| f.job_id == msg.job_id)
        }) else {
            continue;
        };
        slot.inflight = None;

        let spec = &catalog.scenarios[msg.leg as usize];
        let attempts_used = msg.attempt + 1;
        if msg.outcome.is_success()
            || matches!(msg.outcome, ScenarioOutcome::Failed { .. })
            || attempts_used > spec.retries
        {
            // Success, a deterministic build failure (retrying cannot
            // help), or retry budget exhausted: final.
            finalize(
                &mut finals,
                &mut journal,
                &mut outstanding,
                msg.leg,
                attempts_used,
                msg.outcome,
            )?;
        } else {
            retried += 1;
            delayed.push((
                Instant::now() + backoff_delay(cfg, msg.attempt),
                Job {
                    job_id: next_job_id,
                    leg: msg.leg,
                    attempt: msg.attempt + 1,
                    spec: spec.clone(),
                    resume: msg.checkpoint,
                },
            ));
            next_job_id += 1;
        }
    }

    // Orderly shutdown: close the job channels, join the live workers.
    for slot in &mut workers {
        let (dead_tx, _) = mpsc::channel();
        slot.sender = dead_tx; // drop the real sender
        if let Some(handle) = slot.handle.take() {
            let _ = handle.join();
        }
    }

    Ok(FarmReport {
        legs: finals.into_iter().flatten().collect(),
        skipped,
        retried,
        abandoned,
    })
}
