//! Replay-exact divergence bisection: given two system builds that
//! *should* agree (a twin-toggle pair, a refactored vs reference
//! configuration) but end a run in different states, find the first
//! checkpoint-grid interval where their state diverges, and emit a
//! minimized repro — a shared base snapshot plus a short interval to
//! re-run.
//!
//! The search leans entirely on the PR 7 state-capture guarantees: a
//! [`Snapshot`] covers the complete architectural state and nothing
//! host-dependent, so two deterministic systems agree at cycle `c` if
//! and only if their snapshot bytes at `c` are identical — and once the
//! bytes differ at some grid point they differ at every later one
//! (deterministic evolution of distinct states cannot re-converge into
//! bit-identity while their causes persist; the binary search assumes
//! exactly this monotonicity).

use dmi_kernel::Snapshot;
use dmi_system::{McSystem, StopCondition};

/// The bisection result: the tightest grid interval containing the
/// first divergence, plus the materials to replay it.
#[derive(Debug)]
pub struct Divergence {
    /// Last grid cycle where both systems' snapshots were bit-identical.
    pub last_agree: u64,
    /// First grid cycle where they differed.
    pub first_diverge: u64,
    /// Names of the snapshot sections that differ at
    /// [`first_diverge`](Self::first_diverge) — which components (or
    /// kernel structures) carry the divergence.
    pub sections: Vec<String>,
    /// The agreed-on state at [`last_agree`](Self::last_agree): restore
    /// this into either build and run
    /// `first_diverge - last_agree` cycles to reproduce the divergence
    /// without re-simulating the prefix.
    pub base: Snapshot,
}

impl Divergence {
    /// The minimized repro interval, in cycles.
    pub fn interval(&self) -> u64 {
        self.first_diverge - self.last_agree
    }

    /// A human-readable minimized repro spec.
    pub fn repro_spec(&self) -> String {
        format!(
            "restore base snapshot (cycle {}), run {} cycles, compare sections [{}]",
            self.last_agree,
            self.interval(),
            self.sections.join(", ")
        )
    }

    /// Verifies the repro: restores [`base`](Self::base) into a fresh
    /// instance of each build, runs only the minimized interval, and
    /// reports whether the divergence reproduces (snapshot bytes
    /// differ at the end of the interval).
    pub fn replay(
        &self,
        build_a: impl Fn() -> McSystem,
        build_b: impl Fn() -> McSystem,
    ) -> bool {
        let run = |mut sys: McSystem| -> Option<Vec<u8>> {
            sys.restore(&self.base).ok()?;
            let upto = self.interval();
            sys.run_until(&StopCondition::cycles(upto));
            Some(sys.checkpoint().to_bytes())
        };
        match (run(build_a()), run(build_b())) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        }
    }
}

/// Snapshot of a fresh `build()` run to absolute cycle `c`.
fn snap_at(build: &impl Fn() -> McSystem, c: u64) -> Snapshot {
    let mut sys = build();
    if c > 0 {
        sys.run_until(&StopCondition::cycles(c));
    }
    sys.checkpoint()
}

fn differing_sections(a: &Snapshot, b: &Snapshot) -> Vec<String> {
    let mut names: Vec<&str> = a.section_names().collect();
    for n in b.section_names() {
        if !names.contains(&n) {
            names.push(n);
        }
    }
    names
        .into_iter()
        .filter(|n| a.section(n) != b.section(n))
        .map(str::to_string)
        .collect()
}

/// Binary-searches the checkpoint grid `0, grid, 2*grid, ... end` for
/// the first grid point where the two builds' snapshots differ.
///
/// Returns `None` when the builds are still bit-identical at `end` (no
/// divergence to localize). `grid` is clamped to at least 1; the last
/// grid point is `end` itself even when `end` is not a multiple.
///
/// Each probe re-simulates from cold (cost `O(end * log(end/grid))`),
/// trading host time for zero assumptions about the builds beyond
/// determinism.
pub fn bisect_divergence(
    build_a: impl Fn() -> McSystem,
    build_b: impl Fn() -> McSystem,
    end: u64,
    grid: u64,
) -> Option<Divergence> {
    let grid = grid.max(1);
    let cycle_of = |k: u64| (k * grid).min(end);
    let last_k = end.div_ceil(grid);

    let differs_at = |k: u64| -> bool {
        let c = cycle_of(k);
        snap_at(&build_a, c).to_bytes() != snap_at(&build_b, c).to_bytes()
    };

    if !differs_at(last_k) {
        return None;
    }

    // Invariant: agree at `lo`, differ at `hi`.
    let (mut lo, mut hi) = (0u64, last_k);
    if differs_at(0) {
        // Diverges at (or before) cycle 0: the builds differ at rest.
        hi = 0;
    } else {
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if differs_at(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
    }

    let last_agree = if hi == 0 { 0 } else { cycle_of(lo) };
    let first_diverge = cycle_of(hi);
    let base = snap_at(&build_a, last_agree);
    let sections = differing_sections(
        &snap_at(&build_a, first_diverge),
        &snap_at(&build_b, first_diverge),
    );
    Some(Divergence {
        last_agree,
        first_diverge,
        sections,
        base,
    })
}
