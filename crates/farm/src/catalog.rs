//! The scenario catalog: an ordered list of [`ScenarioSpec`] legs with a
//! dependency-free text serialization.
//!
//! The on-disk form is a line-based format (a deliberately small
//! stand-in for a real config language — this build environment vendors
//! no serde):
//!
//! ```text
//! # comment
//! scenario quickstart
//!   system = quickstart
//!   cycles = 2000000
//!   checkpoint_every = 100000
//!   retries = 1
//! end
//! ```
//!
//! `scenario <name>` opens a leg, `key = value` lines fill it in, `end`
//! closes it. Unknown keys are an error (catalogs are hand-written;
//! silently ignoring a typo like `retrys` would be worse). The format
//! round-trips: `Catalog::parse(c.to_text()) == c`.

use dmi_kernel::crc32;

use crate::spec::ScenarioSpec;

/// An ordered set of scenario legs. Leg order is meaningful: the
/// journal identifies completed legs by their index in this order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    /// The legs, in dispatch (and journal-index) order.
    pub scenarios: Vec<ScenarioSpec>,
}

/// A catalog line that did not parse, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "catalog line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CatalogError {}

fn err(line: usize, message: impl Into<String>) -> CatalogError {
    CatalogError {
        line,
        message: message.into(),
    }
}

fn parse_u64(line: usize, key: &str, v: &str) -> Result<u64, CatalogError> {
    v.parse::<u64>()
        .map_err(|_| err(line, format!("{key}: expected an unsigned integer, got '{v}'")))
}

fn parse_bool(line: usize, key: &str, v: &str) -> Result<bool, CatalogError> {
    match v {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(err(line, format!("{key}: expected true/false, got '{v}'"))),
    }
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a leg.
    pub fn push(&mut self, spec: ScenarioSpec) {
        self.scenarios.push(spec);
    }

    /// Number of legs.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the catalog has no legs.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// CRC-32 of the canonical text form — the identity the journal
    /// stores, so a journal can refuse to resume against a different
    /// catalog than the one that wrote it.
    pub fn crc(&self) -> u32 {
        crc32(self.to_text().as_bytes())
    }

    /// Serializes to the line format described in the module docs.
    /// Defaults are omitted, so `parse(to_text())` round-trips exactly.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for s in &self.scenarios {
            out.push_str(&format!("scenario {}\n", s.name));
            out.push_str(&format!("  system = {}\n", s.system));
            out.push_str(&format!("  cycles = {}\n", s.cycles));
            if let Some(v) = s.checkpoint_every {
                out.push_str(&format!("  checkpoint_every = {v}\n"));
            }
            if let Some(v) = s.deadline_ms {
                out.push_str(&format!("  deadline_ms = {v}\n"));
            }
            if s.retries != 0 {
                out.push_str(&format!("  retries = {}\n", s.retries));
            }
            if let Some(v) = s.warm_cycles {
                out.push_str(&format!("  warm_cycles = {v}\n"));
            }
            if let Some(v) = &s.warm_snapshot {
                out.push_str(&format!("  warm_snapshot = {v}\n"));
            }
            if let Some(v) = s.fault_injection {
                out.push_str(&format!("  fault_injection = {v}\n"));
            }
            if s.expect_failure {
                out.push_str("  expect_failure = true\n");
            }
            if let Some(v) = s.inject_panic_at {
                out.push_str(&format!("  inject_panic_at = {v}\n"));
            }
            if let Some(v) = s.hang_ms {
                out.push_str(&format!("  hang_ms = {v}\n"));
            }
            if let Some(v) = s.inject_abort_at {
                out.push_str(&format!("  inject_abort_at = {v}\n"));
            }
            out.push_str("end\n");
        }
        out
    }

    /// Parses the line format described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns a [`CatalogError`] naming the first offending line:
    /// stray text outside a `scenario` block, an unknown or malformed
    /// `key = value`, a missing `system`/`cycles`, or an unclosed block.
    pub fn parse(text: &str) -> Result<Catalog, CatalogError> {
        let mut catalog = Catalog::new();
        let mut parser = BlockParser::new();
        for raw in text.lines() {
            if let Some(spec) = parser.line(raw)? {
                catalog.push(spec);
            }
        }
        parser.finish()?;
        Ok(catalog)
    }

    /// Streams legs out of `reader` one at a time — the same grammar as
    /// [`parse`](Self::parse), without ever materializing the whole
    /// catalog. A thousands-of-legs catalog costs one `ScenarioSpec` of
    /// memory at a time; the farm's dispatcher pulls legs lazily as
    /// workers go idle (see
    /// [`run_farm_stream`](crate::run_farm_stream)).
    ///
    /// The iterator yields `Err` once for the first offending line (or
    /// a read failure) and then ends — same first-error semantics as
    /// `parse`, which is implemented on top of the same line machine.
    pub fn stream<R: std::io::BufRead>(reader: R) -> CatalogStream<R> {
        CatalogStream {
            reader,
            parser: BlockParser::new(),
            done: false,
            line_buf: String::new(),
        }
    }
}

/// The incremental line machine shared by [`Catalog::parse`] and
/// [`Catalog::stream`]: feed lines, get a [`ScenarioSpec`] back whenever
/// an `end` closes a block.
struct BlockParser {
    /// `(open-line, partially-filled spec, has system, has cycles)`.
    open: Option<(usize, ScenarioSpec, bool, bool)>,
    /// 1-based number of the last line fed.
    line_no: usize,
}

impl BlockParser {
    fn new() -> Self {
        BlockParser {
            open: None,
            line_no: 0,
        }
    }

    /// Consumes one line; `Ok(Some(spec))` when it closed a block.
    fn line(&mut self, raw: &str) -> Result<Option<ScenarioSpec>, CatalogError> {
        self.line_no += 1;
        let ln = self.line_no;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        if let Some(name) = line.strip_prefix("scenario ") {
            if self.open.is_some() {
                return Err(err(ln, "'scenario' inside an unclosed scenario block"));
            }
            let name = name.trim();
            if name.is_empty() {
                return Err(err(ln, "scenario needs a name"));
            }
            self.open = Some((ln, ScenarioSpec::new(name, "", 0), false, false));
            return Ok(None);
        }
        if line == "end" {
            let Some((_, spec, has_system, has_cycles)) = self.open.take() else {
                return Err(err(ln, "'end' without an open scenario block"));
            };
            if !has_system {
                return Err(err(ln, format!("scenario '{}' has no system", spec.name)));
            }
            if !has_cycles {
                return Err(err(ln, format!("scenario '{}' has no cycles", spec.name)));
            }
            return Ok(Some(spec));
        }
        let Some((_, spec, has_system, has_cycles)) = self.open.as_mut() else {
            return Err(err(ln, format!("stray line outside a scenario block: '{line}'")));
        };
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(ln, format!("expected 'key = value', got '{line}'")));
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "system" => {
                spec.system = value.to_string();
                *has_system = !value.is_empty();
            }
            "cycles" => {
                spec.cycles = parse_u64(ln, key, value)?;
                *has_cycles = true;
            }
            "checkpoint_every" => spec.checkpoint_every = Some(parse_u64(ln, key, value)?),
            "deadline_ms" => spec.deadline_ms = Some(parse_u64(ln, key, value)?),
            "retries" => spec.retries = parse_u64(ln, key, value)? as u32,
            "warm_cycles" => spec.warm_cycles = Some(parse_u64(ln, key, value)?),
            "warm_snapshot" => {
                if value.is_empty() {
                    return Err(err(ln, "warm_snapshot: expected a file path"));
                }
                spec.warm_snapshot = Some(value.to_string());
            }
            "fault_injection" => spec.fault_injection = Some(parse_bool(ln, key, value)?),
            "expect_failure" => spec.expect_failure = parse_bool(ln, key, value)?,
            "inject_panic_at" => spec.inject_panic_at = Some(parse_u64(ln, key, value)?),
            "hang_ms" => spec.hang_ms = Some(parse_u64(ln, key, value)?),
            "inject_abort_at" => spec.inject_abort_at = Some(parse_u64(ln, key, value)?),
            _ => return Err(err(ln, format!("unknown key '{key}'"))),
        }
        Ok(None)
    }

    /// End-of-input check: an open block at EOF is an error.
    fn finish(&self) -> Result<(), CatalogError> {
        if let Some((ln, spec, ..)) = &self.open {
            return Err(err(
                *ln,
                format!("scenario '{}' is never closed with 'end'", spec.name),
            ));
        }
        Ok(())
    }
}

/// Lazy catalog iterator returned by [`Catalog::stream`].
#[derive(Debug)]
pub struct CatalogStream<R> {
    reader: R,
    parser: BlockParser,
    done: bool,
    line_buf: String,
}

impl std::fmt::Debug for BlockParser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockParser")
            .field("line_no", &self.line_no)
            .field("open", &self.open.as_ref().map(|(ln, s, ..)| (ln, &s.name)))
            .finish()
    }
}

impl<R: std::io::BufRead> Iterator for CatalogStream<R> {
    type Item = Result<ScenarioSpec, CatalogError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.line_buf.clear();
            match self.reader.read_line(&mut self.line_buf) {
                Ok(0) => {
                    self.done = true;
                    return match self.parser.finish() {
                        Ok(()) => None,
                        Err(e) => Some(Err(e)),
                    };
                }
                Ok(_) => match self.parser.line(&self.line_buf) {
                    Ok(Some(spec)) => return Some(Ok(spec)),
                    Ok(None) => continue,
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                },
                Err(e) => {
                    self.done = true;
                    return Some(Err(err(
                        self.parser.line_no + 1,
                        format!("read error: {e}"),
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        let mut c = Catalog::new();
        c.push(ScenarioSpec::new("quick", "quickstart", 100_000));
        c.push(
            ScenarioSpec::new("head", "gsm_headline", 450_000)
                .checkpoint(50_000)
                .deadline_ms(30_000)
                .retries(2)
                .warm(10_000)
                .faults(true),
        );
        c.push(
            ScenarioSpec::new("probe", "quickstart", 100_000)
                .checkpoint(10_000)
                .retries(1)
                .expect_failure()
                .inject_panic_at(40_000)
                .hang_ms(5),
        );
        c.push(
            ScenarioSpec::new("snapped", "gsm_headline", 300_000)
                .warm_snapshot("/tmp/warm-prefix.snap")
                .inject_abort_at(150_000)
                .retries(1),
        );
        c
    }

    #[test]
    fn text_round_trips() {
        let c = sample();
        let text = c.to_text();
        let back = Catalog::parse(&text).expect("round-trip parses");
        assert_eq!(back, c);
        assert_eq!(back.crc(), c.crc());
    }

    #[test]
    fn comments_and_whitespace_tolerated() {
        let text = "# a catalog\n\n scenario x \n   system=quickstart\n cycles =  5\nend\n";
        let c = Catalog::parse(text).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.scenarios[0].name, "x");
        assert_eq!(c.scenarios[0].system, "quickstart");
        assert_eq!(c.scenarios[0].cycles, 5);
    }

    #[test]
    fn errors_name_the_line() {
        let e = Catalog::parse("scenario a\n  bogus = 1\nend\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("unknown key"), "{e}");

        let e = Catalog::parse("cycles = 5\n").unwrap_err();
        assert!(e.message.contains("stray line"), "{e}");

        let e = Catalog::parse("scenario a\n  system = s\n").unwrap_err();
        assert!(e.message.contains("never closed"), "{e}");

        let e = Catalog::parse("scenario a\n  system = s\nend\n").unwrap_err();
        assert!(e.message.contains("no cycles"), "{e}");

        let e = Catalog::parse("scenario a\n  cycles = nope\nend\n").unwrap_err();
        assert!(e.message.contains("unsigned integer"), "{e}");
    }

    #[test]
    fn stream_yields_the_same_legs_as_parse() {
        let text = sample().to_text();
        let parsed = Catalog::parse(&text).unwrap();
        let streamed: Vec<ScenarioSpec> = Catalog::stream(std::io::Cursor::new(text.as_bytes()))
            .map(|r| r.expect("streams clean"))
            .collect();
        assert_eq!(streamed, parsed.scenarios);
    }

    #[test]
    fn stream_surfaces_the_first_error_then_ends() {
        let text = "scenario a\n  system = s\n  cycles = 5\nend\nbogus\nscenario b\n";
        let mut it = Catalog::stream(std::io::Cursor::new(text.as_bytes()));
        assert!(it.next().unwrap().is_ok(), "leg before the error streams");
        let e = it.next().unwrap().unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("stray line"), "{e}");
        assert!(it.next().is_none(), "errors end the stream");

        // An unclosed block surfaces at EOF, like parse().
        let text = "scenario a\n  system = s\n  cycles = 1\n";
        let mut it = Catalog::stream(std::io::Cursor::new(text.as_bytes()));
        let e = it.next().unwrap().unwrap_err();
        assert!(e.message.contains("never closed"), "{e}");
        assert!(it.next().is_none());
    }

    #[test]
    fn crc_distinguishes_catalogs() {
        let a = sample();
        let mut b = sample();
        b.scenarios[0].cycles += 1;
        assert_ne!(a.crc(), b.crc());
    }
}
