//! Typed per-leg results, and their journal encoding.

use dmi_kernel::{SnapshotError, StateReader, StateWriter};

/// How one scenario leg ended, after all its attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioOutcome {
    /// The leg ran its cycle budget (or halted earlier) deterministically.
    Completed {
        /// CRC-32 of the final full-system [`Snapshot`](dmi_kernel::Snapshot)
        /// bytes — the leg's replay identity. Checkpoints capture
        /// architectural state only (validated caches are rebuilt, host
        /// wall time never enters), so this fingerprint is identical
        /// whether the leg ran uninterrupted, resumed from a mid-leg
        /// checkpoint after a crash, or started from a shared warm
        /// snapshot.
        fingerprint: u32,
        /// Absolute cycle the leg ended on.
        cycles: u64,
        /// Debug rendering of the final
        /// [`StopCause`](dmi_system::StopCause) — `AllHalted`,
        /// `CycleBudget`, or a deterministic fault escalation.
        cause: String,
    },
    /// An attempt panicked and the retry budget is exhausted. The farm
    /// caught the unwind; sibling legs were not perturbed.
    Panicked {
        /// The panic payload (or a placeholder for non-string payloads).
        message: String,
    },
    /// The leg exceeded its deadline and the retry budget is exhausted.
    TimedOut {
        /// `false`: the in-worker soft watchdog
        /// ([`StopCondition::wall_clock_every`](dmi_system::StopCondition::wall_clock_every))
        /// fired between poll slices. `true`: the worker never came
        /// back at all and the supervisor abandoned it at the hard
        /// deadline.
        hard: bool,
    },
    /// The leg could not run: unknown `system` key, or the factory's
    /// builder rejected the description.
    Failed {
        /// The build-time error.
        message: String,
    },
    /// The worker *process* running this leg died mid-attempt — killed
    /// by a signal (SIGKILL, OOM kill, an abort), a nonzero exit, or
    /// its result pipe tearing mid-frame — and the retry budget is
    /// exhausted. Only produced under
    /// [`Isolation::Process`](crate::Isolation::Process); a worker
    /// *thread* cannot die without unwinding (that is [`Panicked`](Self::Panicked)).
    WorkerDied {
        /// The signal that killed the worker when the host reported one
        /// (`Some(9)` for SIGKILL, `Some(6)` for an abort); `None` for
        /// a nonzero exit or a pipe torn without a recorded signal.
        signal: Option<i32>,
        /// The 0-based attempt index that died with the worker.
        attempt: u32,
    },
}

impl ScenarioOutcome {
    /// Whether the leg produced a deterministic completed run.
    pub fn is_success(&self) -> bool {
        matches!(self, ScenarioOutcome::Completed { .. })
    }

    /// One-line human rendering.
    pub fn brief(&self) -> String {
        match self {
            ScenarioOutcome::Completed {
                fingerprint,
                cycles,
                cause,
            } => format!("completed @{cycles} fp={fingerprint:08x} ({cause})"),
            ScenarioOutcome::Panicked { message } => format!("panicked: {message}"),
            ScenarioOutcome::TimedOut { hard: false } => "timed out (watchdog)".into(),
            ScenarioOutcome::TimedOut { hard: true } => "timed out (abandoned)".into(),
            ScenarioOutcome::Failed { message } => format!("failed: {message}"),
            ScenarioOutcome::WorkerDied { signal, attempt } => match signal {
                Some(sig) => format!("worker died (signal {sig}, attempt {attempt})"),
                None => format!("worker died (attempt {attempt})"),
            },
        }
    }

    /// Serializes into `w` (the journal's record payload encoding).
    pub fn encode(&self, w: &mut StateWriter) {
        match self {
            ScenarioOutcome::Completed {
                fingerprint,
                cycles,
                cause,
            } => {
                w.put_u8(1);
                w.put_u32(*fingerprint);
                w.put_u64(*cycles);
                w.put_str(cause);
            }
            ScenarioOutcome::Panicked { message } => {
                w.put_u8(2);
                w.put_str(message);
            }
            ScenarioOutcome::TimedOut { hard } => {
                w.put_u8(3);
                w.put_bool(*hard);
            }
            ScenarioOutcome::Failed { message } => {
                w.put_u8(4);
                w.put_str(message);
            }
            ScenarioOutcome::WorkerDied { signal, attempt } => {
                w.put_u8(5);
                w.put_bool(signal.is_some());
                w.put_u32(signal.unwrap_or(0) as u32);
                w.put_u32(*attempt);
            }
        }
    }

    /// Inverse of [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns a typed [`SnapshotError`] on truncation or an unknown
    /// outcome tag.
    pub fn decode(r: &mut StateReader<'_>) -> Result<ScenarioOutcome, SnapshotError> {
        match r.get_u8("outcome tag")? {
            1 => Ok(ScenarioOutcome::Completed {
                fingerprint: r.get_u32("outcome fingerprint")?,
                cycles: r.get_u64("outcome cycles")?,
                cause: r.get_str("outcome cause")?.to_string(),
            }),
            2 => Ok(ScenarioOutcome::Panicked {
                message: r.get_str("panic message")?.to_string(),
            }),
            3 => Ok(ScenarioOutcome::TimedOut {
                hard: r.get_bool("timeout kind")?,
            }),
            4 => Ok(ScenarioOutcome::Failed {
                message: r.get_str("failure message")?.to_string(),
            }),
            5 => {
                let has_signal = r.get_bool("death signal present")?;
                let raw = r.get_u32("death signal")?;
                Ok(ScenarioOutcome::WorkerDied {
                    signal: has_signal.then_some(raw as i32),
                    attempt: r.get_u32("death attempt")?,
                })
            }
            tag => Err(SnapshotError::Corrupt {
                context: format!("unknown outcome tag {tag}"),
            }),
        }
    }
}

/// The farm's final word on one leg.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegResult {
    /// Index of the leg in the catalog.
    pub leg: u32,
    /// The leg's scenario name (copied from the catalog for display).
    pub name: String,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// How it ended.
    pub outcome: ScenarioOutcome,
    /// Whether this result was adopted from the journal of an earlier,
    /// interrupted farm run instead of being executed now.
    pub adopted: bool,
}

impl LegResult {
    /// Whether the outcome matches the catalog's expectation for this
    /// leg (`expect_failure` probes are *supposed* to end badly).
    pub fn matches_expectation(&self, expect_failure: bool) -> bool {
        self.outcome.is_success() != expect_failure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_round_trip() {
        let outcomes = [
            ScenarioOutcome::Completed {
                fingerprint: 0xDEAD_BEEF,
                cycles: 123_456,
                cause: "AllHalted".into(),
            },
            ScenarioOutcome::Panicked {
                message: "injected panic at cycle 42".into(),
            },
            ScenarioOutcome::TimedOut { hard: false },
            ScenarioOutcome::TimedOut { hard: true },
            ScenarioOutcome::Failed {
                message: "unknown system 'nope'".into(),
            },
            ScenarioOutcome::WorkerDied {
                signal: Some(9),
                attempt: 1,
            },
            ScenarioOutcome::WorkerDied {
                signal: None,
                attempt: 0,
            },
        ];
        for o in &outcomes {
            let mut w = StateWriter::new();
            o.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = StateReader::new(&bytes);
            let back = ScenarioOutcome::decode(&mut r).expect("decodes");
            r.finish("outcome").expect("no trailing bytes");
            assert_eq!(&back, o);
        }
    }

    #[test]
    fn unknown_tag_is_typed() {
        let mut w = StateWriter::new();
        w.put_u8(99);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert!(ScenarioOutcome::decode(&mut r).is_err());
    }
}
