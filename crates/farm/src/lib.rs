//! # dmi-farm — supervised, crash-safe scenario farm
//!
//! Batch execution for the co-simulation framework: a [`Catalog`] of
//! scenario legs ([`ScenarioSpec`]) runs across M worker threads under
//! a supervisor ([`run_farm`]) that treats individual failures as data
//! rather than process death:
//!
//! * **panic isolation** — a scenario that panics is caught at the
//!   worker boundary and becomes [`ScenarioOutcome::Panicked`]; sibling
//!   legs and the farm itself are untouched;
//! * **watchdogs** — a soft per-attempt deadline enforced *inside* the
//!   run via [`StopCondition::wall_clock_every`](dmi_system::StopCondition::wall_clock_every),
//!   and a supervisor-side hard deadline that abandons a worker which
//!   stops responding entirely;
//! * **deterministic retry** — failed attempts are retried with capped
//!   exponential backoff, resuming from the newest mid-leg checkpoint
//!   (exported across the unwind boundary, or to an on-disk checkpoint
//!   file in process mode), and still produce the same final
//!   fingerprint an uninterrupted run would — checkpoints capture
//!   architectural state only;
//! * **process isolation** — [`Isolation::Process`] runs each worker as
//!   a child process speaking a CRC-framed pipe protocol; a worker that
//!   aborts, is SIGKILLed, or tears its pipe mid-frame becomes a typed
//!   [`ScenarioOutcome::WorkerDied`], its leg is retried from the
//!   checkpoint file the dead worker exported, and the pool respawns a
//!   replacement with bounded respawn-storm throttling;
//! * **crash-safe journal** — completed legs are appended to a
//!   CRC-framed, fsynced [`Journal`]; a farm process killed outright
//!   resumes by skipping exactly the journaled legs, and torn tails
//!   from the kill are trimmed, never trusted;
//! * **divergence bisection** — [`bisect_divergence`] binary-searches
//!   the checkpoint grid between two builds that should agree, down to
//!   the first divergent interval, and emits a minimized repro
//!   (base snapshot + short interval) verified by
//!   [`Divergence::replay`].
//!
//! See `README.md` in this crate for the supervision model and the
//! journal format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bisect;
mod catalog;
mod journal;
mod outcome;
mod proc;
mod registry;
mod spec;
mod supervisor;
mod worker;

pub use bisect::{bisect_divergence, Divergence};
pub use catalog::{Catalog, CatalogError, CatalogStream};
pub use journal::{Journal, JournalError, JOURNAL_MAGIC, JOURNAL_VERSION};
pub use outcome::{LegResult, ScenarioOutcome};
pub use proc::{run_worker, worker_entry_from_env, WORKER_ENV};
pub use registry::{Factory, Registry};
pub use spec::ScenarioSpec;
pub use supervisor::{
    panics_caught, run_farm, run_farm_stream, FarmConfig, FarmError, FarmReport, Isolation,
};
pub use worker::{leg_fingerprint, WarmCache};
