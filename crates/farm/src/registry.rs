//! The system registry: named factories producing the
//! [`SystemBuilder`]s a catalog's `system` keys refer to.
//!
//! Factories (not prebuilt systems) because a [`McSystem`] is neither
//! `Clone` nor `Send`: every worker thread builds its own instance from
//! the shared, `Send + Sync` factory. Backed by a `Vec` rather than a
//! hash map — the determinism guardrails of this workspace disallow
//! `HashMap`, and a registry holds a handful of entries.

use dmi_system::SystemBuilder;

/// A named system factory.
pub type Factory = Box<dyn Fn() -> SystemBuilder + Send + Sync>;

/// Maps catalog `system` keys to the factories that build them.
#[derive(Default)]
pub struct Registry {
    entries: Vec<(String, Factory)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `factory` under `key`, replacing any previous entry
    /// with the same key.
    pub fn register(
        &mut self,
        key: impl Into<String>,
        factory: impl Fn() -> SystemBuilder + Send + Sync + 'static,
    ) {
        let key = key.into();
        self.entries.retain(|(k, _)| *k != key);
        self.entries.push((key, Box::new(factory)));
    }

    /// Looks a factory up by key.
    pub fn get(&self, key: &str) -> Option<&Factory> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, f)| f)
    }

    /// The registered keys, in registration order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Number of registered factories.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("keys", &self.keys().collect::<Vec<_>>())
            .finish()
    }
}
