//! Process-pool isolation: the worker side of the farm's process mode,
//! the supervisor-side child-process handles, and the CRC-framed pipe
//! protocol both sides speak.
//!
//! # Spawn protocol
//!
//! The supervisor spawns each worker as a child process — by default a
//! re-exec of `current_exe()`, or whatever
//! [`FarmConfig::worker_command`](crate::FarmConfig::worker_command)
//! names — with the environment marker [`WORKER_ENV`] set. A binary
//! that embeds the farm calls [`worker_entry_from_env`] first thing in
//! `main`: in a spawned child it never returns (the process becomes a
//! worker loop over stdin/stdout); in a normal invocation it is a no-op.
//!
//! # Wire format
//!
//! Both directions carry [`frame_record`]-framed records — the same
//! `[len][crc32][payload]` framing the run journal uses, decoded
//! incrementally with [`FrameStream`](dmi_kernel::FrameStream), so a
//! torn or corrupted pipe (a worker SIGKILLed mid-write) is healed the
//! way a torn journal tail is: the debris is discarded and the death is
//! typed, never misparsed. Payloads are tagged [`StateWriter`]
//! encodings:
//!
//! * `0` **hello** (worker → supervisor, first frame): wire version.
//!   Anything else as a first frame means the spawned binary is not a
//!   farm worker, and the supervisor treats the worker as dead.
//! * `1` **job** (supervisor → worker): job id, leg index, attempt,
//!   the [`ScenarioSpec`], and optional resume / checkpoint-export /
//!   warm-spill paths (snapshots cross the process boundary as files,
//!   never through the pipe).
//! * `2` **result** (worker → supervisor): job id, leg, attempt, the
//!   [`ScenarioOutcome`], and the cycle of the last checkpoint the
//!   attempt exported to its checkpoint file, if any.
//!
//! A worker exits `0` when the supervisor closes its stdin (orderly
//! shutdown) and `2` on a protocol violation (corrupt job stream,
//! unwritable stdout).

use std::io::{Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::thread::JoinHandle;

use dmi_kernel::{frame_record, FrameStream, Snapshot, StateReader, StateWriter};

use crate::outcome::ScenarioOutcome;
use crate::registry::Registry;
use crate::spec::ScenarioSpec;
use crate::supervisor::{note_panic_caught, panic_message, SupMsg, WorkerMsg};
use crate::worker::{run_leg, write_snapshot_atomic, WarmCache};

/// Environment variable the supervisor sets on spawned worker
/// processes; [`worker_entry_from_env`] checks it.
pub const WORKER_ENV: &str = "DMI_FARM_WORKER";

/// Version of the pipe protocol, carried in the hello frame. A
/// supervisor refuses (treats as dead) a worker speaking a different
/// version — mixed-build pools fail typed instead of misparsing.
const WIRE_VERSION: u32 = 1;

const MSG_HELLO: u8 = 0;
const MSG_JOB: u8 = 1;
const MSG_RESULT: u8 = 2;

// ---------------------------------------------------------------------------
// Wire encoding

/// One leg dispatch as it crosses the pipe.
pub(crate) struct WireJob {
    pub job_id: u64,
    pub leg: u32,
    pub attempt: u32,
    pub spec: ScenarioSpec,
    /// The supervisor's soft-watchdog poll granularity
    /// ([`FarmConfig::watchdog_poll`](crate::FarmConfig::watchdog_poll)),
    /// carried per job because the worker process never sees the config.
    pub watchdog_poll: u64,
    /// Snapshot file to resume from (a previous attempt's exported
    /// checkpoint), if any.
    pub resume_path: Option<PathBuf>,
    /// Where this attempt must export its checkpoints (atomic
    /// write-then-rename per export), if the spec checkpoints at all.
    pub ckpt_path: Option<PathBuf>,
    /// Shared warm-snapshot spill directory for the cross-process
    /// [`WarmCache`] tier.
    pub warm_dir: Option<PathBuf>,
}

fn put_opt_path(w: &mut StateWriter, p: &Option<PathBuf>) {
    match p {
        Some(p) => {
            w.put_bool(true);
            w.put_str(&p.to_string_lossy());
        }
        None => w.put_bool(false),
    }
}

fn get_opt_path(
    r: &mut StateReader<'_>,
    what: &'static str,
) -> Result<Option<PathBuf>, dmi_kernel::SnapshotError> {
    Ok(if r.get_bool(what)? {
        Some(PathBuf::from(r.get_str(what)?))
    } else {
        None
    })
}

fn put_opt_u64(w: &mut StateWriter, v: Option<u64>) {
    w.put_bool(v.is_some());
    w.put_u64(v.unwrap_or(0));
}

fn get_opt_u64(
    r: &mut StateReader<'_>,
    what: &'static str,
) -> Result<Option<u64>, dmi_kernel::SnapshotError> {
    let has = r.get_bool(what)?;
    let v = r.get_u64(what)?;
    Ok(has.then_some(v))
}

fn encode_spec(w: &mut StateWriter, s: &ScenarioSpec) {
    w.put_str(&s.name);
    w.put_str(&s.system);
    w.put_u64(s.cycles);
    put_opt_u64(w, s.checkpoint_every);
    put_opt_u64(w, s.deadline_ms);
    w.put_u32(s.retries);
    put_opt_u64(w, s.warm_cycles);
    w.put_bool(s.warm_snapshot.is_some());
    w.put_str(s.warm_snapshot.as_deref().unwrap_or(""));
    w.put_bool(s.fault_injection.is_some());
    w.put_bool(s.fault_injection.unwrap_or(false));
    w.put_bool(s.expect_failure);
    put_opt_u64(w, s.inject_panic_at);
    put_opt_u64(w, s.hang_ms);
    put_opt_u64(w, s.inject_abort_at);
}

fn decode_spec(r: &mut StateReader<'_>) -> Result<ScenarioSpec, dmi_kernel::SnapshotError> {
    let name = r.get_str("spec name")?.to_string();
    let system = r.get_str("spec system")?.to_string();
    let cycles = r.get_u64("spec cycles")?;
    let mut s = ScenarioSpec::new(name, system, cycles);
    s.checkpoint_every = get_opt_u64(r, "spec checkpoint_every")?;
    s.deadline_ms = get_opt_u64(r, "spec deadline_ms")?;
    s.retries = r.get_u32("spec retries")?;
    s.warm_cycles = get_opt_u64(r, "spec warm_cycles")?;
    let has_warm_snapshot = r.get_bool("spec warm_snapshot flag")?;
    let warm_snapshot = r.get_str("spec warm_snapshot")?.to_string();
    s.warm_snapshot = has_warm_snapshot.then_some(warm_snapshot);
    let has_faults = r.get_bool("spec fault_injection flag")?;
    let faults = r.get_bool("spec fault_injection")?;
    s.fault_injection = has_faults.then_some(faults);
    s.expect_failure = r.get_bool("spec expect_failure")?;
    s.inject_panic_at = get_opt_u64(r, "spec inject_panic_at")?;
    s.hang_ms = get_opt_u64(r, "spec hang_ms")?;
    s.inject_abort_at = get_opt_u64(r, "spec inject_abort_at")?;
    Ok(s)
}

pub(crate) fn encode_job(job: &WireJob) -> Vec<u8> {
    let mut w = StateWriter::new();
    w.put_u8(MSG_JOB);
    w.put_u64(job.job_id);
    w.put_u32(job.leg);
    w.put_u32(job.attempt);
    w.put_u64(job.watchdog_poll);
    encode_spec(&mut w, &job.spec);
    put_opt_path(&mut w, &job.resume_path);
    put_opt_path(&mut w, &job.ckpt_path);
    put_opt_path(&mut w, &job.warm_dir);
    frame_record(&w.into_bytes())
}

fn decode_job(payload: &[u8]) -> Result<WireJob, dmi_kernel::SnapshotError> {
    let mut r = StateReader::new(payload);
    let tag = r.get_u8("job tag")?;
    if tag != MSG_JOB {
        return Err(dmi_kernel::SnapshotError::Corrupt {
            context: format!("expected job frame, got tag {tag}"),
        });
    }
    let job = WireJob {
        job_id: r.get_u64("job id")?,
        leg: r.get_u32("job leg")?,
        attempt: r.get_u32("job attempt")?,
        watchdog_poll: r.get_u64("job watchdog poll")?,
        spec: decode_spec(&mut r)?,
        resume_path: get_opt_path(&mut r, "job resume path")?,
        ckpt_path: get_opt_path(&mut r, "job checkpoint path")?,
        warm_dir: get_opt_path(&mut r, "job warm dir")?,
    };
    r.finish("job frame")?;
    Ok(job)
}

fn encode_result(
    job_id: u64,
    leg: u32,
    attempt: u32,
    outcome: &ScenarioOutcome,
    ckpt_cycle: Option<u64>,
) -> Vec<u8> {
    let mut w = StateWriter::new();
    w.put_u8(MSG_RESULT);
    w.put_u64(job_id);
    w.put_u32(leg);
    w.put_u32(attempt);
    outcome.encode(&mut w);
    put_opt_u64(&mut w, ckpt_cycle);
    frame_record(&w.into_bytes())
}

// ---------------------------------------------------------------------------
// Worker side

/// If [`WORKER_ENV`] is set, becomes a farm worker over stdin/stdout
/// and exits the process when the supervisor is done; otherwise returns
/// immediately. Call this first thing in `main` of any binary used as a
/// `worker_command` (or whose `current_exe` re-exec should work) —
/// before anything writes to stdout, which belongs to the pipe protocol
/// in a worker.
pub fn worker_entry_from_env(registry: &Registry) {
    if std::env::var_os(WORKER_ENV).is_some() {
        std::process::exit(run_worker(registry));
    }
}

/// The blocking worker loop: reads framed jobs from stdin, runs each
/// leg against `registry`, writes framed results to stdout. Returns the
/// intended process exit code: `0` on orderly shutdown (stdin closed),
/// `2` on a protocol violation.
pub fn run_worker(registry: &Registry) -> i32 {
    let mut stdout = std::io::stdout();
    let mut hello = StateWriter::new();
    hello.put_u8(MSG_HELLO);
    hello.put_u32(WIRE_VERSION);
    if stdout
        .write_all(&frame_record(&hello.into_bytes()))
        .and_then(|_| stdout.flush())
        .is_err()
    {
        return 2;
    }

    let mut stdin = std::io::stdin();
    let mut stream = FrameStream::new();
    let mut warm: Option<WarmCache> = None;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        while let Some(payload) = stream.next_payload() {
            let Ok(job) = decode_job(&payload) else {
                return 2;
            };
            let reply = serve_job(registry, &mut warm, &job);
            if stdout.write_all(&reply).and_then(|_| stdout.flush()).is_err() {
                return 2; // supervisor gone mid-result
            }
        }
        if stream.is_corrupt() {
            return 2;
        }
        match stdin.read(&mut chunk) {
            Ok(0) => return 0, // orderly shutdown: supervisor closed the pipe
            Ok(n) => stream.feed(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return 2,
        }
    }
}

/// Runs one job and encodes its framed result. The leg runs under
/// `catch_unwind` exactly like a thread-mode worker: a panic is a typed
/// `Panicked` outcome, not a worker death — process isolation is for
/// the failures `catch_unwind` cannot catch.
fn serve_job(registry: &Registry, warm: &mut Option<WarmCache>, job: &WireJob) -> Vec<u8> {
    let cache = warm.get_or_insert_with(|| match &job.warm_dir {
        Some(dir) => WarmCache::in_dir(dir.clone()),
        None => WarmCache::new(),
    });
    let resume = job
        .resume_path
        .as_ref()
        .and_then(|p| Snapshot::load(p).ok());

    let mut ckpt_cycle: Option<u64> = None;
    let ckpt_path = job.ckpt_path.clone();
    let mut export = |cycle: u64, snap: Snapshot| {
        if let Some(path) = &ckpt_path {
            if write_snapshot_atomic(path, &snap).is_ok() {
                ckpt_cycle = Some(cycle);
            }
        }
    };
    let outcome = match catch_unwind(AssertUnwindSafe(|| {
        run_leg(
            registry,
            &job.spec,
            job.attempt,
            resume.as_ref(),
            cache,
            job.watchdog_poll,
            &mut export,
        )
    })) {
        Ok(outcome) => outcome,
        Err(payload) => {
            note_panic_caught();
            ScenarioOutcome::Panicked {
                message: panic_message(payload),
            }
        }
    };
    encode_result(job.job_id, job.leg, job.attempt, &outcome, ckpt_cycle)
}

// ---------------------------------------------------------------------------
// Supervisor side

/// A live worker child process: the pipe jobs go down, the child
/// handle, and the reader thread pumping its stdout back as [`SupMsg`]s.
pub(crate) struct ProcWorker {
    child: Child,
    stdin: Option<ChildStdin>,
    reader: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ProcWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcWorker")
            .field("pid", &self.child.id())
            .finish()
    }
}

/// Spawns one worker process and its stdout-reader thread. `command` is
/// `FarmConfig::worker_command` (program + args); `None` re-execs the
/// current binary with no arguments.
pub(crate) fn spawn_process(
    id: u64,
    command: Option<&Vec<String>>,
    results: Sender<SupMsg>,
) -> std::io::Result<ProcWorker> {
    let (program, args): (PathBuf, &[String]) = match command {
        Some(cmd) if !cmd.is_empty() => (PathBuf::from(&cmd[0]), &cmd[1..]),
        _ => (std::env::current_exe()?, &[]),
    };
    let mut child = Command::new(&program)
        .args(args)
        .env(WORKER_ENV, "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");
    let reader = std::thread::Builder::new()
        .name(format!("farm-reader-{id}"))
        .spawn(move || reader_loop(id, stdout, results))
        .inspect_err(|_| {
            let _ = child.kill();
            let _ = child.wait();
        })?;
    Ok(ProcWorker {
        child,
        stdin: Some(stdin),
        reader: Some(reader),
    })
}

/// Pumps one worker's stdout: validates the hello, forwards results,
/// and reports the worker dead on EOF, a torn frame, or any protocol
/// violation. Runs until the worker or the supervisor goes away.
fn reader_loop(id: u64, mut stdout: ChildStdout, results: Sender<SupMsg>) {
    let mut stream = FrameStream::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut hello_seen = false;
    let died = |results: &Sender<SupMsg>| {
        let _ = results.send(SupMsg::Died { worker: id });
    };
    loop {
        while let Some(payload) = stream.next_payload() {
            match decode_worker_frame(id, &payload, &mut hello_seen) {
                Ok(Some(msg)) => {
                    if results.send(SupMsg::Result(msg)).is_err() {
                        return; // supervisor gone
                    }
                }
                Ok(None) => {} // hello
                Err(()) => {
                    died(&results);
                    return;
                }
            }
        }
        if stream.is_corrupt() {
            died(&results);
            return;
        }
        match stdout.read(&mut chunk) {
            // EOF: the worker exited or its pipe closed. A partial
            // frame still buffered is a torn tail — dropped, exactly
            // like a torn journal tail; the supervisor re-runs the leg.
            Ok(0) => {
                died(&results);
                return;
            }
            Ok(n) => stream.feed(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                died(&results);
                return;
            }
        }
    }
}

/// Decodes one worker→supervisor frame: `Ok(None)` for a valid hello,
/// `Ok(Some(msg))` for a result, `Err(())` for anything out of
/// protocol (which the reader reports as a worker death).
fn decode_worker_frame(
    worker: u64,
    payload: &[u8],
    hello_seen: &mut bool,
) -> Result<Option<WorkerMsg>, ()> {
    let mut r = StateReader::new(payload);
    let tag = r.get_u8("worker frame tag").map_err(|_| ())?;
    if !*hello_seen {
        // First frame must be a matching hello — a spawned binary that
        // is not a farm worker (or is a different build) fails here.
        if tag != MSG_HELLO || r.get_u32("wire version").map_err(|_| ())? != WIRE_VERSION {
            return Err(());
        }
        *hello_seen = true;
        return Ok(None);
    }
    if tag != MSG_RESULT {
        return Err(());
    }
    let parsed = (|| -> Result<WorkerMsg, dmi_kernel::SnapshotError> {
        let job_id = r.get_u64("result job id")?;
        let leg = r.get_u32("result leg")?;
        let attempt = r.get_u32("result attempt")?;
        let outcome = ScenarioOutcome::decode(&mut r)?;
        let ckpt_cycle = get_opt_u64(&mut r, "result checkpoint cycle")?;
        r.finish("result frame")?;
        Ok(WorkerMsg {
            worker,
            job_id,
            leg,
            attempt,
            outcome,
            checkpoint: None,
            file_checkpoint: ckpt_cycle,
        })
    })();
    parsed.map(Some).map_err(|_| ())
}

impl ProcWorker {
    /// Writes one framed job down the worker's stdin. A failed write
    /// means the worker is dying or dead — the reader thread will
    /// report the death, so the caller only needs to know it happened.
    pub(crate) fn send(&mut self, job: &WireJob) -> bool {
        let Some(stdin) = self.stdin.as_mut() else {
            return false;
        };
        let bytes = encode_job(job);
        stdin.write_all(&bytes).and_then(|_| stdin.flush()).is_ok()
    }

    /// Kills (idempotently), reaps, and joins the reader; returns the
    /// signal that terminated the child, if the host reported one.
    /// Used both for orderly shutdown (workers are idle; the kill is a
    /// no-op race with their clean exit) and for reaping a worker the
    /// reader declared dead.
    pub(crate) fn shutdown(&mut self) -> Option<i32> {
        drop(self.stdin.take()); // EOF → a live worker exits cleanly
        let _ = self.child.kill();
        let status = self.child.wait().ok();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
        death_signal(status)
    }
}

#[cfg(unix)]
fn death_signal(status: Option<std::process::ExitStatus>) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt;
    status.and_then(|s| s.signal())
}

#[cfg(not(unix))]
fn death_signal(_status: Option<std::process::ExitStatus>) -> Option<i32> {
    None
}

// ---------------------------------------------------------------------------
// Scratch directory (tempfile snapshot handoff)

/// Per-farm-run scratch directory for cross-process snapshot handoff:
/// per-leg checkpoint exports (`ckpt-leg<N>.snap`) and the shared
/// warm-snapshot spill tier (`warm/`). Removed on drop; a farm killed
/// outright leaves it behind, and the pid+sequence name keeps a later
/// run from tripping over the debris.
pub(crate) struct ScratchDir {
    root: PathBuf,
}

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

impl ScratchDir {
    pub(crate) fn create() -> std::io::Result<ScratchDir> {
        let root = std::env::temp_dir().join(format!(
            "dmi-farm-{}-{}",
            std::process::id(),
            SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("warm"))?;
        Ok(ScratchDir { root })
    }

    /// Checkpoint-export file for catalog leg `leg`. Stable across
    /// attempts: a retry resumes from whatever the dead attempt last
    /// managed to export here.
    pub(crate) fn ckpt_path(&self, leg: u32) -> PathBuf {
        self.root.join(format!("ckpt-leg{leg}.snap"))
    }

    /// The warm-snapshot spill directory shared by all workers.
    pub(crate) fn warm_dir(&self) -> PathBuf {
        self.root.join("warm")
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}
