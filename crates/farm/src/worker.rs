//! Leg execution: one attempt of one scenario on one worker thread.
//!
//! A leg runs in checkpoint-interval slices so that (a) the latest
//! snapshot continuously escapes to the supervisor side of the
//! `catch_unwind` boundary — a panicking or soft-timed-out attempt
//! leaves a resume point behind — and (b) the soft watchdog re-arms
//! each slice with the remaining host-time budget. Slicing is
//! architecturally invisible: the simulation is cycle-driven, so
//! stopping and continuing at a cycle boundary replays bit-identically
//! to an uninterrupted run.

use std::sync::Mutex;
use std::time::Duration;

use dmi_kernel::{crc32, Snapshot};
use dmi_system::{McSystem, StopCause, StopCondition};

use crate::outcome::ScenarioOutcome;
use crate::registry::Registry;
use crate::spec::ScenarioSpec;

/// Shared warm-start snapshots, keyed by `(system key, warm_cycles)`.
///
/// The lock is held *while warming*, deliberately: when M legs of the
/// same scenario family start together, exactly one pays for the warmup
/// prefix and the rest restore its snapshot, instead of M cold warmups
/// racing. Snapshots are stored as bytes (`Snapshot::to_bytes`) so the
/// cache is plain `Send` data.
#[derive(Debug, Default)]
pub struct WarmCache {
    entries: Mutex<Vec<(WarmKey, Vec<u8>)>>,
}

/// Cache key: system registry key + warm-prefix cycle count.
type WarmKey = (String, u64);

impl WarmCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Brings `sys` to `warm` cycles: restores the cached snapshot if
    /// one exists, otherwise simulates the warmup once and caches it.
    fn warm_up(&self, sys: &mut McSystem, system_key: &str, warm: u64) {
        // A worker panic while holding the lock (it cannot happen here —
        // warming runs no probe hooks — but belt and braces) must not
        // wedge every later leg: take the data out of a poisoned lock.
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let key = (system_key.to_string(), warm);
        if let Some((_, bytes)) = entries.iter().find(|(k, _)| *k == key) {
            if let Ok(snap) = Snapshot::from_bytes(bytes) {
                if sys.restore(&snap).is_ok() {
                    return;
                }
            }
            // Unusable cache entry (should not happen — same factory,
            // same topology): fall through and warm cold.
        }
        sys.run_until(&StopCondition::cycles(warm));
        entries.push((key, sys.checkpoint().to_bytes()));
    }
}

/// The deterministic identity of a finished leg: CRC-32 over the full
/// architectural snapshot. Wall time and validated-cache contents never
/// enter a snapshot, so this is bit-stable across cold, warm-started,
/// and crash-resumed executions of the same scenario.
pub fn leg_fingerprint(sys: &mut McSystem) -> u32 {
    crc32(&sys.checkpoint().to_bytes())
}

/// Runs one attempt of `spec` to completion, soft timeout, or injected
/// panic.
///
/// `resume` is the `(absolute cycle, snapshot)` pair a previous attempt
/// exported; `export` continuously receives the newest checkpoint so it
/// survives this attempt's unwinding. Panics are *not* caught here —
/// the worker loop wraps this call in `catch_unwind`.
pub(crate) fn run_leg(
    registry: &Registry,
    spec: &ScenarioSpec,
    attempt: u32,
    resume: Option<&(u64, Snapshot)>,
    warm: &WarmCache,
    watchdog_poll: u64,
    export: &mut Option<(u64, Snapshot)>,
) -> ScenarioOutcome {
    if let Some(ms) = spec.hang_ms {
        // Probe: pretend to be a stuck worker (see ScenarioSpec::hang_ms).
        std::thread::sleep(Duration::from_millis(ms));
    }

    let Some(factory) = registry.get(&spec.system) else {
        return ScenarioOutcome::Failed {
            message: format!("unknown system '{}'", spec.system),
        };
    };
    let mut sys = match factory().build() {
        Ok(sys) => sys,
        Err(e) => {
            return ScenarioOutcome::Failed {
                message: format!("build failed: {e}"),
            }
        }
    };
    if let Some(on) = spec.fault_injection {
        sys.set_fault_injection(on);
    }

    match resume {
        Some((_, snap)) => {
            if sys.restore(snap).is_err() {
                // A stale or foreign snapshot cannot poison the leg:
                // fall back to a cold start (still deterministic, just
                // slower).
                sys = match factory().build() {
                    Ok(sys) => sys,
                    Err(e) => {
                        return ScenarioOutcome::Failed {
                            message: format!("rebuild failed: {e}"),
                        }
                    }
                };
                if let Some(on) = spec.fault_injection {
                    sys.set_fault_injection(on);
                }
            }
        }
        None => {
            if let Some(w) = spec.warm_cycles {
                if w > 0 && w < spec.cycles {
                    warm.warm_up(&mut sys, &spec.system, w);
                }
            }
        }
    }

    // The soft watchdog budgets *host* time for the whole attempt, so
    // the deadline has to be read against a wall-clock start.
    #[allow(clippy::disallowed_methods)]
    let started = spec.deadline_ms.map(|ms| {
        (std::time::Instant::now(), Duration::from_millis(ms))
    });

    let target = spec.cycles;
    let mut cause = StopCause::CycleBudget;
    loop {
        let done = sys.total_cycles();
        if done >= target {
            break;
        }
        let remaining = target - done;
        let step = match spec.checkpoint_every {
            Some(ck) => ck.max(1).min(remaining),
            None => remaining,
        };
        let mut cond = StopCondition::cycles(step);
        if let Some((t0, budget)) = started {
            let left = budget.saturating_sub(t0.elapsed());
            if left.is_zero() {
                return ScenarioOutcome::TimedOut { hard: false };
            }
            cond = cond.or(StopCondition::wall_clock_every(left, watchdog_poll));
        }
        let report = sys.run_until(&cond);
        match report.cause {
            StopCause::WallClock => return ScenarioOutcome::TimedOut { hard: false },
            StopCause::CycleBudget => {}
            // AllHalted (scenario finished early), a deterministic fault
            // escalation, or a component error: the leg is over — the
            // fingerprint captures whatever state it ended in.
            other => {
                cause = other;
                if spec.checkpoint_every.is_some() {
                    *export = Some((sys.total_cycles(), sys.checkpoint()));
                }
                break;
            }
        }
        if spec.checkpoint_every.is_some() {
            *export = Some((sys.total_cycles(), sys.checkpoint()));
        }
        if attempt == 0 && spec.inject_panic_at.is_some_and(|p| sys.total_cycles() >= p) {
            // Probe: blow up the first attempt *after* the checkpoint
            // export, so the retry resumes warm and still reproduces
            // the uninterrupted fingerprint.
            panic!(
                "injected panic at cycle {} (scenario '{}', attempt 0)",
                sys.total_cycles(),
                spec.name
            );
        }
    }

    let cycles = sys.total_cycles();
    ScenarioOutcome::Completed {
        fingerprint: leg_fingerprint(&mut sys),
        cycles,
        cause: format!("{cause:?}"),
    }
}
