//! Leg execution: one attempt of one scenario on one worker thread.
//!
//! A leg runs in checkpoint-interval slices so that (a) the latest
//! snapshot continuously escapes to the supervisor side of the
//! `catch_unwind` boundary — a panicking or soft-timed-out attempt
//! leaves a resume point behind — and (b) the soft watchdog re-arms
//! each slice with the remaining host-time budget. Slicing is
//! architecturally invisible: the simulation is cycle-driven, so
//! stopping and continuing at a cycle boundary replays bit-identically
//! to an uninterrupted run.

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use dmi_kernel::{crc32, Snapshot};
use dmi_system::{McSystem, StopCause, StopCondition};

use crate::outcome::ScenarioOutcome;
use crate::registry::Registry;
use crate::spec::ScenarioSpec;

/// Shared warm-start snapshots, keyed by `(system key, warm_cycles)`.
///
/// The lock is held *while warming*, deliberately: when M legs of the
/// same scenario family start together, exactly one pays for the warmup
/// prefix and the rest restore its snapshot, instead of M cold warmups
/// racing. Snapshots are stored as bytes (`Snapshot::to_bytes`) so the
/// cache is plain `Send` data.
///
/// Under process isolation the in-memory tier only spans one worker
/// process; [`in_dir`](Self::in_dir) adds a directory-backed tier so
/// sibling worker *processes* still share warm prefixes. Warmups are
/// deterministic, so two processes racing on the same key write
/// byte-identical files — the atomic rename makes the race harmless.
#[derive(Debug, Default)]
pub struct WarmCache {
    entries: Mutex<Vec<(WarmKey, Vec<u8>)>>,
    dir: Option<PathBuf>,
}

/// Cache key: system registry key + warm-prefix cycle count.
type WarmKey = (String, u64);

impl WarmCache {
    /// An empty, in-memory-only cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache that additionally spills warm snapshots to
    /// `dir` (and restores ones a sibling process already spilled).
    pub fn in_dir(dir: PathBuf) -> Self {
        WarmCache {
            entries: Mutex::new(Vec::new()),
            dir: Some(dir),
        }
    }

    /// Where a warm snapshot for `key` lives on disk, when a spill
    /// directory is configured.
    fn spill_path(&self, key: &WarmKey) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("warm-{:08x}-{}.snap", crc32(key.0.as_bytes()), key.1)))
    }

    /// Brings `sys` to `warm` cycles: restores the cached snapshot if
    /// one exists (memory first, then the spill directory), otherwise
    /// simulates the warmup once and caches it in both tiers.
    fn warm_up(&self, sys: &mut McSystem, system_key: &str, warm: u64) {
        // A worker panic while holding the lock (it cannot happen here —
        // warming runs no probe hooks — but belt and braces) must not
        // wedge every later leg: take the data out of a poisoned lock.
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let key = (system_key.to_string(), warm);
        if let Some((_, bytes)) = entries.iter().find(|(k, _)| *k == key) {
            if let Ok(snap) = Snapshot::from_bytes(bytes) {
                if sys.restore(&snap).is_ok() {
                    return;
                }
            }
            // Unusable cache entry (should not happen — same factory,
            // same topology): fall through and warm cold.
        }
        if let Some(path) = self.spill_path(&key) {
            if let Ok(snap) = Snapshot::load(&path) {
                if sys.restore(&snap).is_ok() {
                    entries.push((key, snap.to_bytes()));
                    return;
                }
            }
        }
        sys.run_until(&StopCondition::cycles(warm));
        let snap = sys.checkpoint();
        if let Some(path) = self.spill_path(&key) {
            let _ = write_snapshot_atomic(&path, &snap);
        }
        entries.push((key, snap.to_bytes()));
    }
}

/// Writes `snap` to `path` atomically: the bytes land in a `.tmp`
/// sibling first and are renamed into place, so a reader (another
/// worker process, a retry resuming from this checkpoint) either sees
/// the complete previous file or the complete new one — never a torn
/// half-write, even if this process is SIGKILLed mid-write.
pub(crate) fn write_snapshot_atomic(path: &Path, snap: &Snapshot) -> std::io::Result<()> {
    // The tmp name carries the pid so two processes racing on the same
    // key never interleave writes into one tmp file; last rename wins
    // with a complete file either way.
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, snap.to_bytes())?;
    std::fs::rename(&tmp, path)
}

/// The deterministic identity of a finished leg: CRC-32 over the full
/// architectural snapshot. Wall time and validated-cache contents never
/// enter a snapshot, so this is bit-stable across cold, warm-started,
/// and crash-resumed executions of the same scenario.
pub fn leg_fingerprint(sys: &mut McSystem) -> u32 {
    crc32(&sys.checkpoint().to_bytes())
}

/// Runs one attempt of `spec` to completion, soft timeout, or injected
/// panic.
///
/// `resume` is the snapshot a previous attempt exported; `export`
/// continuously receives the newest `(absolute cycle, checkpoint)` so
/// it survives this attempt's unwinding (thread mode stashes it in
/// memory; process mode writes it straight to the leg's checkpoint
/// file, where it even survives the worker being SIGKILLed). Panics are
/// *not* caught here — the worker loop wraps this call in
/// `catch_unwind`.
pub(crate) fn run_leg(
    registry: &Registry,
    spec: &ScenarioSpec,
    attempt: u32,
    resume: Option<&Snapshot>,
    warm: &WarmCache,
    watchdog_poll: u64,
    export: &mut dyn FnMut(u64, Snapshot),
) -> ScenarioOutcome {
    if let Some(ms) = spec.hang_ms {
        // Probe: pretend to be a stuck worker (see ScenarioSpec::hang_ms).
        std::thread::sleep(Duration::from_millis(ms));
    }

    let Some(factory) = registry.get(&spec.system) else {
        return ScenarioOutcome::Failed {
            message: format!("unknown system '{}'", spec.system),
        };
    };
    let mut sys = match factory().build() {
        Ok(sys) => sys,
        Err(e) => {
            return ScenarioOutcome::Failed {
                message: format!("build failed: {e}"),
            }
        }
    };
    if let Some(on) = spec.fault_injection {
        sys.set_fault_injection(on);
    }

    match resume {
        Some(snap) => {
            if sys.restore(snap).is_err() {
                // A stale or foreign snapshot cannot poison the leg:
                // fall back to a cold start (still deterministic, just
                // slower).
                sys = match factory().build() {
                    Ok(sys) => sys,
                    Err(e) => {
                        return ScenarioOutcome::Failed {
                            message: format!("rebuild failed: {e}"),
                        }
                    }
                };
                if let Some(on) = spec.fault_injection {
                    sys.set_fault_injection(on);
                }
            }
        }
        None => {
            if let Some(path) = &spec.warm_snapshot {
                // A broken warm_snapshot is a deterministic catalog
                // error, not a retry or cold-fallback candidate: a leg
                // that silently ran cold would fingerprint differently
                // from what the catalog asked for.
                let snap = match Snapshot::load(Path::new(path)) {
                    Ok(snap) => snap,
                    Err(e) => {
                        return ScenarioOutcome::Failed {
                            message: format!("warm snapshot {path}: {e}"),
                        }
                    }
                };
                if sys.restore(&snap).is_err() {
                    return ScenarioOutcome::Failed {
                        message: format!(
                            "warm snapshot {path} does not fit system '{}'",
                            spec.system
                        ),
                    };
                }
            } else if let Some(w) = spec.warm_cycles {
                if w > 0 && w < spec.cycles {
                    warm.warm_up(&mut sys, &spec.system, w);
                }
            }
        }
    }

    // The soft watchdog budgets *host* time for the whole attempt, so
    // the deadline has to be read against a wall-clock start.
    #[allow(clippy::disallowed_methods)]
    let started = spec.deadline_ms.map(|ms| {
        (std::time::Instant::now(), Duration::from_millis(ms))
    });

    let target = spec.cycles;
    let mut cause = StopCause::CycleBudget;
    loop {
        let done = sys.total_cycles();
        if done >= target {
            break;
        }
        let remaining = target - done;
        let step = match spec.checkpoint_every {
            Some(ck) => ck.max(1).min(remaining),
            None => remaining,
        };
        let mut cond = StopCondition::cycles(step);
        if let Some((t0, budget)) = started {
            let left = budget.saturating_sub(t0.elapsed());
            if left.is_zero() {
                return ScenarioOutcome::TimedOut { hard: false };
            }
            cond = cond.or(StopCondition::wall_clock_every(left, watchdog_poll));
        }
        let report = sys.run_until(&cond);
        match report.cause {
            StopCause::WallClock => return ScenarioOutcome::TimedOut { hard: false },
            StopCause::CycleBudget => {}
            // AllHalted (scenario finished early), a deterministic fault
            // escalation, or a component error: the leg is over — the
            // fingerprint captures whatever state it ended in.
            other => {
                cause = other;
                if spec.checkpoint_every.is_some() {
                    export(sys.total_cycles(), sys.checkpoint());
                }
                break;
            }
        }
        if spec.checkpoint_every.is_some() {
            export(sys.total_cycles(), sys.checkpoint());
        }
        if attempt == 0 && spec.inject_abort_at.is_some_and(|p| sys.total_cycles() >= p) {
            // Probe: die the way an OOM-killed worker dies — no unwind,
            // no cleanup, nothing flushed beyond the checkpoint just
            // exported. Under process isolation this takes down only
            // this worker; the supervisor sees the pipe close and
            // retries the leg from the exported checkpoint file.
            std::process::abort();
        }
        if attempt == 0 && spec.inject_panic_at.is_some_and(|p| sys.total_cycles() >= p) {
            // Probe: blow up the first attempt *after* the checkpoint
            // export, so the retry resumes warm and still reproduces
            // the uninterrupted fingerprint.
            panic!(
                "injected panic at cycle {} (scenario '{}', attempt 0)",
                sys.total_cycles(),
                spec.name
            );
        }
    }

    let cycles = sys.total_cycles();
    ScenarioOutcome::Completed {
        fingerprint: leg_fingerprint(&mut sys),
        cycles,
        cause: format!("{cause:?}"),
    }
}
