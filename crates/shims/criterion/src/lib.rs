//! A dependency-free stand-in for the [criterion](https://docs.rs/criterion)
//! benchmark harness, covering the API subset the `dmi-bench` suite uses.
//!
//! This build environment has no network access, so the real crate cannot be
//! fetched; this shim keeps `cargo bench` working with the same bench
//! sources. It is deliberately simple: per benchmark it runs a warm-up, then
//! `sample_size` timed samples (each auto-scaled to a minimum duration) and
//! reports the min / median / max nanoseconds per iteration in a
//! criterion-like one-line format.
//!
//! Environment knobs:
//!
//! * `DMI_BENCH_SAMPLES` — override the per-group sample count (CI smoke
//!   runs set this to `1`);
//! * `DMI_BENCH_JSON` — if set, append one JSON line per benchmark to the
//!   given file (`{"name": ..., "median_ns": ...}`), which is what the
//!   repo's `BENCH_*.json` trajectory is built from.

// A benchmark harness exists to read the wall clock.
#![allow(clippy::disallowed_methods)]

use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of a parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `{function_name}/{parameter}`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Iterations to run per sample (set by the harness).
    iters: u64,
    /// Measured duration of the sample.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    /// Target duration per sample; iteration count is scaled to reach it.
    target_sample: Duration,
    warm_up: Duration,
}

impl Default for Config {
    fn default() -> Self {
        let samples = std::env::var("DMI_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok());
        Config {
            sample_size: samples.unwrap_or(10),
            target_sample: Duration::from_millis(if samples == Some(1) { 1 } else { 50 }),
            warm_up: Duration::from_millis(if samples == Some(1) { 0 } else { 200 }),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, cfg: Config, mut f: F) {
    // Warm-up and iteration-count calibration.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let per_iter;
    loop {
        f(&mut b);
        if warm_start.elapsed() >= cfg.warm_up {
            per_iter = b.elapsed.checked_div(b.iters as u32).unwrap_or_default();
            break;
        }
        b.iters = (b.iters * 2).min(1 << 20);
    }
    let iters_per_sample = if per_iter.is_zero() {
        1000
    } else {
        (cfg.target_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
    };

    let mut samples_ns: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let max = samples_ns[samples_ns.len() - 1];
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
    if let Ok(path) = std::env::var("DMI_BENCH_JSON") {
        if let Ok(mut fh) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                fh,
                "{{\"name\":\"{name}\",\"min_ns\":{min:.1},\"median_ns\":{median:.1},\"max_ns\":{max:.1}}}"
            );
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// The benchmark manager: entry point handed to `criterion_group!` targets.
pub struct Criterion {
    cfg: Config,
    /// When true (cargo test mode), run each benchmark body once and skip
    /// timing entirely.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            cfg: Config::default(),
            test_mode,
        }
    }
}

impl Criterion {
    fn run<F: FnMut(&mut Bencher)>(&self, name: &str, mut f: F) {
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("{name}: test-mode ok");
        } else {
            run_one(name, self.cfg, f);
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            cfg: Config::default(),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    cfg: Config,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("DMI_BENCH_SAMPLES").is_err() {
            self.cfg.sample_size = n.max(1);
        }
        self
    }

    /// Sets the target measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.target_sample = d.checked_div(self.cfg.sample_size as u32).unwrap_or(d);
        self
    }

    fn full_name(&self, id: &str) -> String {
        format!("{}/{}", self.name, id)
    }

    /// Benchmarks `f` under `{group}/{id}`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchId,
        f: F,
    ) -> &mut Self {
        let name = self.full_name(&id.into_bench_id());
        if self.criterion.test_mode {
            self.criterion.run(&name, f);
        } else {
            run_one(&name, self.cfg, f);
        }
        self
    }

    /// Benchmarks `f` with `input` under `{group}/{id}`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Anything usable as a benchmark identifier within a group.
pub trait IntoBenchId {
    /// Renders the identifier.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
