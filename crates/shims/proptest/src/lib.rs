//! A dependency-free stand-in for [proptest](https://docs.rs/proptest),
//! covering the API subset this repository's property tests use.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps the same test sources compiling and running:
//! strategies generate pseudo-random values from a deterministic per-test
//! seed (FNV hash of the test path), so failures are reproducible run to
//! run. There is **no shrinking** — a failing case reports the generated
//! inputs as-is.

pub mod strategy {
    use crate::test_runner::Rng;
    use std::fmt::Debug;

    /// A generator of test values.
    pub trait Strategy {
        /// The type of value generated.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Maps generated values through `f`, retrying generation when `f`
        /// returns `None`. `reason` is reported if generation never
        /// succeeds.
        fn prop_filter_map<U: Debug, F: Fn(Self::Value) -> Option<U>>(
            self,
            reason: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                f,
                reason,
            }
        }

        /// Keeps only values satisfying `pred`, retrying otherwise.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                pred,
                reason,
            }
        }

        /// Boxes the strategy (type erasure for heterogeneous arms).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut Rng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut Rng) -> U {
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map rejected 10000 candidates: {}", self.reason);
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
        reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut Rng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 candidates: {}", self.reason);
        }
    }

    /// Weighted choice among boxed arms (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T: Debug> Union<T> {
        /// Builds a union; weights must sum to a non-zero total.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }

        /// Boxes one arm (helper for the `prop_oneof!` macro).
        pub fn arm<S: Strategy<Value = T> + 'static>(
            weight: u32,
            strat: S,
        ) -> (u32, BoxedStrategy<T>) {
            (weight, Box::new(strat))
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    (lo + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    (self.start..=<$t>::MAX).generate(rng)
                }
            }
        )+};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident/$idx:tt),+);)+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategies! {
        (A/0);
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
        (A/0, B/1, C/2, D/3, E/4, F/5);
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6);
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8);
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9);
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arb_ints {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Sources of collection sizes: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Samples a size.
        fn sample(&self, rng: &mut Rng) -> usize;
    }

    impl SizeRange for usize {
        fn sample(&self, _rng: &mut Rng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample(&self, rng: &mut Rng) -> usize {
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample(&self, rng: &mut Rng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and size spec `R`.
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    /// Generates vectors of values from `elem`, sized by `size`.
    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::Rng;

    /// An index into a collection of as-yet-unknown size.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        /// Projects onto a collection of `len` elements.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut Rng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

pub mod test_runner {
    /// Deterministic splitmix64 generator used by all strategies.
    #[derive(Debug, Clone)]
    pub struct Rng(u64);

    impl Rng {
        /// Derives the RNG for one test case from the per-test seed.
        pub fn for_case(seed: u64, case: u64) -> Self {
            Rng(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Modulo bias is irrelevant for test generation purposes.
            self.next_u64() % n
        }
    }

    /// FNV-1a hash used to derive a stable per-test seed from its path.
    pub const fn fnv(s: &str) -> u64 {
        let bytes = s.as_bytes();
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            i += 1;
        }
        hash
    }

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The case was rejected (filtered); not a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// A property violation with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected case with the given message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition, failing the current case (not the process) so the
/// runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)*), __a, __b
        );
    }};
}

/// Asserts two expressions are unequal, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), __a
        );
    }};
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Union::arm($weight as u32, $strat) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Union::arm(1u32, $strat) ),+
        ])
    };
}

/// Declares property-test functions: each `arg in strategy` binding is
/// generated per case and the body runs `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::fnv(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases as u64 {
                let mut __rng = $crate::test_runner::Rng::for_case(__seed, __case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err(__e) => {
                        // The body may have consumed the inputs; regenerate
                        // them from the same seed for the report.
                        let mut __rng = $crate::test_runner::Rng::for_case(__seed, __case);
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:\n{}",
                            __case + 1,
                            __cfg.cases,
                            __e,
                            [$(format!("  {} = {:?}", stringify!($arg), $arg)),+].join("\n"),
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
}
