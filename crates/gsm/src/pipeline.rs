//! The 4-stage GSM encoder pipeline over dynamic shared memory.
//!
//! This is the paper's evaluation workload: "simulating the GSM algorithm"
//! on 4 ISSs exchanging frames through dynamic shared memories. Stage
//! mapping:
//!
//! | CPU | stage | receives | sends |
//! |-----|-------|----------|-------|
//! | 0 | source + preprocess + autocorrelation | — | `L_ACF[9] + d[160]` |
//! | 1 | Schur + LAR | mbox0 | `larq[8] + d[160]` |
//! | 2 | LTP (4 subframes, cross-frame history) | mbox1 | `larq[8] + ltp[8] + d[160]` |
//! | 3 | weighting + RPE + APCM + checksum | mbox2 | final result block |
//!
//! ## Rendezvous
//!
//! CPU 0 performs every allocation, beginning with a *directory* as the
//! first allocation of module 0 — whose Vptr is therefore 0, the one
//! address all stages know a priori (the paper defines the first Vptr to
//! be zero). The directory holds the mailbox Vptrs and a ready magic;
//! stages 1–3 poll it before entering their loops. Mailboxes carry a flag
//! word (0 empty / 1 full) followed by the payload, moved with burst
//! transfers (the paper's I/O arrays).

use dmi_core::WrapperBackend;
use dmi_isa::{Asm, Program, Reg};
use dmi_sw::emit_dsm_driver;

use crate::codegen::emit_all_kernels;
use crate::reference::{Encoder, GsmFrame, LcgSource};

const R0: Reg = Reg::R0;
const R1: Reg = Reg::R1;
const R2: Reg = Reg::R2;
const R3: Reg = Reg::R3;
const R4: Reg = Reg::R4;
const R5: Reg = Reg::R5;
const R6: Reg = Reg::R6;
const R7: Reg = Reg::R7;
const R8: Reg = Reg::R8;
const R9: Reg = Reg::R9;

/// Magic value marking the directory as initialized.
pub const READY_MAGIC: u32 = 0xD1CE;
/// Magic value marking the final result block.
pub const RESULT_MAGIC: u32 = 0xC0DE;
/// Width code for 32-bit protocol elements.
const W32: u32 = 2;

// Local-memory buffer addresses shared by the stage programs (all below
// the 256 KiB default private memory, far above the code).
const BUF_IN: u32 = 0x10000; // 160 words
const BUF_D: u32 = 0x10400; // 160 words
const BUF_ACF: u32 = 0x10700; // 9 words
const BUF_RC: u32 = 0x10740; // 8 words
const BUF_LARQ: u32 = 0x10780; // 8 words
const BUF_LTP: u32 = 0x107C0; // 8 words (nc,bc x4)
const BUF_PREV: u32 = 0x10800; // 120 words
const BUF_X: u32 = 0x10A00; // 40 words
const BUF_RPE: u32 = 0x10B00; // 15 words
const BUF_HIST: u32 = 0x10C00; // 160 words
const BUF_STATE: u32 = 0x10F00; // filter/LCG state
const BUF_SCRATCH: u32 = 0x11000; // kernel scratch

// Mailbox payload offsets (bytes from the mailbox vptr).
const MB_FLAG: u32 = 0;
const MB0_ACF: u32 = 4;
const MB0_D: u32 = 4 + 9 * 4;
const MB0_WORDS: u32 = 1 + 9 + 160;
const MB1_LARQ: u32 = 4;
const MB1_D: u32 = 4 + 8 * 4;
const MB1_WORDS: u32 = 1 + 8 + 160;
const MB2_LARQ: u32 = 4;
const MB2_LTP: u32 = 4 + 8 * 4;
const MB2_D: u32 = 4 + 16 * 4;
const MB2_WORDS: u32 = 1 + 16 + 160;
const OUT_WORDS: u32 = 3;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineCfg {
    /// Frames to push through the pipeline.
    pub n_frames: u32,
    /// MMIO base of each shared-memory module (1 or more).
    pub mem_bases: Vec<u32>,
    /// LCG seed of the synthetic audio source.
    pub seed: u32,
}

impl PipelineCfg {
    /// Module base used for mailbox `i` (distributed round-robin, skipping
    /// module 0 when more than one module exists — module 0 always hosts
    /// the directory and the result block).
    fn mbox_base(&self, i: usize) -> u32 {
        let n = self.mem_bases.len();
        self.mem_bases[(i + 1) % n]
    }

    fn dir_base(&self) -> u32 {
        self.mem_bases[0]
    }
}

/// Emits `chk = chk*31 + word` folding; checksum in `r7`, word in `r0`,
/// clobbers `r1`.
fn fold_checksum(a: &mut Asm) {
    a.li(R1, 31);
    a.mul(R7, R7, R1);
    a.add(R7, R7, R0.into());
}

/// `dsm_read(base, vptr_reg + off)` → r0.
fn mb_read(a: &mut Asm, base: u32, vptr: Reg, off: u32) {
    a.li(R0, base);
    a.add(R1, vptr, 0u32.into());
    if off > 0 {
        a.li(R2, off);
        a.add(R1, R1, R2.into());
    }
    a.li(R2, W32);
    a.bl("dsm_read");
}

/// `dsm_write(base, vptr_reg + off, value_reg)`.
fn mb_write_reg(a: &mut Asm, base: u32, vptr: Reg, off: u32, value: Reg) {
    a.mov(R2, value.into());
    a.li(R0, base);
    a.add(R1, vptr, 0u32.into());
    if off > 0 {
        a.li(R3, off);
        a.add(R1, R1, R3.into());
    }
    a.li(R3, W32);
    a.bl("dsm_write");
}

/// `dsm_write(base, vptr_reg + off, imm)`.
fn mb_write_imm(a: &mut Asm, base: u32, vptr: Reg, off: u32, value: u32) {
    a.li(R2, value);
    a.li(R0, base);
    a.add(R1, vptr, 0u32.into());
    if off > 0 {
        a.li(R3, off);
        a.add(R1, R1, R3.into());
    }
    a.li(R3, W32);
    a.bl("dsm_write");
}

/// Spins until the mailbox flag equals `value`. Labels must be unique per
/// call site: pass a distinct `tag`.
fn wait_flag(a: &mut Asm, base: u32, vptr: Reg, value: u32, tag: &str) {
    a.label(tag.to_string());
    mb_read(a, base, vptr, MB_FLAG);
    a.cmp(R0, value.into());
    a.bne(tag.to_string());
}

/// Burst between local memory and the mailbox.
fn mb_burst(a: &mut Asm, base: u32, vptr: Reg, off: u32, local: u32, words: u32, write: bool) {
    a.li(R0, base);
    a.add(R1, vptr, 0u32.into());
    a.li(R2, off);
    a.add(R1, R1, R2.into());
    a.li(R2, local);
    a.li(R3, words);
    a.bl(if write { "dsm_write_burst" } else { "dsm_read_burst" });
}

/// Allocation helper for stage 0: `dsm_alloc(base, words, U32)` → r0.
fn alloc(a: &mut Asm, base: u32, words: u32) {
    a.li(R0, base);
    a.li(R1, words);
    a.li(R2, W32);
    a.bl("dsm_alloc");
}

/// Polls the directory until ready, then loads mailbox vptrs.
/// `slots`: list of (directory index, destination register).
fn read_directory(a: &mut Asm, dir_base: u32, slots: &[(u32, Reg)]) {
    a.label("dir_wait");
    a.li(R0, dir_base);
    a.li(R1, 0);
    a.li(R2, W32);
    a.bl("dsm_read");
    a.movw(R1, READY_MAGIC as u16);
    a.cmp(R0, R1.into());
    a.bne("dir_wait");
    for &(idx, dst) in slots {
        a.li(R0, dir_base);
        a.li(R1, 4 * (1 + idx));
        a.li(R2, W32);
        a.bl("dsm_read");
        a.mov(dst, R0.into());
    }
}

/// Builds the stage-0 program (source, preprocess, autocorrelation, and
/// all allocations).
fn stage0(cfg: &PipelineCfg) -> Program {
    let mut a = Asm::new();
    // Directory (first allocation in module 0 -> vptr 0).
    alloc(&mut a, cfg.dir_base(), 8);
    // Result block in module 0.
    alloc(&mut a, cfg.dir_base(), OUT_WORDS);
    a.mov(R8, R0.into()); // out vptr
    // Mailboxes.
    alloc(&mut a, cfg.mbox_base(0), MB0_WORDS);
    a.mov(R5, R0.into());
    alloc(&mut a, cfg.mbox_base(1), MB1_WORDS);
    a.mov(R6, R0.into());
    alloc(&mut a, cfg.mbox_base(2), MB2_WORDS);
    a.mov(R7, R0.into());
    // Publish directory: [magic, mb0, mb1, mb2, out].
    a.li(R9, 0); // directory vptr is 0
    mb_write_reg(&mut a, cfg.dir_base(), R9, 4, R5);
    mb_write_reg(&mut a, cfg.dir_base(), R9, 8, R6);
    mb_write_reg(&mut a, cfg.dir_base(), R9, 12, R7);
    mb_write_reg(&mut a, cfg.dir_base(), R9, 16, R8);
    mb_write_imm(&mut a, cfg.dir_base(), R9, 0, READY_MAGIC);

    // Seed the source.
    a.li(R0, cfg.seed);
    a.li(R1, BUF_STATE);
    a.str(R0, R1, 0);

    // Frame loop.
    a.li(R4, cfg.n_frames);
    a.label("frames");
    a.li(R0, BUF_IN);
    a.li(R1, BUF_STATE);
    a.bl("gsm_lcg_frame");
    a.li(R0, BUF_IN);
    a.li(R1, BUF_D);
    a.li(R2, BUF_STATE + 8); // preprocess state after the LCG word
    a.bl("gsm_preprocess");
    a.li(R0, BUF_D);
    a.li(R1, BUF_ACF);
    a.li(R2, BUF_SCRATCH);
    a.bl("gsm_autocorr");
    // Send.
    wait_flag(&mut a, cfg.mbox_base(0), R5, 0, "s0_wait");
    mb_burst(&mut a, cfg.mbox_base(0), R5, MB0_ACF, BUF_ACF, 9, true);
    mb_burst(&mut a, cfg.mbox_base(0), R5, MB0_D, BUF_D, 160, true);
    mb_write_imm(&mut a, cfg.mbox_base(0), R5, MB_FLAG, 1);
    a.subs(R4, R4, 1u32.into());
    a.bne("frames");
    a.li(R0, 0);
    a.swi(0);
    a.label("fail");
    a.li(R0, 1);
    a.swi(0);
    emit_dsm_driver(&mut a);
    emit_all_kernels(&mut a);
    a.assemble(0).expect("stage0 assembles")
}

/// Builds the stage-1 program (Schur + LAR).
fn stage1(cfg: &PipelineCfg) -> Program {
    let mut a = Asm::new();
    read_directory(&mut a, cfg.dir_base(), &[(0, R5), (1, R6)]);
    a.li(R4, cfg.n_frames);
    a.label("frames");
    wait_flag(&mut a, cfg.mbox_base(0), R5, 1, "s1_wait_in");
    mb_burst(&mut a, cfg.mbox_base(0), R5, MB0_ACF, BUF_ACF, 9, false);
    mb_burst(&mut a, cfg.mbox_base(0), R5, MB0_D, BUF_D, 160, false);
    mb_write_imm(&mut a, cfg.mbox_base(0), R5, MB_FLAG, 0);
    a.li(R0, BUF_ACF);
    a.li(R1, BUF_RC);
    a.li(R2, BUF_SCRATCH);
    a.bl("gsm_schur");
    a.li(R0, BUF_RC);
    a.li(R1, BUF_LARQ);
    a.bl("gsm_lar");
    wait_flag(&mut a, cfg.mbox_base(1), R6, 0, "s1_wait_out");
    mb_burst(&mut a, cfg.mbox_base(1), R6, MB1_LARQ, BUF_LARQ, 8, true);
    mb_burst(&mut a, cfg.mbox_base(1), R6, MB1_D, BUF_D, 160, true);
    mb_write_imm(&mut a, cfg.mbox_base(1), R6, MB_FLAG, 1);
    a.subs(R4, R4, 1u32.into());
    a.bne("frames");
    a.li(R0, 0);
    a.swi(0);
    emit_dsm_driver(&mut a);
    emit_all_kernels(&mut a);
    a.assemble(0).expect("stage1 assembles")
}

/// Builds the stage-2 program (LTP with cross-frame history).
fn stage2(cfg: &PipelineCfg) -> Program {
    let mut a = Asm::new();
    read_directory(&mut a, cfg.dir_base(), &[(1, R5), (2, R6)]);
    a.li(R4, cfg.n_frames);
    a.label("frames");
    wait_flag(&mut a, cfg.mbox_base(1), R5, 1, "s2_wait_in");
    mb_burst(&mut a, cfg.mbox_base(1), R5, MB1_LARQ, BUF_LARQ, 8, false);
    mb_burst(&mut a, cfg.mbox_base(1), R5, MB1_D, BUF_D, 160, false);
    mb_write_imm(&mut a, cfg.mbox_base(1), R5, MB_FLAG, 0);

    // Per subframe: build prev[120], run the lag search.
    a.li(R7, 0); // sf
    a.label("s2_sf");
    // prev[j]: global g = sf*40 + j - 120; from history when g < 0.
    a.li(R8, 0); // j
    a.label("s2_prev");
    a.li(R0, 40);
    a.mul(R1, R7, R0);
    a.add(R1, R1, R8.into());
    a.li(R0, 120);
    a.subs(R1, R1, R0.into()); // g, flags tell sign
    a.b_cond(dmi_isa::Cond::Lt, "s2_prev_hist");
    a.lsl(R1, R1, 2);
    a.li(R2, BUF_D);
    a.ldr_r(R0, R2, R1);
    a.b("s2_prev_store");
    a.label("s2_prev_hist");
    a.li(R0, 160);
    a.add(R1, R1, R0.into());
    a.lsl(R1, R1, 2);
    a.li(R2, BUF_HIST);
    a.ldr_r(R0, R2, R1);
    a.label("s2_prev_store");
    a.lsl(R1, R8, 2);
    a.li(R2, BUF_PREV);
    a.str_r(R0, R2, R1);
    a.add(R8, R8, 1u32.into());
    a.li(R0, 120);
    a.cmp(R8, R0.into());
    a.blt("s2_prev");
    // gsm_ltp(sub = BUF_D + sf*160, prev, out = BUF_LTP + sf*8, scratch)
    a.li(R0, 160);
    a.mul(R0, R7, R0);
    a.li(R1, BUF_D);
    a.add(R0, R0, R1.into());
    a.li(R1, BUF_PREV);
    a.lsl(R2, R7, 3);
    a.li(R3, BUF_LTP);
    a.add(R2, R2, R3.into());
    a.li(R3, BUF_SCRATCH);
    a.bl("gsm_ltp");
    a.add(R7, R7, 1u32.into());
    a.cmp(R7, 4u32.into());
    a.blt("s2_sf");

    // history = d (copy 160 words).
    a.li(R0, BUF_D);
    a.li(R1, BUF_HIST);
    a.li(R2, 160);
    a.label("s2_hist");
    a.ldr_post(R3, R0, 4);
    a.str_post(R3, R1, 4);
    a.subs(R2, R2, 1u32.into());
    a.bne("s2_hist");

    wait_flag(&mut a, cfg.mbox_base(2), R6, 0, "s2_wait_out");
    mb_burst(&mut a, cfg.mbox_base(2), R6, MB2_LARQ, BUF_LARQ, 8, true);
    mb_burst(&mut a, cfg.mbox_base(2), R6, MB2_LTP, BUF_LTP, 8, true);
    mb_burst(&mut a, cfg.mbox_base(2), R6, MB2_D, BUF_D, 160, true);
    mb_write_imm(&mut a, cfg.mbox_base(2), R6, MB_FLAG, 1);
    a.subs(R4, R4, 1u32.into());
    a.bne("frames");
    a.li(R0, 0);
    a.swi(0);
    emit_dsm_driver(&mut a);
    emit_all_kernels(&mut a);
    a.assemble(0).expect("stage2 assembles")
}

/// Builds the stage-3 program (weighting + RPE + APCM + checksum + result).
fn stage3(cfg: &PipelineCfg) -> Program {
    let mut a = Asm::new();
    read_directory(&mut a, cfg.dir_base(), &[(2, R5), (3, R6)]);
    a.li(R4, cfg.n_frames);
    a.li(R7, 0); // checksum
    a.label("frames");
    wait_flag(&mut a, cfg.mbox_base(2), R5, 1, "s3_wait_in");
    mb_burst(&mut a, cfg.mbox_base(2), R5, MB2_LARQ, BUF_LARQ, 8, false);
    mb_burst(&mut a, cfg.mbox_base(2), R5, MB2_LTP, BUF_LTP, 8, false);
    mb_burst(&mut a, cfg.mbox_base(2), R5, MB2_D, BUF_D, 160, false);
    mb_write_imm(&mut a, cfg.mbox_base(2), R5, MB_FLAG, 0);

    // Fold larq[0..8].
    a.li(R8, 0);
    a.label("s3_larq");
    a.lsl(R0, R8, 2);
    a.li(R1, BUF_LARQ);
    a.ldr_r(R0, R1, R0);
    fold_checksum(&mut a);
    a.add(R8, R8, 1u32.into());
    a.cmp(R8, 8u32.into());
    a.blt("s3_larq");

    // Per subframe: weight, rpe, fold nc/bc/grid/exp/xmc.
    a.li(R9, 0); // sf
    a.label("s3_sf");
    a.li(R0, 160);
    a.mul(R0, R9, R0);
    a.li(R1, BUF_D);
    a.add(R0, R0, R1.into());
    a.li(R1, BUF_X);
    a.li(R2, BUF_SCRATCH);
    a.bl("gsm_weight");
    a.li(R0, BUF_X);
    a.li(R1, BUF_RPE);
    a.bl("gsm_rpe");
    // fold nc, bc from BUF_LTP[2*sf], [2*sf+1]
    a.lsl(R0, R9, 3);
    a.li(R1, BUF_LTP);
    a.add(R8, R1, R0.into());
    a.ldr(R0, R8, 0);
    fold_checksum(&mut a);
    a.ldr(R0, R8, 4);
    fold_checksum(&mut a);
    // fold grid, exp, xmc[13] from BUF_RPE[0..15]
    a.li(R8, 0);
    a.label("s3_rpe");
    a.lsl(R0, R8, 2);
    a.li(R1, BUF_RPE);
    a.ldr_r(R0, R1, R0);
    fold_checksum(&mut a);
    a.add(R8, R8, 1u32.into());
    a.li(R0, 15);
    a.cmp(R8, R0.into());
    a.blt("s3_rpe");
    a.add(R9, R9, 1u32.into());
    a.cmp(R9, 4u32.into());
    a.blt("s3_sf");

    a.subs(R4, R4, 1u32.into());
    a.bne("frames");

    // Publish the result block: [magic, n_frames, checksum].
    mb_write_imm(&mut a, cfg.dir_base(), R6, 0, RESULT_MAGIC);
    mb_write_imm(&mut a, cfg.dir_base(), R6, 4, cfg.n_frames);
    mb_write_reg(&mut a, cfg.dir_base(), R6, 8, R7);
    a.li(R0, 0);
    a.swi(0);
    emit_dsm_driver(&mut a);
    emit_all_kernels(&mut a);
    a.assemble(0).expect("stage3 assembles")
}

/// Builds the four stage programs.
pub fn stage_programs(cfg: &PipelineCfg) -> Vec<Program> {
    assert!(!cfg.mem_bases.is_empty());
    vec![stage0(cfg), stage1(cfg), stage2(cfg), stage3(cfg)]
}

/// The checksum the pipeline must produce, computed with the reference
/// encoder over the same synthetic source.
pub fn expected_checksum(cfg: &PipelineCfg) -> u32 {
    let mut src = LcgSource::new(cfg.seed);
    let mut enc = Encoder::new();
    let mut chk = 0u32;
    for _ in 0..cfg.n_frames {
        let frame = enc.encode_frame(&src.next_frame());
        for w in frame.to_words() {
            chk = chk.wrapping_mul(31).wrapping_add(w);
        }
    }
    let _ = GsmFrame::WORDS; // layout documented there
    chk
}

/// The pipeline's published result block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineResult {
    /// Must equal [`RESULT_MAGIC`].
    pub magic: u32,
    /// Frames processed.
    pub frames: u32,
    /// Order-sensitive checksum over every encoded parameter word.
    pub checksum: u32,
}

/// Extracts the result block from module 0's wrapper backend after a run.
///
/// Reads the directory at Vptr 0 to locate the result block, then decodes
/// it from host storage.
pub fn extract_result(backend: &WrapperBackend) -> Option<PipelineResult> {
    let read_u32 = |vptr: u32| -> Option<u32> {
        let entry = backend.table().iter().find(|e| e.contains(vptr))?;
        let off = (vptr - entry.vptr) as usize;
        Some(u32::from_le_bytes(
            entry.host.bytes().get(off..off + 4)?.try_into().ok()?,
        ))
    };
    if read_u32(0)? != READY_MAGIC {
        return None;
    }
    let out_vptr = read_u32(16)?;
    Some(PipelineResult {
        magic: read_u32(out_vptr)?,
        frames: read_u32(out_vptr + 4)?,
        checksum: read_u32(out_vptr + 8)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_assemble() {
        let cfg = PipelineCfg {
            n_frames: 2,
            mem_bases: vec![0x8000_0000],
            seed: 1,
        };
        let progs = stage_programs(&cfg);
        assert_eq!(progs.len(), 4);
        for (i, p) in progs.iter().enumerate() {
            assert!(p.words().len() > 100, "stage {i} suspiciously small");
        }
        // Multi-memory variant also assembles with distributed mailboxes.
        let cfg4 = PipelineCfg {
            n_frames: 2,
            mem_bases: vec![0x8000_0000, 0x8001_0000, 0x8002_0000, 0x8003_0000],
            seed: 1,
        };
        assert_eq!(stage_programs(&cfg4).len(), 4);
    }

    #[test]
    fn expected_checksum_is_stable_and_seed_sensitive() {
        let mk = |seed, frames| {
            expected_checksum(&PipelineCfg {
                n_frames: frames,
                mem_bases: vec![0],
                seed,
            })
        };
        assert_eq!(mk(5, 3), mk(5, 3));
        assert_ne!(mk(5, 3), mk(6, 3));
        assert_ne!(mk(5, 3), mk(5, 4));
    }
}
