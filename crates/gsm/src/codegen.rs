//! SimARM assembly implementations of the encoder stages.
//!
//! Every kernel mirrors its counterpart in [`crate::reference`] operation
//! by operation — same fixed-point primitives, same evaluation order — so
//! the ISS output is bit-exact against the reference (verified by the
//! equivalence tests). Buffers hold one `i32` per sample.
//!
//! Calling conventions (all routines follow the standard ABI; `r0..r3`
//! arguments, `r12` scratch, `r4..r11` preserved):
//!
//! | routine | arguments |
//! |---|---|
//! | `g_add`, `g_mult_r` | `r0`, `r1` operands → `r0` |
//! | `g_div15` | `r0` num, `r1` denum → `r0` (Q15) |
//! | `gsm_lcg_frame` | `r0` out[160], `r1` state ptr (1 word) |
//! | `gsm_preprocess` | `r0` in[160], `r1` out[160], `r2` state ptr (2 words) |
//! | `gsm_autocorr` | `r0` p[160], `r1` out L_ACF[9], `r2` scratch[18] |
//! | `gsm_schur` | `r0` L_ACF[9], `r1` out rc[8], `r2` scratch[27] |
//! | `gsm_lar` | `r0` rc[8], `r1` out larq[8] |
//! | `gsm_ltp` | `r0` sub[40], `r1` prev[120], `r2` out[2] (nc, bc), `r3` scratch[160] |
//! | `gsm_weight` | `r0` sub[40], `r1` out x[40], `r2` scratch[40] |
//! | `gsm_rpe` | `r0` x[40], `r1` out[15] (grid, exp, xmc[13]) |

use dmi_isa::{Asm, Cond, Reg};

const R0: Reg = Reg::R0;
const R1: Reg = Reg::R1;
const R2: Reg = Reg::R2;
const R3: Reg = Reg::R3;
const R4: Reg = Reg::R4;
const R5: Reg = Reg::R5;
const R6: Reg = Reg::R6;
const R7: Reg = Reg::R7;
const R8: Reg = Reg::R8;
const R9: Reg = Reg::R9;
const R10: Reg = Reg::R10;
const R11: Reg = Reg::R11;
const R12: Reg = Reg::R12;
const LR: Reg = Reg::LR;

/// Inline 16-bit saturation of `reg`, clobbering `tmp`.
fn sat16(a: &mut Asm, reg: Reg, tmp: Reg) {
    a.movw(tmp, 32767);
    a.cmp(reg, tmp.into());
    a.mov_cond(Cond::Gt, reg, tmp.into());
    a.movw(tmp, 0x8000);
    a.movt(tmp, 0xFFFF); // -32768
    a.cmp(reg, tmp.into());
    a.mov_cond(Cond::Lt, reg, tmp.into());
}

/// Emits the fixed-point basic-op subroutines.
pub fn emit_basicops(a: &mut Asm) {
    // g_add: r0 = sat16(r0 + r1); clobbers r2.
    a.label("g_add");
    a.add(R0, R0, R1.into());
    sat16(a, R0, R2);
    a.ret();

    // g_mult_r: r0 = sat16((r0*r1 + 16384) >> 15); clobbers r2.
    a.label("g_mult_r");
    a.mul(R0, R0, R1);
    a.movw(R2, 16384);
    a.add(R0, R0, R2.into());
    a.asr(R0, R0, 15);
    sat16(a, R0, R2);
    a.ret();

    // g_div15: restoring 15-step division; clobbers r2, r3.
    a.label("g_div15");
    a.cmp(R0, R1.into());
    a.b_cond(Cond::Lt, "g_div15_go");
    a.movw(R0, 32767); // num == denum (preconditions exclude num > denum)
    a.ret();
    a.label("g_div15_go");
    a.li(R2, 0);
    a.li(R3, 15);
    a.label("g_div15_loop");
    a.lsl(R0, R0, 1);
    a.lsl(R2, R2, 1);
    a.cmp(R0, R1.into());
    a.sub_cond(Cond::Ge, R0, R0, R1.into());
    a.orr_cond(Cond::Ge, R2, R2, 1u32.into());
    a.subs(R3, R3, 1u32.into());
    a.bne("g_div15_loop");
    a.mov(R0, R2.into());
    a.ret();
}

/// Emits `gsm_lcg_frame`: fills 160 words with the synthetic source
/// (`state = state*1103515245 + 12345; sample = ((state>>16) & 0x3FFF) - 8192`).
pub fn emit_lcg_frame(a: &mut Asm) {
    a.label("gsm_lcg_frame");
    a.push(&[R4, R5, R6, LR]);
    a.ldr(R2, R1, 0); // state
    a.li(R3, 160);
    a.li(R12, 1_103_515_245);
    a.label("gsm_lcg_loop");
    a.mul(R2, R2, R12);
    a.movw(R4, 12345);
    a.add(R2, R2, R4.into());
    a.lsr(R5, R2, 16);
    a.movw(R6, 0x3FFF);
    a.and(R5, R5, R6.into());
    a.movw(R6, 8192);
    a.sub(R5, R5, R6.into());
    a.str_post(R5, R0, 4);
    a.subs(R3, R3, 1u32.into());
    a.bne("gsm_lcg_loop");
    a.str(R2, R1, 0);
    a.pop(&[R4, R5, R6, LR]);
    a.ret();
}

/// Emits `gsm_preprocess` (offset compensation + preemphasis).
pub fn emit_preprocess(a: &mut Asm) {
    a.label("gsm_preprocess");
    a.push(&[R4, R5, R6, R7, R8, LR]);
    a.ldr(R4, R2, 0); // prev_s
    a.ldr(R5, R2, 4); // prev_d
    a.li(R6, 160);
    a.label("gsm_pre_loop");
    a.ldr_post(R7, R0, 4); // s
    a.sub(R8, R7, R4.into()); // s - prev_s
    a.movw(R3, 32735);
    a.mul(R12, R3, R5);
    a.asr(R12, R12, 15);
    a.add(R8, R8, R12.into()); // d
    a.movw(R3, 28180);
    a.mul(R12, R3, R5);
    a.asr(R12, R12, 15);
    a.sub(R12, R8, R12.into()); // p = d - (28180*prev_d >> 15)
    a.str_post(R12, R1, 4);
    a.mov(R4, R7.into()); // prev_s = s
    a.mov(R5, R8.into()); // prev_d = d
    a.subs(R6, R6, 1u32.into());
    a.bne("gsm_pre_loop");
    a.str(R4, R2, 0);
    a.str(R5, R2, 4);
    a.pop(&[R4, R5, R6, R7, R8, LR]);
    a.ret();
}

/// Emits `gsm_autocorr` (9 lags, 64-bit accumulation, joint shift).
pub fn emit_autocorr(a: &mut Asm) {
    a.label("gsm_autocorr");
    a.push(&[R4, R5, R6, R7, R8, R9, R10, R11, LR]);
    a.mov(R9, R0.into()); // p base
    a.mov(R10, R1.into()); // out
    a.mov(R11, R2.into()); // scratch (9 x 64-bit)

    // Accumulate S[k] = sum p[i]*p[i-k], i64.
    a.li(R4, 0); // k
    a.label("gsm_ac_k");
    a.li(R5, 0); // acc lo
    a.li(R6, 0); // acc hi
    a.mov(R7, R4.into()); // i = k
    a.label("gsm_ac_i");
    a.li(R12, 160);
    a.cmp(R7, R12.into());
    a.bge("gsm_ac_idone");
    a.lsl(R8, R7, 2);
    a.ldr_r(R0, R9, R8); // p[i]
    a.sub(R8, R7, R4.into());
    a.lsl(R8, R8, 2);
    a.ldr_r(R1, R9, R8); // p[i-k]
    a.smlal(R5, R6, R0, R1);
    a.add(R7, R7, 1u32.into());
    a.b("gsm_ac_i");
    a.label("gsm_ac_idone");
    a.lsl(R8, R4, 3);
    a.add(R8, R11, R8.into());
    a.str(R5, R8, 0);
    a.str(R6, R8, 4);
    a.add(R4, R4, 1u32.into());
    a.cmp(R4, 9u32.into());
    a.blt("gsm_ac_k");

    // sh = max(0, bits64(S[0]) - 31).
    a.ldr(R5, R11, 0);
    a.ldr(R6, R11, 4);
    a.cmp(R6, 0u32.into());
    a.bne("gsm_ac_hibits");
    a.clz(R7, R5);
    a.rsb(R7, R7, 32u32.into()); // bits = 32 - clz(lo)
    a.b("gsm_ac_sh");
    a.label("gsm_ac_hibits");
    a.clz(R7, R6);
    a.rsb(R7, R7, 64u32.into()); // bits = 64 - clz(hi)
    a.label("gsm_ac_sh");
    a.subs(R7, R7, 31u32.into());
    a.mov_cond(Cond::Lt, R7, 0u32.into()); // sh in r7 (0..=8 in practice)

    // Emit L_ACF[k] = (S[k] >> sh) as i32 (shift by repeated >>1).
    a.li(R4, 0);
    a.label("gsm_ac_emit");
    a.lsl(R8, R4, 3);
    a.add(R8, R11, R8.into());
    a.ldr(R5, R8, 0); // lo
    a.ldr(R6, R8, 4); // hi
    a.mov(R12, R7.into()); // shift counter
    a.label("gsm_ac_shift");
    a.cmp(R12, 0u32.into());
    a.beq("gsm_ac_store");
    a.lsr(R5, R5, 1);
    a.lsl(R0, R6, 31);
    a.orr(R5, R5, R0.into());
    a.asr(R6, R6, 1);
    a.sub(R12, R12, 1u32.into());
    a.b("gsm_ac_shift");
    a.label("gsm_ac_store");
    a.lsl(R8, R4, 2);
    a.str_r(R5, R10, R8);
    a.add(R4, R4, 1u32.into());
    a.cmp(R4, 9u32.into());
    a.blt("gsm_ac_emit");

    a.pop(&[R4, R5, R6, R7, R8, R9, R10, R11, LR]);
    a.ret();
}

/// Emits `gsm_schur` (reflection coefficients).
///
/// Scratch layout (words): `ACF[0..9]` at +0, `P[0..9]` at +36, `K[0..9]`
/// at +72 (`K[0]` unused).
pub fn emit_schur(a: &mut Asm) {
    a.label("gsm_schur");
    a.push(&[R4, R5, R6, R7, R8, R9, R10, R11, LR]);
    a.mov(R9, R0.into()); // L_ACF
    a.mov(R10, R1.into()); // out rc
    a.mov(R11, R2.into()); // scratch

    // Pre-zero the output (early-exit paths leave zeros).
    a.li(R4, 0);
    a.li(R5, 8);
    a.mov(R6, R10.into());
    a.label("gsm_sc_zero");
    a.str_post(R4, R6, 4);
    a.subs(R5, R5, 1u32.into());
    a.bne("gsm_sc_zero");

    a.ldr(R0, R9, 0);
    a.cmp(R0, 0u32.into());
    a.beq("gsm_sc_done");

    // temp = norm(L_ACF[0]) = clz - 1.
    a.clz(R4, R0);
    a.sub(R4, R4, 1u32.into());

    // ACF[i] = (L_ACF[i] << temp) >> 16; P[i] = ACF[i]; K[i] = ACF[i].
    a.li(R5, 0);
    a.label("gsm_sc_norm");
    a.lsl(R6, R5, 2);
    a.ldr_r(R0, R9, R6);
    a.mov(R7, R4.into());
    a.label("gsm_sc_shl");
    a.cmp(R7, 0u32.into());
    a.beq("gsm_sc_shld");
    a.lsl(R0, R0, 1);
    a.subs(R7, R7, 1u32.into());
    a.b("gsm_sc_shl");
    a.label("gsm_sc_shld");
    a.asr(R0, R0, 16);
    a.add(R8, R11, R6.into());
    a.str(R0, R8, 0); // ACF
    a.str(R0, R8, 36); // P
    a.str(R0, R8, 72); // K
    a.add(R5, R5, 1u32.into());
    a.cmp(R5, 9u32.into());
    a.blt("gsm_sc_norm");

    // Recursion over n = 0..7.
    a.li(R4, 0);
    a.label("gsm_sc_n");
    // t = abs_s(P[1]).
    a.ldr(R0, R11, 40);
    a.cmp(R0, 0u32.into());
    a.rsb_cond(Cond::Lt, R0, R0, 0u32.into());
    sat16(a, R0, R2);
    a.mov(R5, R0.into());
    a.ldr(R6, R11, 36); // P[0]
    a.cmp(R6, R5.into());
    a.blt("gsm_sc_done"); // unstable: remaining rc stay zero
    // rc = ±div(t, P[0])
    a.mov(R0, R5.into());
    a.mov(R1, R6.into());
    a.bl("g_div15");
    a.ldr(R1, R11, 40);
    a.cmp(R1, 0u32.into());
    a.rsb_cond(Cond::Gt, R0, R0, 0u32.into());
    a.lsl(R6, R4, 2);
    a.str_r(R0, R10, R6);
    a.mov(R8, R0.into()); // rc
    a.cmp(R4, 7u32.into());
    a.beq("gsm_sc_done");
    // P[0] = add(P[0], mult_r(P[1], rc)).
    a.ldr(R0, R11, 40);
    a.mov(R1, R8.into());
    a.bl("g_mult_r");
    a.mov(R1, R0.into());
    a.ldr(R0, R11, 36);
    a.bl("g_add");
    a.str(R0, R11, 36);
    // for m in 1..=7-n.
    a.li(R5, 1);
    a.label("gsm_sc_m");
    a.rsb(R6, R4, 7u32.into());
    a.cmp(R5, R6.into());
    a.bgt("gsm_sc_mdone");
    a.lsl(R7, R5, 2);
    a.add(R7, R11, R7.into()); // r7 = scratch + 4m
    // newP = add(P[m+1], mult_r(K[m], rc))
    a.ldr(R0, R7, 72);
    a.mov(R1, R8.into());
    a.bl("g_mult_r");
    a.ldr(R1, R7, 40);
    a.bl("g_add");
    a.mov(R9, R0.into()); // newP (r9 free after norm phase)
    // K[m] = add(K[m], mult_r(P[m+1], rc))
    a.ldr(R0, R7, 40);
    a.mov(R1, R8.into());
    a.bl("g_mult_r");
    a.ldr(R1, R7, 72);
    a.bl("g_add");
    a.str(R0, R7, 72);
    a.str(R9, R7, 36); // P[m] = newP
    a.add(R5, R5, 1u32.into());
    a.b("gsm_sc_m");
    a.label("gsm_sc_mdone");
    a.add(R4, R4, 1u32.into());
    a.cmp(R4, 8u32.into());
    a.blt("gsm_sc_n");
    a.label("gsm_sc_done");
    a.pop(&[R4, R5, R6, R7, R8, R9, R10, R11, LR]);
    a.ret();
}

/// Emits `gsm_lar` (rc → LAR companding + 6-bit quantization).
pub fn emit_lar(a: &mut Asm) {
    a.label("gsm_lar");
    a.push(&[R4, R5, R6, R7, LR]);
    a.li(R4, 8);
    a.label("gsm_lar_loop");
    a.ldr_post(R5, R0, 4); // rc
    // t = abs_s(rc)
    a.mov(R6, R5.into());
    a.cmp(R6, 0u32.into());
    a.rsb_cond(Cond::Lt, R6, R6, 0u32.into());
    sat16(a, R6, R7);
    // piecewise companding
    a.movw(R7, 22118);
    a.cmp(R6, R7.into());
    a.bge("gsm_lar_mid");
    a.asr(R6, R6, 1);
    a.b("gsm_lar_sign");
    a.label("gsm_lar_mid");
    a.movw(R7, 31130);
    a.cmp(R6, R7.into());
    a.bge("gsm_lar_hi");
    a.movw(R7, 11059);
    a.sub(R6, R6, R7.into());
    a.b("gsm_lar_sign");
    a.label("gsm_lar_hi");
    a.movw(R7, 26112);
    a.sub(R6, R6, R7.into());
    a.lsl(R6, R6, 2);
    a.label("gsm_lar_sign");
    a.cmp(R5, 0u32.into());
    a.rsb_cond(Cond::Lt, R6, R6, 0u32.into());
    // quantize: clamp(lar >> 9, -32, 31)
    a.asr(R6, R6, 9);
    a.li(R7, 31);
    a.cmp(R6, R7.into());
    a.mov_cond(Cond::Gt, R6, R7.into());
    a.li(R7, 0xFFFF_FFE0); // -32
    a.cmp(R6, R7.into());
    a.mov_cond(Cond::Lt, R6, R7.into());
    a.str_post(R6, R1, 4);
    a.subs(R4, R4, 1u32.into());
    a.bne("gsm_lar_loop");
    a.pop(&[R4, R5, R6, R7, LR]);
    a.ret();
}

/// Emits `gsm_ltp` (lag search + gain ladder).
///
/// Scratch layout: `wt[0..40]` at +0, `dq[0..120]` at +160 bytes.
pub fn emit_ltp(a: &mut Asm) {
    a.label("gsm_ltp");
    a.push(&[R4, R5, R6, R7, R8, R9, R10, R11, LR]);
    a.mov(R9, R0.into()); // sub
    a.mov(R10, R1.into()); // prev
    a.mov(R11, R3.into()); // scratch
    // r2 (out) stays live: no subroutine calls below.

    // wt[k] = sub[k] >> 3
    a.li(R4, 40);
    a.mov(R5, R9.into());
    a.mov(R6, R11.into());
    a.label("gsm_ltp_wt");
    a.ldr_post(R7, R5, 4);
    a.asr(R7, R7, 3);
    a.str_post(R7, R6, 4);
    a.subs(R4, R4, 1u32.into());
    a.bne("gsm_ltp_wt");
    // dq[j] = prev[j] >> 3 at scratch + 160
    a.li(R4, 120);
    a.mov(R5, R10.into());
    a.add(R6, R11, 160u32.into());
    a.label("gsm_ltp_dq");
    a.ldr_post(R7, R5, 4);
    a.asr(R7, R7, 3);
    a.str_post(R7, R6, 4);
    a.subs(R4, R4, 1u32.into());
    a.bne("gsm_ltp_dq");

    // Lag search.
    a.li(R4, 40); // lambda
    a.li(R5, 0x8000_0000); // l_max = i32::MIN
    a.li(R6, 40); // best lag
    a.label("gsm_ltp_lam");
    // dq base for this lambda: scratch + 160 + (120 - lambda)*4
    //                        = scratch + 640 - 4*lambda
    a.add(R0, R11, 640u32.into());
    a.lsl(R1, R4, 2);
    a.sub(R0, R0, R1.into());
    a.mov(R1, R11.into()); // wt cursor
    a.li(R7, 0); // acc
    a.li(R8, 40); // k counter
    a.label("gsm_ltp_k");
    a.ldr_post(R3, R1, 4);
    a.ldr_post(R12, R0, 4);
    a.mul(R3, R3, R12);
    a.add(R7, R7, R3.into());
    a.subs(R8, R8, 1u32.into());
    a.bne("gsm_ltp_k");
    a.cmp(R7, R5.into());
    a.mov_cond(Cond::Gt, R5, R7.into());
    a.mov_cond(Cond::Gt, R6, R4.into());
    a.add(R4, R4, 1u32.into());
    a.li(R12, 120);
    a.cmp(R4, R12.into());
    a.ble("gsm_ltp_lam");

    // Energy at the winning lag.
    a.add(R0, R11, 640u32.into());
    a.lsl(R1, R6, 2);
    a.sub(R0, R0, R1.into());
    a.li(R7, 0);
    a.li(R8, 40);
    a.label("gsm_ltp_e");
    a.ldr_post(R3, R0, 4);
    a.mul(R3, R3, R3);
    a.add(R7, R7, R3.into());
    a.subs(R8, R8, 1u32.into());
    a.bne("gsm_ltp_e");

    // Gain ladder.
    a.cmp(R5, 0u32.into());
    a.ble("gsm_ltp_bc0");
    a.asr(R1, R7, 2);
    a.cmp(R5, R1.into());
    a.blt("gsm_ltp_bc0");
    a.asr(R1, R7, 1);
    a.cmp(R5, R1.into());
    a.blt("gsm_ltp_bc1");
    a.asr(R1, R7, 2);
    a.sub(R1, R7, R1.into());
    a.cmp(R5, R1.into());
    a.blt("gsm_ltp_bc2");
    a.li(R0, 3);
    a.b("gsm_ltp_store");
    a.label("gsm_ltp_bc0");
    a.li(R0, 0);
    a.b("gsm_ltp_store");
    a.label("gsm_ltp_bc1");
    a.li(R0, 1);
    a.b("gsm_ltp_store");
    a.label("gsm_ltp_bc2");
    a.li(R0, 2);
    a.label("gsm_ltp_store");
    a.str(R6, R2, 0); // nc
    a.str(R0, R2, 4); // bc
    a.pop(&[R4, R5, R6, R7, R8, R9, R10, R11, LR]);
    a.ret();
}

/// Emits `gsm_weight` (11-tap FIR with zero padding) and its coefficient
/// table (`gsm_h_tab`).
pub fn emit_weight(a: &mut Asm) {
    a.label("gsm_weight");
    a.push(&[R4, R5, R6, R7, R8, R9, R10, R11, LR]);
    a.mov(R9, R0.into()); // sub
    a.mov(R10, R1.into()); // out
    a.mov(R11, R2.into()); // scratch e[40]
    // e[k] = sub[k] >> 2
    a.li(R4, 40);
    a.mov(R5, R9.into());
    a.mov(R6, R11.into());
    a.label("gsm_wt_e");
    a.ldr_post(R7, R5, 4);
    a.asr(R7, R7, 2);
    a.str_post(R7, R6, 4);
    a.subs(R4, R4, 1u32.into());
    a.bne("gsm_wt_e");
    // x[k] = (4096 + sum_{i} H[i]*e[k+5-i]) >> 13
    a.li(R4, 0); // k
    a.label("gsm_wt_k");
    a.movw(R7, 4096); // acc
    a.li(R5, 0); // i
    a.adr(R8, "gsm_h_tab");
    a.label("gsm_wt_i");
    // idx = k + 5 - i
    a.add(R6, R4, 5u32.into());
    a.sub(R6, R6, R5.into());
    a.cmp(R6, 0u32.into());
    a.blt("gsm_wt_skip");
    a.li(R12, 40);
    a.cmp(R6, R12.into());
    a.bge("gsm_wt_skip");
    a.lsl(R6, R6, 2);
    a.ldr_r(R0, R11, R6); // e[idx]
    a.lsl(R6, R5, 2);
    a.ldr_r(R1, R8, R6); // H[i]
    a.mul(R0, R0, R1);
    a.add(R7, R7, R0.into());
    a.label("gsm_wt_skip");
    a.add(R5, R5, 1u32.into());
    a.cmp(R5, 11u32.into());
    a.blt("gsm_wt_i");
    a.asr(R7, R7, 13);
    a.lsl(R6, R4, 2);
    a.str_r(R7, R10, R6);
    a.add(R4, R4, 1u32.into());
    a.li(R12, 40);
    a.cmp(R4, R12.into());
    a.blt("gsm_wt_k");
    a.pop(&[R4, R5, R6, R7, R8, R9, R10, R11, LR]);
    a.ret();

    a.label("gsm_h_tab");
    for h in crate::reference::WEIGHT_H {
        a.word(h as u32);
    }
}

/// Emits `gsm_rpe` (grid selection + APCM): output `[grid, exp, xmc[13]]`.
pub fn emit_rpe(a: &mut Asm) {
    a.label("gsm_rpe");
    a.push(&[R4, R5, R6, R7, R8, R9, R10, LR]);
    a.mov(R9, R0.into()); // x
    a.mov(R10, R1.into()); // out
    // Grid selection: argmax energy over m = 0..3.
    a.li(R4, 0); // m
    a.li(R5, 0x8000_0000); // best energy
    a.li(R6, 0); // best m
    a.label("gsm_rpe_m");
    a.li(R7, 0); // energy
    a.li(R8, 0); // i
    a.label("gsm_rpe_me");
    // idx = m + 3*i
    a.li(R12, 3);
    a.mul(R0, R8, R12);
    a.add(R0, R0, R4.into());
    a.lsl(R0, R0, 2);
    a.ldr_r(R1, R9, R0);
    a.mul(R1, R1, R1);
    a.add(R7, R7, R1.into());
    a.add(R8, R8, 1u32.into());
    a.cmp(R8, 13u32.into());
    a.blt("gsm_rpe_me");
    a.cmp(R7, R5.into());
    a.mov_cond(Cond::Gt, R5, R7.into());
    a.mov_cond(Cond::Gt, R6, R4.into());
    a.add(R4, R4, 1u32.into());
    a.cmp(R4, 4u32.into());
    a.blt("gsm_rpe_m");
    a.str(R6, R10, 0); // grid

    // xmax = max |x[m + 3i]| (16-bit saturated abs).
    a.li(R5, 0); // xmax
    a.li(R8, 0); // i
    a.label("gsm_rpe_max");
    a.li(R12, 3);
    a.mul(R0, R8, R12);
    a.add(R0, R0, R6.into());
    a.lsl(R0, R0, 2);
    a.ldr_r(R1, R9, R0);
    a.cmp(R1, 0u32.into());
    a.rsb_cond(Cond::Lt, R1, R1, 0u32.into());
    sat16(a, R1, R2);
    a.cmp(R1, R5.into());
    a.mov_cond(Cond::Gt, R5, R1.into());
    a.add(R8, R8, 1u32.into());
    a.cmp(R8, 13u32.into());
    a.blt("gsm_rpe_max");

    // exp = max(0, bits(xmax) - 3); bits(0) = 0.
    a.cmp(R5, 0u32.into());
    a.li(R7, 0);
    a.beq("gsm_rpe_exp_done");
    a.clz(R7, R5);
    a.rsb(R7, R7, 32u32.into()); // bits
    a.subs(R7, R7, 3u32.into());
    a.mov_cond(Cond::Lt, R7, 0u32.into());
    a.label("gsm_rpe_exp_done");
    a.str(R7, R10, 4); // exp

    // xmc[i] = clamp(x[m+3i] >> exp, -4, 3) + 4 (variable shift by loop).
    a.li(R8, 0);
    a.label("gsm_rpe_q");
    a.li(R12, 3);
    a.mul(R0, R8, R12);
    a.add(R0, R0, R6.into());
    a.lsl(R0, R0, 2);
    a.ldr_r(R1, R9, R0);
    a.mov(R2, R7.into()); // shift count
    a.label("gsm_rpe_shr");
    a.cmp(R2, 0u32.into());
    a.beq("gsm_rpe_clamp");
    a.asr(R1, R1, 1);
    a.sub(R2, R2, 1u32.into());
    a.b("gsm_rpe_shr");
    a.label("gsm_rpe_clamp");
    a.li(R2, 3);
    a.cmp(R1, R2.into());
    a.mov_cond(Cond::Gt, R1, R2.into());
    a.li(R2, 0xFFFF_FFFC); // -4
    a.cmp(R1, R2.into());
    a.mov_cond(Cond::Lt, R1, R2.into());
    a.add(R1, R1, 4u32.into());
    // out[2 + i]
    a.add(R0, R8, 2u32.into());
    a.lsl(R0, R0, 2);
    a.str_r(R1, R10, R0);
    a.add(R8, R8, 1u32.into());
    a.cmp(R8, 13u32.into());
    a.blt("gsm_rpe_q");
    a.pop(&[R4, R5, R6, R7, R8, R9, R10, LR]);
    a.ret();
}

/// Emits every GSM kernel plus the basic ops (one-stop helper).
pub fn emit_all_kernels(a: &mut Asm) {
    emit_basicops(a);
    emit_lcg_frame(a);
    emit_preprocess(a);
    emit_autocorr(a);
    emit_schur(a);
    emit_lar(a);
    emit_ltp(a);
    emit_weight(a);
    emit_rpe(a);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_assemble_and_decode() {
        let mut a = Asm::new();
        a.swi(0);
        emit_all_kernels(&mut a);
        let p = a.assemble(0).unwrap();
        for sym in [
            "g_add",
            "g_mult_r",
            "g_div15",
            "gsm_lcg_frame",
            "gsm_preprocess",
            "gsm_autocorr",
            "gsm_schur",
            "gsm_lar",
            "gsm_ltp",
            "gsm_weight",
            "gsm_rpe",
        ] {
            assert!(p.symbol(sym).is_some(), "missing {sym}");
        }
        // All words decode except the coefficient table.
        let tab = (p.symbol("gsm_h_tab").unwrap() / 4) as usize;
        for (i, w) in p.words().iter().enumerate() {
            if (tab..tab + 11).contains(&i) {
                continue;
            }
            assert!(
                dmi_isa::decode(*w).is_ok(),
                "word {i} ({w:#010x}) does not decode"
            );
        }
    }
}
