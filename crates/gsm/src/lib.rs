//! # dmi-gsm — the GSM-style encoder workload
//!
//! The paper's evaluation simulates "the GSM algorithm" on 4 ISSs. This
//! crate provides that workload end to end:
//!
//! * [`basicop`] — ETSI-style saturated fixed-point primitives;
//! * [`reference`] — the encoder in Rust (preprocessing, autocorrelation,
//!   Schur recursion, LAR, LTP, weighting filter, RPE/APCM), with
//!   documented simplifications listed in `DESIGN.md`;
//! * [`codegen`] — the same stages as SimARM assembly kernels, bit-exact
//!   against the reference (property of the equivalence test suite);
//! * [`pipeline`] — the 4-stage pipeline mapping for the co-simulated
//!   MPSoC, exchanging frames through dynamic shared memory with burst
//!   transfers and a Vptr-0 directory rendezvous.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basicop;
pub mod codegen;
pub mod pipeline;
pub mod reference;
