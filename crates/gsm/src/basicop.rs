//! ETSI-style fixed-point basic operations.
//!
//! The GSM 06.10 full-rate codec is specified over a small set of saturated
//! 16/32-bit primitives. This module implements the subset the encoder
//! stages need, with semantics chosen so that every operation lowers to a
//! short SimARM sequence — the assembly kernels in [`crate::codegen`]
//! mirror these functions exactly, which is what makes the ISS-vs-reference
//! equivalence tests bit-exact.

/// Saturates a 32-bit value to the 16-bit range.
#[inline]
pub fn sat16(x: i32) -> i32 {
    x.clamp(-32768, 32767)
}

/// Saturated 16-bit addition (`gsm_add`).
#[inline]
pub fn add(a: i32, b: i32) -> i32 {
    sat16(a + b)
}

/// Saturated 16-bit subtraction (`gsm_sub`).
#[inline]
pub fn sub(a: i32, b: i32) -> i32 {
    sat16(a - b)
}

/// Saturated absolute value (`gsm_abs`): `abs(-32768) = 32767`.
#[inline]
pub fn abs_s(a: i32) -> i32 {
    sat16(a.wrapping_abs())
}

/// Q15 multiply (`gsm_mult`): `(a * b) >> 15`, saturated.
#[inline]
pub fn mult(a: i32, b: i32) -> i32 {
    sat16((a * b) >> 15)
}

/// Rounded Q15 multiply (`gsm_mult_r`): `(a * b + 16384) >> 15`, saturated.
#[inline]
pub fn mult_r(a: i32, b: i32) -> i32 {
    sat16((a * b + 16384) >> 15)
}

/// Unsigned Q15 division (`gsm_div`): `num / denum` in Q15 for
/// `0 <= num <= denum`, `denum > 0`. Returns 32767 when `num == denum`.
///
/// Implemented as the 15-step restoring division of the reference code, so
/// the assembly version produces identical bit patterns.
///
/// # Panics
///
/// Panics (debug) if the preconditions are violated.
pub fn div(num: i32, denum: i32) -> i32 {
    debug_assert!(num >= 0 && denum >= num && denum > 0, "div({num},{denum})");
    if num == denum {
        return 32767;
    }
    let mut num = num;
    let mut quot = 0;
    for _ in 0..15 {
        num <<= 1;
        quot <<= 1;
        if num >= denum {
            num -= denum;
            quot |= 1;
        }
    }
    quot
}

/// Normalization shift of a positive 32-bit value (`gsm_norm` for
/// positives): the left shift that brings bit 30 to the top without
/// overflowing. Zero input returns 0.
#[inline]
pub fn norm(x: i32) -> i32 {
    if x <= 0 {
        0
    } else {
        (x.leading_zeros() as i32) - 1
    }
}

/// Number of significant bits of a non-negative value (`0` for `0`).
#[inline]
pub fn bits(x: i32) -> i32 {
    debug_assert!(x >= 0);
    32 - x.leading_zeros() as i32
}

/// Arithmetic shift right of a 64-bit accumulator, truncated to 32 bits.
/// Used by the autocorrelation normalization; `sh` must leave the result
/// within the i32 range (guaranteed by construction there).
#[inline]
pub fn shr64_to32(acc: i64, sh: u32) -> i32 {
    (acc >> sh) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_bounds() {
        assert_eq!(add(32767, 1), 32767);
        assert_eq!(add(-32768, -1), -32768);
        assert_eq!(add(100, 200), 300);
        assert_eq!(sub(-32768, 1), -32768);
        assert_eq!(sub(32767, -1), 32767);
        assert_eq!(abs_s(-32768), 32767);
        assert_eq!(abs_s(-5), 5);
        assert_eq!(abs_s(7), 7);
    }

    #[test]
    fn q15_multiplies() {
        assert_eq!(mult(32767, 32767), 32766);
        assert_eq!(mult(16384, 16384), 8192); // 0.5 * 0.5 = 0.25
        assert_eq!(mult_r(16384, 16384), 8192);
        assert_eq!(mult_r(-32768, -32768), 32767, "saturation special case");
        assert_eq!(mult(-32768, -32768), 32767);
        // Rounding: 32767 * 2 = 65534; truncated >>15 gives 1, rounded 2.
        assert_eq!(mult(32767, 2), 1);
        assert_eq!(mult_r(32767, 2), 2);
    }

    #[test]
    fn division_matches_long_division() {
        assert_eq!(div(0, 100), 0);
        assert_eq!(div(100, 100), 32767);
        // 1/2 in Q15.
        assert_eq!(div(1, 2), 16384);
        // 1/3 in Q15 (truncated restoring division).
        assert_eq!(div(1, 3), 10922);
        // Compare against float for a spread of cases.
        for (n, d) in [(5, 7), (123, 10_000), (9_999, 10_000), (1, 32767)] {
            let q = div(n, d);
            let f = ((n as f64 / d as f64) * 32768.0) as i32;
            assert!((q - f).abs() <= 1, "div({n},{d}) = {q}, float {f}");
        }
    }

    #[test]
    fn norm_brings_to_bit30() {
        assert_eq!(norm(1), 30);
        assert_eq!(norm(0x4000_0000), 0);
        assert_eq!(norm(0x3FFF_FFFF), 1);
        assert_eq!(norm(0), 0);
        for sh in 0..31 {
            let x = 1i32 << sh;
            let n = norm(x);
            assert!((x << n) >= 0x2000_0000, "norm({x:#x}) = {n}");
        }
    }

    #[test]
    fn bit_width() {
        assert_eq!(bits(0), 0);
        assert_eq!(bits(1), 1);
        assert_eq!(bits(255), 8);
        assert_eq!(bits(256), 9);
    }

    #[test]
    fn shr64() {
        assert_eq!(shr64_to32(1 << 40, 10), 1 << 30);
        assert_eq!(shr64_to32(-(1i64 << 40), 10), -(1 << 30));
        assert_eq!(shr64_to32(12345, 0), 12345);
    }
}
