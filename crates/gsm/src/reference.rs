//! Reference implementation of the GSM-style fixed-point encoder.
//!
//! Structurally this follows the GSM 06.10 full-rate encoder — offset
//! compensation and preemphasis, autocorrelation, Schur recursion to
//! reflection coefficients, LAR transformation, long-term-prediction lag
//! search per 40-sample subframe, weighting filter, RPE grid selection and
//! APCM quantization. Where the standard's tables or scaling tricks do not
//! affect the co-simulation behaviour, documented simplifications are used
//! (see `DESIGN.md` §2); every arithmetic step is expressed through the
//! [`crate::basicop`] primitives so the SimARM implementation reproduces
//! it bit-exactly.

use crate::basicop::{abs_s, add, bits, div, mult_r, norm, shr64_to32};

/// Samples per frame.
pub const FRAME_SAMPLES: usize = 160;
/// Subframes per frame.
pub const SUBFRAMES: usize = 4;
/// Samples per subframe.
pub const SUB_SAMPLES: usize = 40;
/// Minimum LTP lag.
pub const LTP_MIN: usize = 40;
/// Maximum LTP lag.
pub const LTP_MAX: usize = 120;
/// RPE sequence length.
pub const RPE_LEN: usize = 13;

/// The weighting-filter impulse response (Q13, symmetric, 11 taps).
pub const WEIGHT_H: [i32; 11] = [
    -134, -374, 0, 2054, 5741, 8192, 5741, 2054, 0, -374, -134,
];

/// Deterministic 14-bit synthetic audio source, mirrored by the assembly
/// input generator (identical LCG constants).
#[derive(Debug, Clone)]
pub struct LcgSource {
    state: u32,
}

impl LcgSource {
    /// Creates a source with the given seed.
    pub fn new(seed: u32) -> Self {
        LcgSource { state: seed }
    }

    /// Next sample in `[-8192, 8191]`.
    pub fn next_sample(&mut self) -> i32 {
        self.state = self.state.wrapping_mul(1_103_515_245).wrapping_add(12345);
        (((self.state >> 16) & 0x3FFF) as i32) - 8192
    }

    /// Next full frame.
    pub fn next_frame(&mut self) -> [i32; FRAME_SAMPLES] {
        std::array::from_fn(|_| self.next_sample())
    }
}

/// Preprocessing filter state (carried across frames).
#[derive(Debug, Clone, Copy, Default)]
pub struct PreState {
    prev_s: i32,
    prev_d: i32,
}

/// Offset compensation + preemphasis:
/// `d[n] = s[n] - s[n-1] + (32735 * d[n-1]) >> 15`,
/// `p[n] = d[n] - (28180 * d[n-1]) >> 15`.
pub fn preprocess(s: &[i32; FRAME_SAMPLES], st: &mut PreState) -> [i32; FRAME_SAMPLES] {
    let mut out = [0i32; FRAME_SAMPLES];
    for n in 0..FRAME_SAMPLES {
        let d = s[n] - st.prev_s + ((32735 * st.prev_d) >> 15);
        out[n] = d - ((28180 * st.prev_d) >> 15);
        st.prev_s = s[n];
        st.prev_d = d;
    }
    out
}

fn bits64(x: i64) -> u32 {
    debug_assert!(x >= 0);
    64 - x.leading_zeros()
}

/// Autocorrelation over 9 lags with joint normalization: all lags share the
/// shift that brings `acf[0]` into the positive i32 range.
pub fn autocorrelation(p: &[i32; FRAME_SAMPLES]) -> ([i32; 9], u32) {
    let mut acc = [0i64; 9];
    for (k, a) in acc.iter_mut().enumerate() {
        for i in k..FRAME_SAMPLES {
            *a += p[i] as i64 * p[i - k] as i64;
        }
    }
    let sh = bits64(acc[0]).saturating_sub(31);
    let l_acf = std::array::from_fn(|k| shr64_to32(acc[k], sh));
    (l_acf, sh)
}

/// Schur recursion: reflection coefficients from the autocorrelation
/// (follows the reference code's 16-bit recursion).
pub fn reflection_coefficients(l_acf: &[i32; 9]) -> [i32; 8] {
    let mut r = [0i32; 8];
    if l_acf[0] == 0 {
        return r;
    }
    let temp = norm(l_acf[0]);
    // 16-bit working copies of the normalized autocorrelation.
    let acf: [i32; 9] = std::array::from_fn(|i| (l_acf[i] << temp) >> 16);

    let mut p = acf;
    let mut k = [0i32; 9];
    k[1..8].copy_from_slice(&acf[1..8]);

    for n in 0..8 {
        let t = abs_s(p[1]);
        if p[0] < t {
            // Unstable filter: remaining coefficients are zero.
            return r;
        }
        let mut rc = div(t, p[0]);
        if p[1] > 0 {
            rc = -rc;
        }
        r[n] = rc;
        if n == 7 {
            break;
        }
        p[0] = add(p[0], mult_r(p[1], rc));
        for m in 1..=(7 - n) {
            p[m] = add(p[m + 1], mult_r(k[m], rc));
            k[m] = add(k[m], mult_r(p[m + 1], rc));
        }
    }
    r
}

/// Reflection coefficient → log-area ratio (piecewise-linear companding of
/// the reference code).
pub fn rc_to_lar(rc: &[i32; 8]) -> [i32; 8] {
    std::array::from_fn(|i| {
        let mut temp = abs_s(rc[i]);
        temp = if temp < 22118 {
            temp >> 1
        } else if temp < 31130 {
            temp - 11059
        } else {
            (temp - 26112) << 2
        };
        if rc[i] < 0 {
            -temp
        } else {
            temp
        }
    })
}

/// LAR quantization: uniform 6-bit (documented simplification of the
/// per-coefficient A/B tables).
pub fn quantize_lar(lar: &[i32; 8]) -> [i32; 8] {
    std::array::from_fn(|i| (lar[i] >> 9).clamp(-32, 31))
}

/// LTP lag search and 2-bit gain over one subframe.
///
/// `prev` holds the 120 samples preceding the subframe (`prev[119]` is the
/// most recent). Both signals are scaled down 3 bits before correlating so
/// the 40-term sums stay within i32 — a fixed-scaling simplification of
/// the standard's dynamic scaling.
pub fn ltp(sub: &[i32; SUB_SAMPLES], prev: &[i32; LTP_MAX]) -> (usize, i32) {
    let wt: [i32; SUB_SAMPLES] = std::array::from_fn(|k| sub[k] >> 3);
    let dq: [i32; LTP_MAX] = std::array::from_fn(|j| prev[j] >> 3);

    let mut best_lag = LTP_MIN;
    let mut l_max = i32::MIN;
    for lambda in LTP_MIN..=LTP_MAX {
        let mut l = 0i32;
        for k in 0..SUB_SAMPLES {
            // Sample at global offset k - lambda, i.e. prev index
            // 120 + k - lambda (always in 0..120).
            l = l.wrapping_add(wt[k].wrapping_mul(dq[LTP_MAX + k - lambda]));
        }
        if l > l_max {
            l_max = l;
            best_lag = lambda;
        }
    }

    // Gain: compare the winning correlation against the energy of the
    // matched history window (threshold ladder, no division).
    let mut energy = 0i32;
    for k in 0..SUB_SAMPLES {
        let v = dq[LTP_MAX + k - best_lag];
        energy = energy.wrapping_add(v.wrapping_mul(v));
    }
    let bc = if l_max <= 0 || l_max < energy >> 2 {
        0
    } else if l_max < energy >> 1 {
        1
    } else if l_max < energy - (energy >> 2) {
        2
    } else {
        3
    };
    (best_lag, bc)
}

/// The RPE weighting filter: 11-tap FIR over the subframe (inputs scaled
/// down 2 bits for headroom, Q13 coefficients, rounded).
pub fn weighting_filter(sub: &[i32; SUB_SAMPLES]) -> [i32; SUB_SAMPLES] {
    let e: [i32; SUB_SAMPLES] = std::array::from_fn(|k| sub[k] >> 2);
    std::array::from_fn(|k| {
        let mut acc = 4096i32; // rounding
        for (i, h) in WEIGHT_H.iter().enumerate() {
            // e index k + 5 - i with zero padding outside the subframe.
            let idx = k as i32 + 5 - i as i32;
            if (0..SUB_SAMPLES as i32).contains(&idx) {
                acc = acc.wrapping_add(h.wrapping_mul(e[idx as usize]));
            }
        }
        acc >> 13
    })
}

/// RPE grid (sub-sampling phase) selection: the 13-sample decimation with
/// maximal energy among the four phases.
pub fn rpe_grid(x: &[i32; SUB_SAMPLES]) -> (usize, [i32; RPE_LEN]) {
    let mut best_m = 0;
    let mut best_e = i32::MIN;
    for m in 0..4 {
        let mut e = 0i32;
        for i in 0..RPE_LEN {
            let v = x[m + 3 * i];
            e = e.wrapping_add(v.wrapping_mul(v));
        }
        if e > best_e {
            best_e = e;
            best_m = m;
        }
    }
    (best_m, std::array::from_fn(|i| x[best_m + 3 * i]))
}

/// APCM quantization of the RPE sequence to 3-bit codes with a shared
/// block exponent.
pub fn apcm(xm: &[i32; RPE_LEN]) -> (i32, [i32; RPE_LEN]) {
    let mut xmax = 0;
    for &v in xm {
        let a = abs_s(v);
        if a > xmax {
            xmax = a;
        }
    }
    let exp = (bits(xmax) - 3).max(0);
    let xmc = std::array::from_fn(|i| (xm[i] >> exp).clamp(-4, 3) + 4);
    (exp, xmc)
}

/// One encoded subframe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubEncoded {
    /// LTP lag (40..=120).
    pub nc: i32,
    /// LTP gain code (0..=3).
    pub bc: i32,
    /// RPE grid phase (0..=3).
    pub grid: i32,
    /// APCM block exponent.
    pub exp: i32,
    /// 3-bit RPE codes (each 0..=7).
    pub xmc: [i32; RPE_LEN],
}

/// One encoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GsmFrame {
    /// Quantized log-area ratios.
    pub larq: [i32; 8],
    /// Per-subframe parameters.
    pub subs: [SubEncoded; SUBFRAMES],
}

impl GsmFrame {
    /// Flattens the frame to the word layout the ISS pipeline emits:
    /// 8 LARs, then per subframe `nc, bc, grid, exp, xmc[13]`.
    pub fn to_words(&self) -> Vec<u32> {
        let mut w: Vec<u32> = self.larq.iter().map(|&v| v as u32).collect();
        for s in &self.subs {
            w.push(s.nc as u32);
            w.push(s.bc as u32);
            w.push(s.grid as u32);
            w.push(s.exp as u32);
            w.extend(s.xmc.iter().map(|&v| v as u32));
        }
        w
    }

    /// Number of words in the flattened layout.
    pub const WORDS: usize = 8 + SUBFRAMES * (4 + RPE_LEN);

    /// A simple order-sensitive checksum over the flattened words.
    pub fn checksum(&self) -> u32 {
        self.to_words()
            .iter()
            .fold(0u32, |acc, &w| acc.wrapping_mul(31).wrapping_add(w))
    }
}

/// The full encoder with carried state.
#[derive(Debug, Clone)]
pub struct Encoder {
    pre: PreState,
    /// Previous frame's preprocessed samples (LTP history).
    history: [i32; FRAME_SAMPLES],
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    /// Creates an encoder with zeroed state.
    pub fn new() -> Self {
        Encoder {
            pre: PreState::default(),
            history: [0; FRAME_SAMPLES],
        }
    }

    /// Encodes one 160-sample frame.
    pub fn encode_frame(&mut self, s: &[i32; FRAME_SAMPLES]) -> GsmFrame {
        let d = preprocess(s, &mut self.pre);
        let (l_acf, _) = autocorrelation(&d);
        let rc = reflection_coefficients(&l_acf);
        let larq = quantize_lar(&rc_to_lar(&rc));

        let subs = std::array::from_fn(|sf| {
            let t = sf * SUB_SAMPLES;
            let sub: [i32; SUB_SAMPLES] = std::array::from_fn(|k| d[t + k]);
            // The 120 samples preceding the subframe, spanning the previous
            // frame's tail and the current frame's head.
            let prev: [i32; LTP_MAX] = std::array::from_fn(|j| {
                let global = t as i32 + j as i32 - LTP_MAX as i32;
                if global < 0 {
                    self.history[(global + FRAME_SAMPLES as i32) as usize]
                } else {
                    d[global as usize]
                }
            });
            let (nc, bc) = ltp(&sub, &prev);
            let x = weighting_filter(&sub);
            let (grid, xm) = rpe_grid(&x);
            let (exp, xmc) = apcm(&xm);
            SubEncoded {
                nc: nc as i32,
                bc,
                grid: grid as i32,
                exp,
                xmc,
            }
        });
        self.history = d;
        GsmFrame { larq, subs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: usize) -> [i32; FRAME_SAMPLES] {
        // Deterministic integer "sine-like" triangle wave.
        std::array::from_fn(|i| {
            let phase = (i * freq) % 64;
            if phase < 32 {
                -4000 + 250 * phase as i32
            } else {
                4000 - 250 * (phase - 32) as i32
            }
        })
    }

    #[test]
    fn lcg_is_deterministic_and_in_range() {
        let mut a = LcgSource::new(7);
        let mut b = LcgSource::new(7);
        for _ in 0..1000 {
            let x = a.next_sample();
            assert_eq!(x, b.next_sample());
            assert!((-8192..=8191).contains(&x));
        }
        let mut c = LcgSource::new(8);
        assert_ne!(a.next_frame(), c.next_frame());
    }

    #[test]
    fn preprocess_removes_dc() {
        let dc = [1000i32; FRAME_SAMPLES];
        let mut st = PreState::default();
        let d = preprocess(&dc, &mut st);
        // After the first sample the DC input decays toward zero (the
        // offset-compensation pole is at ~0.999, so decay is gradual and
        // the preemphasis knocks the level down further).
        assert_eq!(d[0], 1000);
        assert!(d[FRAME_SAMPLES - 1].abs() < d[0] / 5, "tail {}", d[159]);
    }

    #[test]
    fn autocorrelation_lag0_dominates() {
        let mut st = PreState::default();
        let d = preprocess(&tone(3), &mut st);
        let (acf, _) = autocorrelation(&d);
        assert!(acf[0] > 0);
        for k in 1..9 {
            assert!(acf[k].abs() <= acf[0], "lag {k}");
        }
    }

    #[test]
    fn autocorrelation_normalizes_into_i32() {
        let loud = [8191i32; FRAME_SAMPLES];
        let (acf, sh) = autocorrelation(&loud);
        assert!(acf[0] > 0);
        assert!(sh > 0, "loud signal requires downscaling");
    }

    #[test]
    fn reflection_coefficients_bounded() {
        let mut st = PreState::default();
        let d = preprocess(&tone(5), &mut st);
        let (acf, _) = autocorrelation(&d);
        let rc = reflection_coefficients(&acf);
        for (i, &c) in rc.iter().enumerate() {
            assert!((-32767..=32767).contains(&c), "rc[{i}] = {c}");
        }
        // Silence gives all-zero coefficients.
        assert_eq!(reflection_coefficients(&[0; 9]), [0; 8]);
    }

    #[test]
    fn lar_transform_is_odd_and_monotone_in_magnitude() {
        let rc = [-30000, -20000, -10000, -100, 100, 10000, 20000, 30000];
        let lar = rc_to_lar(&rc);
        for i in 0..4 {
            assert_eq!(lar[i], -lar[7 - i], "odd symmetry");
        }
        assert!(lar[4] < lar[5] && lar[5] < lar[6] && lar[6] < lar[7]);
        let q = quantize_lar(&lar);
        for v in q {
            assert!((-32..=31).contains(&v));
        }
    }

    #[test]
    fn ltp_finds_planted_period() {
        // History repeats with period 64; the subframe equals the history
        // 64 samples ago, so the best lag is 64.
        let mut prev = [0i32; LTP_MAX];
        let mut sub = [0i32; SUB_SAMPLES];
        let pattern = |t: i32| ((t * 37) % 96) * 50 - 2400;
        for (j, p) in prev.iter_mut().enumerate() {
            *p = pattern(j as i32);
        }
        for (k, s) in sub.iter_mut().enumerate() {
            // sub[k] corresponds to global time 120 + k; copy of t - 64.
            *s = pattern(120 + k as i32 - 64);
        }
        let (lag, bc) = ltp(&sub, &prev);
        assert_eq!(lag, 64);
        assert_eq!(bc, 3, "perfect match gets maximum gain");
    }

    #[test]
    fn ltp_zero_signal_gains_zero() {
        let (lag, bc) = ltp(&[0; SUB_SAMPLES], &[0; LTP_MAX]);
        assert_eq!(lag, LTP_MIN);
        assert_eq!(bc, 0);
    }

    #[test]
    fn weighting_filter_impulse_response() {
        let mut sub = [0i32; SUB_SAMPLES];
        sub[20] = 8192; // unit-ish impulse (after >>2: 2048)
        let x = weighting_filter(&sub);
        // Center tap: 2048 * 8192 >> 13 = 2048.
        assert_eq!(x[20], 2048);
        // Symmetric neighbours equal.
        assert_eq!(x[19], x[21]);
        assert_eq!(x[18], x[22]);
    }

    #[test]
    fn rpe_grid_picks_energy() {
        let mut x = [0i32; SUB_SAMPLES];
        // Plant energy on phase 2: indices 2, 5, 8, ...
        for i in 0..RPE_LEN {
            x[2 + 3 * i] = 1000;
        }
        let (m, xm) = rpe_grid(&x);
        assert_eq!(m, 2);
        assert_eq!(xm, [1000; RPE_LEN]);
    }

    #[test]
    fn apcm_quantizes_to_3_bits() {
        let xm = [
            -4096, -2048, -1024, -512, 0, 512, 1024, 2048, 4095, 100, -100, 3000, -3000,
        ];
        let (exp, xmc) = apcm(&xm);
        assert!(exp > 0);
        for c in xmc {
            assert!((0..=7).contains(&c), "code {c}");
        }
        // Zero block: exponent 0, all codes 4 (zero).
        let (exp0, xmc0) = apcm(&[0; RPE_LEN]);
        assert_eq!(exp0, 0);
        assert_eq!(xmc0, [4; RPE_LEN]);
    }

    #[test]
    fn encoder_is_deterministic_and_stateful() {
        let mut src = LcgSource::new(42);
        let frames: Vec<_> = (0..4).map(|_| src.next_frame()).collect();

        let mut e1 = Encoder::new();
        let out1: Vec<_> = frames.iter().map(|f| e1.encode_frame(f)).collect();
        let mut e2 = Encoder::new();
        let out2: Vec<_> = frames.iter().map(|f| e2.encode_frame(f)).collect();
        assert_eq!(out1, out2, "deterministic");

        // State carries across frames: re-encoding frame 1 with a fresh
        // encoder differs from the in-sequence result (history differs).
        let mut e3 = Encoder::new();
        let alone = e3.encode_frame(&frames[1]);
        assert_ne!(out1[1], alone, "encoder state matters");

        // Flattened layout is consistent.
        assert_eq!(out1[0].to_words().len(), GsmFrame::WORDS);
        assert_ne!(out1[0].checksum(), out1[1].checksum());
    }

    #[test]
    fn encoded_parameters_within_ranges() {
        let mut src = LcgSource::new(3);
        let mut enc = Encoder::new();
        for _ in 0..6 {
            let f = enc.encode_frame(&src.next_frame());
            for v in f.larq {
                assert!((-32..=31).contains(&v));
            }
            for s in f.subs {
                assert!((40..=120).contains(&s.nc));
                assert!((0..=3).contains(&s.bc));
                assert!((0..=3).contains(&s.grid));
                assert!((0..=12).contains(&s.exp));
                for c in s.xmc {
                    assert!((0..=7).contains(&c));
                }
            }
        }
    }
}
