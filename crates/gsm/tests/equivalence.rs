//! Kernel-by-kernel bit-exactness: each SimARM stage, executed on the ISS,
//! must produce the same words as the Rust reference.

use dmi_gsm::codegen;
use dmi_gsm::reference as r;
use dmi_isa::{Asm, Reg};
use dmi_iss::{CpuCore, LocalMemory, NoBus, StepEvent};

/// Fixed local-memory addresses for kernel harness buffers.
const IN0: u32 = 0x8000; // primary input
const IN1: u32 = 0x9000; // secondary input
const OUT: u32 = 0xA000; // output
const SCRATCH: u32 = 0xB000; // kernel scratch
const STATE: u32 = 0xC000; // filter/LCG state

/// Builds a harness program: load the argument registers, call `kernel`,
/// halt. Buffers are poked/peeked by the host around the run.
fn harness(kernel: &str, args: &[u32]) -> dmi_isa::Program {
    let mut a = Asm::new();
    for (i, &v) in args.iter().enumerate() {
        a.li(Reg::new(i as u8), v);
    }
    a.bl(kernel);
    a.li(Reg::R0, 0);
    a.swi(0);
    codegen::emit_all_kernels(&mut a);
    a.assemble(0).unwrap()
}

fn run_kernel(prog: &dmi_isa::Program, setup: impl FnOnce(&mut CpuCore)) -> CpuCore {
    let mut cpu = CpuCore::new(0, LocalMemory::new(0, 0x20000));
    cpu.load_program(prog);
    setup(&mut cpu);
    match cpu.run(&mut NoBus, 100_000_000) {
        StepEvent::Halted => cpu,
        other => panic!("kernel did not halt: {other:?}, fault {:?}", cpu.fault()),
    }
}

fn write_words(cpu: &mut CpuCore, addr: u32, words: &[i32]) {
    for (i, &w) in words.iter().enumerate() {
        cpu.local_mut()
            .write32(addr + (i as u32) * 4, w as u32)
            .unwrap();
    }
}

fn read_words(cpu: &CpuCore, addr: u32, n: usize) -> Vec<i32> {
    (0..n)
        .map(|i| cpu.local().read32(addr + (i as u32) * 4).unwrap() as i32)
        .collect()
}

fn test_frames(n: usize) -> Vec<[i32; 160]> {
    let mut src = r::LcgSource::new(0xC0FFEE);
    (0..n).map(|_| src.next_frame()).collect()
}

#[test]
fn lcg_frame_matches_reference() {
    let prog = harness("gsm_lcg_frame", &[OUT, STATE]);
    let cpu = run_kernel(&prog, |cpu| {
        cpu.local_mut().write32(STATE, 0xC0FFEE).unwrap();
    });
    let got = read_words(&cpu, OUT, 160);
    let mut src = r::LcgSource::new(0xC0FFEE);
    let want = src.next_frame();
    assert_eq!(got, want.to_vec());
}

#[test]
fn preprocess_matches_reference() {
    let frames = test_frames(3);
    let mut st = r::PreState::default();
    let mut asm_state = [0i32; 2];
    for frame in &frames {
        let want = r::preprocess(frame, &mut st);
        let prog = harness("gsm_preprocess", &[IN0, OUT, STATE]);
        let cpu = run_kernel(&prog, |cpu| {
            write_words(cpu, IN0, frame);
            write_words(cpu, STATE, &asm_state);
        });
        let got = read_words(&cpu, OUT, 160);
        assert_eq!(got, want.to_vec());
        asm_state = [
            cpu.local().read32(STATE).unwrap() as i32,
            cpu.local().read32(STATE + 4).unwrap() as i32,
        ];
    }
}

#[test]
fn autocorr_matches_reference() {
    let mut st = r::PreState::default();
    for frame in &test_frames(2) {
        let d = r::preprocess(frame, &mut st);
        let (want, _) = r::autocorrelation(&d);
        let prog = harness("gsm_autocorr", &[IN0, OUT, SCRATCH]);
        let cpu = run_kernel(&prog, |cpu| write_words(cpu, IN0, &d));
        let got = read_words(&cpu, OUT, 9);
        assert_eq!(got, want.to_vec());
    }
}

#[test]
fn autocorr_loud_signal_normalizes() {
    let loud = [8191i32; 160];
    let (want, sh) = r::autocorrelation(&loud);
    assert!(sh > 0);
    let prog = harness("gsm_autocorr", &[IN0, OUT, SCRATCH]);
    let cpu = run_kernel(&prog, |cpu| write_words(cpu, IN0, &loud));
    assert_eq!(read_words(&cpu, OUT, 9), want.to_vec());
}

#[test]
fn schur_matches_reference() {
    let mut st = r::PreState::default();
    for frame in &test_frames(3) {
        let d = r::preprocess(frame, &mut st);
        let (l_acf, _) = r::autocorrelation(&d);
        let want = r::reflection_coefficients(&l_acf);
        let prog = harness("gsm_schur", &[IN0, OUT, SCRATCH]);
        let cpu = run_kernel(&prog, |cpu| write_words(cpu, IN0, &l_acf));
        let got = read_words(&cpu, OUT, 8);
        assert_eq!(got, want.to_vec(), "L_ACF {l_acf:?}");
    }
}

#[test]
fn schur_zero_input_gives_zero_rc() {
    let prog = harness("gsm_schur", &[IN0, OUT, SCRATCH]);
    let cpu = run_kernel(&prog, |cpu| {
        write_words(cpu, IN0, &[0; 9]);
        // Poison the output to prove the kernel zeroes it.
        write_words(cpu, OUT, &[-1; 8]);
    });
    assert_eq!(read_words(&cpu, OUT, 8), vec![0; 8]);
}

#[test]
fn lar_matches_reference() {
    let rcs = [
        [-32768, -30000, -22118, -22117, 0, 22117, 31129, 32767],
        [-100, 100, -11059, 11059, -31130, 31130, 5000, -5000],
    ];
    for rc in &rcs {
        let want = r::quantize_lar(&r::rc_to_lar(rc));
        let prog = harness("gsm_lar", &[IN0, OUT]);
        let cpu = run_kernel(&prog, |cpu| write_words(cpu, IN0, rc));
        assert_eq!(read_words(&cpu, OUT, 8), want.to_vec(), "rc {rc:?}");
    }
}

#[test]
fn ltp_matches_reference() {
    let mut st = r::PreState::default();
    let frames = test_frames(2);
    let d0 = r::preprocess(&frames[0], &mut st);
    let d1 = r::preprocess(&frames[1], &mut st);
    // Subframe 1 of frame 1, with real history.
    for sf in 0..4 {
        let t = sf * 40;
        let sub: [i32; 40] = std::array::from_fn(|k| d1[t + k]);
        let prev: [i32; 120] = std::array::from_fn(|j| {
            let g = t as i32 + j as i32 - 120;
            if g < 0 {
                d0[(g + 160) as usize]
            } else {
                d1[g as usize]
            }
        });
        let (want_nc, want_bc) = r::ltp(&sub, &prev);
        let prog = harness("gsm_ltp", &[IN0, IN1, OUT, SCRATCH]);
        let cpu = run_kernel(&prog, |cpu| {
            write_words(cpu, IN0, &sub);
            write_words(cpu, IN1, &prev);
        });
        let got = read_words(&cpu, OUT, 2);
        assert_eq!(got[0] as usize, want_nc, "subframe {sf} lag");
        assert_eq!(got[1], want_bc, "subframe {sf} gain");
    }
}

#[test]
fn weighting_matches_reference() {
    let mut st = r::PreState::default();
    let d = r::preprocess(&test_frames(1)[0], &mut st);
    for sf in 0..4 {
        let sub: [i32; 40] = std::array::from_fn(|k| d[sf * 40 + k]);
        let want = r::weighting_filter(&sub);
        let prog = harness("gsm_weight", &[IN0, OUT, SCRATCH]);
        let cpu = run_kernel(&prog, |cpu| write_words(cpu, IN0, &sub));
        assert_eq!(read_words(&cpu, OUT, 40), want.to_vec(), "subframe {sf}");
    }
}

#[test]
fn rpe_matches_reference() {
    let mut st = r::PreState::default();
    let d = r::preprocess(&test_frames(1)[0], &mut st);
    for sf in 0..4 {
        let sub: [i32; 40] = std::array::from_fn(|k| d[sf * 40 + k]);
        let x = r::weighting_filter(&sub);
        let (want_m, want_xm) = r::rpe_grid(&x);
        let (want_exp, want_xmc) = r::apcm(&want_xm);
        let prog = harness("gsm_rpe", &[IN0, OUT]);
        let cpu = run_kernel(&prog, |cpu| write_words(cpu, IN0, &x));
        let got = read_words(&cpu, OUT, 15);
        assert_eq!(got[0] as usize, want_m, "grid, subframe {sf}");
        assert_eq!(got[1], want_exp, "exp, subframe {sf}");
        assert_eq!(&got[2..15], &want_xmc, "xmc, subframe {sf}");
    }
}

#[test]
fn rpe_zero_signal() {
    let prog = harness("gsm_rpe", &[IN0, OUT]);
    let cpu = run_kernel(&prog, |cpu| write_words(cpu, IN0, &[0; 40]));
    let got = read_words(&cpu, OUT, 15);
    assert_eq!(got[1], 0, "exp");
    assert_eq!(&got[2..15], &[4; 13], "zero codes");
}
