//! The built system and its execution surface: running to a typed stop
//! condition, state capture and restore, post-run inspection.

use std::time::Instant;

use dmi_core::{FaultHook, MemoryModule, StaticTableMemory, WrapperBackend};
use dmi_interconnect::{BusStats, Crossbar, MasterProbe, MasterStats, Region, SharedBus};
use dmi_iss::CpuComponent;
use dmi_kernel::{
    ComponentId, FastPathStats, KernelStats, SimTime, Simulator, Snapshot, SnapshotError,
    StateReader, StateWriter,
};

use crate::builder::{CpuHandle, MasterHandle, MemHandle};
use crate::config::SystemConfig;
use crate::report::{CpuReport, MasterReport, MemReport, RunReport};
use crate::run_ctl::{FaultReport, StopCause, StopCondition};

/// Builder-recorded identity of one non-CPU bus master.
#[derive(Debug)]
pub(crate) struct MasterInfo {
    /// Instance name (`"dma0"`, …).
    pub name: String,
    /// Kind label from the [`BusMaster`](dmi_interconnect::BusMaster)
    /// spec.
    pub kind: &'static str,
    /// The built component.
    pub id: ComponentId,
    /// Stats probe over the type-erased component.
    pub probe: MasterProbe,
}

/// A built co-simulated MPSoC, ready to run.
///
/// Construct it with [`SystemBuilder`](crate::SystemBuilder) (the
/// composable API) or [`McSystem::build`] (the declarative
/// [`SystemConfig`] shim). Run it with [`run`](Self::run) or
/// [`run_until`](Self::run_until); observe it mid-run with
/// [`report_now`](Self::report_now) and [`watch_value`](Self::watch_value).
///
/// # Examples
///
/// ```
/// use dmi_sw::{workloads, WorkloadCfg};
/// use dmi_system::{mem_base, McSystem, SystemConfig};
///
/// let cfg = WorkloadCfg {
///     mem_base: mem_base(0),
///     iterations: 5,
///     ..WorkloadCfg::default()
/// };
/// let mut system = McSystem::build(SystemConfig {
///     programs: vec![workloads::alloc_churn(&cfg)],
///     ..SystemConfig::default()
/// });
/// let report = system.run(1_000_000);
/// assert!(report.all_ok());
/// ```
#[derive(Debug)]
pub struct McSystem {
    sim: Simulator,
    clock_period: u64,
    cpu_ids: Vec<ComponentId>,
    masters: Vec<MasterInfo>,
    mem_ids: Vec<ComponentId>,
    mem_kinds: Vec<&'static str>,
    mem_regions: Vec<Region>,
    bus_id: ComponentId,
    crossbar: bool,
    /// Shared fault controller, when the builder wired a fault plan
    /// (`None` for fault-free systems — also the source of the report's
    /// injection counters).
    fault_hook: Option<FaultHook>,
    /// Simulated time when the current observation epoch started (the
    /// last `run`/`run_until` call; snapshots report cycles since then).
    epoch: SimTime,
    /// Kernel stats at the epoch start.
    epoch_stats: KernelStats,
    /// Kernel fast-path counters at the epoch start.
    epoch_fast: FastPathStats,
    /// Most recent periodic checkpoint:
    /// `(cycles into the run when taken, snapshot)`. Maintained by
    /// [`run_until`](Self::run_until) under
    /// [`StopCondition::checkpoint_every`].
    last_checkpoint: Option<(u64, Snapshot)>,
    /// The system graph lowered from the builder description at build
    /// time; [`analyze`](Self::analyze) answers from it without ever
    /// touching the simulator.
    graph: dmi_analyze::SystemGraph,
}

impl McSystem {
    /// Assembles the struct from builder output (crate-internal; the
    /// public constructors are `SystemBuilder::build` and
    /// [`McSystem::build`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        sim: Simulator,
        clock_period: u64,
        cpu_ids: Vec<ComponentId>,
        masters: Vec<MasterInfo>,
        mem_ids: Vec<ComponentId>,
        mem_kinds: Vec<&'static str>,
        mem_regions: Vec<Region>,
        bus_id: ComponentId,
        crossbar: bool,
        fault_hook: Option<FaultHook>,
        graph: dmi_analyze::SystemGraph,
    ) -> Self {
        let epoch = sim.time();
        let epoch_stats = sim.stats();
        let epoch_fast = sim.fast_path_stats();
        McSystem {
            sim,
            clock_period,
            cpu_ids,
            masters,
            mem_ids,
            mem_kinds,
            mem_regions,
            bus_id,
            crossbar,
            fault_hook,
            epoch,
            epoch_stats,
            epoch_fast,
            last_checkpoint: None,
            graph,
        }
    }

    /// Statically analyzes the built system: runs the `dmi-analyze`
    /// pass pipeline over the graph captured at build time. Inert by
    /// construction — the simulator is never touched, so calling this
    /// before (or between) runs leaves every cycle bit-identical.
    pub fn analyze(&self) -> dmi_analyze::AnalysisReport {
        dmi_analyze::analyze(&self.graph)
    }

    /// Builds the system described by `config` — the declarative shim
    /// over [`SystemBuilder`](crate::SystemBuilder), kept cycle-bit-
    /// identical to the historical constructor.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (empty programs/memories, more
    /// than 16 masters, …). Use `config.into_builder().build()` for the
    /// `Result` form with typed [`BuildError`](crate::BuildError)s.
    pub fn build(config: SystemConfig) -> McSystem {
        config
            .into_builder()
            .build()
            .unwrap_or_else(|e| panic!("invalid SystemConfig: {e}"))
    }

    /// Runs until every CPU halts (and every master finishes) or
    /// `max_cycles` clock cycles elapse, and collects the full report.
    pub fn run(&mut self, max_cycles: u64) -> RunReport {
        self.run_until(&StopCondition::cycles(max_cycles))
    }

    /// Runs until the first term of `cond` fires (the halt monitor is
    /// always armed on top) and collects the full report, including the
    /// [`StopCause`].
    ///
    /// Conditions with watchpoints or no-progress detection run the
    /// kernel in polling slices of [`poll_every`]
    /// (StopCondition::poll_every) cycles; pure cycle-budget/all-halted
    /// conditions run in a single uninterrupted slice (identical to the
    /// historical `run`).
    pub fn run_until(&mut self, cond: &StopCondition) -> RunReport {
        let t0 = self.sim.time();
        let stats0 = self.sim.stats();
        let fast0 = self.sim.fast_path_stats();
        self.epoch = t0;
        self.epoch_stats = stats0;
        self.epoch_fast = fast0;
        // Reporting/stop-condition wall clock: host time bounds the run
        // but never orders events within it.
        #[allow(clippy::disallowed_methods)]
        let wall_start = Instant::now();
        let budget = cond.cycles;

        // A finished system stays finished: the halt monitor only fires
        // on halt *transitions*, so without this early-out a re-run (or
        // a run after restoring a post-completion snapshot) would spin
        // the clocks for the whole budget.
        if self.everything_finished() {
            return self.collect(
                t0,
                &stats0,
                &fast0,
                wall_start.elapsed(),
                StopCause::AllHalted,
                None,
            );
        }

        let cause;
        let mut error = None;

        if !cond.needs_poll() {
            // Single slice: bit-identical to the historical run loop.
            let max_cycles = budget.unwrap_or(u64::MAX / 4);
            let summary = self
                .sim
                .run_until_stopped(max_cycles.saturating_mul(self.clock_period));
            (cause, error) = Self::classify(summary.stop.as_ref());
        } else {
            let poll = cond.poll_cycles();
            let mut elapsed = 0u64;
            let mut last_progress = self.progress_counter();
            let mut stagnant = 0u64;
            loop {
                let mut slice = match budget {
                    Some(b) => poll.min(b - elapsed),
                    None => poll,
                };
                if let Some(ck) = cond.checkpoint {
                    // Land slice boundaries on exact checkpoint
                    // multiples, so every checkpoint is taken at a
                    // deterministic, replayable cycle.
                    let to_next = ck - (elapsed % ck);
                    slice = slice.min(to_next);
                }
                let summary = self
                    .sim
                    .run_until_stopped(slice.saturating_mul(self.clock_period));
                elapsed += slice;
                if summary.stop.is_some() {
                    (cause, error) = Self::classify(summary.stop.as_ref());
                    break;
                }
                if cond
                    .checkpoint
                    .is_some_and(|ck| elapsed > 0 && elapsed.is_multiple_of(ck))
                {
                    let snap = self.checkpoint();
                    self.last_checkpoint = Some((elapsed, snap));
                }
                if let Some(i) = self.watch_hit(cond) {
                    cause = StopCause::Watchpoint(i);
                    break;
                }
                if let Some(window) = cond.no_progress {
                    let p = self.progress_counter();
                    if p == last_progress {
                        stagnant += slice;
                        if stagnant >= window {
                            cause = StopCause::NoProgress;
                            break;
                        }
                    } else {
                        last_progress = p;
                        stagnant = 0;
                    }
                }
                if cond.wall.is_some_and(|limit| wall_start.elapsed() >= limit) {
                    cause = StopCause::WallClock;
                    break;
                }
                if budget.is_some_and(|b| elapsed >= b) {
                    cause = StopCause::CycleBudget;
                    break;
                }
            }
        }

        self.collect(t0, &stats0, &fast0, wall_start.elapsed(), cause, error)
    }

    /// A mid-run (or post-run) report over the current observation epoch:
    /// cycles and kernel stats since the last `run`/`run_until` call
    /// started, component counters at their live values. Does not advance
    /// the simulation.
    ///
    /// The report's `wall` field is zero (wall time belongs to run
    /// calls). Its cause reflects live state: [`StopCause::AllHalted`]
    /// once every CPU has halted and every master is done (so `all_ok()`
    /// works on a post-completion report), the budget sentinel
    /// [`StopCause::CycleBudget`] otherwise.
    pub fn report_now(&self) -> RunReport {
        let cause = if self.everything_finished() {
            StopCause::AllHalted
        } else {
            StopCause::CycleBudget
        };
        self.collect(
            self.epoch,
            &self.epoch_stats,
            &self.epoch_fast,
            std::time::Duration::ZERO,
            cause,
            None,
        )
    }

    /// Total simulated clock cycles since construction — absolute, not
    /// epoch-relative like [`RunReport::sim_cycles`]. Simulated time is
    /// part of the serialized state, so a system restored from a
    /// checkpoint reports the same total an uninterrupted run would:
    /// the cycle axis resumable executions (the scenario farm's legs)
    /// account progress and fingerprints on.
    pub fn total_cycles(&self) -> u64 {
        self.sim.time().ticks() / self.clock_period
    }

    /// Captures the complete simulation state — kernel event queue and
    /// clock calendar, signal values and pending writes, every
    /// component's architectural state (CPU cores and their private
    /// memories, memory-model tables and arenas, interconnect FSMs, DMA
    /// sequencers) and the fault controller's RNG stream positions —
    /// into a versioned, checksummed [`Snapshot`].
    ///
    /// Validated caches (pointer-table TLB, decoded-instruction caches,
    /// translation hints) are *not* captured; a restored system rebuilds
    /// them lazily, so cache hit/miss counters legitimately diverge from
    /// an uninterrupted run while every architectural outcome stays
    /// bit-identical. Does not advance the simulation.
    pub fn checkpoint(&mut self) -> Snapshot {
        let mut snap = Snapshot::new();

        let mut w = StateWriter::new();
        w.put_u64(self.clock_period);
        w.put_u32(self.cpu_ids.len() as u32);
        w.put_u32(self.masters.len() as u32);
        w.put_u32(self.mem_ids.len() as u32);
        for kind in &self.mem_kinds {
            w.put_str(kind);
        }
        w.put_bool(self.crossbar);
        w.put_u32(self.sim.component_count() as u32);
        match &self.fault_hook {
            None => w.put_bool(false),
            Some(h) => {
                w.put_bool(true);
                w.put_u32(h.borrow().spec_count() as u32);
            }
        }
        snap.push_section("meta", w.into_bytes());

        let mut w = StateWriter::new();
        self.sim.save_state(&mut w);
        snap.push_section("kernel", w.into_bytes());

        for i in 0..self.sim.component_count() {
            let mut w = StateWriter::new();
            self.sim.save_component_state(i, &mut w);
            snap.push_section(format!("comp{i}"), w.into_bytes());
        }

        if let Some(h) = &self.fault_hook {
            let mut w = StateWriter::new();
            h.borrow().save_state(&mut w);
            snap.push_section("faults", w.into_bytes());
        }
        snap
    }

    /// Restores state captured by [`checkpoint`](Self::checkpoint) onto
    /// this system, which must have the same topology (CPU/master/memory
    /// counts, memory kinds, interconnect shape, component roster). The
    /// restored run replays bit-identically to the uninterrupted
    /// original — cache counters excepted, see `checkpoint`.
    ///
    /// Runtime twin toggles survive: the snapshot transfers across event
    /// queue kinds (heap/wheel), clock-calendar settings and
    /// fault-injection enablement, because those select *how* the same
    /// schedule executes, not the schedule itself. The fault section is
    /// applied only when this system carries a fault plan of the same
    /// shape (spec count); otherwise it is skipped — which is what lets
    /// a fork diverge onto a different fault plan.
    ///
    /// On error the system may be partially restored; do not keep
    /// running it without a successful `restore`.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        let mut r = StateReader::new(snap.require_section("meta")?);
        let mismatch = |context: String| SnapshotError::Mismatch { context };
        let clock_period = r.get_u64("meta clock_period")?;
        if clock_period != self.clock_period {
            return Err(mismatch(format!(
                "clock period: snapshot {clock_period}, system {}",
                self.clock_period
            )));
        }
        let cpus = r.get_u32("meta cpu count")? as usize;
        if cpus != self.cpu_ids.len() {
            return Err(mismatch(format!(
                "cpu count: snapshot {cpus}, system {}",
                self.cpu_ids.len()
            )));
        }
        let masters = r.get_u32("meta master count")? as usize;
        if masters != self.masters.len() {
            return Err(mismatch(format!(
                "master count: snapshot {masters}, system {}",
                self.masters.len()
            )));
        }
        let mems = r.get_u32("meta mem count")? as usize;
        if mems != self.mem_ids.len() {
            return Err(mismatch(format!(
                "memory count: snapshot {mems}, system {}",
                self.mem_ids.len()
            )));
        }
        for (j, want) in self.mem_kinds.iter().enumerate() {
            let kind = r.get_str("meta mem kind")?;
            if kind != *want {
                return Err(mismatch(format!(
                    "memory {j} kind: snapshot {kind:?}, system {want:?}"
                )));
            }
        }
        let crossbar = r.get_bool("meta crossbar")?;
        if crossbar != self.crossbar {
            return Err(mismatch(format!(
                "interconnect: snapshot {}, system {}",
                if crossbar { "crossbar" } else { "shared bus" },
                if self.crossbar { "crossbar" } else { "shared bus" },
            )));
        }
        let comp_count = r.get_u32("meta component count")? as usize;
        if comp_count != self.sim.component_count() {
            return Err(mismatch(format!(
                "component count: snapshot {comp_count}, system {}",
                self.sim.component_count()
            )));
        }
        let fault_specs = if r.get_bool("meta faults flag")? {
            Some(r.get_u32("meta fault spec count")? as usize)
        } else {
            None
        };
        r.finish("meta")?;

        let mut r = StateReader::new(snap.require_section("kernel")?);
        self.sim.load_state(&mut r)?;
        r.finish("kernel")?;

        for i in 0..comp_count {
            let name = format!("comp{i}");
            let mut r = StateReader::new(snap.require_section(&name)?);
            self.sim.load_component_state(i, &mut r)?;
        }

        if let (Some(h), Some(n)) = (&self.fault_hook, fault_specs) {
            if h.borrow().spec_count() == n {
                let mut r = StateReader::new(snap.require_section("faults")?);
                h.borrow_mut().load_state(&mut r)?;
                r.finish("faults")?;
            }
        }

        // The restore opens a fresh observation epoch, as a run call
        // would: reports after it cover restored execution only.
        self.epoch = self.sim.time();
        self.epoch_stats = self.sim.stats();
        self.epoch_fast = self.sim.fast_path_stats();
        self.last_checkpoint = None;
        Ok(())
    }

    /// The most recent periodic checkpoint of the current/last
    /// [`run_until`](Self::run_until) call (under
    /// [`StopCondition::checkpoint_every`]): the cycle offset into that
    /// run when it was taken, and the snapshot itself.
    pub fn last_checkpoint(&self) -> Option<(u64, &Snapshot)> {
        self.last_checkpoint.as_ref().map(|(c, s)| (*c, s))
    }

    /// Takes ownership of the most recent periodic checkpoint, leaving
    /// `None` behind.
    pub fn take_last_checkpoint(&mut self) -> Option<(u64, Snapshot)> {
        self.last_checkpoint.take()
    }

    /// Warm fork: builds `count` fresh systems with `build` and restores
    /// each from `snap`, yielding divergent continuations of one warmed
    /// run — different workloads-in-flight are impossible (state is the
    /// snapshot's), but each continuation can run under different stop
    /// conditions, fault plans (see [`restore`](Self::restore)) or
    /// runtime twin toggles without re-running the warmup.
    ///
    /// `build(i)` must produce a system topology-identical to the one
    /// the snapshot was captured from; a mismatch fails the whole fork
    /// with a typed error.
    pub fn fork<F>(
        snap: &Snapshot,
        count: usize,
        mut build: F,
    ) -> Result<Vec<McSystem>, SnapshotError>
    where
        F: FnMut(usize) -> McSystem,
    {
        (0..count)
            .map(|i| {
                let mut sys = build(i);
                sys.restore(snap)?;
                Ok(sys)
            })
            .collect()
    }

    /// Live completion state: every CPU halted and every master done
    /// (what the halt monitor watches, read directly from the
    /// components).
    fn everything_finished(&self) -> bool {
        self.cpu_ids.iter().all(|&id| {
            self.sim
                .component::<CpuComponent>(id)
                .expect("cpu component")
                .core()
                .is_halted()
        }) && self
            .masters
            .iter()
            .all(|m| self.master_stats_by_id(m).done)
    }

    fn classify(stop: Option<&dmi_kernel::StopReason>) -> (StopCause, Option<String>) {
        match stop {
            Some(s) if s.is_error() => (StopCause::Error, Some(s.message().to_owned())),
            Some(_) => (StopCause::AllHalted, None),
            None => (StopCause::CycleBudget, None),
        }
    }

    /// Total forward progress: retired instructions plus completed
    /// interconnect transactions (the no-progress detector's metric).
    fn progress_counter(&self) -> u64 {
        let instrs: u64 = self
            .cpu_ids
            .iter()
            .map(|&id| {
                self.sim
                    .component::<CpuComponent>(id)
                    .expect("cpu component")
                    .core()
                    .stats()
                    .instructions
            })
            .sum();
        instrs + self.bus_stats().transactions
    }

    fn watch_hit(&self, cond: &StopCondition) -> Option<usize> {
        cond.watches
            .iter()
            .position(|w| self.watch_value(w.mem, w.location) == Some(w.value))
    }

    /// Reads a word from a shared memory without disturbing the
    /// simulation — the mid-run observation hook watchpoints are built
    /// on.
    ///
    /// `location` is model-specific: a byte offset into the table for
    /// static memories (direct *and* protocol-fronted), a virtual
    /// pointer (Vptr) resolved through the pointer table for wrapper
    /// memories, an arena byte offset (which is what that model's vptrs
    /// are) for SimHeap memories. Returns `None` for locations that
    /// resolve nowhere.
    pub fn watch_value(&self, mem: MemHandle, location: u32) -> Option<u32> {
        let j = mem.0;
        let id = *self.mem_ids.get(j)?;
        match *self.mem_kinds.get(j)? {
            "static" => {
                let m: &StaticTableMemory = self.sim.component(id)?;
                let off = location as usize;
                let bytes = m.bytes().get(off..off + 4)?;
                Some(u32::from_le_bytes(bytes.try_into().ok()?))
            }
            "simheap" => {
                let m: &MemoryModule = self.sim.component(id)?;
                let h = m
                    .backend()
                    .as_any()
                    .downcast_ref::<dmi_core::SimHeapBackend>()?;
                // `peek_word` is the observational arena read: no cycles
                // charged, no counters moved.
                h.peek_word(location)
            }
            "static-protocol" => {
                let m: &MemoryModule = self.sim.component(id)?;
                let s = m
                    .backend()
                    .as_any()
                    .downcast_ref::<dmi_core::StaticTableBackend>()?;
                // Same observational table read as the direct static
                // model; `location` is a byte offset into the table.
                s.peek_word(location)
            }
            "wrapper" => {
                let m: &MemoryModule = self.sim.component(id)?;
                let w = m.backend().as_any().downcast_ref::<WrapperBackend>()?;
                // `peek` is the immutable O(log n) resolve: no TLB or
                // counter perturbation, cheap enough for every poll slice.
                let (idx, off) = w.table().peek(location)?;
                let off = off as usize;
                Some(u32::from_le_bytes(
                    w.table()
                        .entry(idx)
                        .host
                        .bytes()
                        .get(off..off + 4)?
                        .try_into()
                        .ok()?,
                ))
            }
            _ => None,
        }
    }

    fn bus_stats(&self) -> BusStats {
        if self.crossbar {
            self.sim
                .component::<Crossbar>(self.bus_id)
                .expect("crossbar")
                .stats()
        } else {
            self.sim
                .component::<SharedBus>(self.bus_id)
                .expect("shared bus")
                .stats()
        }
    }

    /// Gathers the full report for the epoch starting at `t0`.
    fn collect(
        &self,
        t0: SimTime,
        stats0: &KernelStats,
        fast0: &FastPathStats,
        wall: std::time::Duration,
        cause: StopCause,
        error: Option<String>,
    ) -> RunReport {
        let sim_cycles = self.sim.time().since(t0) / self.clock_period;
        let finished = cause == StopCause::AllHalted;

        let cpus = self
            .cpu_ids
            .iter()
            .map(|&id| {
                let c: &CpuComponent = self.sim.component(id).expect("cpu component");
                let core = c.core();
                CpuReport {
                    halted: core.is_halted(),
                    exit_code: core.exit_code(),
                    isa: core.stats(),
                    cosim: c.stats(),
                    cpu_cycles: core.cycles(),
                    console: core.console().text(),
                }
            })
            .collect();

        let masters: Vec<MasterReport> = self
            .masters
            .iter()
            .map(|m| MasterReport {
                name: m.name.clone(),
                kind: m.kind,
                stats: self.master_stats_by_id(m),
            })
            .collect();

        // A kernel error raised by a master's fault-escalation path (the
        // `"fault:"` message prefix) is reclassified into the typed
        // cause, pointing at the first master that recorded a
        // MasterError.
        let cause = match cause {
            StopCause::Error
                if error.as_deref().is_some_and(|e| e.starts_with("fault:")) =>
            {
                masters
                    .iter()
                    .enumerate()
                    .find_map(|(i, m)| {
                        m.stats
                            .fault
                            .map(|error| StopCause::Fault(FaultReport { master: i, error }))
                    })
                    .unwrap_or(StopCause::Error)
            }
            c => c,
        };

        // Injection counters from the shared controller, plus the
        // master-side recovery outcomes (the controller cannot see
        // retries — they happen on the master's side of the wires).
        let mut faults = self
            .fault_hook
            .as_ref()
            .map(|h| h.borrow().stats())
            .unwrap_or_default();
        for m in &masters {
            faults.retried += m.stats.retries;
            faults.recovered += m.stats.recovered;
            if m.stats.fault.is_some() {
                faults.escalated += 1;
            }
        }

        let mems = self
            .mem_ids
            .iter()
            .zip(&self.mem_kinds)
            .map(|(&id, &kind)| {
                if let Some(m) = self.sim.component::<MemoryModule>(id) {
                    MemReport {
                        kind,
                        backend: m.backend().stats(),
                        module: m.stats(),
                    }
                } else {
                    let s: &StaticTableMemory =
                        self.sim.component(id).expect("static memory component");
                    MemReport {
                        kind,
                        backend: Default::default(),
                        module: s.stats(),
                    }
                }
            })
            .collect();

        RunReport {
            sim_cycles,
            wall,
            finished,
            cause,
            error,
            cpus,
            masters,
            mems,
            bus: self.bus_stats(),
            kernel: self.sim.stats().since(stats0),
            fast_path: self.sim.fast_path_stats().since(fast0),
            faults,
        }
    }

    fn master_stats_by_id(&self, m: &MasterInfo) -> MasterStats {
        self.sim
            .component_any(m.id)
            .and_then(|any| (m.probe)(any))
            .unwrap_or_default()
    }

    /// Number of CPUs.
    pub fn cpu_count(&self) -> usize {
        self.cpu_ids.len()
    }

    /// Number of non-CPU bus masters.
    pub fn master_count(&self) -> usize {
        self.masters.len()
    }

    /// Number of shared memories.
    pub fn mem_count(&self) -> usize {
        self.mem_ids.len()
    }

    /// Direct access to a CPU component (post-run inspection).
    pub fn cpu(&self, i: usize) -> &CpuComponent {
        self.sim.component(self.cpu_ids[i]).expect("cpu component")
    }

    /// CPU access by typed handle.
    pub fn cpu_by(&self, h: CpuHandle) -> &CpuComponent {
        self.cpu(h.0)
    }

    /// Live [`MasterStats`] of a non-CPU master, by typed handle.
    pub fn master_stats(&self, h: MasterHandle) -> MasterStats {
        self.master_stats_by_id(&self.masters[h.0])
    }

    /// Direct access to a protocol memory module (None for static RAM).
    pub fn memory(&self, j: usize) -> Option<&MemoryModule> {
        self.sim.component(self.mem_ids[j])
    }

    /// Memory access by typed handle.
    pub fn memory_by(&self, h: MemHandle) -> Option<&MemoryModule> {
        self.memory(h.0)
    }

    /// The decode region a memory answers, by typed handle.
    pub fn mem_region(&self, h: MemHandle) -> Region {
        self.mem_regions[h.0]
    }

    /// Toggles fault injection at runtime, like the kernel fast-path
    /// twins' toggles: the plan's trigger state is retained, only firing
    /// is gated. No-op on systems built without a fault plan.
    pub fn set_fault_injection(&mut self, on: bool) {
        if let Some(h) = &self.fault_hook {
            h.borrow_mut().set_enabled(on);
        }
    }

    /// Whether fault injection is live: a non-empty plan is wired and
    /// the controller is enabled.
    pub fn fault_injection_live(&self) -> bool {
        self.fault_hook.as_ref().is_some_and(|h| h.borrow().live())
    }

    /// The underlying simulator (tracing, advanced inspection).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Mutable simulator access (e.g. to enable VCD tracing before a run).
    pub fn simulator_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }
}
