//! System construction and execution: wiring CPUs, interconnect and
//! memories on one simulation kernel.

use dmi_core::{
    MemoryModule, SimHeapBackend, SlavePorts, StaticTableMemory, WrapperBackend,
};
use dmi_interconnect::{AddressMap, BusStats, Crossbar, MasterIf, SharedBus, SlaveIf};
use dmi_iss::{BusMasterPorts, CpuComponent, CpuCore, HaltMonitor, LocalMemory};
use dmi_kernel::{ComponentId, Edge, Simulator};

use crate::config::{mem_base, InterconnectKind, MemModelKind, SystemConfig, MEM_WINDOW};
use crate::report::{CpuReport, MemReport, RunReport};

/// A built co-simulated MPSoC, ready to run.
///
/// # Examples
///
/// ```
/// use dmi_sw::{workloads, WorkloadCfg};
/// use dmi_system::{mem_base, McSystem, SystemConfig};
///
/// let cfg = WorkloadCfg {
///     mem_base: mem_base(0),
///     iterations: 5,
///     ..WorkloadCfg::default()
/// };
/// let mut system = McSystem::build(SystemConfig {
///     programs: vec![workloads::alloc_churn(&cfg)],
///     ..SystemConfig::default()
/// });
/// let report = system.run(1_000_000);
/// assert!(report.all_ok());
/// ```
#[derive(Debug)]
pub struct McSystem {
    sim: Simulator,
    clock_period: u64,
    cpu_ids: Vec<ComponentId>,
    mem_ids: Vec<ComponentId>,
    mem_kinds: Vec<&'static str>,
    bus_id: ComponentId,
    crossbar: bool,
}

impl McSystem {
    /// Builds the system described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.programs` or `config.memories` is empty, or if a
    /// CPU count above 16 is requested (the master-id field is 4 bits).
    pub fn build(config: SystemConfig) -> McSystem {
        assert!(!config.programs.is_empty(), "at least one CPU required");
        assert!(!config.memories.is_empty(), "at least one memory required");
        assert!(config.programs.len() <= 16, "at most 16 bus masters");

        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", config.clock_period);

        // CPUs.
        let mut cpu_ids = Vec::new();
        let mut master_ifs = Vec::new();
        let mut halted_wires = Vec::new();
        for (i, program) in config.programs.iter().enumerate() {
            let ports = BusMasterPorts::declare(&mut sim, &format!("cpu{i}.bus"));
            let halted = sim.wire(format!("cpu{i}.halted"), 1);
            let mut core = CpuCore::new(i as u32, LocalMemory::new(0, config.local_mem_size));
            core.set_predecode(config.predecode);
            core.load_program(program);
            let comp = CpuComponent::new(format!("cpu{i}"), core, clk, ports, halted);
            let id = sim.add_component(Box::new(comp));
            sim.subscribe(id, clk, Edge::Rising);
            cpu_ids.push(id);
            halted_wires.push(halted);
            master_ifs.push(MasterIf {
                req: ports.req,
                we: ports.we,
                size: ports.size,
                addr: ports.addr,
                wdata: ports.wdata,
                ack: ports.ack,
                rdata: ports.rdata,
            });
        }

        // Memories.
        let mut mem_ids = Vec::new();
        let mut mem_kinds = Vec::new();
        let mut slave_ifs = Vec::new();
        let mut map = AddressMap::new();
        for (j, kind) in config.memories.iter().enumerate() {
            let ports = SlavePorts::declare(&mut sim, &format!("mem{j}.s"));
            let base = mem_base(j);
            map.add(base, MEM_WINDOW, j);
            let id = match kind {
                MemModelKind::Wrapper(w) => {
                    let backend = Box::new(WrapperBackend::new(*w));
                    sim.add_component(Box::new(MemoryModule::new(
                        format!("mem{j}"),
                        clk,
                        ports,
                        base,
                        backend,
                    )))
                }
                MemModelKind::SimHeap(h) => {
                    let backend = Box::new(SimHeapBackend::new(*h));
                    sim.add_component(Box::new(MemoryModule::new(
                        format!("mem{j}"),
                        clk,
                        ports,
                        base,
                        backend,
                    )))
                }
                MemModelKind::Static(s) => sim.add_component(Box::new(StaticTableMemory::new(
                    format!("mem{j}"),
                    clk,
                    ports,
                    base,
                    *s,
                ))),
            };
            sim.subscribe(id, clk, Edge::Rising);
            mem_ids.push(id);
            mem_kinds.push(kind.name());
            slave_ifs.push(SlaveIf {
                req: ports.req,
                we: ports.we,
                size: ports.size,
                addr: ports.addr,
                wdata: ports.wdata,
                master: ports.master,
                ack: ports.ack,
                rdata: ports.rdata,
            });
        }

        // Interconnect.
        let (bus_id, crossbar) = match config.interconnect {
            InterconnectKind::SharedBus(bus_cfg) => {
                let bus = SharedBus::new("bus", clk, master_ifs, slave_ifs, map, bus_cfg);
                let id = sim.add_component(Box::new(bus));
                (id, false)
            }
            InterconnectKind::Crossbar(cfg) => {
                let xbar = Crossbar::with_config("xbar", clk, master_ifs, slave_ifs, map, cfg);
                let id = sim.add_component(Box::new(xbar));
                (id, true)
            }
        };
        sim.subscribe(bus_id, clk, Edge::Rising);

        // Completion monitor.
        let mon = sim.add_component(Box::new(HaltMonitor::new(halted_wires.clone())));
        for w in halted_wires {
            sim.subscribe(mon, w, Edge::Rising);
        }

        McSystem {
            sim,
            clock_period: config.clock_period,
            cpu_ids,
            mem_ids,
            mem_kinds,
            bus_id,
            crossbar,
        }
    }

    /// Runs until every CPU halts or `max_cycles` clock cycles elapse,
    /// and collects the full report.
    pub fn run(&mut self, max_cycles: u64) -> RunReport {
        let t0 = self.sim.time();
        let summary = self
            .sim
            .run_until_stopped(max_cycles.saturating_mul(self.clock_period));
        let sim_cycles = summary.end_time.since(t0) / self.clock_period;

        let finished = summary
            .stop
            .as_ref()
            .is_some_and(|s| !s.is_error());
        let error = summary.stop.as_ref().and_then(|s| {
            s.is_error().then(|| s.message().to_owned())
        });

        let cpus = self
            .cpu_ids
            .iter()
            .map(|&id| {
                let c: &CpuComponent = self.sim.component(id).expect("cpu component");
                let core = c.core();
                CpuReport {
                    halted: core.is_halted(),
                    exit_code: core.exit_code(),
                    isa: core.stats(),
                    cosim: c.stats(),
                    cpu_cycles: core.cycles(),
                    console: core.console().text(),
                }
            })
            .collect();

        let mems = self
            .mem_ids
            .iter()
            .zip(&self.mem_kinds)
            .map(|(&id, &kind)| {
                if let Some(m) = self.sim.component::<MemoryModule>(id) {
                    MemReport {
                        kind,
                        backend: m.backend().stats(),
                        module: m.stats(),
                    }
                } else {
                    let s: &StaticTableMemory =
                        self.sim.component(id).expect("static memory component");
                    MemReport {
                        kind,
                        backend: Default::default(),
                        module: s.stats(),
                    }
                }
            })
            .collect();

        let bus: BusStats = if self.crossbar {
            self.sim
                .component::<Crossbar>(self.bus_id)
                .expect("crossbar")
                .stats()
        } else {
            self.sim
                .component::<SharedBus>(self.bus_id)
                .expect("shared bus")
                .stats()
        };

        RunReport {
            sim_cycles,
            wall: summary.wall,
            finished,
            error,
            cpus,
            mems,
            bus,
            kernel: summary.stats,
        }
    }

    /// Number of CPUs.
    pub fn cpu_count(&self) -> usize {
        self.cpu_ids.len()
    }

    /// Number of shared memories.
    pub fn mem_count(&self) -> usize {
        self.mem_ids.len()
    }

    /// Direct access to a CPU component (post-run inspection).
    pub fn cpu(&self, i: usize) -> &CpuComponent {
        self.sim.component(self.cpu_ids[i]).expect("cpu component")
    }

    /// Direct access to a protocol memory module (None for static RAM).
    pub fn memory(&self, j: usize) -> Option<&MemoryModule> {
        self.sim.component(self.mem_ids[j])
    }

    /// The underlying simulator (tracing, advanced inspection).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Mutable simulator access (e.g. to enable VCD tracing before a run).
    pub fn simulator_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }
}
