//! The composable system builder: the construction half of the
//! design-space-exploration API.
//!
//! [`SystemBuilder`] assembles an MPSoC layer by layer — CPUs
//! ([`CpuSpec`]), memories with explicit address windows ([`MemSpec`]),
//! arbitrary non-CPU bus masters ([`BusMaster`]) and an interconnect —
//! and validates the whole description before any wiring happens:
//! [`build`](SystemBuilder::build) returns `Result<McSystem, BuildError>`
//! instead of panicking mid-construction.
//!
//! `add_*` calls return typed handles ([`CpuHandle`], [`MemHandle`],
//! [`MasterHandle`]) that keep referring to the same element after the
//! system is built — for report lookups, watchpoints and post-run
//! inspection.
//!
//! ```
//! use dmi_sw::{workloads, WorkloadCfg};
//! use dmi_system::{CpuSpec, MemSpec, SystemBuilder};
//!
//! let mut b = SystemBuilder::new();
//! let mem = b.add_memory(MemSpec::wrapper(0x8000_0000));
//! let wl = WorkloadCfg { mem_base: 0x8000_0000, iterations: 4, ..WorkloadCfg::default() };
//! let cpu = b.add_cpu(CpuSpec::new(workloads::alloc_churn(&wl)));
//! let mut system = b.build().expect("valid system");
//! let report = system.run(1_000_000);
//! assert!(report.all_ok());
//! # let _ = (mem, cpu);
//! ```

use dmi_core::{
    FaultController, FaultHook, FaultPlan, MemoryModule, SimHeapBackend, SimHeapConfig,
    StaticMemConfig, StaticTableBackend, StaticTableMemory, WrapperBackend, WrapperConfig,
};
use dmi_interconnect::{
    AddressMap, BusMaster, Crossbar, MapError, MasterIf, MasterProbe, MasterWiring, Region,
    SharedBus, SlaveIf,
};
use dmi_isa::Program;
use dmi_iss::{BusMasterPorts, CpuComponent, CpuCore, HaltMonitor, LocalMemory};
use dmi_kernel::{Edge, Simulator};

use crate::build::{MasterInfo, McSystem};
use crate::config::{InterconnectKind, MemModelKind, MEM_WINDOW};

/// Default private memory per CPU (the historical global knob's value).
pub const DEFAULT_LOCAL_MEM: u32 = 0x40000;

/// Handle to a CPU added to a [`SystemBuilder`]; indexes the built
/// system's CPU reports ([`RunReport::cpus`](crate::RunReport::cpus)) and
/// [`McSystem::cpu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuHandle(pub(crate) usize);

impl CpuHandle {
    /// The CPU's ordinal (its index in reports and [`McSystem::cpu`]).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a shared memory added to a [`SystemBuilder`]; indexes
/// [`RunReport::mems`](crate::RunReport::mems) and [`McSystem::memory`],
/// and names the module in watchpoints
/// ([`StopCondition::watch_word`](crate::StopCondition::watch_word)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemHandle(pub(crate) usize);

impl MemHandle {
    /// The memory's ordinal (its index in reports and
    /// [`McSystem::memory`]).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a non-CPU bus master added to a [`SystemBuilder`]; indexes
/// [`RunReport::masters`](crate::RunReport::masters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MasterHandle(pub(crate) usize);

impl MasterHandle {
    /// The master's ordinal among non-CPU masters.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Description of one CPU: its program and per-CPU knobs.
#[derive(Debug, Clone)]
pub struct CpuSpec {
    /// The program the core boots into.
    pub program: Program,
    /// Private memory size in bytes (per CPU — heterogeneous cores may
    /// differ). Defaults to [`DEFAULT_LOCAL_MEM`].
    pub local_mem_size: u32,
    /// Dispatch engine: predecoded micro-ops (default) or the reference
    /// interpreter. See [`dmi_iss::CpuCore::set_predecode`].
    pub predecode: bool,
}

impl CpuSpec {
    /// A CPU with default local memory and dispatch engine.
    pub fn new(program: Program) -> Self {
        CpuSpec {
            program,
            local_mem_size: DEFAULT_LOCAL_MEM,
            predecode: dmi_iss::predecode_default(),
        }
    }

    /// Sets the private memory size in bytes.
    pub fn local_mem_size(mut self, bytes: u32) -> Self {
        self.local_mem_size = bytes;
        self
    }

    /// Selects the dispatch engine.
    pub fn predecode(mut self, on: bool) -> Self {
        self.predecode = on;
        self
    }
}

/// Description of one shared memory: its model and its decode window.
#[derive(Debug, Clone, Copy)]
pub struct MemSpec {
    /// The memory model answering the window.
    pub model: MemModelKind,
    /// First byte address of the decode window.
    pub base: u32,
    /// Window size in bytes (variable per memory; defaults to the
    /// historical [`MEM_WINDOW`]).
    pub window: u32,
}

impl MemSpec {
    /// A memory of the given model decoded at `base` with the default
    /// 64 KiB window.
    pub fn new(model: MemModelKind, base: u32) -> Self {
        MemSpec {
            model,
            base,
            window: MEM_WINDOW,
        }
    }

    /// The paper's host-backed dynamic wrapper with default config.
    pub fn wrapper(base: u32) -> Self {
        Self::new(MemModelKind::Wrapper(WrapperConfig::default()), base)
    }

    /// The detailed in-simulation allocator baseline with default config.
    pub fn simheap(base: u32) -> Self {
        Self::new(MemModelKind::SimHeap(SimHeapConfig::default()), base)
    }

    /// A directly-addressed static table with default config.
    pub fn static_table(base: u32) -> Self {
        Self::new(MemModelKind::Static(StaticMemConfig::default()), base)
    }

    /// The static table behind the protocol register block with default
    /// config — the traditional baseline as a protocol module, so burst
    /// DMAs and other protocol masters can target it without manual
    /// wiring (allocation commands answer `Unsupported` by design).
    pub fn static_protocol(base: u32) -> Self {
        Self::new(MemModelKind::StaticProtocol(StaticMemConfig::default()), base)
    }

    /// Overrides the window size.
    pub fn window(mut self, bytes: u32) -> Self {
        self.window = bytes;
        self
    }

    /// The decode region this spec claims.
    pub fn region(&self, slave: usize) -> Region {
        Region {
            base: self.base,
            size: self.window,
            slave,
        }
    }
}

/// Interconnect timing presets: the builder-level answer to "which
/// `burst_grant` default?".
///
/// * [`SeedTiming`](Preset::SeedTiming) — the timing every cycle count in
///   the repo's experiment trajectory was recorded under: grant retention
///   off, each transaction re-arbitrates. **The default.**
/// * [`Throughput`](Preset::Throughput) — AMBA-style grant retention on
///   ([`BusConfig::burst_grant`](dmi_interconnect::BusConfig::burst_grant)):
///   consecutive same-master/same-slave transfers skip the re-arbitration
///   penalty. Fewer simulated cycles for burst-heavy traffic; cycle counts
///   are *not* comparable with seed-timing runs.
///
/// Measured numbers for both presets are recorded in `ROADMAP.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Seed-comparable timing (grant retention off).
    SeedTiming,
    /// Burst-friendly timing (grant retention on).
    Throughput,
}

/// Why a [`SystemBuilder::build`] call rejected the description.
#[derive(Debug)]
pub enum BuildError {
    /// No masters at all (neither CPUs nor custom bus masters).
    EmptySystem,
    /// No shared memories.
    NoMemories,
    /// More masters than the interconnect's 4-bit master-id field.
    TooManyMasters {
        /// Requested master count (CPUs + custom masters).
        count: usize,
    },
    /// The clock period is odd or below 2 ticks.
    BadClockPeriod {
        /// The rejected period.
        period: u64,
    },
    /// A CPU's program image does not fit in its private memory.
    ProgramTooLarge {
        /// CPU ordinal.
        cpu: usize,
        /// Bytes the image needs (base + length).
        need: u32,
        /// The CPU's `local_mem_size`.
        have: u32,
    },
    /// A memory declares a zero-sized window.
    ZeroWindow {
        /// The offending base address.
        base: u32,
    },
    /// A memory's window wraps past the top of the address space.
    WindowWraps {
        /// Window base.
        base: u32,
        /// Window size.
        window: u32,
    },
    /// Two memories' windows overlap.
    OverlappingWindows {
        /// The window being added.
        new: Region,
        /// The window it collides with.
        existing: Region,
    },
    /// [`build_checked`](SystemBuilder::build_checked) found
    /// `Error`-severity diagnostics; the payload is every finding of
    /// the rejected analysis (errors first).
    Analysis {
        /// The full ranked diagnostic list of the rejecting report.
        diagnostics: Vec<dmi_analyze::Diagnostic>,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::EmptySystem => write!(f, "at least one bus master required"),
            BuildError::NoMemories => write!(f, "at least one memory required"),
            BuildError::TooManyMasters { count } => {
                write!(f, "at most 16 bus masters (master id is 4 bits), got {count}")
            }
            BuildError::BadClockPeriod { period } => {
                write!(f, "clock period must be even and >= 2, got {period}")
            }
            BuildError::ProgramTooLarge { cpu, need, have } => write!(
                f,
                "cpu{cpu}: program needs {need:#x} bytes of local memory, has {have:#x}"
            ),
            BuildError::ZeroWindow { base } => {
                write!(f, "memory window at {base:#x} is zero-sized")
            }
            BuildError::WindowWraps { base, window } => {
                write!(f, "memory window {base:#x}+{window:#x} wraps the address space")
            }
            BuildError::OverlappingWindows { new, existing } => write!(
                f,
                "memory window {:#x}+{:#x} overlaps {:#x}+{:#x} (mem{})",
                new.base, new.size, existing.base, existing.size, existing.slave
            ),
            BuildError::Analysis { diagnostics } => {
                let errors: Vec<String> = diagnostics
                    .iter()
                    .filter(|d| d.severity == dmi_analyze::Severity::Error)
                    .map(|d| format!("[{}] {}: {}", d.code, d.subject, d.message))
                    .collect();
                write!(f, "static analysis rejected the system: {}", errors.join("; "))
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<MapError> for BuildError {
    fn from(e: MapError) -> Self {
        match e {
            MapError::ZeroSize { base } => BuildError::ZeroWindow { base },
            MapError::AddressWrap { base, size } => BuildError::WindowWraps {
                base,
                window: size,
            },
            MapError::Overlap { new, existing } => {
                BuildError::OverlappingWindows { new, existing }
            }
        }
    }
}

/// One entry in the builder's ordered master list. Order is bus-master
/// order: the arbiter's index space.
#[derive(Debug)]
pub(crate) enum MasterSlot {
    Cpu(CpuSpec),
    Custom(Box<dyn BusMaster>),
}

/// Composable MPSoC description; see the module docs.
///
/// Fields are crate-visible so the static-analysis lowering
/// (`analysis::lower`) can read the description without consuming it.
#[derive(Debug)]
pub struct SystemBuilder {
    pub(crate) clock_period: u64,
    pub(crate) masters: Vec<MasterSlot>,
    pub(crate) mems: Vec<MemSpec>,
    pub(crate) interconnect: InterconnectKind,
    pub(crate) preset: Option<Preset>,
    pub(crate) queue: Option<dmi_kernel::QueueKind>,
    pub(crate) clock_calendar: Option<bool>,
    pub(crate) faults: Option<FaultPlan>,
    pub(crate) fault_injection: Option<bool>,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemBuilder {
    /// An empty system on the default clock (period 2, the fastest) and a
    /// default shared bus.
    pub fn new() -> Self {
        SystemBuilder {
            clock_period: 2,
            masters: Vec::new(),
            mems: Vec::new(),
            interconnect: InterconnectKind::SharedBus(Default::default()),
            preset: None,
            queue: None,
            clock_calendar: None,
            faults: None,
            fault_injection: None,
        }
    }

    /// Installs a deterministic [`FaultPlan`]: a shared
    /// [`FaultController`] seeded from the plan is wired into every
    /// protocol memory module and the interconnect. An empty plan (or no
    /// plan — the default) leaves the simulation cycle-bit-identical to a
    /// fault-free build; a non-empty plan replays exactly for a given
    /// seed, independent of host timing and kernel queue choice.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Pins fault injection on or off at build time instead of the
    /// `DMI_FAULTS` environment default (see
    /// [`dmi_core::faults_enabled_default`]). Only meaningful together
    /// with [`faults`](Self::faults); the toggle can also be flipped at
    /// runtime via
    /// [`McSystem::set_fault_injection`](crate::McSystem::set_fault_injection).
    pub fn fault_injection(mut self, on: bool) -> Self {
        self.fault_injection = Some(on);
        self
    }

    /// Pins the kernel's event-queue implementation instead of letting
    /// the simulator auto-select it from the system-size hint when the
    /// first run starts (see [`dmi_kernel::QueueKind`] for the selection
    /// rationale; both choices are simulation-bit-identical, the knob is
    /// purely a host-performance override).
    pub fn queue(mut self, kind: dmi_kernel::QueueKind) -> Self {
        self.queue = Some(kind);
        self
    }

    /// Pins the kernel's clock calendar on or off instead of the
    /// `DMI_CLOCK_CALENDAR` environment default (see
    /// [`dmi_kernel::clock_calendar_default`]). Purely a
    /// host-performance A/B knob — the simulation is bit-identical
    /// either way.
    pub fn clock_calendar(mut self, on: bool) -> Self {
        self.clock_calendar = Some(on);
        self
    }

    /// Sets the clock period in kernel ticks (validated at build: must be
    /// even and at least 2).
    pub fn clock_period(mut self, ticks: u64) -> Self {
        self.clock_period = ticks;
        self
    }

    /// Selects the interconnect topology and configuration.
    pub fn interconnect(mut self, kind: InterconnectKind) -> Self {
        self.interconnect = kind;
        self
    }

    /// Applies a timing [`Preset`] on top of the current interconnect
    /// choice (at build time, after [`interconnect`](Self::interconnect)).
    pub fn preset(mut self, preset: Preset) -> Self {
        self.preset = Some(preset);
        self
    }

    /// Adds a CPU; bus-master index is the overall insertion order across
    /// CPUs and custom masters.
    pub fn add_cpu(&mut self, spec: CpuSpec) -> CpuHandle {
        let ordinal = self
            .masters
            .iter()
            .filter(|m| matches!(m, MasterSlot::Cpu(_)))
            .count();
        self.masters.push(MasterSlot::Cpu(spec));
        CpuHandle(ordinal)
    }

    /// Adds a shared memory.
    pub fn add_memory(&mut self, spec: MemSpec) -> MemHandle {
        self.mems.push(spec);
        MemHandle(self.mems.len() - 1)
    }

    /// Adds a non-CPU bus master (DMA engine, traffic generator, …).
    pub fn add_master(&mut self, master: Box<dyn BusMaster>) -> MasterHandle {
        let ordinal = self
            .masters
            .iter()
            .filter(|m| matches!(m, MasterSlot::Custom(_)))
            .count();
        self.masters.push(MasterSlot::Custom(master));
        MasterHandle(ordinal)
    }

    /// Validates the description (without building). `build` calls this
    /// first; exposed for cheap pre-flight checks.
    ///
    /// # Errors
    ///
    /// The first [`BuildError`] the description violates.
    pub fn validate(&self) -> Result<(), BuildError> {
        if self.masters.is_empty() {
            return Err(BuildError::EmptySystem);
        }
        if self.mems.is_empty() {
            return Err(BuildError::NoMemories);
        }
        if self.masters.len() > 16 {
            return Err(BuildError::TooManyMasters {
                count: self.masters.len(),
            });
        }
        if self.clock_period < 2 || !self.clock_period.is_multiple_of(2) {
            return Err(BuildError::BadClockPeriod {
                period: self.clock_period,
            });
        }
        let mut cpu = 0usize;
        for slot in &self.masters {
            if let MasterSlot::Cpu(spec) = slot {
                let need = spec
                    .program
                    .base()
                    .saturating_add(spec.program.len_bytes());
                if need > spec.local_mem_size {
                    return Err(BuildError::ProgramTooLarge {
                        cpu,
                        need,
                        have: spec.local_mem_size,
                    });
                }
                cpu += 1;
            }
        }
        // Dry-run the address map so window errors surface before any
        // component is constructed.
        let mut map = AddressMap::new();
        for (j, m) in self.mems.iter().enumerate() {
            map.try_add(m.base, m.window, j)?;
        }
        Ok(())
    }

    /// Statically analyzes the described system without building or
    /// running anything: lowers the description into a
    /// [`SystemGraph`](dmi_analyze::SystemGraph) and runs the
    /// `dmi-analyze` pass pipeline. Pure — `&self`, no simulator is
    /// constructed, and a subsequent [`build`](Self::build) + run is
    /// cycle-bit-identical to one that never analyzed (pinned by
    /// `tests/analysis.rs`).
    pub fn analyze(&self) -> dmi_analyze::AnalysisReport {
        dmi_analyze::analyze(&crate::analysis::lower(self, &[]))
    }

    /// [`analyze`](Self::analyze), additionally linting the watchpoint
    /// targets of the [`StopCondition`](crate::StopCondition) the
    /// caller intends to run with (diagnostic `A005`).
    pub fn analyze_with(&self, stop: &crate::StopCondition) -> dmi_analyze::AnalysisReport {
        dmi_analyze::analyze(&crate::analysis::lower(self, &stop.watches))
    }

    /// [`build`](Self::build), gated on the static analysis: the system
    /// is only constructed when [`analyze`](Self::analyze) reports no
    /// `Error`-severity diagnostics.
    ///
    /// # Errors
    ///
    /// Any [`BuildError`] from [`validate`](Self::validate), or
    /// [`BuildError::Analysis`] carrying the rejecting report's
    /// diagnostics.
    pub fn build_checked(self) -> Result<McSystem, BuildError> {
        self.validate()?;
        let report = self.analyze();
        if report.has_errors() {
            return Err(BuildError::Analysis {
                diagnostics: report.diagnostics,
            });
        }
        self.build()
    }

    /// Builds the described system.
    ///
    /// # Errors
    ///
    /// Any [`BuildError`] from [`validate`](Self::validate); nothing is
    /// constructed on error.
    pub fn build(self) -> Result<McSystem, BuildError> {
        self.validate()?;
        // Lowered before the description is consumed; the built system
        // answers `McSystem::analyze` from this graph.
        let graph = crate::analysis::lower(&self, &[]);
        let interconnect = match (self.interconnect, self.preset) {
            (kind, None) => kind,
            (InterconnectKind::SharedBus(mut cfg), Some(p)) => {
                cfg.burst_grant = p == Preset::Throughput;
                InterconnectKind::SharedBus(cfg)
            }
            (InterconnectKind::Crossbar(mut cfg), Some(p)) => {
                cfg.burst_grant = p == Preset::Throughput;
                InterconnectKind::Crossbar(cfg)
            }
        };

        // The shared fault controller (one per system: every site draws
        // from the same seeded plan, so cross-site trigger order is
        // well-defined).
        let fault_hook: Option<FaultHook> = self.faults.map(|plan| {
            let mut ctl = FaultController::new(plan);
            if let Some(on) = self.fault_injection {
                ctl.set_enabled(on);
            }
            ctl.into_hook()
        });

        let mut sim = Simulator::new();
        if let Some(kind) = self.queue {
            sim.set_queue_kind(kind);
        }
        if let Some(on) = self.clock_calendar {
            // Before `add_clock`, so the first toggle is armed directly
            // on the chosen path (no migration needed).
            sim.set_clock_calendar(on);
        }
        let clk = sim.add_clock("clk", self.clock_period);

        // Masters, in insertion order (= bus-master/arbitration order).
        // Wire-declaration order is load-bearing: for CPU-only systems it
        // must match the historical `McSystem::build` exactly so that
        // `SystemConfig` lowerings stay cycle-bit-identical (pinned by
        // `tests/builder_api.rs`).
        let mut cpu_ids = Vec::new();
        let mut master_infos: Vec<MasterInfo> = Vec::new();
        let mut master_ifs = Vec::new();
        let mut finish_wires = Vec::new();
        let mut cpu_ordinal = 0usize;
        let mut kind_counts: Vec<(&'static str, usize)> = Vec::new();
        for (midx, slot) in self.masters.into_iter().enumerate() {
            match slot {
                MasterSlot::Cpu(spec) => {
                    let i = cpu_ordinal;
                    cpu_ordinal += 1;
                    let ports = BusMasterPorts::declare(&mut sim, &format!("cpu{i}.bus"));
                    let halted = sim.wire(format!("cpu{i}.halted"), 1);
                    let mut core =
                        CpuCore::new(midx as u32, LocalMemory::new(0, spec.local_mem_size));
                    core.set_predecode(spec.predecode);
                    core.load_program(&spec.program);
                    let comp = CpuComponent::new(format!("cpu{i}"), core, clk, ports, halted);
                    let id = sim.add_component(Box::new(comp));
                    sim.subscribe(id, clk, Edge::Rising);
                    cpu_ids.push(id);
                    finish_wires.push(halted);
                    master_ifs.push(MasterIf::from(ports));
                }
                MasterSlot::Custom(spec) => {
                    let kind = spec.kind();
                    let n = match kind_counts.iter_mut().find(|(k, _)| *k == kind) {
                        Some((_, n)) => {
                            *n += 1;
                            *n - 1
                        }
                        None => {
                            kind_counts.push((kind, 1));
                            0
                        }
                    };
                    let name = format!("{kind}{n}");
                    let ports = MasterIf::declare(&mut sim, &format!("{name}.bus"));
                    let done = sim.wire(format!("{name}.done"), 1);
                    let probe: MasterProbe = spec.probe();
                    let comp = spec.into_component(name.clone(), MasterWiring { clk, ports, done });
                    let id = sim.add_component(comp);
                    sim.subscribe(id, clk, Edge::Rising);
                    finish_wires.push(done);
                    master_ifs.push(ports);
                    master_infos.push(MasterInfo {
                        name,
                        kind,
                        id,
                        probe,
                    });
                }
            }
        }

        // Memories.
        let mut mem_ids = Vec::new();
        let mut mem_kinds = Vec::new();
        let mut mem_regions = Vec::new();
        let mut slave_ifs = Vec::new();
        let mut map = AddressMap::new();
        for (j, spec) in self.mems.iter().enumerate() {
            let ports = dmi_core::SlavePorts::declare(&mut sim, &format!("mem{j}.s"));
            map.try_add(spec.base, spec.window, j)?;
            // Protocol models differ only in the backend behind the
            // module; the direct static table is its own component.
            let backend: Option<Box<dyn dmi_core::DsmBackend>> = match &spec.model {
                MemModelKind::Wrapper(w) => Some(Box::new(WrapperBackend::new(*w))),
                MemModelKind::SimHeap(h) => Some(Box::new(SimHeapBackend::new(*h))),
                MemModelKind::StaticProtocol(s) => Some(Box::new(StaticTableBackend::new(*s))),
                MemModelKind::Static(_) => None,
            };
            let id = match (backend, &spec.model) {
                (Some(backend), _) => {
                    let mut module =
                        MemoryModule::new(format!("mem{j}"), clk, ports, spec.base, backend);
                    if let Some(hook) = &fault_hook {
                        module.set_fault_hook(hook.clone(), j);
                    }
                    sim.add_component(Box::new(module))
                }
                (None, MemModelKind::Static(s)) => sim.add_component(Box::new(
                    StaticTableMemory::new(format!("mem{j}"), clk, ports, spec.base, *s),
                )),
                (None, _) => unreachable!("every protocol model produced a backend"),
            };
            sim.subscribe(id, clk, Edge::Rising);
            mem_ids.push(id);
            mem_kinds.push(spec.model.name());
            mem_regions.push(spec.region(j));
            slave_ifs.push(SlaveIf {
                req: ports.req,
                we: ports.we,
                size: ports.size,
                addr: ports.addr,
                wdata: ports.wdata,
                master: ports.master,
                ack: ports.ack,
                rdata: ports.rdata,
            });
        }

        // Interconnect.
        let (bus_id, crossbar) = match interconnect {
            InterconnectKind::SharedBus(bus_cfg) => {
                let mut bus = SharedBus::new("bus", clk, master_ifs, slave_ifs, map, bus_cfg);
                if let Some(hook) = &fault_hook {
                    bus.set_fault_hook(hook.clone());
                }
                (sim.add_component(Box::new(bus)), false)
            }
            InterconnectKind::Crossbar(cfg) => {
                let mut xbar = Crossbar::with_config("xbar", clk, master_ifs, slave_ifs, map, cfg);
                if let Some(hook) = &fault_hook {
                    xbar.set_fault_hook(hook.clone());
                }
                (sim.add_component(Box::new(xbar)), true)
            }
        };
        sim.subscribe(bus_id, clk, Edge::Rising);

        // Completion monitor: every CPU `halted` and every master `done`.
        let mon = sim.add_component(Box::new(HaltMonitor::new(finish_wires.clone())));
        for w in finish_wires {
            sim.subscribe(mon, w, Edge::Rising);
        }

        Ok(McSystem::from_parts(
            sim,
            self.clock_period,
            cpu_ids,
            master_infos,
            mem_ids,
            mem_kinds,
            mem_regions,
            bus_id,
            crossbar,
            fault_hook,
            graph,
        ))
    }
}
