//! Run reports: what a co-simulation measured.

use std::time::Duration;

use dmi_core::{FaultStats, MemStats, ModuleStats};
use dmi_interconnect::{BusStats, MasterStats};
use dmi_iss::{CpuComponentStats, CpuStats};
use dmi_kernel::{FastPathStats, KernelStats};

use crate::run_ctl::StopCause;

/// Per-CPU outcome of a run.
#[derive(Debug, Clone)]
pub struct CpuReport {
    /// Whether the CPU reached its halt.
    pub halted: bool,
    /// Exit code (`r0` at halt).
    pub exit_code: u32,
    /// ISA-level statistics.
    pub isa: CpuStats,
    /// Co-simulation statistics (bus waits, transactions).
    pub cosim: CpuComponentStats,
    /// Cycles consumed under the CPU timing model.
    pub cpu_cycles: u64,
    /// Console output.
    pub console: String,
}

/// Per-master outcome of a run (non-CPU masters: DMA engines, traffic
/// generators).
#[derive(Debug, Clone)]
pub struct MasterReport {
    /// Instance name (`"dma0"`, …).
    pub name: String,
    /// Kind label from the master's
    /// [`BusMaster`](dmi_interconnect::BusMaster) spec.
    pub kind: &'static str,
    /// Generic progress counters (zeroed when the master reports none).
    pub stats: MasterStats,
}

/// Per-memory outcome of a run.
#[derive(Debug, Clone)]
pub struct MemReport {
    /// Model name ("wrapper", "simheap", "static").
    pub kind: &'static str,
    /// Backend counters (zeroed for static memories).
    pub backend: MemStats,
    /// Handshake/FSM counters.
    pub module: ModuleStats,
}

/// The result of one co-simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Simulated clock cycles elapsed in this run.
    pub sim_cycles: u64,
    /// Host wall-clock time.
    pub wall: Duration,
    /// Whether every CPU halted and every master finished (workload
    /// completed).
    pub finished: bool,
    /// Why the run stopped.
    pub cause: StopCause,
    /// Kernel-reported error, if the run aborted.
    pub error: Option<String>,
    /// Per-CPU reports.
    pub cpus: Vec<CpuReport>,
    /// Per-master reports (non-CPU masters, in registration order).
    pub masters: Vec<MasterReport>,
    /// Per-memory reports.
    pub mems: Vec<MemReport>,
    /// Interconnect statistics.
    pub bus: BusStats,
    /// Kernel statistics for this run.
    pub kernel: KernelStats,
    /// Kernel fast-path counters for this run (clock toggles total,
    /// quiet in-place flips, calendar dispatches) — what experiments
    /// assert fast-path coverage with. Unlike `kernel`, these differ by
    /// construction between the reference and fast configurations.
    pub fast_path: FastPathStats,
    /// Fault-injection counters: faults injected per site class and per
    /// plan spec, plus master-side recovery outcomes (retried /
    /// recovered / escalated). All-zero when the system was built
    /// without a [`FaultPlan`](dmi_core::FaultPlan) or with an empty
    /// one.
    pub faults: FaultStats,
}

impl RunReport {
    /// Simulation speed: simulated clock cycles per host second — the
    /// metric the paper's evaluation reports.
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.sim_cycles as f64 / secs
        }
    }

    /// Simulated instructions per host second across all CPUs (MIPS-style
    /// throughput metric).
    pub fn instructions_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        let instr: u64 = self.cpus.iter().map(|c| c.isa.instructions).sum();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            instr as f64 / secs
        }
    }

    /// Whether the workload completed cleanly: every CPU exited with code
    /// zero and every master finished its programmed work.
    pub fn all_ok(&self) -> bool {
        self.finished
            && self.cpus.iter().all(|c| c.halted && c.exit_code == 0)
            && self.masters.iter().all(|m| m.stats.done)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} cycles in {:?} ({:.0} cyc/s), finished={}, exits=[{}]",
            self.sim_cycles,
            self.wall,
            self.cycles_per_sec(),
            self.finished,
            self.cpus
                .iter()
                .map(|c| c.exit_code.to_string())
                .collect::<Vec<_>>()
                .join(","),
        )
    }

    /// Per-CPU dispatch summary: one line per core with instruction
    /// count and decoded-instruction-cache hit rate (diagnostics for the
    /// ISS predecode fast path; reference-interpreter runs report no
    /// cached fetches).
    pub fn cpu_summary(&self) -> String {
        self.cpus
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let s = &c.isa;
                format!(
                    "cpu{i}: {} instrs, {} branches, icache {:.1}% hit \
                     ({} hits / {} misses)",
                    s.instructions,
                    s.branches,
                    100.0 * s.icache_hit_rate(),
                    s.icache_hits,
                    s.icache_misses,
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Kernel hot-path summary: event/wake/delta counts and the share
    /// of clock toggles each fast path served (diagnostics for the
    /// kernel's clocked specializations; reference-path runs report 0 %
    /// coverage).
    pub fn kernel_summary(&self) -> String {
        let k = &self.kernel;
        let f = &self.fast_path;
        format!(
            "kernel: {} events, {} wakes, {} deltas, {} time steps; \
             {} toggles ({:.1}% calendar, {:.1}% quiet)",
            k.events,
            k.wakes,
            k.deltas,
            k.time_steps,
            f.clock_toggles,
            100.0 * f.calendar_coverage(),
            100.0 * f.quiet_coverage(),
        )
    }

    /// One-line fault-injection summary: injected faults by site class
    /// and the recovery outcome counters. Empty-plan runs report all
    /// zeros.
    pub fn fault_summary(&self) -> String {
        let f = &self.faults;
        format!(
            "faults: {} injected ({} mem-op, {} beat, {} bus); \
             {} retried, {} recovered, {} escalated",
            f.injected, f.mem_ops, f.mem_beats, f.bus_accesses, f.retried, f.recovered, f.escalated,
        )
    }

    /// Per-memory hot-path summary: one line per module with TLB hit
    /// rate and burst activity (diagnostics for the wrapper's fast
    /// paths; static memories report no translations).
    pub fn memory_summary(&self) -> String {
        self.mems
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let b = &m.backend;
                format!(
                    "mem{i} ({}): {} reads, {} writes, {} beats, \
                     tlb {:.1}% hit ({} hits / {} misses), {} host allocs",
                    m.kind,
                    b.reads,
                    b.writes,
                    b.burst_beats,
                    100.0 * b.tlb_hit_rate(),
                    b.tlb_hits,
                    b.tlb_misses,
                    b.host.allocs,
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> RunReport {
        RunReport {
            sim_cycles: 1000,
            wall: Duration::from_millis(10),
            finished: true,
            cause: StopCause::AllHalted,
            error: None,
            cpus: vec![CpuReport {
                halted: true,
                exit_code: 0,
                isa: CpuStats::default(),
                cosim: CpuComponentStats::default(),
                cpu_cycles: 900,
                console: String::new(),
            }],
            masters: vec![],
            mems: vec![],
            bus: BusStats::default(),
            kernel: KernelStats::default(),
            fast_path: FastPathStats::default(),
            faults: FaultStats::default(),
        }
    }

    #[test]
    fn speed_metric() {
        let r = dummy();
        let speed = r.cycles_per_sec();
        assert!((speed - 100_000.0).abs() < 1.0, "speed {speed}");
        assert!(r.all_ok());
        assert!(r.summary().contains("1000 cycles"));
    }

    #[test]
    fn failed_exit_breaks_all_ok() {
        let mut r = dummy();
        r.cpus[0].exit_code = 1;
        assert!(!r.all_ok());
    }

    #[test]
    fn unfinished_master_breaks_all_ok() {
        let mut r = dummy();
        r.masters.push(MasterReport {
            name: "dma0".into(),
            kind: "dma",
            stats: MasterStats::default(),
        });
        assert!(!r.all_ok(), "master not done");
        r.masters[0].stats.done = true;
        assert!(r.all_ok());
    }

    #[test]
    fn memory_summary_reports_tlb_rate() {
        let mut r = dummy();
        r.mems.push(MemReport {
            kind: "wrapper",
            backend: MemStats {
                reads: 10,
                writes: 5,
                tlb_hits: 9,
                tlb_misses: 1,
                ..MemStats::default()
            },
            module: ModuleStats::default(),
        });
        let s = r.memory_summary();
        assert!(s.contains("tlb 90.0% hit"), "{s}");
        assert!(s.contains("wrapper"), "{s}");
    }
}
