//! # dmi-system — the MPSoC co-simulation framework
//!
//! The top of the stack: this crate assembles the framework of the paper's
//! Figure 1 — ISSs ([`dmi-iss`](dmi_iss)) and hardware modules
//! ([`dmi-core`](dmi_core) memories, [`dmi-interconnect`](dmi_interconnect))
//! on a simulation kernel ([`dmi-kernel`](dmi_kernel)), runs it, and
//! reports the *simulation speed* metrics the paper's evaluation is based
//! on.
//!
//! Two construction APIs:
//!
//! * [`SystemBuilder`] — the composable API: heterogeneous CPUs
//!   ([`CpuSpec`]), memories with explicit address windows ([`MemSpec`]),
//!   non-CPU bus masters (the [`BusMaster`](dmi_interconnect::BusMaster)
//!   trait), validated construction ([`BuildError`]);
//! * [`SystemConfig`] — the declarative shim for homogeneous scenarios,
//!   lowered onto the builder and pinned cycle-bit-identical.
//!
//! Execution is typed too: [`McSystem::run_until`] takes a composable
//! [`StopCondition`] (all-halted, cycle budget, watchpoints, no-progress
//! detection, wall-clock deadline, periodic checkpointing) and
//! [`McSystem::report_now`] reports mid-run statistics. See `README.md`
//! in this crate for the guided tour and the migration notes.
//!
//! State capture: [`McSystem::checkpoint`] serializes the complete
//! simulation state into a versioned, checksummed [`Snapshot`];
//! [`McSystem::restore`] replays it bit-identically on a
//! topology-identical system, and [`McSystem::fork`] fans one warmed
//! checkpoint out into divergent continuations. See the "State capture"
//! section of this crate's `README.md`.
//!
//! Robustness experiments use the deterministic fault-injection layer:
//! a seeded [`FaultPlan`] installed via [`SystemBuilder::faults`]
//! schedules slave status faults, data corruption, interconnect faults
//! and burst aborts replay-exactly; masters with a retry policy recover
//! or escalate into [`StopCause::Fault`], and [`RunReport::faults`]
//! carries the [`FaultStats`]. See the fault-model section of this
//! crate's `README.md`.
//!
//! The [`experiments`] module reproduces every experiment of the paper and
//! the extended evaluation documented in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod build;
mod builder;
mod config;
pub mod experiments;
mod report;
mod run_ctl;

pub use build::McSystem;
pub use builder::{
    BuildError, CpuHandle, CpuSpec, MasterHandle, MemHandle, MemSpec, Preset, SystemBuilder,
    DEFAULT_LOCAL_MEM,
};
pub use dmi_analyze::{
    analyze, AnalysisReport, Boundary, Code, Diagnostic, Severity, Shard, ShardPlan, SystemGraph,
};
pub use dmi_core::{
    faults_enabled_default, FaultKind, FaultPlan, FaultSite, FaultSpec, FaultStats, FaultTrigger,
};
pub use dmi_interconnect::{ErrorCounts, MasterError};
pub use dmi_kernel::{QueueKind, Snapshot, SnapshotError};
pub use config::{mem_base, InterconnectKind, MemModelKind, SystemConfig, MEM_WINDOW};
pub use report::{CpuReport, MasterReport, MemReport, RunReport};
pub use run_ctl::{FaultReport, StopCause, StopCondition, DEFAULT_POLL_CYCLES};
