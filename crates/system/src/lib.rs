//! # dmi-system — the MPSoC co-simulation framework
//!
//! The top of the stack: this crate assembles the framework of the paper's
//! Figure 1 — ISSs ([`dmi-iss`](dmi_iss)) and hardware modules
//! ([`dmi-core`](dmi_core) memories, [`dmi-interconnect`](dmi_interconnect))
//! on a simulation kernel ([`dmi-kernel`](dmi_kernel)) — from a declarative
//! [`SystemConfig`], runs it, and reports the *simulation speed* metrics
//! the paper's evaluation is based on.
//!
//! The [`experiments`] module reproduces every experiment of the paper and
//! the extended evaluation documented in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod config;
pub mod experiments;
mod report;

pub use build::McSystem;
pub use config::{mem_base, InterconnectKind, MemModelKind, SystemConfig, MEM_WINDOW};
pub use report::{CpuReport, MemReport, RunReport};
