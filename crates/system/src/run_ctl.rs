//! Typed run control: *when* a co-simulation should stop, and *why* it
//! did.
//!
//! [`McSystem::run_until`](crate::McSystem::run_until) takes a
//! [`StopCondition`] — a disjunction of stop terms built with the
//! constructors below and combined with [`or`](StopCondition::or). The
//! returned [`RunReport`](crate::RunReport) carries the [`StopCause`]
//! that actually ended the run, so long experiments can be driven in
//! observed increments instead of one opaque `run(max_cycles)`.
//!
//! The system's halt monitor is always armed: whatever else is requested,
//! a run ends (with [`StopCause::AllHalted`]) once every CPU has halted
//! and every master has raised `done`.

use std::time::Duration;

use dmi_interconnect::MasterError;

use crate::builder::MemHandle;

/// Why a [`run_until`](crate::McSystem::run_until) call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// Every CPU halted and every master finished (or a component
    /// cooperatively stopped the kernel).
    AllHalted,
    /// The cycle budget was exhausted.
    CycleBudget,
    /// A watchpoint matched; the payload is the index of the watch term
    /// in the order the condition's `watch_word` terms were composed.
    Watchpoint(usize),
    /// No CPU instruction and no interconnect transaction completed for a
    /// full no-progress window: the system is deadlocked or idle.
    ///
    /// Busy-wait loops *do* retire instructions and therefore count as
    /// progress; use a watchpoint or cycle budget for those.
    NoProgress,
    /// The host wall-clock deadline of
    /// [`StopCondition::wall_clock`] passed (quantised to the poll
    /// granularity). Inherently not replayable — use for CI safety nets,
    /// not for experiments that must be deterministic.
    WallClock,
    /// A master escalated an unrecovered injected fault (its retry
    /// policy exhausted retries with `escalate` set). The payload
    /// identifies the master and carries its typed [`MasterError`].
    Fault(FaultReport),
    /// A component stopped the kernel with an error (see
    /// [`RunReport::error`](crate::RunReport::error)).
    Error,
}

/// Which master escalated a fault, and what it observed — the payload of
/// [`StopCause::Fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultReport {
    /// Index of the escalating master in the report's `masters` vector
    /// (registration order).
    pub master: usize,
    /// The typed error the master recorded when it gave up.
    pub error: MasterError,
}

/// One watched shared-memory word.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Watch {
    /// Which memory module to inspect.
    pub mem: MemHandle,
    /// Model-specific location of the watched word: a byte offset into
    /// the table for static memories, a virtual pointer (Vptr) for
    /// wrapper memories, an arena byte offset for SimHeap memories.
    pub location: u32,
    /// Value that triggers the stop.
    pub value: u32,
}

/// Default polling granularity for watchpoint / no-progress / wall-clock
/// evaluation, in clock cycles. Every polled stop term is quantised to
/// this slice unless [`StopCondition::poll_every`] (or a constructor that
/// sets it, like [`StopCondition::wall_clock_every`]) chooses otherwise.
pub const DEFAULT_POLL_CYCLES: u64 = 256;

/// A composable stop condition; see the module docs.
#[derive(Debug, Clone)]
pub struct StopCondition {
    pub(crate) cycles: Option<u64>,
    pub(crate) watches: Vec<Watch>,
    pub(crate) no_progress: Option<u64>,
    /// Host wall-clock budget; checked on poll boundaries.
    pub(crate) wall: Option<Duration>,
    /// Explicit [`poll_every`](Self::poll_every) setting; `None` = the
    /// default granularity. Kept optional so `or`-composition with terms
    /// that never set it cannot clobber an explicit choice.
    pub(crate) poll: Option<u64>,
    /// Periodic checkpoint interval in cycles (not a stop term: the run
    /// keeps going, but the system retains the latest snapshot).
    pub(crate) checkpoint: Option<u64>,
}

impl StopCondition {
    fn empty() -> Self {
        StopCondition {
            cycles: None,
            watches: Vec::new(),
            no_progress: None,
            wall: None,
            poll: None,
            checkpoint: None,
        }
    }

    /// The effective polling granularity in cycles.
    pub(crate) fn poll_cycles(&self) -> u64 {
        self.poll.unwrap_or(DEFAULT_POLL_CYCLES)
    }

    /// Stop only when everything has halted (the halt monitor's implicit
    /// condition, stated explicitly). A run with just this condition can
    /// run forever if the workload never finishes — combine with
    /// [`cycles`](Self::cycles) as a safety net.
    pub fn all_halted() -> Self {
        Self::empty()
    }

    /// Stop after `n` clock cycles (counted from this `run_until` call).
    pub fn cycles(n: u64) -> Self {
        StopCondition {
            cycles: Some(n),
            ..Self::empty()
        }
    }

    /// Stop when the watched word equals `value`.
    ///
    /// `location` is model-specific: a byte offset into the table for
    /// static memories, a virtual pointer (Vptr) for wrapper memories,
    /// an arena byte offset (= that model's vptrs) for SimHeap memories.
    /// Evaluated every [`poll_every`](Self::poll_every) cycles — the stop
    /// lands on a poll boundary at or after the write, not on its exact
    /// cycle.
    pub fn watch_word(mem: MemHandle, location: u32, value: u32) -> Self {
        StopCondition {
            watches: vec![Watch {
                mem,
                location,
                value,
            }],
            ..Self::empty()
        }
    }

    /// Stop once no CPU instruction and no interconnect transaction has
    /// completed for `window_cycles` consecutive cycles (deadlock / idle
    /// detection, quantised to the poll granularity).
    pub fn no_progress(window_cycles: u64) -> Self {
        StopCondition {
            no_progress: Some(window_cycles),
            ..Self::empty()
        }
    }

    /// Take a [`Snapshot`](dmi_kernel::Snapshot) of the whole system
    /// every `interval_cycles` cycles (counted from the `run_until`
    /// call). Not a stop term: the run continues past each checkpoint;
    /// the system retains the most recent snapshot, readable with
    /// [`last_checkpoint`](crate::McSystem::last_checkpoint) or
    /// [`take_last_checkpoint`](crate::McSystem::take_last_checkpoint).
    ///
    /// Checkpoints land on exact multiples of the interval, so a run
    /// resumed from one replays bit-identically to the uninterrupted
    /// original (crash-safe resume).
    pub fn checkpoint_every(interval_cycles: u64) -> Self {
        StopCondition {
            checkpoint: Some(interval_cycles.max(1)),
            ..Self::empty()
        }
    }

    /// Stop once `budget` of host wall-clock time has elapsed (counted
    /// from the `run_until` call).
    ///
    /// The deadline is only *checked* on poll boundaries, so the stop is
    /// quantised to the poll granularity: after the budget passes, the
    /// run still finishes the in-flight slice (up to
    /// [`DEFAULT_POLL_CYCLES`] cycles, or whatever
    /// [`poll_every`](Self::poll_every) set) before it reports
    /// [`StopCause::WallClock`]. A hung or extremely slow scenario is
    /// therefore interrupted within one poll slice of the deadline —
    /// shrink the slice with [`wall_clock_every`](Self::wall_clock_every)
    /// when the watchdog must fire promptly, at the cost of more host
    /// overhead per simulated cycle.
    ///
    /// This is the one stop term that depends on the host rather than the
    /// simulation, so the cycle count it stops at is *not* reproducible
    /// between runs. Use it as a CI/interactive safety net on top of
    /// deterministic terms, not as an experiment boundary.
    pub fn wall_clock(budget: Duration) -> Self {
        StopCondition {
            wall: Some(budget),
            ..Self::empty()
        }
    }

    /// [`wall_clock`](Self::wall_clock) with an explicit watchdog poll
    /// granularity: the deadline is checked every `poll_cycles` cycles,
    /// so the run overshoots the budget by at most one `poll_cycles`
    /// slice of simulation. Equivalent to
    /// `wall_clock(budget).poll_every(poll_cycles)`, provided as a
    /// constructor so supervisors (e.g. the `dmi-farm` watchdog) state
    /// their reaction latency explicitly instead of inheriting
    /// [`DEFAULT_POLL_CYCLES`].
    pub fn wall_clock_every(budget: Duration, poll_cycles: u64) -> Self {
        Self::wall_clock(budget).poll_every(poll_cycles)
    }

    /// Combines two conditions: stop when *either* fires. Watch terms
    /// keep their left-to-right composition order (the order
    /// [`StopCause::Watchpoint`] indexes).
    pub fn or(mut self, other: StopCondition) -> Self {
        self.cycles = match (self.cycles, other.cycles) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.watches.extend(other.watches);
        self.no_progress = match (self.no_progress, other.no_progress) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.wall = match (self.wall, other.wall) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        // Only *explicit* poll settings participate: a term that never
        // called `poll_every` must not drag the granularity back to the
        // default.
        self.poll = match (self.poll, other.poll) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.checkpoint = match (self.checkpoint, other.checkpoint) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self
    }

    /// Sets the polling granularity (in cycles) for watchpoint and
    /// no-progress evaluation. Smaller = more precise stop, more host
    /// overhead. Ignored when the condition has nothing to poll.
    pub fn poll_every(mut self, cycles: u64) -> Self {
        self.poll = Some(cycles.max(1));
        self
    }

    /// Whether this condition needs mid-run polling (watchpoints,
    /// no-progress detection, a wall-clock budget, or periodic
    /// checkpointing).
    pub(crate) fn needs_poll(&self) -> bool {
        !self.watches.is_empty()
            || self.no_progress.is_some()
            || self.wall.is_some()
            || self.checkpoint.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_takes_the_tighter_bounds() {
        let c = StopCondition::cycles(1000)
            .or(StopCondition::cycles(500))
            .or(StopCondition::no_progress(64).poll_every(16))
            .or(StopCondition::watch_word(MemHandle(0), 4, 7));
        assert_eq!(c.cycles, Some(500));
        assert_eq!(c.no_progress, Some(64));
        assert_eq!(c.watches.len(), 1);
        assert_eq!(c.poll_cycles(), 16);
        assert!(c.needs_poll());
        assert!(!StopCondition::cycles(10).needs_poll());
    }

    #[test]
    fn wall_clock_term_polls_and_merges() {
        let c = StopCondition::wall_clock(Duration::from_secs(2));
        assert!(c.needs_poll(), "wall deadline requires polling");
        let c = c.or(StopCondition::wall_clock(Duration::from_millis(50)));
        assert_eq!(c.wall, Some(Duration::from_millis(50)));
        // Terms without a wall budget leave it alone.
        let c = c.or(StopCondition::cycles(10));
        assert_eq!(c.wall, Some(Duration::from_millis(50)));
        assert_eq!(c.cycles, Some(10));
    }

    #[test]
    fn wall_clock_every_sets_budget_and_poll() {
        let c = StopCondition::wall_clock_every(Duration::from_millis(20), 64);
        assert_eq!(c.wall, Some(Duration::from_millis(20)));
        assert_eq!(c.poll_cycles(), 64);
        // The explicit granularity survives or()-composition with terms
        // that never set one.
        let c = c.or(StopCondition::cycles(1_000_000));
        assert_eq!(c.poll_cycles(), 64);
    }

    #[test]
    fn terms_without_explicit_poll_do_not_clobber_it() {
        // Regression: every term used to carry the 256-cycle default, so
        // or()'s min dragged an explicit coarser setting back down.
        let c = StopCondition::watch_word(MemHandle(0), 4, 7)
            .poll_every(4096)
            .or(StopCondition::cycles(1_000_000));
        assert_eq!(c.poll_cycles(), 4096);
        // Two explicit settings: tightest wins.
        let c = StopCondition::watch_word(MemHandle(0), 4, 7)
            .poll_every(4096)
            .or(StopCondition::no_progress(64).poll_every(128));
        assert_eq!(c.poll_cycles(), 128);
        // No explicit setting anywhere: the default.
        let c = StopCondition::watch_word(MemHandle(0), 4, 7);
        assert_eq!(c.poll_cycles(), DEFAULT_POLL_CYCLES);
    }
}
