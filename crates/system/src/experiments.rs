//! The experiment harness: every table/figure of the paper's evaluation
//! plus the extended experiments documented in `EXPERIMENTS.md`.
//!
//! Each function runs complete co-simulations and returns structured rows;
//! the `experiments` binary in `dmi-bench` prints them as tables, and the
//! Criterion benches re-run the same configurations under measurement.

use std::time::Duration;

use dmi_core::{SimHeapConfig, WrapperConfig};
use dmi_gsm::pipeline::{self, PipelineCfg};
use dmi_sw::{workloads, WorkloadCfg};

use crate::{mem_base, CpuSpec, MemModelKind, MemSpec, Preset, RunReport, SystemBuilder};

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct ExpRow {
    /// Configuration label.
    pub label: String,
    /// Simulated clock cycles to workload completion.
    pub sim_cycles: u64,
    /// Host wall time.
    pub wall: Duration,
    /// Simulation speed in simulated cycles per host second.
    pub speed: f64,
    /// Simulated instructions per host second.
    pub ips: f64,
    /// Whether the workload completed with all exit codes zero.
    pub ok: bool,
}

impl ExpRow {
    fn from_report(label: impl Into<String>, r: &RunReport) -> ExpRow {
        ExpRow {
            label: label.into(),
            sim_cycles: r.sim_cycles,
            wall: r.wall,
            speed: r.cycles_per_sec(),
            ips: r.instructions_per_sec(),
            ok: r.all_ok(),
        }
    }
}

/// A complete experiment result.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Identifier ("E1", "E2", …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Measured rows.
    pub rows: Vec<ExpRow>,
    /// Notes on interpretation.
    pub notes: String,
}

impl Experiment {
    /// Renders a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str("| configuration | sim cycles | wall | speed (cyc/s) | kIPS | ok |\n");
        out.push_str("|---|---:|---:|---:|---:|---|\n");
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {} | {:.2?} | {:.0} | {:.1} | {} |\n",
                r.label,
                r.sim_cycles,
                r.wall,
                r.speed,
                r.ips / 1000.0,
                if r.ok { "yes" } else { "NO" },
            ));
        }
        if !self.notes.is_empty() {
            out.push_str(&format!("\n{}\n", self.notes));
        }
        out
    }
}

/// Runs the GSM pipeline on 4 CPUs with `n_mems` wrapper memories and
/// returns the report (shared by E1 and the benches).
pub fn run_gsm_pipeline(n_frames: u32, n_mems: usize, seed: u32) -> RunReport {
    let cfg = PipelineCfg {
        n_frames,
        mem_bases: (0..n_mems).map(mem_base).collect(),
        seed,
    };
    let mut b = SystemBuilder::new();
    for program in pipeline::stage_programs(&cfg) {
        b.add_cpu(CpuSpec::new(program));
    }
    for i in 0..n_mems {
        b.add_memory(MemSpec::wrapper(mem_base(i)));
    }
    let mut sys = b.build().expect("gsm pipeline system");
    sys.run(u64::MAX / 4)
}

/// E1 — the paper's headline experiment: GSM on 4 ISSs, one memory versus
/// four memories. The paper reports ≈20 % simulation-speed degradation.
pub fn e1_headline(n_frames: u32) -> Experiment {
    let r1 = run_gsm_pipeline(n_frames, 1, 0x5EED);
    let r4 = run_gsm_pipeline(n_frames, 4, 0x5EED);
    let degradation = 100.0 * (1.0 - r4.cycles_per_sec() / r1.cycles_per_sec());
    Experiment {
        id: "E1",
        title: "GSM on 4 ISSs: 1 shared memory vs 4 shared memories",
        rows: vec![
            ExpRow::from_report("4 ISS + bus + 1 wrapper memory", &r1),
            ExpRow::from_report("4 ISS + bus + 4 wrapper memories", &r4),
        ],
        notes: format!(
            "Simulation-speed degradation 1→4 memories: {degradation:.1}% \
             (paper reports ≈20%)."
        ),
    }
}

/// E2 — wrapper overhead over static tables on identical scalar traffic.
pub fn e2_model_overhead(iterations: u32) -> Experiment {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations,
        buf_words: 64,
        ..WorkloadCfg::default()
    };
    let mut rows = Vec::new();

    let mut b = SystemBuilder::new();
    for _ in 0..4 {
        b.add_cpu(CpuSpec::new(workloads::scalar_rw_static(&wl)));
    }
    b.add_memory(MemSpec::static_table(mem_base(0)));
    let r = b.build().expect("static system").run(u64::MAX / 4);
    rows.push(ExpRow::from_report("4 ISS, static table, raw ld/st", &r));

    let mut b = SystemBuilder::new();
    for _ in 0..4 {
        b.add_cpu(CpuSpec::new(workloads::scalar_rw(&wl)));
    }
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    let r = b.build().expect("wrapper system").run(u64::MAX / 4);
    rows.push(ExpRow::from_report("4 ISS, wrapper, DSM protocol", &r));

    Experiment {
        id: "E2",
        title: "Dynamic wrapper vs static table memory (claim III)",
        rows,
        notes: "Same logical traffic; the wrapper adds the command protocol \
                and table/translator work on the host. The claim is that \
                host-side speed (cycles/s) remains comparable."
            .into(),
    }
}

/// E3 — wrapper vs the detailed in-simulation allocator, on a workload
/// with a *growing* live population (linked-list build), where the
/// simheap's first-fit walk lengthens with every allocation.
pub fn e3_dynamic_models(iterations: u32) -> Experiment {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations,
        ..WorkloadCfg::default()
    };
    let mut rows = Vec::new();
    for (label, kind) in [
        (
            "wrapper (host-backed)",
            MemModelKind::Wrapper(WrapperConfig::default()),
        ),
        (
            "simheap (in-simulation allocator)",
            MemModelKind::SimHeap(SimHeapConfig::default()),
        ),
    ] {
        let mut b = SystemBuilder::new();
        b.add_cpu(CpuSpec::new(workloads::linked_list(&wl)));
        b.add_memory(MemSpec::new(kind, mem_base(0)));
        let r = b.build().expect("dynamic-model system").run(u64::MAX / 4);
        rows.push(ExpRow::from_report(
            format!("{label}, {iterations}-node list"),
            &r,
        ));
    }
    Experiment {
        id: "E3",
        title: "Host-backed wrapper vs detailed dynamic memory model",
        rows,
        notes: "Linked-list build and traversal: every allocation on the \
                simheap walks the (growing) free list inside the simulated \
                array, charging simulated cycles and host work per probe — \
                O(n²) total; the wrapper delegates storage to the host \
                allocator and charges only the configured delay model."
            .into(),
    }
}

/// E5 — ISS-count scaling on one wrapper memory.
pub fn e5_scaling(iterations: u32) -> Experiment {
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let wl = WorkloadCfg {
            mem_base: mem_base(0),
            iterations,
            buf_words: 32,
            ..WorkloadCfg::default()
        };
        let mut b = SystemBuilder::new();
        for _ in 0..n {
            b.add_cpu(CpuSpec::new(workloads::scalar_rw(&wl)));
        }
        b.add_memory(MemSpec::wrapper(mem_base(0)));
        let r = b.build().expect("scaling system").run(u64::MAX / 4);
        rows.push(ExpRow::from_report(format!("{n} ISS"), &r));
    }
    Experiment {
        id: "E5",
        title: "ISS-count scaling (1 wrapper memory, shared bus)",
        rows,
        notes: "Host speed falls with component count; simulated cycles rise \
                with bus contention."
            .into(),
    }
}

/// E6 — burst (I/O array) vs scalar transfers for the same data volume.
pub fn e6_burst(iterations: u32, burst_len: u32) -> Experiment {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations,
        burst_len,
        ..WorkloadCfg::default()
    };
    let mut rows = Vec::new();
    for (label, prog) in [
        ("burst (I/O array)", workloads::burst_copy(&wl)),
        ("scalar ops", workloads::scalar_copy(&wl)),
    ] {
        let mut b = SystemBuilder::new();
        b.add_cpu(CpuSpec::new(prog));
        b.add_memory(MemSpec::wrapper(mem_base(0)));
        let r = b.build().expect("burst system").run(u64::MAX / 4);
        rows.push(ExpRow::from_report(
            format!("{label}, {burst_len} words × {iterations}"),
            &r,
        ));
    }
    Experiment {
        id: "E6",
        title: "I/O-array bursts vs scalar element transfers",
        rows,
        notes: "Bursts amortize the command handshake over the block; scalar \
                transfers pay it per element (simulated cycles show the \
                factor)."
            .into(),
    }
}

/// E9 — interconnect timing presets: [`Preset::SeedTiming`] vs
/// [`Preset::Throughput`] (burst grant retention) on the burst workload.
/// The measured numbers behind the `burst_grant` default decision are
/// recorded in `ROADMAP.md`.
pub fn e9_presets(iterations: u32, burst_len: u32) -> Experiment {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations,
        burst_len,
        ..WorkloadCfg::default()
    };
    let mut rows = Vec::new();
    let mut cycles = [0u64; 2];
    for (i, (label, preset)) in [
        ("seed timing (no grant retention)", Preset::SeedTiming),
        ("throughput (burst grant retention)", Preset::Throughput),
    ]
    .into_iter()
    .enumerate()
    {
        let mut b = SystemBuilder::new().preset(preset);
        b.add_cpu(CpuSpec::new(workloads::burst_copy(&wl)));
        b.add_memory(MemSpec::wrapper(mem_base(0)));
        let r = b.build().expect("preset system").run(u64::MAX / 4);
        cycles[i] = r.sim_cycles;
        rows.push(ExpRow::from_report(
            format!("{label}, {burst_len} words × {iterations}"),
            &r,
        ));
    }
    let saved = 100.0 * (1.0 - cycles[1] as f64 / cycles[0] as f64);
    Experiment {
        id: "E9",
        title: "Interconnect timing presets: seed timing vs throughput",
        rows,
        notes: format!(
            "Grant retention removes the re-arbitration cycle of consecutive \
             same-master/same-slave transfers: {saved:.1}% fewer simulated \
             cycles on this burst workload. Seed timing stays the default so \
             cycle counts remain comparable with the recorded trajectory."
        ),
    }
}

/// E8 — GSM encoder throughput sanity: reference (host) vs co-simulated.
pub fn e8_gsm_throughput(n_frames: u32) -> Experiment {
    use std::time::Instant;
    // Host reference throughput.
    let mut src = dmi_gsm::reference::LcgSource::new(1);
    let mut enc = dmi_gsm::reference::Encoder::new();
    // Host-reference throughput measurement — not a simulation path.
    #[allow(clippy::disallowed_methods)]
    let t0 = Instant::now();
    for _ in 0..n_frames {
        let f = src.next_frame();
        std::hint::black_box(enc.encode_frame(&f));
    }
    let host_wall = t0.elapsed();

    let r = run_gsm_pipeline(n_frames, 1, 1);
    let sim_fps = n_frames as f64 / r.wall.as_secs_f64();
    let host_fps = n_frames as f64 / host_wall.as_secs_f64();
    Experiment {
        id: "E8",
        title: "GSM encoder throughput: native host vs co-simulated pipeline",
        rows: vec![
            ExpRow {
                label: "native Rust reference".into(),
                sim_cycles: 0,
                wall: host_wall,
                speed: host_fps,
                ips: 0.0,
                ok: true,
            },
            ExpRow::from_report("co-simulated 4-stage pipeline", &r),
        ],
        notes: format!(
            "Frames/s: native {host_fps:.0}, co-simulated {sim_fps:.2} — the \
             gap is the cost of cycle-true ISS+bus+memory simulation."
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_and_e3_run_small() {
        let e2 = e2_model_overhead(16);
        assert!(e2.rows.iter().all(|r| r.ok), "{:?}", e2.rows);
        assert!(e2.to_markdown().contains("E2"));
        let e3 = e3_dynamic_models(8);
        assert!(e3.rows.iter().all(|r| r.ok));
    }

    #[test]
    fn e6_burst_beats_scalar_in_sim_cycles() {
        let e6 = e6_burst(4, 32);
        assert!(e6.rows.iter().all(|r| r.ok));
        let burst = e6.rows[0].sim_cycles;
        let scalar = e6.rows[1].sim_cycles;
        assert!(
            burst < scalar,
            "burst {burst} should need fewer simulated cycles than scalar {scalar}"
        );
    }

    #[test]
    fn e9_presets_run_small() {
        let e9 = e9_presets(2, 16);
        assert!(e9.rows.iter().all(|r| r.ok), "{:?}", e9.rows);
        assert!(
            e9.rows[1].sim_cycles < e9.rows[0].sim_cycles,
            "retention must save simulated cycles"
        );
    }

    #[test]
    fn e1_headline_runs_small() {
        let e1 = e1_headline(1);
        assert!(e1.rows.iter().all(|r| r.ok), "{:?}", e1.rows);
        assert!(e1.notes.contains("degradation"));
    }
}
