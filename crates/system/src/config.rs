//! System configuration: the knobs of the design-space exploration the
//! framework exists to support.

use dmi_core::{SimHeapConfig, StaticMemConfig, WrapperConfig};
use dmi_interconnect::{BusConfig, CrossbarConfig};
use dmi_isa::Program;

/// Which memory model backs a shared-memory module.
#[derive(Debug, Clone, Copy)]
pub enum MemModelKind {
    /// The paper's host-backed dynamic memory wrapper.
    Wrapper(WrapperConfig),
    /// The detailed in-simulation allocator baseline.
    SimHeap(SimHeapConfig),
    /// A directly-addressed static table (no dynamic protocol).
    Static(StaticMemConfig),
    /// The static table behind the protocol register block
    /// ([`dmi_core::StaticTableBackend`] inside a
    /// [`dmi_core::MemoryModule`]): the traditional baseline speaking
    /// the same command handshake as the dynamic models, so
    /// protocol-level masters (burst DMAs, the ISS driver) can target
    /// it handshake-for-handshake. Allocation commands answer
    /// `Unsupported` — that *is* the baseline's limitation the paper
    /// starts from.
    StaticProtocol(StaticMemConfig),
}

impl MemModelKind {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            MemModelKind::Wrapper(_) => "wrapper",
            MemModelKind::SimHeap(_) => "simheap",
            MemModelKind::Static(_) => "static",
            MemModelKind::StaticProtocol(_) => "static-protocol",
        }
    }
}

/// Interconnect topology.
#[derive(Debug, Clone, Copy)]
pub enum InterconnectKind {
    /// Single shared bus (the paper's topology).
    SharedBus(BusConfig),
    /// Crossbar with per-slave arbitration (ablation).
    Crossbar(CrossbarConfig),
}

/// Base address of shared-memory module `i` in the CPUs' address space.
///
/// Each module owns a 64 KiB window starting at `0x8000_0000`.
pub const fn mem_base(i: usize) -> u32 {
    0x8000_0000 + (i as u32) * 0x0001_0000
}

/// Size of each module's decode window.
pub const MEM_WINDOW: u32 = 0x0001_0000;

/// Full description of a co-simulated MPSoC — the declarative shim over
/// [`SystemBuilder`](crate::SystemBuilder).
///
/// Kept for homogeneous scenarios (N identical CPUs on the standard
/// [`mem_base`] window layout) and pinned **cycle-bit-identical** to the
/// historical constructor by `tests/builder_api.rs`. Anything the shim
/// cannot express — heterogeneous `local_mem_size`, variable memory
/// windows, non-CPU bus masters — is a [`SystemBuilder`]
/// (crate::SystemBuilder) call away via [`into_builder`]
/// (Self::into_builder).
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Clock period in kernel ticks (must be even; 2 = fastest).
    pub clock_period: u64,
    /// Private memory per CPU in bytes (the shim is homogeneous; use
    /// [`CpuSpec::local_mem_size`](crate::CpuSpec::local_mem_size) on the
    /// builder for per-CPU sizes).
    pub local_mem_size: u32,
    /// One program per CPU (CPU count = `programs.len()`).
    pub programs: Vec<Program>,
    /// One entry per shared-memory module, decoded at [`mem_base`]`(i)`.
    pub memories: Vec<MemModelKind>,
    /// Interconnect topology.
    pub interconnect: InterconnectKind,
    /// Whether the ISSs dispatch predecoded micro-ops through their
    /// decoded-instruction caches (the default) or run the reference
    /// word-at-a-time interpreter. Runtime-selectable for A/B
    /// measurement; results are bit-identical either way. Defaults from
    /// the `DMI_PREDECODE` environment variable (see
    /// [`dmi_iss::predecode_default`]).
    pub predecode: bool,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            clock_period: 2,
            local_mem_size: crate::builder::DEFAULT_LOCAL_MEM,
            programs: Vec::new(),
            memories: vec![MemModelKind::Wrapper(WrapperConfig::default())],
            interconnect: InterconnectKind::SharedBus(BusConfig::default()),
            predecode: dmi_iss::predecode_default(),
        }
    }
}

impl SystemConfig {
    /// Lowers the declarative config onto the composable
    /// [`SystemBuilder`](crate::SystemBuilder): one CPU per program (all
    /// with this config's `local_mem_size` and `predecode`), one memory
    /// per model at [`mem_base`]`(i)` with the standard [`MEM_WINDOW`].
    ///
    /// The lowering is what [`McSystem::build`](crate::McSystem::build)
    /// runs; building the result produces a cycle-bit-identical system.
    pub fn into_builder(self) -> crate::SystemBuilder {
        let mut b = crate::SystemBuilder::new()
            .clock_period(self.clock_period)
            .interconnect(self.interconnect);
        for program in self.programs {
            b.add_cpu(
                crate::CpuSpec::new(program)
                    .local_mem_size(self.local_mem_size)
                    .predecode(self.predecode),
            );
        }
        for (i, model) in self.memories.into_iter().enumerate() {
            b.add_memory(crate::MemSpec::new(model, mem_base(i)));
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_bases_are_disjoint_windows() {
        assert_eq!(mem_base(0), 0x8000_0000);
        assert_eq!(mem_base(1), 0x8001_0000);
        assert_eq!(mem_base(2) - mem_base(1), MEM_WINDOW);
    }

    #[test]
    fn model_names() {
        assert_eq!(
            MemModelKind::Wrapper(WrapperConfig::default()).name(),
            "wrapper"
        );
        assert_eq!(
            MemModelKind::SimHeap(SimHeapConfig::default()).name(),
            "simheap"
        );
        assert_eq!(
            MemModelKind::Static(StaticMemConfig::default()).name(),
            "static"
        );
        assert_eq!(
            MemModelKind::StaticProtocol(StaticMemConfig::default()).name(),
            "static-protocol"
        );
    }
}
